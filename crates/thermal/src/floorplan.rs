//! Floorplan geometry: rectangular blocks and adjacency.

use serde::{Deserialize, Serialize};

/// Geometric tolerance (meters) when deciding whether two blocks touch.
const EPS: f64 = 1e-9;

/// One rectangular floorplan block.
///
/// Coordinates are in meters with the origin at the die's lower-left corner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Block name (e.g. `"IntQ0"`).
    pub name: String,
    /// Left edge (m).
    pub x: f64,
    /// Bottom edge (m).
    pub y: f64,
    /// Width (m).
    pub w: f64,
    /// Height (m).
    pub h: f64,
}

impl Block {
    /// Area in square meters.
    #[must_use]
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Center coordinates.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Length of the shared edge with `other` (0 when not adjacent).
    #[must_use]
    pub fn shared_edge(&self, other: &Block) -> f64 {
        let vertical_touch =
            (self.x + self.w - other.x).abs() < EPS || (other.x + other.w - self.x).abs() < EPS;
        if vertical_touch {
            let lo = self.y.max(other.y);
            let hi = (self.y + self.h).min(other.y + other.h);
            if hi - lo > EPS {
                return hi - lo;
            }
        }
        let horizontal_touch =
            (self.y + self.h - other.y).abs() < EPS || (other.y + other.h - self.y).abs() < EPS;
        if horizontal_touch {
            let lo = self.x.max(other.x);
            let hi = (self.x + self.w).min(other.x + other.w);
            if hi - lo > EPS {
                return hi - lo;
            }
        }
        0.0
    }
}

/// A complete floorplan: a set of non-overlapping blocks.
///
/// Build one from explicit blocks ([`Floorplan::new`]) or from rows of
/// relative widths ([`Floorplan::from_rows`], which is how the EV6-like
/// plans in [`crate::ev6`] are constructed).
///
/// # Examples
///
/// ```
/// use powerbalance_thermal::Floorplan;
///
/// let plan = Floorplan::from_rows(
///     8e-3,
///     &[
///         (2e-3, vec![("A", 1.0), ("B", 1.0)]),
///         (1e-3, vec![("C", 3.0), ("D", 1.0)]),
///     ],
/// );
/// assert_eq!(plan.blocks().len(), 4);
/// assert!(plan.index_of("C").is_some());
/// let (i, j) = (plan.index_of("A").unwrap(), plan.index_of("C").unwrap());
/// assert!(plan.blocks()[i].shared_edge(&plan.blocks()[j]) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Floorplan {
    blocks: Vec<Block>,
}

impl Floorplan {
    /// Creates a floorplan from explicit blocks.
    ///
    /// # Panics
    ///
    /// Panics if blocks overlap, have non-positive dimensions, or share a
    /// name.
    #[must_use]
    pub fn new(blocks: Vec<Block>) -> Self {
        assert!(!blocks.is_empty(), "floorplan needs at least one block");
        for b in &blocks {
            assert!(b.w > 0.0 && b.h > 0.0, "block {} has non-positive size", b.name);
        }
        for (i, a) in blocks.iter().enumerate() {
            for b in &blocks[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate block name {}", a.name);
                let overlap_x = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let overlap_y = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                assert!(
                    overlap_x < EPS || overlap_y < EPS,
                    "blocks {} and {} overlap",
                    a.name,
                    b.name
                );
            }
        }
        Floorplan { blocks }
    }

    /// Builds a floorplan from bottom-to-top rows.
    ///
    /// Each row is `(height_m, [(name, relative_width), ...])`; the
    /// relative widths are scaled so every row spans `die_width_m`.
    ///
    /// # Panics
    ///
    /// Panics on empty rows or non-positive widths/heights.
    #[must_use]
    pub fn from_rows(die_width_m: f64, rows: &[(f64, Vec<(&str, f64)>)]) -> Self {
        assert!(die_width_m > 0.0, "die width must be positive");
        let mut blocks = Vec::new();
        let mut y = 0.0;
        for (height, entries) in rows {
            assert!(*height > 0.0, "row height must be positive");
            assert!(!entries.is_empty(), "row must contain blocks");
            let total: f64 = entries.iter().map(|(_, w)| *w).sum();
            assert!(total > 0.0, "row widths must be positive");
            let mut x = 0.0;
            for (name, rel) in entries {
                assert!(*rel > 0.0, "block {name} must have positive width");
                let w = die_width_m * rel / total;
                blocks.push(Block { name: (*name).to_string(), x, y, w, h: *height });
                x += w;
            }
            y += height;
        }
        Floorplan::new(blocks)
    }

    /// The blocks, in construction order (this order defines node indices
    /// in the thermal network).
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Index of the block named `name`.
    #[must_use]
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name == name)
    }

    /// Total die area in square meters.
    #[must_use]
    pub fn total_area(&self) -> f64 {
        self.blocks.iter().map(Block::area).sum()
    }

    /// All adjacent pairs `(i, j, shared_edge_m)` with `i < j`.
    #[must_use]
    pub fn adjacency(&self) -> Vec<(usize, usize, f64)> {
        let mut pairs = Vec::new();
        for i in 0..self.blocks.len() {
            for j in i + 1..self.blocks.len() {
                let e = self.blocks[i].shared_edge(&self.blocks[j]);
                if e > 0.0 {
                    pairs.push((i, j, e));
                }
            }
        }
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(name: &str, x: f64, y: f64, w: f64, h: f64) -> Block {
        Block { name: name.into(), x, y, w, h }
    }

    #[test]
    fn shared_edges_detected() {
        let a = block("a", 0.0, 0.0, 1.0, 1.0);
        let right = block("r", 1.0, 0.0, 1.0, 1.0);
        let above = block("u", 0.0, 1.0, 1.0, 1.0);
        let diagonal = block("d", 1.0, 1.0, 1.0, 1.0);
        let far = block("f", 5.0, 5.0, 1.0, 1.0);
        assert!((a.shared_edge(&right) - 1.0).abs() < 1e-12);
        assert!((a.shared_edge(&above) - 1.0).abs() < 1e-12);
        assert_eq!(a.shared_edge(&far), 0.0);
        // Corner touch has zero shared edge.
        assert_eq!(a.shared_edge(&diagonal), 0.0);
    }

    #[test]
    fn partial_overlap_edge_length() {
        let a = block("a", 0.0, 0.0, 1.0, 2.0);
        let b = block("b", 1.0, 1.0, 1.0, 2.0);
        assert!((a.shared_edge(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_rows_partitions_die() {
        let plan = Floorplan::from_rows(
            10.0,
            &[(1.0, vec![("a", 1.0), ("b", 4.0)]), (2.0, vec![("c", 1.0)])],
        );
        let a = &plan.blocks()[plan.index_of("a").expect("a exists")];
        let b = &plan.blocks()[plan.index_of("b").expect("b exists")];
        let c = &plan.blocks()[plan.index_of("c").expect("c exists")];
        assert!((a.w - 2.0).abs() < 1e-12);
        assert!((b.w - 8.0).abs() < 1e-12);
        assert!((c.w - 10.0).abs() < 1e-12);
        assert!((plan.total_area() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn adjacency_within_and_between_rows() {
        let plan = Floorplan::from_rows(
            4.0,
            &[(1.0, vec![("a", 1.0), ("b", 1.0)]), (1.0, vec![("c", 1.0)])],
        );
        let adj = plan.adjacency();
        // a-b share a vertical edge; a-c and b-c share horizontal edges.
        assert_eq!(adj.len(), 3);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_blocks_rejected() {
        let _ =
            Floorplan::new(vec![block("a", 0.0, 0.0, 2.0, 2.0), block("b", 1.0, 1.0, 2.0, 2.0)]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_rejected() {
        let _ =
            Floorplan::new(vec![block("a", 0.0, 0.0, 1.0, 1.0), block("a", 2.0, 0.0, 1.0, 1.0)]);
    }
}

//! HotSpot-style lumped-RC thermal model for the `powerbalance` simulator.
//!
//! The MICRO 2005 paper uses the HotSpot model (Skadron et al., ISCA 2003) to
//! track per-block temperatures on an Alpha-EV6-like floorplan, with the key
//! refinement that aggregated resources are split into individually-modeled
//! copies: the integer issue queue into two halves, the integer register
//! file into two copies, the integer execution area into six ALUs, and the
//! FP add area into four adders. This crate rebuilds that model from
//! scratch:
//!
//! * [`Floorplan`] — rectangular block geometry with adjacency extraction
//!   (shared-edge lengths drive lateral conduction);
//! * [`ev6`] — the EV6-like floorplan at 90 nm plus the paper's three
//!   thermally-constrained variants (Figure 5);
//! * [`ThermalNetwork`] / [`ThermalModel`] — a lumped RC network with one
//!   node per block, lateral silicon conductances, a vertical path through
//!   spreader and heat sink to ambient, integrated with an unconditionally
//!   stable backward-Euler step.
//!
//! Vertical conduction (block → spreader → sink) is deliberately much
//! stronger than lateral conduction (block ↔ block), reproducing the
//! physical effect the paper's whole premise rests on: "heat conducts much
//! more vertically to the heat sink than laterally to adjacent copies", so
//! an overutilized ALU stays hotter than its idle neighbor.
//!
//! # Examples
//!
//! ```
//! use powerbalance_thermal::{ev6, PackageConfig, ThermalModel};
//!
//! let plan = ev6::baseline();
//! let mut model = ThermalModel::new(&plan, PackageConfig::default());
//! let watts = vec![0.5; plan.blocks().len()];
//! model.step(&watts, 1e-3); // 1 ms of heating
//! let hottest = model.hottest_block();
//! println!("hottest: {} at {:.1} K", plan.blocks()[hottest].name, model.temperature(hottest));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ev6;
mod floorplan;
mod linalg;
mod model;
pub mod multicore;
mod network;
mod package;

pub use floorplan::{Block, Floorplan};
pub use linalg::LuFactors;
pub use model::{BatchThermalSolver, ThermalModel};
pub use network::ThermalNetwork;
pub use package::PackageConfig;

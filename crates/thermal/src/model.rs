//! Transient thermal integration.

use crate::linalg::LuFactors;
use crate::{Floorplan, PackageConfig, ThermalNetwork};

/// A transient thermal simulation over a floorplan.
///
/// Integration uses backward (implicit) Euler:
/// `(C/Δt + G) · T⁺ = (C/Δt) · T + P`, which is unconditionally stable, so
/// one step per sampling window suffices no matter how stiff the network.
/// The factorization of `(C/Δt + G)` is cached per Δt.
///
/// # Examples
///
/// ```
/// use powerbalance_thermal::{ev6, PackageConfig, ThermalModel};
///
/// let plan = ev6::baseline();
/// let mut model = ThermalModel::new(&plan, PackageConfig::default());
/// let mut watts = vec![0.2; plan.blocks().len()];
/// watts[plan.index_of("IntExec0").unwrap()] = 3.0; // one hot ALU
/// for _ in 0..200 {
///     model.step(&watts, 1e-4);
/// }
/// let hot = model.temperature(plan.index_of("IntExec0").unwrap());
/// let cool = model.temperature(plan.index_of("IntExec5").unwrap());
/// assert!(hot > cool + 1.0, "overdriven block must run hotter");
/// ```
#[derive(Debug, Clone)]
pub struct ThermalModel {
    network: ThermalNetwork,
    temps: Vec<f64>,
    block_count: usize,
    cached_dt: f64,
    cached_lu: Option<LuFactors>,
    /// Right-hand-side scratch for [`step`](Self::step); persistent so the
    /// per-window solve allocates nothing.
    rhs: Vec<f64>,
    /// Solution scratch for [`step`](Self::step), swapped with `temps`
    /// after each solve.
    solution: Vec<f64>,
    /// Factors of the bare conductance matrix `G`, shared by
    /// [`settle`](Self::settle) and [`advance`](Self::advance).
    steady_lu: Option<LuFactors>,
    /// Δt the cached propagator was built for.
    advance_dt: f64,
    /// Homogeneous-response propagator `Φ(Δt)` for [`advance`](Self::advance),
    /// row-major `n × n`.
    advance_phi: Option<Vec<f64>>,
    /// Steady-state scratch for [`advance`](Self::advance).
    steady: Vec<f64>,
    /// Deviation-from-steady scratch for [`advance`](Self::advance).
    deviation: Vec<f64>,
}

impl ThermalModel {
    /// Builds a model with every node at the ambient temperature.
    ///
    /// # Panics
    ///
    /// Panics if `package` fails validation.
    #[must_use]
    pub fn new(plan: &Floorplan, package: PackageConfig) -> Self {
        let network = ThermalNetwork::new(plan, &package);
        let temps = vec![package.ambient; network.node_count()];
        ThermalModel {
            block_count: plan.blocks().len(),
            rhs: vec![0.0; network.node_count()],
            solution: vec![0.0; network.node_count()],
            steady: vec![0.0; network.node_count()],
            deviation: vec![0.0; network.node_count()],
            network,
            temps,
            cached_dt: 0.0,
            cached_lu: None,
            steady_lu: None,
            advance_dt: 0.0,
            advance_phi: None,
        }
    }

    /// Number of floorplan blocks (power vector length for [`step`]).
    ///
    /// [`step`]: ThermalModel::step
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.block_count
    }

    /// The underlying network.
    #[must_use]
    pub fn network(&self) -> &ThermalNetwork {
        &self.network
    }

    /// Current temperature (K) of block `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn temperature(&self, index: usize) -> f64 {
        assert!(index < self.block_count, "block index out of range");
        self.temps[index]
    }

    /// Temperatures of all blocks.
    #[must_use]
    pub fn temperatures(&self) -> &[f64] {
        &self.temps[..self.block_count]
    }

    /// Index of the hottest block.
    #[must_use]
    pub fn hottest_block(&self) -> usize {
        self.temperatures()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("temps are finite"))
            .map(|(i, _)| i)
            .expect("at least one block")
    }

    /// Sets every node to `t` kelvin.
    pub fn set_uniform(&mut self, t: f64) {
        self.temps.fill(t);
    }

    /// Temperatures of **all** RC nodes, including the internal package
    /// nodes behind the floorplan blocks.
    ///
    /// [`temperatures`](Self::temperatures) exposes only the block prefix;
    /// snapshot/restore needs the full state vector so a resumed model
    /// continues the exact transient, not just the surface temperatures.
    #[must_use]
    pub fn node_temperatures(&self) -> &[f64] {
        &self.temps
    }

    /// Overwrites the full node-temperature vector (the inverse of
    /// [`node_temperatures`](Self::node_temperatures)).
    ///
    /// The cached LU factorization is left alone: it depends only on the
    /// network and Δt, not on the temperatures.
    ///
    /// # Errors
    ///
    /// Returns an error if `temps` does not have one entry per RC node.
    pub fn restore_node_temperatures(&mut self, temps: &[f64]) -> Result<(), String> {
        if temps.len() != self.temps.len() {
            return Err(format!(
                "thermal state has {} node temperatures, model has {} nodes",
                temps.len(),
                self.temps.len()
            ));
        }
        self.temps.copy_from_slice(temps);
        Ok(())
    }

    /// Advances the model by `dt` seconds with `watts[i]` dissipated in
    /// block `i`.
    ///
    /// # Panics
    ///
    /// Panics if `watts.len() != block_count` or `dt <= 0`.
    pub fn step(&mut self, watts: &[f64], dt: f64) {
        assert_eq!(watts.len(), self.block_count, "one power entry per block");
        assert!(dt > 0.0, "dt must be positive");
        let n = self.network.node_count();
        self.ensure_step_lu(dt);

        let c = self.network.capacitance();
        let ambient_power = self.network.ambient_power();
        for i in 0..n {
            self.rhs[i] = c[i] / dt * self.temps[i] + ambient_power[i];
        }
        for (i, w) in watts.iter().enumerate() {
            self.rhs[i] += w;
        }
        let lu = self.cached_lu.as_ref().expect("factor computed above");
        lu.solve_into(&self.rhs, &mut self.solution);
        std::mem::swap(&mut self.temps, &mut self.solution);
    }

    /// Solves directly for the steady-state temperatures under constant
    /// `watts` and jumps the model there (useful for warm initialization).
    ///
    /// # Panics
    ///
    /// Panics if `watts.len() != block_count`.
    pub fn settle(&mut self, watts: &[f64]) {
        assert_eq!(watts.len(), self.block_count, "one power entry per block");
        self.ensure_steady_lu();
        let mut rhs = self.network.ambient_power().to_vec();
        for (i, w) in watts.iter().enumerate() {
            rhs[i] += w;
        }
        let lu = self.steady_lu.as_ref().expect("factored above");
        self.temps = lu.solve(&rhs);
    }

    /// Advances the model by `dt` seconds analytically, assuming `watts`
    /// is held constant over the whole interval.
    ///
    /// Where [`step`](Self::step) takes a single backward-Euler step of
    /// size `dt` (accurate only while `dt` is small against the network
    /// time constants), `advance` decomposes the response into the
    /// steady-state solution under `watts` plus a decaying deviation:
    /// `T(dt) = T_ss + Φ(dt) · (T(0) − T_ss)`. The propagator `Φ(dt)` is
    /// the backward-Euler sub-step operator `(C/h + G)⁻¹ · diag(C/h)`
    /// raised to the `2ᵏ`-th power by repeated squaring, with the sub-step
    /// `h = dt / 2ᵏ` chosen well below the fastest network time constant —
    /// so one `advance` is numerically equivalent to `2ᵏ` fine LU
    /// sub-steps at the cost of a single matrix-vector product.
    ///
    /// `Φ` is cached per `dt` (alongside the steady-state factors shared
    /// with [`settle`](Self::settle)); once the caches are warm, each call
    /// performs no heap allocation.
    ///
    /// # Panics
    ///
    /// Panics if `watts.len() != block_count` or `dt <= 0`.
    pub fn advance(&mut self, watts: &[f64], dt: f64) {
        assert_eq!(watts.len(), self.block_count, "one power entry per block");
        assert!(dt > 0.0, "dt must be positive");
        let n = self.network.node_count();

        // Steady-state target under the held power: G · T_ss = P.
        self.ensure_steady_lu();
        self.rhs.copy_from_slice(self.network.ambient_power());
        for (i, w) in watts.iter().enumerate() {
            self.rhs[i] += w;
        }
        let lu = self.steady_lu.as_ref().expect("factored above");
        lu.solve_into(&self.rhs, &mut self.steady);

        if self.advance_phi.is_none() || (self.advance_dt - dt).abs() > 1e-18 {
            self.rebuild_propagator(dt);
        }
        let phi = self.advance_phi.as_ref().expect("built above");

        // T⁺ = T_ss + Φ · (T − T_ss).
        for i in 0..n {
            self.deviation[i] = self.temps[i] - self.steady[i];
        }
        for i in 0..n {
            let row = &phi[i * n..(i + 1) * n];
            let mut acc = 0.0;
            for (p, d) in row.iter().zip(&self.deviation) {
                acc += p * d;
            }
            self.solution[i] = self.steady[i] + acc;
        }
        std::mem::swap(&mut self.temps, &mut self.solution);
    }

    /// Ensures the backward-Euler factorization for `dt` is cached, and
    /// returns it. Shared by [`step`](Self::step) and the batched
    /// [`BatchThermalSolver::step_many`], so both paths factor the exact
    /// same matrix with the exact same code.
    fn ensure_step_lu(&mut self, dt: f64) -> &LuFactors {
        let n = self.network.node_count();
        if self.cached_lu.is_none() || (self.cached_dt - dt).abs() > 1e-18 {
            let g = self.network.conductance();
            let c = self.network.capacitance();
            let mut a = g.to_vec();
            for i in 0..n {
                a[i * n + i] += c[i] / dt;
            }
            self.cached_lu = Some(LuFactors::factor(a, n).expect("network matrix is SPD"));
            self.cached_dt = dt;
        }
        self.cached_lu.as_ref().expect("factor computed above")
    }

    fn ensure_steady_lu(&mut self) {
        if self.steady_lu.is_none() {
            let n = self.network.node_count();
            self.steady_lu = Some(
                LuFactors::factor(self.network.conductance().to_vec(), n)
                    .expect("grounded Laplacian is non-singular"),
            );
        }
    }

    /// Rebuilds the cached propagator `Φ(dt) = M^(2ᵏ)` where
    /// `M = (C/h + G)⁻¹ · diag(C/h)` and `h = dt / 2ᵏ`.
    ///
    /// `M` is entrywise nonnegative with row sums ≤ 1 (it is one implicit
    /// Euler step of a grounded RC network), so the same holds for every
    /// power of it: deviations from steady state can only shrink, never
    /// overshoot or oscillate.
    fn rebuild_propagator(&mut self, dt: f64) {
        let n = self.network.node_count();
        let g = self.network.conductance();
        let c = self.network.capacitance();

        // Pick k so the sub-step resolves the fastest node time constant
        // (h · max(Gᵢᵢ/Cᵢ) ≤ 1/64), capped to keep the squaring bounded.
        let rate = (0..n).map(|i| g[i * n + i] / c[i]).fold(0.0f64, f64::max);
        let mut h = dt;
        let mut k = 0u32;
        while k < 40 && h * rate > 1.0 / 64.0 {
            h *= 0.5;
            k += 1;
        }

        let mut a = g.to_vec();
        for i in 0..n {
            a[i * n + i] += c[i] / h;
        }
        let lu = LuFactors::factor(a, n).expect("network matrix is SPD");

        // Column j of M solves (C/h + G) x = (cⱼ/h) eⱼ.
        let mut m = vec![0.0; n * n];
        let mut basis = vec![0.0; n];
        let mut column = vec![0.0; n];
        for j in 0..n {
            basis[j] = c[j] / h;
            lu.solve_into(&basis, &mut column);
            basis[j] = 0.0;
            for i in 0..n {
                m[i * n + j] = column[i];
            }
        }

        // Φ = M^(2ᵏ) by repeated squaring.
        let mut square = vec![0.0; n * n];
        for _ in 0..k {
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0.0;
                    for l in 0..n {
                        acc += m[i * n + l] * m[l * n + j];
                    }
                    square[i * n + j] = acc;
                }
            }
            std::mem::swap(&mut m, &mut square);
        }

        self.advance_phi = Some(m);
        self.advance_dt = dt;
    }
}

/// Structure-of-arrays driver for stepping several [`ThermalModel`]s that
/// share one network (same floorplan and package) under a single LU
/// factorization.
///
/// The batched campaign engine runs K sibling configurations whose thermal
/// networks are identical by construction; factoring `(C/Δt + G)` once and
/// solving all K right-hand sides through
/// [`LuFactors::solve_many_into`] turns K dense solves into one
/// factorization plus a lane-vectorized substitution. Every lane performs
/// the scalar code's exact operation sequence, so each model's
/// temperatures are **bit-identical** to what its own
/// [`ThermalModel::step`]/[`ThermalModel::settle`] would have produced.
///
/// The solver owns the lane-major scratch so steady-state batch loops
/// allocate nothing per window.
#[derive(Debug, Default)]
pub struct BatchThermalSolver {
    /// Lane-major right-hand sides: entry `node * k + lane`.
    rhs: Vec<f64>,
    /// Lane-major solutions, scattered back into each model's `temps`.
    x: Vec<f64>,
}

impl BatchThermalSolver {
    /// A solver with empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        BatchThermalSolver::default()
    }

    /// Checks the lanes share one network shape and returns
    /// `(node_count, k)`. Full matrix equality is a debug assertion: the
    /// caller's eligibility rules (same floorplan + package) guarantee it,
    /// and the O(n²k) compare is too hot for release windows.
    fn check_lanes(lanes: &[(&mut ThermalModel, &[f64])]) -> (usize, usize) {
        let k = lanes.len();
        let n = lanes[0].0.network.node_count();
        for (model, watts) in lanes.iter() {
            assert_eq!(model.network.node_count(), n, "lanes must share the network shape");
            assert_eq!(watts.len(), model.block_count, "one power entry per block");
            debug_assert_eq!(
                model.network.conductance(),
                lanes[0].0.network.conductance(),
                "lanes must share one conductance matrix"
            );
            debug_assert_eq!(
                model.network.capacitance(),
                lanes[0].0.network.capacitance(),
                "lanes must share one capacitance vector"
            );
        }
        (n, k)
    }

    /// Advances every `(model, watts)` lane by `dt` seconds, exactly as
    /// `model.step(watts, dt)` would, sharing lane 0's factorization.
    ///
    /// # Panics
    ///
    /// Panics if `dt <= 0`, a power vector is the wrong length, or the
    /// lanes disagree on the network shape.
    pub fn step_many(&mut self, lanes: &mut [(&mut ThermalModel, &[f64])], dt: f64) {
        assert!(dt > 0.0, "dt must be positive");
        if lanes.is_empty() {
            return;
        }
        if lanes.len() == 1 {
            // One lane is the scalar path; keep its own cache warm.
            let (model, watts) = &mut lanes[0];
            model.step(watts, dt);
            return;
        }
        let (n, k) = Self::check_lanes(lanes);
        self.rhs.resize(n * k, 0.0);
        self.x.resize(n * k, 0.0);
        for (lane, (model, watts)) in lanes.iter().enumerate() {
            let c = model.network.capacitance();
            let ambient_power = model.network.ambient_power();
            for i in 0..n {
                self.rhs[i * k + lane] = c[i] / dt * model.temps[i] + ambient_power[i];
            }
            for (i, w) in watts.iter().enumerate() {
                self.rhs[i * k + lane] += w;
            }
        }
        {
            let lu = lanes[0].0.ensure_step_lu(dt);
            lu.solve_many_into(&self.rhs, &mut self.x, k);
        }
        for (lane, (model, _)) in lanes.iter_mut().enumerate() {
            for i in 0..n {
                model.temps[i] = self.x[i * k + lane];
            }
        }
    }

    /// Jumps every `(model, watts)` lane to its steady state, exactly as
    /// `model.settle(watts)` would, sharing lane 0's bare-`G` factors.
    ///
    /// # Panics
    ///
    /// Panics if a power vector is the wrong length or the lanes disagree
    /// on the network shape.
    pub fn settle_many(&mut self, lanes: &mut [(&mut ThermalModel, &[f64])]) {
        if lanes.is_empty() {
            return;
        }
        if lanes.len() == 1 {
            let (model, watts) = &mut lanes[0];
            model.settle(watts);
            return;
        }
        let (n, k) = Self::check_lanes(lanes);
        self.rhs.resize(n * k, 0.0);
        self.x.resize(n * k, 0.0);
        for (lane, (model, watts)) in lanes.iter().enumerate() {
            for (i, p) in model.network.ambient_power().iter().enumerate() {
                self.rhs[i * k + lane] = *p;
            }
            for (i, w) in watts.iter().enumerate() {
                self.rhs[i * k + lane] += w;
            }
        }
        {
            lanes[0].0.ensure_steady_lu();
            let lu = lanes[0].0.steady_lu.as_ref().expect("factored above");
            lu.solve_many_into(&self.rhs, &mut self.x, k);
        }
        for (lane, (model, _)) in lanes.iter_mut().enumerate() {
            for i in 0..n {
                model.temps[i] = self.x[i * k + lane];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Floorplan;

    fn plan() -> Floorplan {
        Floorplan::from_rows(
            4e-3,
            &[
                (1e-3, vec![("a", 1.0), ("b", 1.0), ("c", 1.0), ("d", 1.0)]),
                (1e-3, vec![("e", 1.0)]),
            ],
        )
    }

    fn model() -> ThermalModel {
        ThermalModel::new(&plan(), PackageConfig::default())
    }

    #[test]
    fn starts_at_ambient() {
        let m = model();
        for &t in m.temperatures() {
            assert!((t - 318.0).abs() < 1e-12);
        }
    }

    #[test]
    fn no_power_stays_at_ambient() {
        let mut m = model();
        let zeros = vec![0.0; 5];
        for _ in 0..100 {
            m.step(&zeros, 1e-3);
        }
        for &t in m.temperatures() {
            assert!((t - 318.0).abs() < 1e-6, "{t}");
        }
    }

    #[test]
    fn heating_is_monotone_toward_steady_state() {
        let mut m = model();
        let watts = vec![1.0; 5];
        let mut prev = m.temperature(0);
        for _ in 0..50 {
            m.step(&watts, 1e-3);
            let t = m.temperature(0);
            assert!(t >= prev - 1e-12, "heating must be monotone");
            prev = t;
        }
        assert!(prev > 318.5, "blocks should have warmed");

        let mut settled = model();
        settled.settle(&watts);
        // Long transient approaches the direct steady solution.
        for _ in 0..100_000 {
            m.step(&watts, 1e-2);
        }
        assert!(
            (m.temperature(0) - settled.temperature(0)).abs() < 0.01,
            "transient must converge to steady state: {} vs {}",
            m.temperature(0),
            settled.temperature(0)
        );
    }

    #[test]
    fn hot_block_is_hotter_than_idle_neighbours() {
        let mut m = model();
        let mut watts = vec![0.1; 5];
        watts[1] = 2.0; // block b overdriven
        for _ in 0..500 {
            m.step(&watts, 1e-4);
        }
        let hot = m.temperature(1);
        assert_eq!(m.hottest_block(), 1);
        for i in [0usize, 2, 3] {
            assert!(hot > m.temperature(i) + 0.5, "asymmetry must persist laterally");
        }
    }

    #[test]
    fn cooling_follows_power_removal() {
        let mut m = model();
        let watts = vec![2.0; 5];
        for _ in 0..200 {
            m.step(&watts, 1e-3);
        }
        let hot = m.temperature(0);
        let zeros = vec![0.0; 5];
        for _ in 0..200 {
            m.step(&zeros, 1e-3);
        }
        assert!(m.temperature(0) < hot - 0.5, "block must cool after power drops");
    }

    #[test]
    fn big_step_is_stable() {
        // Backward Euler must not oscillate or blow up with huge dt.
        let mut m = model();
        let watts = vec![5.0; 5];
        m.step(&watts, 1e3);
        for &t in m.temperatures() {
            assert!(t.is_finite() && t > 318.0 && t < 1000.0, "stable result, got {t}");
        }
    }

    #[test]
    fn settle_matches_power_balance() {
        // In steady state, total heat leaving via convection equals total
        // injected power.
        let mut m = model();
        let watts = vec![1.5, 0.5, 0.0, 0.25, 2.0];
        m.settle(&watts);
        let total: f64 = watts.iter().sum();
        let sink_t = m.temps[m.network.sink_index()];
        let out = (sink_t - 318.0) / 0.8;
        assert!((out - total).abs() < 1e-6, "energy balance: {out} vs {total}");
    }

    #[test]
    fn restore_node_temperatures_round_trips_the_transient() {
        let mut m = model();
        let watts = vec![1.0, 0.0, 2.0, 0.5, 0.0];
        for _ in 0..50 {
            m.step(&watts, 1e-3);
        }
        let saved = m.node_temperatures().to_vec();

        // Keep stepping the original; a fresh model restored to the saved
        // state and stepped the same way must match bit for bit.
        let mut restored = model();
        restored.restore_node_temperatures(&saved).expect("same floorplan");
        for _ in 0..50 {
            m.step(&watts, 1e-3);
            restored.step(&watts, 1e-3);
        }
        assert_eq!(m.node_temperatures(), restored.node_temperatures());

        // Wrong node count is rejected.
        assert!(model().restore_node_temperatures(&saved[..3]).is_err());
    }

    #[test]
    fn changing_dt_mid_run_refactorizes() {
        // Model A steps [dt1, dt1, dt2]. Model B is restored to A's state
        // just before the dt2 step (so B's very first factorization uses
        // dt2). If the Δt change failed to invalidate A's cached LU, A
        // would integrate the dt2 step with the dt1 matrix and diverge
        // from B.
        let watts = vec![1.0, 2.0, 0.0, 0.5, 1.5];
        let (dt1, dt2) = (1e-3, 2.5e-4);

        let mut a = model();
        a.step(&watts, dt1);
        a.step(&watts, dt1);
        let pre_dt2 = a.node_temperatures().to_vec();
        a.step(&watts, dt2);

        let mut b = model();
        b.restore_node_temperatures(&pre_dt2).expect("same floorplan");
        b.step(&watts, dt2);

        assert_eq!(a.node_temperatures(), b.node_temperatures());

        // And switching back to dt1 refactorizes again.
        a.step(&watts, dt1);
        b.step(&watts, dt1);
        assert_eq!(a.node_temperatures(), b.node_temperatures());
    }

    #[test]
    fn advance_from_steady_state_is_a_fixed_point() {
        // settle() and advance() share the same steady-state factors, so a
        // model already at the steady state under `watts` must not move at
        // all — bit for bit, not just within tolerance.
        let mut m = model();
        let watts = vec![1.5, 0.5, 0.0, 0.25, 2.0];
        m.settle(&watts);
        let settled = m.node_temperatures().to_vec();
        m.advance(&watts, 1e-2);
        assert_eq!(m.node_temperatures(), settled.as_slice());
    }

    #[test]
    fn advance_tracks_fine_lu_substeps() {
        // One analytic advance over dt must agree with many fine backward-
        // Euler steps covering the same interval.
        let watts = vec![2.0, 0.0, 1.0, 0.5, 3.0];
        let mut fast = model();
        let mut fine = model();
        // Start from a non-trivial transient so the deviation term matters.
        for m in [&mut fast, &mut fine] {
            m.step(&[0.5, 3.0, 0.0, 0.0, 1.0], 1e-3);
        }
        let dt = 5e-3;
        let substeps = 4096;
        fast.advance(&watts, dt);
        for _ in 0..substeps {
            fine.step(&watts, dt / substeps as f64);
        }
        for (a, b) in fast.node_temperatures().iter().zip(fine.node_temperatures()) {
            assert!((a - b).abs() < 1e-3, "advance vs substeps: {a} vs {b}");
        }
    }

    #[test]
    fn advance_with_zero_power_decays_monotonically_to_ambient() {
        let mut m = model();
        let watts = vec![2.0; 5];
        for _ in 0..100 {
            m.step(&watts, 1e-3);
        }
        let zeros = vec![0.0; 5];
        let start: f64 =
            m.node_temperatures().iter().fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
        let mut prev = start;
        for _ in 0..200 {
            m.advance(&zeros, 1e-3);
            let dev: f64 =
                m.node_temperatures().iter().fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
            assert!(dev <= prev + 1e-12, "deviation must shrink: {dev} vs {prev}");
            prev = dev;
        }
        assert!(prev < start / 2.0, "decay must make real progress: {prev} of {start}");
        // And one macro-interval past every time constant finishes the job.
        m.advance(&zeros, 1e3);
        let residual: f64 =
            m.node_temperatures().iter().fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
        assert!(residual < 1e-6, "long decay must land on ambient, residual {residual}");
    }

    #[test]
    fn advance_refactorizes_on_dt_change() {
        // Mirror of `changing_dt_mid_run_refactorizes` for the analytic
        // path: a fresh model restored just before the dt2 advance must
        // match the continuing model exactly, or the Φ cache went stale.
        let watts = vec![1.0, 2.0, 0.0, 0.5, 1.5];
        let (dt1, dt2) = (1e-3, 2.5e-4);

        let mut a = model();
        a.advance(&watts, dt1);
        a.advance(&watts, dt1);
        let pre_dt2 = a.node_temperatures().to_vec();
        a.advance(&watts, dt2);

        let mut b = model();
        b.restore_node_temperatures(&pre_dt2).expect("same floorplan");
        b.advance(&watts, dt2);
        assert_eq!(a.node_temperatures(), b.node_temperatures());

        a.advance(&watts, dt1);
        b.advance(&watts, dt1);
        assert_eq!(a.node_temperatures(), b.node_temperatures());
    }

    #[test]
    fn advance_is_stable_for_huge_dt() {
        // A macro-interval far beyond every time constant lands on the
        // steady state instead of blowing up or oscillating.
        let mut m = model();
        let watts = vec![1.5, 0.5, 0.0, 0.25, 2.0];
        m.advance(&watts, 1e3);
        let mut settled = model();
        settled.settle(&watts);
        for (a, b) in m.node_temperatures().iter().zip(settled.node_temperatures()) {
            assert!((a - b).abs() < 1e-6, "huge dt lands on steady state: {a} vs {b}");
        }
    }

    #[test]
    fn time_compression_speeds_transients_without_moving_steady_state() {
        let plan = plan();
        let slow_pkg = PackageConfig { time_compression: 1.0, ..PackageConfig::default() };
        let fast_pkg = PackageConfig { time_compression: 100.0, ..PackageConfig::default() };
        let mut slow = ThermalModel::new(&plan, slow_pkg);
        let mut fast = ThermalModel::new(&plan, fast_pkg);
        let watts = vec![1.0; 5];
        // Same wall-clock budget: the compressed model is much closer to
        // steady state.
        for _ in 0..20 {
            slow.step(&watts, 1e-3);
            fast.step(&watts, 1e-3);
        }
        assert!(fast.temperature(0) > slow.temperature(0) + 0.1);
        // Steady states agree.
        let mut s2 = ThermalModel::new(&plan, slow_pkg);
        let mut f2 = ThermalModel::new(&plan, fast_pkg);
        s2.settle(&watts);
        f2.settle(&watts);
        assert!((s2.temperature(0) - f2.temperature(0)).abs() < 1e-9);
    }
}

//! Package and material parameters for the thermal model.

use serde::{Deserialize, Serialize};

/// Thermal package configuration.
///
/// Defaults follow HotSpot-class values for a 90 nm part with the paper's
/// package numbers (Table 2: 6.9 mm heat-sink base, 0.8 K/W convection
/// resistance) and a `time_compression` factor that shrinks every thermal
/// time constant so that millisecond-scale transients play out over the
/// few-million-cycle runs this reproduction uses (see `DESIGN.md` §2).
///
/// # Examples
///
/// ```
/// use powerbalance_thermal::PackageConfig;
///
/// let pkg = PackageConfig::default();
/// assert!((pkg.convection_resistance - 0.8).abs() < 1e-12);
/// assert!(pkg.time_compression >= 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackageConfig {
    /// Die (silicon) thickness in meters.
    pub die_thickness: f64,
    /// Silicon thermal conductivity, W/(m·K).
    pub k_silicon: f64,
    /// Silicon volumetric heat capacity, J/(m³·K).
    pub c_silicon: f64,
    /// Effective vertical resistance from a block through the thermal
    /// interface into the spreader, per unit area: K·m²/W.
    pub r_vertical_per_area: f64,
    /// Correction factor (< 1) applied to the naive lateral conductance
    /// `k·t·edge/dist` to account for lateral spreading/constriction
    /// resistance, as HotSpot's lateral-R formulation does. Smaller values
    /// mean more vertical dominance.
    pub lateral_scale: f64,
    /// Heat-spreader lumped capacitance, J/K.
    pub c_spreader: f64,
    /// Spreader-to-sink conductance, W/K.
    pub g_spreader_sink: f64,
    /// Heat-sink lumped capacitance, J/K (scaled for the paper's 6.9 mm
    /// base thickness).
    pub c_sink: f64,
    /// Sink-to-ambient convection resistance, K/W (paper Table 2: 0.8).
    pub convection_resistance: f64,
    /// Ambient temperature, K.
    pub ambient: f64,
    /// Thermal time-compression factor: all capacitances are divided by
    /// this, shrinking every time constant proportionally so that heating
    /// and cooling transients fit in short simulations. `1.0` disables
    /// compression.
    pub time_compression: f64,
}

impl Default for PackageConfig {
    fn default() -> Self {
        PackageConfig {
            die_thickness: 0.5e-3,
            k_silicon: 100.0,
            c_silicon: 1.75e6,
            r_vertical_per_area: 2.5e-5,
            lateral_scale: 0.32,
            c_spreader: 3.0,
            g_spreader_sink: 15.0,
            c_sink: 60.0,
            convection_resistance: 0.8,
            ambient: 318.0,
            time_compression: 400.0,
        }
    }
}

impl PackageConfig {
    /// Validates physical sanity.
    ///
    /// # Errors
    ///
    /// Returns a description of the first non-positive parameter.
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("die_thickness", self.die_thickness),
            ("k_silicon", self.k_silicon),
            ("c_silicon", self.c_silicon),
            ("r_vertical_per_area", self.r_vertical_per_area),
            ("lateral_scale", self.lateral_scale),
            ("c_spreader", self.c_spreader),
            ("g_spreader_sink", self.g_spreader_sink),
            ("c_sink", self.c_sink),
            ("convection_resistance", self.convection_resistance),
            ("ambient", self.ambient),
            ("time_compression", self.time_compression),
        ];
        for (name, v) in checks {
            if v <= 0.0 || v.is_nan() {
                return Err(format!("{name} must be positive, got {v}"));
            }
        }
        if self.time_compression < 1.0 {
            return Err("time_compression must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        PackageConfig::default().validate().expect("default package is sane");
    }

    #[test]
    fn rejects_nonpositive() {
        let p = PackageConfig { k_silicon: 0.0, ..PackageConfig::default() };
        assert!(p.validate().is_err());
        let p = PackageConfig { time_compression: 0.5, ..PackageConfig::default() };
        assert!(p.validate().is_err());
    }
}

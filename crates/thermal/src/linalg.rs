//! Small dense linear algebra: LU factorization with partial pivoting.
//!
//! The thermal networks here have a few dozen nodes, so a simple dense
//! factorization is both fast enough (microseconds) and dependency-free.

/// LU factors of a square matrix, with a row-permutation vector.
///
/// # Examples
///
/// ```
/// use powerbalance_thermal::LuFactors;
///
/// // Solve [[2, 1], [1, 3]] x = [3, 5] -> x = [0.8, 1.4]
/// let lu = LuFactors::factor(vec![2.0, 1.0, 1.0, 3.0], 2).expect("non-singular");
/// let x = lu.solve(&[3.0, 5.0]);
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LuFactors {
    n: usize,
    /// Combined L (below diagonal, unit diagonal implied) and U storage,
    /// row-major.
    lu: Vec<f64>,
    /// Row permutation applied during pivoting.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Factors an `n` x `n` row-major matrix.
    ///
    /// Returns `None` if the matrix is singular (a pivot underflows).
    #[must_use]
    pub fn factor(mut a: Vec<f64>, n: usize) -> Option<Self> {
        assert_eq!(a.len(), n * n, "matrix must be n*n");
        let mut perm: Vec<usize> = (0..n).collect();
        for col in 0..n {
            // Partial pivot: largest magnitude in this column at/below the
            // diagonal.
            let mut pivot_row = col;
            let mut pivot_val = a[col * n + col].abs();
            for row in col + 1..n {
                let v = a[row * n + col].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = row;
                }
            }
            if pivot_val < 1e-300 {
                return None;
            }
            if pivot_row != col {
                for k in 0..n {
                    a.swap(col * n + k, pivot_row * n + k);
                }
                perm.swap(col, pivot_row);
            }
            let inv_pivot = 1.0 / a[col * n + col];
            for row in col + 1..n {
                let factor = a[row * n + col] * inv_pivot;
                a[row * n + col] = factor;
                for k in col + 1..n {
                    a[row * n + k] -= factor * a[col * n + k];
                }
            }
        }
        Some(LuFactors { n, lu: a, perm })
    }

    /// Matrix dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` for `x`.
    ///
    /// Allocates a fresh solution vector; hot paths that solve every
    /// sampling window should use [`solve_into`](Self::solve_into) with a
    /// persistent buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n`.
    #[must_use]
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = vec![0.0; self.n];
        self.solve_into(b, &mut x);
        x
    }

    /// Solves `A x = b` in place, writing the solution to `x`.
    ///
    /// `b` and `x` must not alias (enforced by the borrow checker). The
    /// arithmetic — permutation gather, forward substitution, back
    /// substitution, in exactly that operation order — is shared with
    /// [`solve`](Self::solve), so the two produce bit-identical results.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != n` or `x.len() != n`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        assert_eq!(b.len(), self.n, "rhs length mismatch");
        assert_eq!(x.len(), self.n, "solution length mismatch");
        let n = self.n;
        // Apply permutation, then forward-substitute L, then back-substitute U.
        for (xi, &p) in x.iter_mut().zip(&self.perm) {
            *xi = b[p];
        }
        for row in 1..n {
            let mut sum = x[row];
            for (col, xc) in x.iter().enumerate().take(row) {
                sum -= self.lu[row * n + col] * xc;
            }
            x[row] = sum;
        }
        for row in (0..n).rev() {
            let mut sum = x[row];
            for (col, xc) in x.iter().enumerate().skip(row + 1) {
                sum -= self.lu[row * n + col] * xc;
            }
            x[row] = sum / self.lu[row * n + row];
        }
    }

    /// Solves `A xᵢ = bᵢ` for `k` right-hand sides at once, reusing this
    /// factorization for every lane.
    ///
    /// `b` and `x` are lane-major: entry `i` of lane `lane` lives at
    /// `[i * k + lane]`, so the `k` values of one row are contiguous and
    /// the inner loops vectorize across lanes. Each lane performs the
    /// exact floating-point operation sequence of
    /// [`solve_into`](Self::solve_into) — permutation gather, forward
    /// substitution in column order, back substitution ending in the
    /// diagonal divide — so lane `lane` of `x` is **bit-identical** to
    /// `solve_into(b_lane, x_lane)` on the de-interleaved vectors. The
    /// batched campaign engine depends on that equivalence; it is pinned
    /// by property tests.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or either slice is not `n * k` long.
    pub fn solve_many_into(&self, b: &[f64], x: &mut [f64], k: usize) {
        assert!(k > 0, "at least one right-hand side");
        assert_eq!(b.len(), self.n * k, "rhs length mismatch");
        assert_eq!(x.len(), self.n * k, "solution length mismatch");
        let n = self.n;
        for (i, &p) in self.perm.iter().enumerate() {
            x[i * k..i * k + k].copy_from_slice(&b[p * k..p * k + k]);
        }
        for row in 1..n {
            // Split so the already-finalized rows (the subtrahends) and the
            // row being accumulated can be borrowed simultaneously.
            let (done, rest) = x.split_at_mut(row * k);
            let xr = &mut rest[..k];
            for col in 0..row {
                let l = self.lu[row * n + col];
                let xc = &done[col * k..col * k + k];
                for lane in 0..k {
                    xr[lane] -= l * xc[lane];
                }
            }
        }
        for row in (0..n).rev() {
            let (head, tail) = x.split_at_mut((row + 1) * k);
            let xr = &mut head[row * k..];
            for col in row + 1..n {
                let u = self.lu[row * n + col];
                let off = (col - row - 1) * k;
                let xc = &tail[off..off + k];
                for lane in 0..k {
                    xr[lane] -= u * xc[lane];
                }
            }
            let diag = self.lu[row * n + row];
            for xv in xr.iter_mut() {
                *xv /= diag;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(a: &[f64], x: &[f64], n: usize) -> Vec<f64> {
        (0..n).map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum()).collect()
    }

    #[test]
    fn identity_solve() {
        let lu = LuFactors::factor(vec![1.0, 0.0, 0.0, 1.0], 2).expect("identity");
        assert_eq!(lu.solve(&[3.0, 4.0]), vec![3.0, 4.0]);
    }

    #[test]
    fn random_system_round_trips() {
        // Deterministic pseudo-random SPD-ish matrix.
        let n = 12;
        let mut seed = 42u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = rnd();
            }
            a[i * n + i] += n as f64; // diagonal dominance
        }
        let x_true: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let b = mat_vec(&a, &x_true, n);
        let lu = LuFactors::factor(a, n).expect("well-conditioned");
        let x = lu.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9, "{xi} vs {ti}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [[0, 1], [1, 0]] requires a row swap.
        let lu = LuFactors::factor(vec![0.0, 1.0, 1.0, 0.0], 2).expect("permutation matrix");
        let x = lu.solve(&[5.0, 7.0]);
        assert!((x[0] - 7.0).abs() < 1e-12);
        assert!((x[1] - 5.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_detected() {
        assert!(LuFactors::factor(vec![1.0, 2.0, 2.0, 4.0], 2).is_none());
    }

    #[test]
    fn one_by_one_systems() {
        // Degenerate dimension: a 1x1 matrix is just a scalar divide.
        let lu = LuFactors::factor(vec![4.0], 1).expect("nonzero scalar");
        assert_eq!(lu.dim(), 1);
        assert!((lu.solve(&[10.0])[0] - 2.5).abs() < 1e-15);
        // Negative scalars are fine too (pivoting is by magnitude).
        let lu = LuFactors::factor(vec![-0.5], 1).expect("nonzero scalar");
        assert!((lu.solve(&[3.0])[0] + 6.0).abs() < 1e-12);
        // A zero (or denormal-underflow) scalar is singular.
        assert!(LuFactors::factor(vec![0.0], 1).is_none());
        assert!(LuFactors::factor(vec![1e-310], 1).is_none());
    }

    #[test]
    fn permutation_matrices_solve_exactly() {
        // Property: for any cyclic-shift permutation matrix P (every pivot
        // starts on a zero diagonal, forcing a swap at each column),
        // solving P x = b must return x[i] = b[shifted index] exactly —
        // no rounding, because only swaps and divides by 1.0 occur.
        for n in 1..=8usize {
            for shift in 0..n {
                let mut a = vec![0.0; n * n];
                for i in 0..n {
                    a[i * n + (i + shift) % n] = 1.0;
                }
                let lu = LuFactors::factor(a, n)
                    .unwrap_or_else(|| panic!("permutation n={n} shift={shift} is nonsingular"));
                let b: Vec<f64> = (0..n).map(|i| (i as f64 + 1.0) * 1.25).collect();
                let x = lu.solve(&b);
                for i in 0..n {
                    assert_eq!(x[(i + shift) % n], b[i], "n={n} shift={shift} row={i}");
                }
            }
        }
    }

    #[test]
    fn rank_deficient_matrices_detected_across_sizes() {
        // Property: a matrix with an all-zero column is singular whatever
        // the size or remaining content. (A zero column is preserved
        // exactly by row swaps and row eliminations, so the pivot search
        // is guaranteed to find nothing — unlike e.g. a duplicated row,
        // where rounding can leave a tiny but nonzero pivot.)
        let mut seed = 7u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        for n in 2..=9usize {
            for zero_col in [0, n / 2, n - 1] {
                let mut a = vec![0.0; n * n];
                for i in 0..n {
                    for j in 0..n {
                        a[i * n + j] = rnd();
                    }
                    a[i * n + i] += n as f64;
                }
                for i in 0..n {
                    a[i * n + zero_col] = 0.0;
                }
                assert!(LuFactors::factor(a, n).is_none(), "zero column {zero_col}, n={n}");
            }
        }
    }

    #[test]
    fn solve_is_linear_in_the_rhs() {
        // Property: solve(alpha*b1 + b2) == alpha*solve(b1) + solve(b2)
        // (up to rounding) — a quick sanity check that the forward/back
        // substitution honours the permutation consistently.
        let n = 6;
        let mut seed = 99u64;
        let mut rnd = || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            (seed >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = rnd();
            }
            a[i * n + i] += n as f64;
        }
        let lu = LuFactors::factor(a, n).expect("diagonally dominant");
        let b1: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let b2: Vec<f64> = (0..n).map(|_| rnd()).collect();
        let alpha = 3.5;
        let combined: Vec<f64> = b1.iter().zip(&b2).map(|(x, y)| alpha * x + y).collect();
        let lhs = lu.solve(&combined);
        let x1 = lu.solve(&b1);
        let x2 = lu.solve(&b2);
        for i in 0..n {
            assert!((lhs[i] - (alpha * x1[i] + x2[i])).abs() < 1e-10, "row {i}");
        }
    }
}

//! Multi-core die instantiation: tiles N translated copies of a per-core
//! floorplan side by side on one die so that [`crate::ThermalNetwork`]
//! picks up lateral RC coupling *between* adjacent cores exactly the way
//! it couples blocks within one core.
//!
//! The construction is purely geometric. Copy `c` is the per-core plan
//! shifted by `c * die_width` in x, with every block renamed
//! `C{c}.<name>`. Because each per-core row spans the full die width, the
//! right-edge blocks of copy `c` abut the left-edge blocks of copy
//! `c + 1`, and [`crate::Floorplan::adjacency`] therefore emits
//! cross-core shared edges — no network-construction code changes at
//! all. Heat flowing from a hot core into a cool neighbor is then just
//! another lateral conductance in the same symmetric Laplacian.
//!
//! The single-core case is special-cased to return an untouched clone of
//! the input plan (same block names, same coordinates), so every matrix
//! built from `replicate(plan, 1)` is bit-identical to one built from
//! `plan` — the N=1 equivalence contract the simulator layers rely on.

use crate::floorplan::{Block, Floorplan};

/// Extent of `plan` along x: `max(block.x + block.w)`. This is the tile
/// pitch used by [`replicate`]; for the EV6 plans it equals
/// [`crate::ev6::DIE_WIDTH`].
#[must_use]
pub fn plan_width(plan: &Floorplan) -> f64 {
    plan.blocks().iter().map(|b| b.x + b.w).fold(0.0, f64::max)
}

/// The die-plan name of block `base` on core `core`.
///
/// Matches the naming [`replicate`] uses: the bare base name when
/// `cores == 1` (the single-core plan is untouched), `C{core}.<base>`
/// otherwise.
#[must_use]
pub fn core_block_name(base: &str, core: usize, cores: usize) -> String {
    if cores == 1 {
        base.to_string()
    } else {
        format!("C{core}.{base}")
    }
}

/// Tiles `cores` copies of `plan` along x on one shared die.
///
/// Block order is core-major: all of core 0's blocks (in `plan` order),
/// then core 1's, and so on — so the die-plan slice
/// `blocks[c * B .. (c + 1) * B]` is exactly core `c`'s copy, and
/// per-core power/temperature vectors are contiguous slices of the
/// die-wide ones.
///
/// `replicate(plan, 1)` returns a bit-identical clone of `plan`.
///
/// # Panics
///
/// Panics if `cores == 0`.
#[must_use]
pub fn replicate(plan: &Floorplan, cores: usize) -> Floorplan {
    assert!(cores >= 1, "a die needs at least one core");
    if cores == 1 {
        return plan.clone();
    }
    let pitch = plan_width(plan);
    let mut blocks = Vec::with_capacity(plan.blocks().len() * cores);
    for core in 0..cores {
        let dx = pitch * core as f64;
        for b in plan.blocks() {
            blocks.push(Block {
                name: core_block_name(&b.name, core, cores),
                x: b.x + dx,
                y: b.y,
                w: b.w,
                h: b.h,
            });
        }
    }
    Floorplan::new(blocks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ev6, PackageConfig, ThermalModel, ThermalNetwork};

    #[test]
    fn single_core_replica_is_bit_identical() {
        let plan = ev6::issue_constrained();
        let replica = replicate(&plan, 1);
        assert_eq!(plan, replica);
        let a = ThermalNetwork::new(&plan, &PackageConfig::default());
        let b = ThermalNetwork::new(&replica, &PackageConfig::default());
        assert_eq!(a.node_count(), b.node_count());
        for i in 0..a.node_count() * a.node_count() {
            assert_eq!(a.conductance()[i].to_bits(), b.conductance()[i].to_bits());
        }
        for i in 0..a.node_count() {
            assert_eq!(a.capacitance()[i].to_bits(), b.capacitance()[i].to_bits());
        }
    }

    #[test]
    fn replica_blocks_are_core_major_contiguous() {
        let plan = ev6::baseline();
        let b = plan.blocks().len();
        let die = replicate(&plan, 4);
        assert_eq!(die.blocks().len(), 4 * b);
        for core in 0..4 {
            for (i, base) in plan.blocks().iter().enumerate() {
                let block = &die.blocks()[core * b + i];
                assert_eq!(block.name, format!("C{core}.{}", base.name));
                assert!((block.x - (base.x + ev6::DIE_WIDTH * core as f64)).abs() < 1e-12);
                assert_eq!(block.y.to_bits(), base.y.to_bits());
                assert_eq!(block.w.to_bits(), base.w.to_bits());
                assert_eq!(block.h.to_bits(), base.h.to_bits());
            }
        }
    }

    #[test]
    fn adjacent_cores_are_laterally_coupled() {
        let plan = ev6::baseline();
        let b = plan.blocks().len();
        let die = replicate(&plan, 2);
        let cross: Vec<_> =
            die.adjacency().into_iter().filter(|&(i, j, _)| (i < b) != (j < b)).collect();
        // Each of the four rows abuts its neighbor's same row across the
        // core boundary, so at least four cross-core edges must exist.
        assert!(cross.len() >= 4, "expected cross-core edges, got {cross:?}");
        for (i, j, edge) in &cross {
            assert!(*edge > 0.0, "degenerate shared edge between {i} and {j}");
        }
        // And the network turns them into symmetric conductances.
        let net = ThermalNetwork::new(&die, &PackageConfig::default());
        let n = net.node_count();
        for &(i, j, _) in &cross {
            let g_ij = net.conductance()[i * n + j];
            let g_ji = net.conductance()[j * n + i];
            assert!(g_ij < 0.0, "coupling {i}->{j} missing");
            assert_eq!(g_ij.to_bits(), g_ji.to_bits(), "asymmetric Laplacian");
        }
    }

    #[test]
    fn non_adjacent_cores_are_not_directly_coupled() {
        let plan = ev6::baseline();
        let b = plan.blocks().len();
        let die = replicate(&plan, 3);
        let net = ThermalNetwork::new(&die, &PackageConfig::default());
        let n = net.node_count();
        for i in 0..b {
            for j in 2 * b..3 * b {
                assert_eq!(
                    net.conductance()[i * n + j],
                    0.0,
                    "core 0 block {i} directly coupled to core 2 block {j}"
                );
            }
        }
    }

    /// Regression test for the mid-run `dt` change on an instantiated
    /// multi-core die: the LU refactorization path must operate on the
    /// N-core node count, not the single-core block count. A fresh model
    /// stepped straight at the new `dt` is the oracle.
    #[test]
    fn dt_change_refactorizes_at_multicore_dimension() {
        let die = replicate(&ev6::alu_constrained(), 3);
        let nb = die.blocks().len();
        let mut watts = vec![0.4; nb];
        watts[0] = 9.0; // hot corner on core 0
        watts[nb - 1] = 6.0; // and another on core 2

        let mut model = ThermalModel::new(&die, PackageConfig::default());
        model.step(&watts, 1e-4);
        model.step(&watts, 1e-4);
        let mid = model.node_temperatures().to_vec();
        model.step(&watts, 2.5e-4); // dt change forces refactorization

        let mut oracle = ThermalModel::new(&die, PackageConfig::default());
        oracle.restore_node_temperatures(&mid).expect("same shape");
        oracle.step(&watts, 2.5e-4);

        for (a, b) in model.node_temperatures().iter().zip(oracle.node_temperatures()) {
            assert_eq!(a.to_bits(), b.to_bits(), "refactorized step diverged from fresh LU");
        }
    }

    /// Same shape for the exponential-propagator path used by the fast
    /// engine: `advance` at a new `dt` on a replicated die must rebuild
    /// the propagator at the die dimension.
    #[test]
    fn advance_dt_change_rebuilds_propagator_at_multicore_dimension() {
        let die = replicate(&ev6::baseline(), 2);
        let nb = die.blocks().len();
        let watts = vec![0.8; nb];

        let mut model = ThermalModel::new(&die, PackageConfig::default());
        model.advance(&watts, 5e-4);
        let mid = model.node_temperatures().to_vec();
        model.advance(&watts, 1.25e-4);

        let mut oracle = ThermalModel::new(&die, PackageConfig::default());
        oracle.restore_node_temperatures(&mid).expect("same shape");
        oracle.advance(&watts, 1.25e-4);

        for (a, b) in model.node_temperatures().iter().zip(oracle.node_temperatures()) {
            assert_eq!(a.to_bits(), b.to_bits(), "propagator rebuild diverged");
        }
    }
}

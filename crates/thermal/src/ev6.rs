//! EV6-like floorplans at 90 nm, including the paper's three
//! thermally-constrained variants (Figure 5).
//!
//! Following the paper's §3.2 methodology, the aggregate resources are
//! split into individually-modeled copies: the integer issue queue into
//! halves `IntQ0`/`IntQ1`, the FP queue into `FPQ0`/`FPQ1`, the integer
//! register file into copies `IntReg0`/`IntReg1`, the integer execution
//! area into `IntExec0..5`, and the FP add area into `FPAdd0..3`.
//!
//! The three constrained variants shrink the area of one resource (raising
//! its power density so it becomes the thermal bottleneck at peak
//! utilization) and give the freed area to a nearby resource, keeping total
//! die area — and total power — constant, exactly as the paper does.

use crate::{Block, Floorplan};
use serde::{Deserialize, Serialize};

/// Die width of the EV6-like plan (meters). Also the tile pitch a
/// multi-core die uses when replicating this plan ([`crate::multicore`]).
pub const DIE_WIDTH: f64 = 8.0e-3;

/// Which resource the floorplan makes the thermal bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FloorplanKind {
    /// Unmodified EV6-like plan.
    Baseline,
    /// Issue queues shrunk: the queues are the hotspot (paper §4.1).
    IssueConstrained,
    /// ALUs shrunk: the execution units are the hotspot (paper §4.2).
    AluConstrained,
    /// Integer register-file copies shrunk: the register file is the
    /// hotspot (paper §4.3).
    RegfileConstrained,
}

/// Area shrink factors applied to the constrained resource. The row
/// normalization in [`Floorplan::from_rows`] redistributes freed width to
/// the other blocks in the row, so the factor needed to reach a given
/// *post-normalization* area ratio depends on how much total width the
/// resource holds; these values land every variant near a 0.5x area ratio.
const INT_IQ_SHRINK: f64 = 0.85;
const FP_IQ_SHRINK: f64 = 0.44;
const ALU_SHRINK: f64 = 0.13;
const RF_SHRINK: f64 = 0.42;

/// Names of every block in construction order.
pub const BLOCK_NAMES: [&str; 26] = [
    "Icache", "Dcache", "Bpred", "ITB", "DTB", "LdStQ", "IntMap", "IntQ0", "IntQ1", "IntReg0",
    "IntReg1", "IntExec0", "IntExec1", "IntExec2", "IntExec3", "IntExec4", "IntExec5", "FPMap",
    "FPQ0", "FPQ1", "FPReg", "FPMul", "FPAdd0", "FPAdd1", "FPAdd2", "FPAdd3",
];

/// Builds the floorplan for `kind`.
///
/// # Examples
///
/// ```
/// use powerbalance_thermal::ev6::{build, FloorplanKind};
///
/// let base = build(FloorplanKind::Baseline);
/// let iq = build(FloorplanKind::IssueConstrained);
/// let a = base.blocks()[base.index_of("IntQ0").unwrap()].area();
/// let b = iq.blocks()[iq.index_of("IntQ0").unwrap()].area();
/// assert!(b < a, "constrained variant shrinks the issue queue");
/// ```
#[must_use]
pub fn build(kind: FloorplanKind) -> Floorplan {
    let (int_iq, fp_iq) = match kind {
        FloorplanKind::IssueConstrained => (INT_IQ_SHRINK, FP_IQ_SHRINK),
        _ => (1.0, 1.0),
    };
    let alu = match kind {
        FloorplanKind::AluConstrained => ALU_SHRINK,
        _ => 1.0,
    };
    let rf = match kind {
        FloorplanKind::RegfileConstrained => RF_SHRINK,
        _ => 1.0,
    };

    let mut blocks = Vec::new();
    let mut y = 0.0;

    // Row 1: caches.
    let simple_row = |blocks: &mut Vec<Block>, y: f64, h: f64, entries: &[(&str, f64)]| {
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        let mut x = 0.0;
        for (name, rel) in entries {
            let w = DIE_WIDTH * rel / total;
            blocks.push(Block { name: (*name).to_string(), x, y, w, h });
            x += w;
        }
    };
    simple_row(&mut blocks, y, 2.2e-3, &[("Icache", 1.0), ("Dcache", 1.0)]);
    y += 2.2e-3;
    simple_row(
        &mut blocks,
        y,
        1.2e-3,
        &[("Bpred", 1.6), ("ITB", 1.2), ("DTB", 1.2), ("IntMap", 2.0)],
    );
    y += 1.2e-3;

    // Row 3: the integer back end. The issue-queue halves are *stacked*
    // (IntQ0 below IntQ1), matching the paper's Figure 5: stacked halves
    // share only a short edge, so lateral coupling between them stays well
    // below each half's vertical path — the asymmetric-heating premise.
    {
        let h = 1.6e-3;
        let entries: [(&str, f64); 10] = [
            ("LdStQ", 0.9),
            ("IntReg0", 0.72 * rf),
            ("IntReg1", 0.72 * rf),
            ("IntQ", 1.24 * int_iq), // column holding both halves
            ("IntExec0", 0.75 * alu),
            ("IntExec1", 0.75 * alu),
            ("IntExec2", 0.75 * alu),
            ("IntExec3", 0.75 * alu),
            ("IntExec4", 0.75 * alu),
            ("IntExec5", 0.75 * alu),
        ];
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        let mut x = 0.0;
        for (name, rel) in entries {
            let w = DIE_WIDTH * rel / total;
            if name == "IntQ" {
                blocks.push(Block { name: "IntQ0".into(), x, y, w, h: h / 2.0 });
                blocks.push(Block { name: "IntQ1".into(), x, y: y + h / 2.0, w, h: h / 2.0 });
            } else {
                blocks.push(Block { name: name.to_string(), x, y, w, h });
            }
            x += w;
        }
        y += h;
    }

    // Row 4: the FP back end, with stacked FP queue halves.
    {
        let h = 1.4e-3;
        let entries: [(&str, f64); 8] = [
            ("FPMap", 0.9),
            ("FPReg", 1.0),
            ("FPQ", 1.0 * fp_iq), // column holding both halves
            ("FPMul", 1.1),
            ("FPAdd0", 0.72 * alu),
            ("FPAdd1", 0.72 * alu),
            ("FPAdd2", 0.72 * alu),
            ("FPAdd3", 0.72 * alu),
        ];
        let total: f64 = entries.iter().map(|(_, w)| *w).sum();
        let mut x = 0.0;
        for (name, rel) in entries {
            let w = DIE_WIDTH * rel / total;
            if name == "FPQ" {
                blocks.push(Block { name: "FPQ0".into(), x, y, w, h: h / 2.0 });
                blocks.push(Block { name: "FPQ1".into(), x, y: y + h / 2.0, w, h: h / 2.0 });
            } else {
                blocks.push(Block { name: name.to_string(), x, y, w, h });
            }
            x += w;
        }
    }

    Floorplan::new(blocks)
}

/// The unmodified EV6-like floorplan.
#[must_use]
pub fn baseline() -> Floorplan {
    build(FloorplanKind::Baseline)
}

/// Floorplan with the issue queues as thermal bottleneck.
#[must_use]
pub fn issue_constrained() -> Floorplan {
    build(FloorplanKind::IssueConstrained)
}

/// Floorplan with the ALUs as thermal bottleneck.
#[must_use]
pub fn alu_constrained() -> Floorplan {
    build(FloorplanKind::AluConstrained)
}

/// Floorplan with the integer register file as thermal bottleneck.
#[must_use]
pub fn regfile_constrained() -> Floorplan {
    build(FloorplanKind::RegfileConstrained)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_expected_blocks_present() {
        let plan = baseline();
        for name in BLOCK_NAMES {
            assert!(plan.index_of(name).is_some(), "missing block {name}");
        }
        assert_eq!(plan.blocks().len(), BLOCK_NAMES.len());
    }

    #[test]
    fn queue_halves_are_equal_and_adjacent() {
        let plan = baseline();
        let q0 = &plan.blocks()[plan.index_of("IntQ0").expect("IntQ0")];
        let q1 = &plan.blocks()[plan.index_of("IntQ1").expect("IntQ1")];
        assert!((q0.area() - q1.area()).abs() < 1e-12);
        assert!(q0.shared_edge(q1) > 0.0, "halves must touch");
    }

    #[test]
    fn alus_are_mutually_adjacent_in_a_strip() {
        let plan = baseline();
        for i in 0..5 {
            let a = &plan.blocks()[plan.index_of(&format!("IntExec{i}")).expect("alu")];
            let b = &plan.blocks()[plan.index_of(&format!("IntExec{}", i + 1)).expect("alu")];
            assert!(a.shared_edge(b) > 0.0, "IntExec{i} and IntExec{} must touch", i + 1);
        }
    }

    #[test]
    fn variants_shrink_their_target_and_conserve_die_area() {
        let base = baseline();
        for (kind, probe, ratio) in [
            (FloorplanKind::IssueConstrained, "IntQ0", 0.95),
            (FloorplanKind::AluConstrained, "IntExec0", 0.6),
            (FloorplanKind::RegfileConstrained, "IntReg0", 0.6),
        ] {
            let variant = build(kind);
            let a = base.blocks()[base.index_of(probe).expect("probe")].area();
            let b = variant.blocks()[variant.index_of(probe).expect("probe")].area();
            assert!(b < ratio * a, "{probe} should shrink in {kind:?}");
            assert!(
                (variant.total_area() - base.total_area()).abs() < 1e-12,
                "total area must be conserved for {kind:?}"
            );
        }
    }

    #[test]
    fn regfile_variant_does_not_move_the_issue_queue() {
        let base = baseline();
        let rf = build(FloorplanKind::RegfileConstrained);
        let a = base.blocks()[base.index_of("FPQ0").expect("FPQ0")].area();
        let b = rf.blocks()[rf.index_of("FPQ0").expect("FPQ0")].area();
        assert!((a - b).abs() < 1e-15);
    }
}

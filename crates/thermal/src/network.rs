//! RC network construction from a floorplan and package.

use crate::{Floorplan, PackageConfig};

/// The lumped thermal RC network.
///
/// Node layout: one node per floorplan block (indices match
/// [`Floorplan::blocks`]), then the spreader node, then the sink node.
/// Ambient is an ideal temperature source, folded into the sink's
/// conductance and power terms rather than modeled as a node.
///
/// Conductances:
/// * lateral, block ↔ block: `lateral_scale · k_si · t_die · shared_edge /
///   center_distance` (the scale models spreading resistance);
/// * vertical, block → spreader: `area / r_vertical_per_area`;
/// * spreader → sink and sink → ambient from the package config.
///
/// Capacitances: silicon blocks `c_si · area · t_die`; spreader and sink
/// lumped values. All capacitances are divided by the package's
/// `time_compression` so heating/cooling transients play out across short
/// simulations with unchanged steady states.
#[derive(Debug, Clone)]
pub struct ThermalNetwork {
    n: usize,
    /// Conductance (Laplacian) matrix G, row-major `n×n`, including the
    /// ambient leak on the sink's diagonal.
    g: Vec<f64>,
    /// Per-node capacitance (J/K, already time-compressed).
    c: Vec<f64>,
    /// Constant power injected by the ambient source (only the sink node
    /// has a nonzero entry: `ambient / r_convection`).
    ambient_power: Vec<f64>,
    ambient: f64,
    spreader_index: usize,
    sink_index: usize,
}

impl ThermalNetwork {
    /// Builds the RC network for `plan` under `package`.
    ///
    /// # Panics
    ///
    /// Panics if the package parameters are invalid.
    #[must_use]
    pub fn new(plan: &Floorplan, package: &PackageConfig) -> Self {
        package.validate().expect("invalid package parameters");
        let blocks = plan.blocks();
        let nb = blocks.len();
        let n = nb + 2;
        let spreader = nb;
        let sink = nb + 1;
        let mut g = vec![0.0; n * n];
        let mut c = vec![0.0; n];

        let add_conductance = |g: &mut Vec<f64>, i: usize, j: usize, value: f64| {
            g[i * n + i] += value;
            g[j * n + j] += value;
            g[i * n + j] -= value;
            g[j * n + i] -= value;
        };

        // Lateral conduction between adjacent blocks.
        for (i, j, edge) in plan.adjacency() {
            let (xi, yi) = blocks[i].center();
            let (xj, yj) = blocks[j].center();
            let dist = ((xi - xj).powi(2) + (yi - yj).powi(2)).sqrt();
            let value =
                package.lateral_scale * package.k_silicon * package.die_thickness * edge / dist;
            add_conductance(&mut g, i, j, value);
        }

        // Vertical conduction into the spreader; block capacitances.
        for (i, b) in blocks.iter().enumerate() {
            let gv = b.area() / package.r_vertical_per_area;
            add_conductance(&mut g, i, spreader, gv);
            c[i] = package.c_silicon * b.area() * package.die_thickness / package.time_compression;
        }

        // Spreader -> sink -> ambient.
        add_conductance(&mut g, spreader, sink, package.g_spreader_sink);
        let g_amb = 1.0 / package.convection_resistance;
        g[sink * n + sink] += g_amb;
        c[spreader] = package.c_spreader / package.time_compression;
        c[sink] = package.c_sink / package.time_compression;

        let mut ambient_power = vec![0.0; n];
        ambient_power[sink] = package.ambient * g_amb;

        ThermalNetwork {
            n,
            g,
            c,
            ambient_power,
            ambient: package.ambient,
            spreader_index: spreader,
            sink_index: sink,
        }
    }

    /// Total node count (blocks + spreader + sink).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Index of the spreader node.
    #[must_use]
    pub fn spreader_index(&self) -> usize {
        self.spreader_index
    }

    /// Index of the sink node.
    #[must_use]
    pub fn sink_index(&self) -> usize {
        self.sink_index
    }

    /// Ambient temperature (K).
    #[must_use]
    pub fn ambient(&self) -> f64 {
        self.ambient
    }

    /// The conductance matrix (row-major `n×n`).
    #[must_use]
    pub fn conductance(&self) -> &[f64] {
        &self.g
    }

    /// Per-node capacitances (J/K, time-compressed).
    #[must_use]
    pub fn capacitance(&self) -> &[f64] {
        &self.c
    }

    /// The constant ambient power injection vector.
    #[must_use]
    pub fn ambient_power(&self) -> &[f64] {
        &self.ambient_power
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Floorplan;

    fn tiny_plan() -> Floorplan {
        Floorplan::from_rows(2e-3, &[(1e-3, vec![("a", 1.0), ("b", 1.0)])])
    }

    #[test]
    fn matrix_is_symmetric_laplacian_plus_ambient_leak() {
        let net = ThermalNetwork::new(&tiny_plan(), &PackageConfig::default());
        let n = net.node_count();
        let g = net.conductance();
        for i in 0..n {
            for j in 0..n {
                assert!((g[i * n + j] - g[j * n + i]).abs() < 1e-15, "asymmetric at {i},{j}");
            }
        }
        // Row sums are zero except the sink row (ambient leak).
        for i in 0..n {
            let sum: f64 = (0..n).map(|j| g[i * n + j]).sum();
            if i == net.sink_index() {
                assert!(sum > 0.0, "sink row leaks to ambient");
            } else {
                assert!(sum.abs() < 1e-9, "row {i} should sum to zero: {sum}");
            }
        }
    }

    #[test]
    fn vertical_dominates_lateral() {
        // The premise of the paper's spatial techniques: a block sheds far
        // more heat vertically than sideways.
        let plan = tiny_plan();
        let pkg = PackageConfig::default();
        let net = ThermalNetwork::new(&plan, &pkg);
        let g = net.conductance();
        let lateral = -g[1]; // a <-> b
        let vertical = -g[net.spreader_index()]; // a <-> spreader
        assert!(lateral > 0.0 && vertical > 0.0);
        assert!(vertical > 2.0 * lateral, "vertical {vertical} should dominate lateral {lateral}");
    }

    #[test]
    fn compression_scales_capacitance_only() {
        let plan = tiny_plan();
        let mut pkg = PackageConfig { time_compression: 1.0, ..PackageConfig::default() };
        let base = ThermalNetwork::new(&plan, &pkg);
        pkg.time_compression = 100.0;
        let fast = ThermalNetwork::new(&plan, &pkg);
        for (cb, cf) in base.capacitance().iter().zip(fast.capacitance()) {
            assert!((cb / cf - 100.0).abs() < 1e-9);
        }
        assert_eq!(base.conductance(), fast.conductance());
    }
}

//! Property-based tests on the thermal model's physical invariants.

use powerbalance_thermal::{
    ev6, BatchThermalSolver, Floorplan, LuFactors, PackageConfig, ThermalModel,
};
use proptest::prelude::*;

fn arbitrary_powers(blocks: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..3.0, blocks..=blocks)
}

fn plan() -> Floorplan {
    ev6::baseline()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Temperatures never drop below ambient under non-negative power, for
    /// any power vector and any step size.
    #[test]
    fn never_below_ambient(watts in arbitrary_powers(26), dt_exp in -6.0f64..0.0) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        let dt = 10f64.powf(dt_exp);
        for _ in 0..20 {
            model.step(&watts, dt);
        }
        for &t in model.temperatures() {
            prop_assert!(t >= 318.0 - 1e-9, "temperature {t} fell below ambient");
            prop_assert!(t.is_finite());
        }
    }

    /// Backward Euler is unconditionally stable: gigantic steps land on the
    /// steady state rather than oscillating or diverging.
    #[test]
    fn huge_steps_land_near_steady_state(watts in arbitrary_powers(26)) {
        let plan = plan();
        let mut transient = ThermalModel::new(&plan, PackageConfig::default());
        let mut steady = ThermalModel::new(&plan, PackageConfig::default());
        steady.settle(&watts);
        for _ in 0..5 {
            transient.step(&watts, 1e6);
        }
        for i in 0..plan.blocks().len() {
            let diff = (transient.temperature(i) - steady.temperature(i)).abs();
            prop_assert!(diff < 0.05, "block {i} off steady state by {diff}");
        }
    }

    /// Superposition-ish monotonicity: adding power to one block never
    /// cools any block at steady state.
    #[test]
    fn extra_power_never_cools(watts in arbitrary_powers(26), hot in 0usize..26, extra in 0.1f64..2.0) {
        let plan = plan();
        let mut base = ThermalModel::new(&plan, PackageConfig::default());
        base.settle(&watts);
        let mut boosted_watts = watts.clone();
        boosted_watts[hot] += extra;
        let mut boosted = ThermalModel::new(&plan, PackageConfig::default());
        boosted.settle(&boosted_watts);
        for i in 0..plan.blocks().len() {
            prop_assert!(
                boosted.temperature(i) >= base.temperature(i) - 1e-9,
                "block {i} cooled when block {hot} gained power"
            );
        }
        prop_assert!(boosted.temperature(hot) > base.temperature(hot));
    }

    /// Energy conservation at steady state: heat leaving through the
    /// convection resistance equals total injected power.
    #[test]
    fn steady_state_energy_balance(watts in arbitrary_powers(26)) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        model.settle(&watts);
        let total: f64 = watts.iter().sum();
        // Reconstruct sink temperature from the hottest path: use the
        // network directly.
        let net = model.network();
        let sink_index = net.sink_index();
        // settle() leaves node temps internal; recompute via temperatures()
        // is block-only, so redo the balance from conductance * temps at
        // the sink row using a fresh settle of the same powers.
        let mut clone = ThermalModel::new(&plan, PackageConfig::default());
        clone.settle(&watts);
        // The sink's net outflow is (T_sink - ambient)/R_conv; with R_conv
        // = 0.8 and ambient 318. T_sink is not exposed; instead verify the
        // weaker, still-physical property that the area-weighted mean block
        // temperature rises with total power.
        let mean: f64 = clone.temperatures().iter().sum::<f64>() / 26.0;
        prop_assert!(mean >= 318.0 - 1e-9);
        prop_assert!(mean <= 318.0 + total * 2.0 + 40.0, "mean {mean} vs power {total}");
        let _ = sink_index;
    }

    /// The analytic advance agrees with brute-force backward-Euler
    /// sub-stepping over the same interval, for any power vector and any
    /// macro-interval in the fast path's operating range.
    #[test]
    fn advance_agrees_with_lu_substeps(
        warm in arbitrary_powers(26),
        watts in arbitrary_powers(26),
        dt_exp in -4.0f64..-2.0,
    ) {
        let plan = plan();
        let mut fast = ThermalModel::new(&plan, PackageConfig::default());
        let mut fine = ThermalModel::new(&plan, PackageConfig::default());
        // Start both from the same non-trivial transient.
        for m in [&mut fast, &mut fine] {
            for _ in 0..5 {
                m.step(&warm, 1e-3);
            }
        }
        let dt = 10f64.powf(dt_exp);
        let substeps = 512;
        fast.advance(&watts, dt);
        for _ in 0..substeps {
            fine.step(&watts, dt / substeps as f64);
        }
        for (i, (a, b)) in
            fast.node_temperatures().iter().zip(fine.node_temperatures()).enumerate()
        {
            prop_assert!((a - b).abs() < 0.02, "node {i}: advance {a} vs substeps {b}");
        }
    }

    /// With zero power the analytic advance decays monotonically toward
    /// ambient: the worst-case deviation never grows, no node undershoots,
    /// and a macro-interval past every time constant lands on ambient.
    #[test]
    fn advance_zero_power_decays_monotonically(
        warm in arbitrary_powers(26),
        dt_exp in -4.0f64..-1.0,
    ) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        for _ in 0..10 {
            model.step(&warm, 1e-3);
        }
        let zeros = vec![0.0; 26];
        let dt = 10f64.powf(dt_exp);
        let mut prev: f64 = model
            .node_temperatures()
            .iter()
            .fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
        for _ in 0..50 {
            model.advance(&zeros, dt);
            let dev: f64 = model
                .node_temperatures()
                .iter()
                .fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
            prop_assert!(dev <= prev + 1e-12, "deviation grew: {dev} vs {prev}");
            for &t in model.node_temperatures() {
                prop_assert!(t >= 318.0 - 1e-9, "node undershot ambient: {t}");
            }
            prev = dev;
        }
        model.advance(&zeros, 1e4);
        let residual: f64 = model
            .node_temperatures()
            .iter()
            .fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
        prop_assert!(residual < 1e-6, "decay must land on ambient, residual {residual}");
    }

    /// Energy balance across an analytic advance: the stored thermal
    /// energy gained in one interval never exceeds the energy injected
    /// (heat only leaves through convection while every node sits at or
    /// above ambient), and never goes negative.
    #[test]
    fn advance_energy_balance_residual_bounded(
        watts in arbitrary_powers(26),
        dt_exp in -4.0f64..-1.0,
    ) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        let dt = 10f64.powf(dt_exp);
        let total: f64 = watts.iter().sum();
        let capacitance = model.network().capacitance().to_vec();
        let stored = |m: &ThermalModel| -> f64 {
            m.node_temperatures()
                .iter()
                .zip(&capacitance)
                .map(|(t, c)| c * (t - 318.0))
                .sum()
        };
        let mut prev = stored(&model);
        prop_assert!(prev.abs() < 1e-9, "starts at ambient with zero stored energy");
        for _ in 0..25 {
            model.advance(&watts, dt);
            let now = stored(&model);
            let gained = now - prev;
            prop_assert!(
                gained <= total * dt + 1e-9,
                "interval created energy: gained {gained} J, injected {} J",
                total * dt
            );
            prop_assert!(now >= -1e-9, "stored energy went negative: {now}");
            prev = now;
        }
    }

    /// `solve_many_into` is bitwise identical to K independent
    /// `solve_into` calls, for any well-conditioned matrix, any lane
    /// count, and any right-hand sides — the contract the batched
    /// campaign engine's thermal solve rests on.
    #[test]
    fn solve_many_matches_k_independent_solves_bitwise(
        n in 1usize..14,
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut rnd = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 31) as f64 - 0.5
        };
        let mut a = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = rnd();
            }
            a[i * n + i] += n as f64; // diagonal dominance
        }
        let lu = LuFactors::factor(a, n).expect("diagonally dominant");
        // Lane-major rhs, plus the de-interleaved per-lane copies.
        let b_many: Vec<f64> = (0..n * k).map(|_| rnd() * 10.0).collect();
        let mut x_many = vec![0.0; n * k];
        lu.solve_many_into(&b_many, &mut x_many, k);
        let mut b_one = vec![0.0; n];
        let mut x_one = vec![0.0; n];
        for lane in 0..k {
            for i in 0..n {
                b_one[i] = b_many[i * k + lane];
            }
            lu.solve_into(&b_one, &mut x_one);
            for i in 0..n {
                prop_assert_eq!(
                    x_one[i].to_bits(),
                    x_many[i * k + lane].to_bits(),
                    "lane {} row {} diverged", lane, i
                );
            }
        }
    }

    /// Batched backward-Euler stepping and steady-state settling produce
    /// bit-identical temperatures to each model stepping alone, from any
    /// starting transient and any per-lane power vectors.
    #[test]
    fn batched_step_and_settle_match_scalar_bitwise(
        warm in arbitrary_powers(26),
        lane_watts in prop::collection::vec(arbitrary_powers(26), 2..6),
        dt_exp in -6.0f64..-2.0,
    ) {
        let plan = plan();
        let dt = 10f64.powf(dt_exp);
        let k = lane_watts.len();
        // Scalar references: each model steps alone.
        let mut scalar: Vec<ThermalModel> = (0..k)
            .map(|_| ThermalModel::new(&plan, PackageConfig::default()))
            .collect();
        let mut batched: Vec<ThermalModel> = (0..k)
            .map(|_| ThermalModel::new(&plan, PackageConfig::default()))
            .collect();
        for m in scalar.iter_mut().chain(batched.iter_mut()) {
            for _ in 0..3 {
                m.step(&warm, 1e-3);
            }
        }
        for (m, w) in scalar.iter_mut().zip(&lane_watts) {
            for _ in 0..4 {
                m.step(w, dt);
            }
            m.settle(w);
        }
        let mut solver = BatchThermalSolver::new();
        for _ in 0..4 {
            let mut lanes: Vec<(&mut ThermalModel, &[f64])> = batched
                .iter_mut()
                .zip(&lane_watts)
                .map(|(m, w)| (m, w.as_slice()))
                .collect();
            solver.step_many(&mut lanes, dt);
        }
        {
            let mut lanes: Vec<(&mut ThermalModel, &[f64])> = batched
                .iter_mut()
                .zip(&lane_watts)
                .map(|(m, w)| (m, w.as_slice()))
                .collect();
            solver.settle_many(&mut lanes);
        }
        for (lane, (s, b)) in scalar.iter().zip(&batched).enumerate() {
            for (i, (ts, tb)) in
                s.node_temperatures().iter().zip(b.node_temperatures()).enumerate()
            {
                prop_assert_eq!(ts.to_bits(), tb.to_bits(), "lane {} node {}", lane, i);
            }
        }
    }

    /// Time compression does not move steady states for any power vector.
    #[test]
    fn compression_preserves_steady_state(watts in arbitrary_powers(26), k in 1.0f64..1000.0) {
        let plan = plan();
        let a_pkg = PackageConfig { time_compression: 1.0, ..PackageConfig::default() };
        let b_pkg = PackageConfig { time_compression: k, ..PackageConfig::default() };
        let mut a = ThermalModel::new(&plan, a_pkg);
        let mut b = ThermalModel::new(&plan, b_pkg);
        a.settle(&watts);
        b.settle(&watts);
        for i in 0..plan.blocks().len() {
            prop_assert!((a.temperature(i) - b.temperature(i)).abs() < 1e-8);
        }
    }
}

//! Property-based tests on the thermal model's physical invariants.

use powerbalance_thermal::{ev6, Floorplan, PackageConfig, ThermalModel};
use proptest::prelude::*;

fn arbitrary_powers(blocks: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..3.0, blocks..=blocks)
}

fn plan() -> Floorplan {
    ev6::baseline()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Temperatures never drop below ambient under non-negative power, for
    /// any power vector and any step size.
    #[test]
    fn never_below_ambient(watts in arbitrary_powers(26), dt_exp in -6.0f64..0.0) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        let dt = 10f64.powf(dt_exp);
        for _ in 0..20 {
            model.step(&watts, dt);
        }
        for &t in model.temperatures() {
            prop_assert!(t >= 318.0 - 1e-9, "temperature {t} fell below ambient");
            prop_assert!(t.is_finite());
        }
    }

    /// Backward Euler is unconditionally stable: gigantic steps land on the
    /// steady state rather than oscillating or diverging.
    #[test]
    fn huge_steps_land_near_steady_state(watts in arbitrary_powers(26)) {
        let plan = plan();
        let mut transient = ThermalModel::new(&plan, PackageConfig::default());
        let mut steady = ThermalModel::new(&plan, PackageConfig::default());
        steady.settle(&watts);
        for _ in 0..5 {
            transient.step(&watts, 1e6);
        }
        for i in 0..plan.blocks().len() {
            let diff = (transient.temperature(i) - steady.temperature(i)).abs();
            prop_assert!(diff < 0.05, "block {i} off steady state by {diff}");
        }
    }

    /// Superposition-ish monotonicity: adding power to one block never
    /// cools any block at steady state.
    #[test]
    fn extra_power_never_cools(watts in arbitrary_powers(26), hot in 0usize..26, extra in 0.1f64..2.0) {
        let plan = plan();
        let mut base = ThermalModel::new(&plan, PackageConfig::default());
        base.settle(&watts);
        let mut boosted_watts = watts.clone();
        boosted_watts[hot] += extra;
        let mut boosted = ThermalModel::new(&plan, PackageConfig::default());
        boosted.settle(&boosted_watts);
        for i in 0..plan.blocks().len() {
            prop_assert!(
                boosted.temperature(i) >= base.temperature(i) - 1e-9,
                "block {i} cooled when block {hot} gained power"
            );
        }
        prop_assert!(boosted.temperature(hot) > base.temperature(hot));
    }

    /// Energy conservation at steady state: heat leaving through the
    /// convection resistance equals total injected power.
    #[test]
    fn steady_state_energy_balance(watts in arbitrary_powers(26)) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        model.settle(&watts);
        let total: f64 = watts.iter().sum();
        // Reconstruct sink temperature from the hottest path: use the
        // network directly.
        let net = model.network();
        let sink_index = net.sink_index();
        // settle() leaves node temps internal; recompute via temperatures()
        // is block-only, so redo the balance from conductance * temps at
        // the sink row using a fresh settle of the same powers.
        let mut clone = ThermalModel::new(&plan, PackageConfig::default());
        clone.settle(&watts);
        // The sink's net outflow is (T_sink - ambient)/R_conv; with R_conv
        // = 0.8 and ambient 318. T_sink is not exposed; instead verify the
        // weaker, still-physical property that the area-weighted mean block
        // temperature rises with total power.
        let mean: f64 = clone.temperatures().iter().sum::<f64>() / 26.0;
        prop_assert!(mean >= 318.0 - 1e-9);
        prop_assert!(mean <= 318.0 + total * 2.0 + 40.0, "mean {mean} vs power {total}");
        let _ = sink_index;
    }

    /// The analytic advance agrees with brute-force backward-Euler
    /// sub-stepping over the same interval, for any power vector and any
    /// macro-interval in the fast path's operating range.
    #[test]
    fn advance_agrees_with_lu_substeps(
        warm in arbitrary_powers(26),
        watts in arbitrary_powers(26),
        dt_exp in -4.0f64..-2.0,
    ) {
        let plan = plan();
        let mut fast = ThermalModel::new(&plan, PackageConfig::default());
        let mut fine = ThermalModel::new(&plan, PackageConfig::default());
        // Start both from the same non-trivial transient.
        for m in [&mut fast, &mut fine] {
            for _ in 0..5 {
                m.step(&warm, 1e-3);
            }
        }
        let dt = 10f64.powf(dt_exp);
        let substeps = 512;
        fast.advance(&watts, dt);
        for _ in 0..substeps {
            fine.step(&watts, dt / substeps as f64);
        }
        for (i, (a, b)) in
            fast.node_temperatures().iter().zip(fine.node_temperatures()).enumerate()
        {
            prop_assert!((a - b).abs() < 0.02, "node {i}: advance {a} vs substeps {b}");
        }
    }

    /// With zero power the analytic advance decays monotonically toward
    /// ambient: the worst-case deviation never grows, no node undershoots,
    /// and a macro-interval past every time constant lands on ambient.
    #[test]
    fn advance_zero_power_decays_monotonically(
        warm in arbitrary_powers(26),
        dt_exp in -4.0f64..-1.0,
    ) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        for _ in 0..10 {
            model.step(&warm, 1e-3);
        }
        let zeros = vec![0.0; 26];
        let dt = 10f64.powf(dt_exp);
        let mut prev: f64 = model
            .node_temperatures()
            .iter()
            .fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
        for _ in 0..50 {
            model.advance(&zeros, dt);
            let dev: f64 = model
                .node_temperatures()
                .iter()
                .fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
            prop_assert!(dev <= prev + 1e-12, "deviation grew: {dev} vs {prev}");
            for &t in model.node_temperatures() {
                prop_assert!(t >= 318.0 - 1e-9, "node undershot ambient: {t}");
            }
            prev = dev;
        }
        model.advance(&zeros, 1e4);
        let residual: f64 = model
            .node_temperatures()
            .iter()
            .fold(0.0, |acc, t| acc.max((t - 318.0).abs()));
        prop_assert!(residual < 1e-6, "decay must land on ambient, residual {residual}");
    }

    /// Energy balance across an analytic advance: the stored thermal
    /// energy gained in one interval never exceeds the energy injected
    /// (heat only leaves through convection while every node sits at or
    /// above ambient), and never goes negative.
    #[test]
    fn advance_energy_balance_residual_bounded(
        watts in arbitrary_powers(26),
        dt_exp in -4.0f64..-1.0,
    ) {
        let plan = plan();
        let mut model = ThermalModel::new(&plan, PackageConfig::default());
        let dt = 10f64.powf(dt_exp);
        let total: f64 = watts.iter().sum();
        let capacitance = model.network().capacitance().to_vec();
        let stored = |m: &ThermalModel| -> f64 {
            m.node_temperatures()
                .iter()
                .zip(&capacitance)
                .map(|(t, c)| c * (t - 318.0))
                .sum()
        };
        let mut prev = stored(&model);
        prop_assert!(prev.abs() < 1e-9, "starts at ambient with zero stored energy");
        for _ in 0..25 {
            model.advance(&watts, dt);
            let now = stored(&model);
            let gained = now - prev;
            prop_assert!(
                gained <= total * dt + 1e-9,
                "interval created energy: gained {gained} J, injected {} J",
                total * dt
            );
            prop_assert!(now >= -1e-9, "stored energy went negative: {now}");
            prev = now;
        }
    }

    /// Time compression does not move steady states for any power vector.
    #[test]
    fn compression_preserves_steady_state(watts in arbitrary_powers(26), k in 1.0f64..1000.0) {
        let plan = plan();
        let a_pkg = PackageConfig { time_compression: 1.0, ..PackageConfig::default() };
        let b_pkg = PackageConfig { time_compression: k, ..PackageConfig::default() };
        let mut a = ThermalModel::new(&plan, a_pkg);
        let mut b = ThermalModel::new(&plan, b_pkg);
        a.settle(&watts);
        b.settle(&watts);
        for i in 0..plan.blocks().len() {
            prop_assert!((a.temperature(i) - b.temperature(i)).abs() < 1e-8);
        }
    }
}

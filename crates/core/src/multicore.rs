//! The multi-core simulator: N cores, one die, one shared thermal solve.
//!
//! [`MultiCoreSimulator`] steps N independent [`Core`]s against a single
//! RC network built from N translated copies of the per-core floorplan
//! ([`powerbalance_thermal::multicore::replicate`]), so adjacent cores
//! couple laterally and a hot neighbor genuinely heats a cool one. A
//! pluggable [`Scheduler`] places workload segments (a typed
//! [`TaskSet`]) onto free cores; moving a job between cores charges a
//! fetch-stall migration penalty.
//!
//! # The N = 1 contract
//!
//! A 1-core `MultiCoreSimulator` running one unbounded segment is
//! **bit-identical** to the scalar [`Simulator`] on the same trace: the
//! replicated floorplan is a clone, the per-lane sampling phases reuse
//! the scalar helpers' exact ordering, and the unbounded
//! [`BudgetedTrace`] wrapper is a pure passthrough. The release-mode
//! equivalence suite (`tests/multicore_equivalence.rs`) enforces this
//! across floorplans, fidelities, and policy families. (The one
//! documented exception: a [`SchedulerKind::Threshold`] policy may defer
//! work and insert idle-cooling windows the scalar engine has no notion
//! of.)
//!
//! # Sampling windows
//!
//! Each window, every busy lane runs up to `sample_interval` cycles
//! (consuming any pending migration stall first), then one die-wide
//! sense/react step runs: per-lane activity → per-lane power into the
//! lane's slice of the die power vector (idle lanes contribute leakage
//! only) → one thermal solve → per-lane mitigation consult against the
//! lane's temperature slice. Under [`Fidelity::Fast`] the macro-window
//! clock is die-global: all lanes are detailed together and skipped
//! together, so the shared thermal solve always sees one coherent die.

use crate::config::Fidelity;
use crate::simulator::{FastState, RunControl, StopCause};
use crate::snapshot::{decode_bits, encode_bits, FastEngineState};
use crate::{BlockTemperature, Error, RunResult, SimConfig};
use powerbalance_isa::{MicroOp, TraceSource};
use powerbalance_mitigation::{ManagerState, Sensors, ThermalManager};
use powerbalance_power::PowerModel;
use powerbalance_sched::{CoreView, Scheduler, SegmentLen, Task, DEFAULT_MIGRATION_STALL};
use powerbalance_thermal::{ev6, multicore, Floorplan, ThermalModel};
use powerbalance_uarch::{ActivitySample, Core, CoreState, CoreStats};
use serde::{Deserialize, Serialize};

/// Lifecycle of one segment in a [`TaskSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SegState {
    /// Waiting in FIFO order for the scheduler to place it.
    Pending,
    /// Running on the given core.
    Running(usize),
    /// Retired: its trace drained (or its op budget was spent) and the
    /// core's pipeline emptied.
    Done,
}

/// One segment plus its dispatch state and remaining op budget.
#[derive(Debug)]
struct Segment<T> {
    job: u64,
    trace: T,
    /// Micro-ops this segment may still fetch; `u64::MAX` means
    /// unbounded (and is deliberately never decremented, which keeps the
    /// wrapper a bit-exact passthrough for the N = 1 contract).
    ops_left: u64,
    state: SegState,
}

/// The typed work queue a [`MultiCoreSimulator`] dispatches from.
///
/// Built from [`Task`]s (job id + segment length + trace payload) and
/// dispatched strictly in FIFO order: a deferred head blocks the queue.
/// The set owns the traces; pass the *same* `TaskSet` to every `run`
/// call of one campaign — segment positions and op budgets persist
/// across calls.
#[derive(Debug)]
pub struct TaskSet<T> {
    segments: Vec<Segment<T>>,
}

impl<T: TraceSource> TaskSet<T> {
    /// Builds a set from segments in dispatch (FIFO) order.
    pub fn new(tasks: impl IntoIterator<Item = Task<T>>) -> Self {
        let segments = tasks
            .into_iter()
            .map(|t| Segment {
                job: t.job,
                trace: t.payload,
                ops_left: match t.len {
                    SegmentLen::Unbounded => u64::MAX,
                    SegmentLen::Ops(n) => n,
                },
                state: SegState::Pending,
            })
            .collect();
        TaskSet { segments }
    }

    /// One unbounded segment per trace, each its own job — the shape
    /// campaign runs use (one benchmark instance per core).
    pub fn one_per_job(traces: impl IntoIterator<Item = T>) -> Self {
        TaskSet::new(traces.into_iter().enumerate().map(|(j, t)| Task::unbounded(j as u64, t)))
    }

    /// Total segments in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// `true` when the set holds no segments at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Segments retired so far.
    #[must_use]
    pub fn done(&self) -> usize {
        self.segments.iter().filter(|s| s.state == SegState::Done).count()
    }

    /// `true` once every segment has retired.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.segments.iter().all(|s| s.state == SegState::Done)
    }

    /// Index of the next segment to dispatch (FIFO: first pending).
    fn first_pending(&self) -> Option<usize> {
        self.segments.iter().position(|s| s.state == SegState::Pending)
    }

    fn payload_mut(&mut self, idx: usize) -> (&mut T, &mut u64) {
        let seg = &mut self.segments[idx];
        (&mut seg.trace, &mut seg.ops_left)
    }
}

/// Budget-limiting trace adapter: reports end-of-trace once the
/// segment's op budget is spent, so the core drains and retires the
/// segment through its ordinary `is_done` path. With an unbounded
/// budget (`u64::MAX`) every call forwards untouched — a bit-exact
/// passthrough.
struct BudgetedTrace<'a, T> {
    inner: &'a mut T,
    left: &'a mut u64,
}

impl<T: TraceSource> TraceSource for BudgetedTrace<'_, T> {
    fn next_op(&mut self) -> Option<MicroOp> {
        if *self.left == 0 {
            return None;
        }
        let op = self.inner.next_op();
        if op.is_some() && *self.left != u64::MAX {
            *self.left -= 1;
        }
        op
    }

    fn skip_ops(&mut self, n: u64) {
        let take = if *self.left == u64::MAX {
            n
        } else {
            let take = n.min(*self.left);
            *self.left -= take;
            take
        };
        self.inner.skip_ops(take);
    }
}

/// One core's private state inside the multi-core engine: the pipeline,
/// its own mitigation manager (per-core thermal zones over the core's
/// floorplan slice), its temperature statistics, and its lane of the
/// interval engine.
#[derive(Debug)]
struct Lane {
    core: Core,
    manager: ThermalManager,
    temp_sum: Vec<f64>,
    temp_samples: u64,
    temp_max: Vec<f64>,
    /// Interval-engine basis and extrapolated totals for this lane. The
    /// die-global macro-window clock lives on the simulator
    /// (`fast_prefix_left` / `fast_window_pos`); the per-lane copies of
    /// those two fields stay at zero.
    fast: FastState,
    /// Index into the [`TaskSet`] of the running segment, if any.
    task: Option<usize>,
    /// Remaining migration fetch-stall cycles, consumed from the front
    /// of the next window(s) before the core cycles.
    stall_left: u64,
    /// Activity harvested by the current sampling window (`None` for an
    /// idle window); scratch, never snapshotted.
    win_act: Option<ActivitySample>,
    /// Core stats at the start of the current detailed window (interval
    /// engine extrapolation basis capture); scratch.
    before: CoreStats,
    /// Freeze state captured at the top of a skipped sub-interval;
    /// scratch.
    skip_frozen: bool,
}

/// Serialized dynamic state of one lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LaneState {
    /// Full pipeline state.
    pub core: CoreState,
    /// Mitigation counters and any in-progress stall.
    pub manager: ManagerState,
    /// Bit patterns of the per-block temperature running sums.
    pub temp_sum_bits: Vec<u64>,
    /// Bit patterns of the per-block temperature maxima.
    pub temp_max_bits: Vec<u64>,
    /// Non-stalled samples behind `temp_sum_bits`.
    pub temp_samples: u64,
    /// Interval-engine lane state (basis + extrapolated totals).
    pub fast: FastEngineState,
    /// Remaining migration fetch-stall cycles.
    pub stall_left: u64,
}

/// Which core last ran a job (migration detection survives snapshots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobCore {
    /// Job identity.
    pub job: u64,
    /// Core that last ran one of its segments.
    pub core: usize,
}

/// Serializable dynamic state of a [`MultiCoreSimulator`].
///
/// Running task assignments are *not* captured: restore leaves every
/// lane idle and the next `run` re-dispatches from the caller's
/// [`TaskSet`] (whose traces carry their own positions). The job→core
/// map rides along, so re-dispatching a job to the core it already ran
/// on charges no migration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiCoreState {
    /// Per-lane state, core-major.
    pub lanes: Vec<LaneState>,
    /// Bit patterns of every RC node temperature of the shared die.
    pub thermal_node_bits: Vec<u64>,
    /// Whether the warm-start settle has happened.
    pub warmed: bool,
    /// Die-global interval-engine warmup prefix remaining.
    pub fast_prefix_left: u64,
    /// Die-global macro-window phase.
    pub fast_window_pos: u64,
    /// Scheduler rotation word ([`Scheduler::state_word`]).
    pub sched_word: u64,
    /// Job migrations performed.
    pub migrations: u64,
    /// Fetch-stall cycles charged to migrations.
    pub migration_stall_cycles: u64,
    /// Segments retired.
    pub tasks_completed: u64,
    /// Which core last ran each job.
    pub job_cores: Vec<JobCore>,
}

/// Aggregate results of a multi-core run: one [`RunResult`] per core
/// plus the scheduler-level counters.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCoreResult {
    /// Per-core results, block names unprefixed (each core reports its
    /// own floorplan). `cores[0]` of a 1-core run is bit-identical to
    /// the scalar simulator's result.
    pub cores: Vec<RunResult>,
    /// Jobs moved between cores by the scheduler.
    pub migrations: u64,
    /// Fetch-stall cycles charged to those migrations.
    pub migration_stall_cycles: u64,
    /// Workload segments retired.
    pub tasks_completed: u64,
}

impl MultiCoreResult {
    /// Peak temperature reached anywhere on the die.
    #[must_use]
    pub fn die_peak(&self) -> f64 {
        self.cores
            .iter()
            .flat_map(|r| r.temperatures.iter())
            .map(|t| t.max)
            .fold(f64::MIN, f64::max)
    }

    /// Total instructions committed across all cores.
    #[must_use]
    pub fn total_committed(&self) -> u64 {
        self.cores.iter().map(|r| r.committed).sum()
    }

    /// Flattens the per-core results into one [`RunResult`] for display
    /// paths built around the scalar shape: cycles are the die's
    /// (maximum over cores), throughput counters sum, temperatures
    /// concatenate under `C{c}.`-prefixed block names, and the cache /
    /// predictor rates average over cores.
    #[must_use]
    pub fn merged(&self) -> RunResult {
        let n = self.cores.len().max(1) as f64;
        let cycles = self.cores.iter().map(|r| r.cycles).max().unwrap_or(0);
        let committed = self.total_committed();
        let mut int_issued_per_unit = [0u64; 6];
        let mut int_rf_reads = [0u64; 2];
        for r in &self.cores {
            for (acc, v) in int_issued_per_unit.iter_mut().zip(&r.int_issued_per_unit) {
                *acc += v;
            }
            for (acc, v) in int_rf_reads.iter_mut().zip(&r.int_rf_reads) {
                *acc += v;
            }
        }
        RunResult {
            cycles,
            committed,
            ipc: if cycles == 0 { 0.0 } else { committed as f64 / cycles as f64 },
            frozen_cycles: self.cores.iter().map(|r| r.frozen_cycles).sum(),
            toggles: self.cores.iter().map(|r| r.toggles).sum(),
            alu_turnoffs: self.cores.iter().map(|r| r.alu_turnoffs).sum(),
            rf_turnoffs: self.cores.iter().map(|r| r.rf_turnoffs).sum(),
            freezes: self.cores.iter().map(|r| r.freezes).sum(),
            opp_transitions: self.cores.iter().map(|r| r.opp_transitions).sum(),
            duty_shifts: self.cores.iter().map(|r| r.duty_shifts).sum(),
            throttled_cycles: self.cores.iter().map(|r| r.throttled_cycles).sum(),
            fetch_gated_cycles: self.cores.iter().map(|r| r.fetch_gated_cycles).sum(),
            temperatures: self
                .cores
                .iter()
                .enumerate()
                .flat_map(|(c, r)| {
                    r.temperatures.iter().map(move |t| BlockTemperature {
                        name: multicore::core_block_name(&t.name, c, self.cores.len()),
                        avg: t.avg,
                        max: t.max,
                        last: t.last,
                    })
                })
                .collect(),
            int_issued_per_unit,
            int_rf_reads,
            mispredict_rate: self.cores.iter().map(|r| r.mispredict_rate).sum::<f64>() / n,
            l1d_miss_rate: self.cores.iter().map(|r| r.l1d_miss_rate).sum::<f64>() / n,
        }
    }
}

/// N cores stepping against one shared thermal solve, with a pluggable
/// scheduler placing workload segments. See the module docs for the
/// window structure and the N = 1 bit-identity contract.
#[derive(Debug)]
pub struct MultiCoreSimulator {
    config: SimConfig,
    /// The per-core floorplan (what each lane's power model, sensors,
    /// and reported block names use).
    core_plan: Floorplan,
    /// The full die: `cores` translated copies of `core_plan`.
    die_plan: Floorplan,
    power: PowerModel,
    thermal: ThermalModel,
    scheduler: Box<dyn Scheduler + Send>,
    lanes: Vec<Lane>,
    /// Blocks per core (`core_plan.blocks().len()`).
    blocks: usize,
    warmed: bool,
    /// Die-wide per-block power scratch (lane `c` owns the slice
    /// `c*blocks..(c+1)*blocks`); never snapshotted.
    watts: Vec<f64>,
    /// Leakage-only power of one idle core; derived, never snapshotted.
    idle_watts: Vec<f64>,
    /// Scheduler-view scratch.
    views: Vec<CoreView>,
    /// Die-global interval-engine clock (see [`FastState`] docs).
    fast_prefix_left: u64,
    fast_window_pos: u64,
    migrations: u64,
    migration_stall_cycles: u64,
    tasks_completed: u64,
    /// Which core last ran each job (small linear map; campaigns run a
    /// handful of jobs).
    job_cores: Vec<JobCore>,
    /// Per-lane checkers, parallel to `lanes`; empty until
    /// [`enable_checking`](Self::enable_checking). Checker 0 addition-
    /// ally owns the die-level thermal and cross-core watches.
    #[cfg(feature = "check")]
    checkers: Vec<powerbalance_check::RuntimeChecker>,
}

impl MultiCoreSimulator {
    /// Builds an N-core die from `config` (`config.cores` lanes,
    /// `config.scheduler` placing segments; the threshold policy's θ is
    /// the mitigation layer's emergency temperature).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if any subsystem rejects its
    /// parameters.
    pub fn new(config: SimConfig) -> Result<Self, Error> {
        config.validate()?;
        let core_plan = ev6::build(config.floorplan);
        let die_plan = multicore::replicate(&core_plan, config.cores);
        let power = PowerModel::new(&core_plan, config.energy, config.frequency_hz)?;
        let thermal = ThermalModel::new(&die_plan, config.package);
        let scheduler = config.scheduler.build(config.mitigation.thresholds.max_temp);
        let blocks = core_plan.blocks().len();
        let mut idle_watts = vec![0.0; blocks];
        power.block_power_into(&ActivitySample::default(), &mut idle_watts);
        let fast_prefix_left = match config.fidelity {
            Fidelity::Fast => config.fast_warmup,
            Fidelity::Exact => 0,
        };
        let mut lanes = Vec::with_capacity(config.cores);
        for _ in 0..config.cores {
            let core = Core::new(config.core.clone())?;
            let sensors = Sensors::new(&core_plan)?;
            let manager = ThermalManager::new(config.mitigation, sensors);
            lanes.push(Lane {
                core,
                manager,
                temp_sum: vec![0.0; blocks],
                temp_samples: 0,
                temp_max: vec![f64::MIN; blocks],
                fast: FastState { window_watts: vec![0.0; blocks], ..FastState::default() },
                task: None,
                stall_left: 0,
                win_act: None,
                before: CoreStats::default(),
                skip_frozen: false,
            });
        }
        Ok(MultiCoreSimulator {
            views: vec![CoreView { temp: 0.0, free: true }; config.cores],
            watts: vec![0.0; blocks * config.cores],
            config,
            core_plan,
            die_plan,
            power,
            thermal,
            scheduler,
            lanes,
            blocks,
            warmed: false,
            idle_watts,
            fast_prefix_left,
            fast_window_pos: 0,
            migrations: 0,
            migration_stall_cycles: 0,
            tasks_completed: 0,
            job_cores: Vec::new(),
            #[cfg(feature = "check")]
            checkers: Vec::new(),
        })
    }

    /// The configuration this simulator was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The full die floorplan (all cores tiled).
    #[must_use]
    pub fn die_floorplan(&self) -> &Floorplan {
        &self.die_plan
    }

    /// The per-core floorplan.
    #[must_use]
    pub fn core_floorplan(&self) -> &Floorplan {
        &self.core_plan
    }

    /// Number of cores on the die.
    #[must_use]
    pub fn cores(&self) -> usize {
        self.lanes.len()
    }

    /// Immutable access to core `c`'s pipeline.
    #[must_use]
    pub fn core(&self, c: usize) -> &Core {
        &self.lanes[c].core
    }

    /// Core `c`'s mitigation manager.
    #[must_use]
    pub fn manager(&self, c: usize) -> &ThermalManager {
        &self.lanes[c].manager
    }

    /// The shared die thermal model.
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// Runs for up to `cycles` die cycles, dispatching from `tasks`,
    /// and returns the accumulated per-core results. Returns early once
    /// every segment has retired. Call repeatedly with the same
    /// `TaskSet` to extend a run.
    pub fn run<T: TraceSource>(&mut self, tasks: &mut TaskSet<T>, cycles: u64) -> MultiCoreResult {
        self.run_controlled(tasks, cycles, &RunControl::unlimited()).0
    }

    /// Like [`run`](Self::run), but checks `control` between sampling
    /// windows and stops early on cancellation or a passed deadline.
    pub fn run_controlled<T: TraceSource>(
        &mut self,
        tasks: &mut TaskSet<T>,
        cycles: u64,
        control: &RunControl<'_>,
    ) -> (MultiCoreResult, StopCause) {
        let cause = self.drive(tasks, cycles, control, true);
        (self.result(), cause)
    }

    /// Runs without ever consulting the mitigation managers (the
    /// multi-core analogue of [`Simulator::run_warmup`]): power and
    /// thermal advance normally, statistics accumulate, but no toggles,
    /// turnoffs, or freezes happen.
    ///
    /// [`Simulator::run_warmup`]: crate::Simulator::run_warmup
    pub fn run_warmup<T: TraceSource>(&mut self, tasks: &mut TaskSet<T>, cycles: u64) {
        let _ = self.run_warmup_controlled(tasks, cycles, &RunControl::unlimited());
    }

    /// Like [`run_warmup`](Self::run_warmup), but checks `control`
    /// between sampling windows.
    pub fn run_warmup_controlled<T: TraceSource>(
        &mut self,
        tasks: &mut TaskSet<T>,
        cycles: u64,
        control: &RunControl<'_>,
    ) -> StopCause {
        self.drive(tasks, cycles, control, false)
    }

    /// The shared outer loop of `run`/`run_warmup`. Mirrors the scalar
    /// engine's loop structure exactly (dispatch replaces the scalar
    /// `is_done` check): budget check, liveness check, stop check, one
    /// window, one sample, retirement.
    fn drive<T: TraceSource>(
        &mut self,
        tasks: &mut TaskSet<T>,
        cycles: u64,
        control: &RunControl<'_>,
        consult: bool,
    ) -> StopCause {
        self.reconcile(tasks);
        if self.config.fidelity == Fidelity::Fast {
            return self.drive_fast(tasks, cycles, control, consult);
        }
        let mut elapsed = 0u64;
        loop {
            self.dispatch(tasks);
            if elapsed >= cycles || self.all_idle(tasks) {
                return StopCause::Completed;
            }
            if let Some(stop) = control.stop_cause() {
                return stop;
            }
            let window = self.config.sample_interval.min(cycles - elapsed);
            elapsed += self.run_lanes_window(tasks, window);
            self.sample(window, consult);
            self.retire(tasks);
        }
    }

    /// The die-global interval engine: the macro-window clock is shared,
    /// so every lane is detailed together and analytically skipped
    /// together against one coherent held power vector.
    fn drive_fast<T: TraceSource>(
        &mut self,
        tasks: &mut TaskSet<T>,
        cycles: u64,
        control: &RunControl<'_>,
        consult: bool,
    ) -> StopCause {
        let stretch = self.config.fast_window / self.config.sample_interval;
        let mut elapsed = 0u64;
        loop {
            self.dispatch(tasks);
            if elapsed >= cycles || self.all_idle(tasks) {
                return StopCause::Completed;
            }
            if let Some(stop) = control.stop_cause() {
                return stop;
            }
            let sub = self.config.sample_interval.min(cycles - elapsed);
            let in_prefix = self.fast_prefix_left > 0;
            if in_prefix || self.fast_window_pos == 0 {
                for lane in &mut self.lanes {
                    if lane.task.is_some() {
                        lane.before = *lane.core.stats();
                    }
                }
                elapsed += self.run_lanes_window(tasks, sub);
                self.sample(sub, consult);
                self.fast_record_windows();
            } else {
                elapsed += sub;
                self.fast_skip_advance(tasks, sub);
                self.fast_skip_consult(consult);
            }
            self.retire(tasks);
            if in_prefix {
                self.fast_prefix_left = self.fast_prefix_left.saturating_sub(sub);
            } else {
                self.fast_window_pos = (self.fast_window_pos + 1) % stretch;
            }
        }
    }

    /// Requeues segments marked running on a lane that does not actually
    /// hold them — the restore path leaves every lane idle, so a task
    /// set carried across a snapshot boundary re-enters the FIFO here
    /// (index order, so the original dispatch order is preserved).
    fn reconcile<T: TraceSource>(&self, tasks: &mut TaskSet<T>) {
        for (idx, seg) in tasks.segments.iter_mut().enumerate() {
            if let SegState::Running(c) = seg.state {
                if self.lanes.get(c).and_then(|l| l.task) != Some(idx) {
                    seg.state = SegState::Pending;
                }
            }
        }
    }

    /// `true` when no lane has a running segment and nothing more can
    /// dispatch (the set is drained, or every remaining segment is
    /// deferred — the caller just dispatched, so a pending head here
    /// means the scheduler refused it and the die should idle-cool).
    fn all_idle<T: TraceSource>(&self, tasks: &TaskSet<T>) -> bool {
        self.lanes.iter().all(|l| l.task.is_none()) && tasks.first_pending().is_none()
    }

    /// Places pending segments onto free cores until the scheduler
    /// defers or no free core remains. FIFO: a deferred head blocks the
    /// queue.
    fn dispatch<T: TraceSource>(&mut self, tasks: &mut TaskSet<T>) {
        while let Some(idx) = tasks.first_pending() {
            let temps = self.thermal.temperatures();
            for (c, view) in self.views.iter_mut().enumerate() {
                let slice = &temps[c * self.blocks..(c + 1) * self.blocks];
                *view = CoreView {
                    temp: slice.iter().copied().fold(f64::MIN, f64::max),
                    free: self.lanes[c].task.is_none(),
                };
            }
            let Some(c) = self.scheduler.select(&self.views) else {
                break;
            };
            if !self.views[c].free {
                debug_assert!(false, "scheduler placed a segment on a busy core");
                break;
            }
            let job = tasks.segments[idx].job;
            tasks.segments[idx].state = SegState::Running(c);
            let lane = &mut self.lanes[c];
            lane.task = Some(idx);
            // A lane whose previous segment drained its trace latched
            // `trace_done`; the new segment has its own trace.
            lane.core.reset_trace_done();
            match self.job_cores.iter_mut().find(|jc| jc.job == job) {
                Some(jc) => {
                    if jc.core != c {
                        self.migrations += 1;
                        lane.stall_left += DEFAULT_MIGRATION_STALL;
                        jc.core = c;
                    }
                }
                None => self.job_cores.push(JobCore { job, core: c }),
            }
        }
    }

    /// Runs every busy lane for up to `window` cycles (migration stall
    /// first, then pipeline cycles); returns how far the die clock
    /// advanced — the full window unless *every* busy lane ended early,
    /// and the full window when no lane is busy (idle cooling).
    fn run_lanes_window<T: TraceSource>(&mut self, tasks: &mut TaskSet<T>, window: u64) -> u64 {
        let mut advanced = 0u64;
        let mut any_busy = false;
        for c in 0..self.lanes.len() {
            let Some(idx) = self.lanes[c].task else {
                continue;
            };
            any_busy = true;
            let stall = self.lanes[c].stall_left.min(window);
            if stall > 0 {
                self.lanes[c].stall_left -= stall;
                self.migration_stall_cycles += stall;
            }
            let (trace, left) = tasks.payload_mut(idx);
            let mut src = BudgetedTrace { inner: trace, left };
            let ran = self.lane_cycles(c, &mut src, window - stall);
            advanced = advanced.max(stall + ran);
        }
        if any_busy {
            advanced
        } else {
            window
        }
    }

    /// Cycles lane `c` up to `budget` times, bracketed by its runtime
    /// checker when one is armed; stops early when the segment drains.
    fn lane_cycles<T: TraceSource>(
        &mut self,
        c: usize,
        src: &mut BudgetedTrace<'_, T>,
        budget: u64,
    ) -> u64 {
        let lane = &mut self.lanes[c];
        let mut ran = 0u64;
        #[cfg(feature = "check")]
        if let Some(checker) = self.checkers.get_mut(c) {
            for _ in 0..budget {
                checker.before_cycle(&lane.core);
                lane.core.cycle(src);
                checker.after_cycle(&mut lane.core);
                ran += 1;
                if lane.core.is_done() {
                    break;
                }
            }
            return ran;
        }
        for _ in 0..budget {
            lane.core.cycle(src);
            ran += 1;
            if lane.core.is_done() {
                break;
            }
        }
        ran
    }

    /// Retires segments whose core has drained (trace exhausted or op
    /// budget spent, pipeline empty).
    fn retire<T: TraceSource>(&mut self, tasks: &mut TaskSet<T>) {
        for lane in &mut self.lanes {
            if let Some(idx) = lane.task {
                if lane.core.is_done() {
                    tasks.segments[idx].state = SegState::Done;
                    lane.task = None;
                    self.tasks_completed += 1;
                }
            }
        }
    }

    /// One die-wide sense/react step: per-lane activity → per-lane
    /// power into the die vector → one thermal solve → per-lane consult
    /// and statistics. Phase order within each lane mirrors the scalar
    /// [`Simulator::sample`] exactly.
    ///
    /// [`Simulator::sample`]: crate::Simulator
    fn sample(&mut self, window: u64, consult: bool) {
        let blocks = self.blocks;
        let mut max_cycles = 0u64;
        for (c, lane) in self.lanes.iter_mut().enumerate() {
            let chunk = &mut self.watts[c * blocks..(c + 1) * blocks];
            let activity = lane.core.take_activity();
            if activity.cycles == 0 {
                // Idle (or fully stalled) lane: leakage only.
                chunk.copy_from_slice(&self.idle_watts);
                lane.win_act = None;
                continue;
            }
            max_cycles = max_cycles.max(activity.cycles);
            lane.fast.window_int_iq = activity.int_iq;
            lane.fast.window_fp_iq = activity.fp_iq;
            let scale = lane.manager.dynamic_power_scale();
            // One-lane invocation of the batched power kernel: the
            // `scale == 1.0` arm delegates to the identical scalar
            // routine, which is what keeps N = 1 bit-identical.
            self.power
                .block_power_many_into(std::slice::from_ref(&(activity, scale)), &mut [chunk]);
            lane.win_act = Some(activity);
        }
        // Idle-cooling windows advance by the window length; busy
        // windows by the longest lane activity (== the scalar dt).
        let dt_cycles = if max_cycles == 0 { window } else { max_cycles };
        let dt = dt_cycles as f64 / self.config.frequency_hz;
        let settled = self.config.warm_start && !self.warmed;
        if settled {
            self.warmed = true;
            self.thermal.settle(&self.watts);
        } else {
            self.thermal.step(&self.watts, dt);
        }
        #[cfg(feature = "check")]
        if let Some(checker) = self.checkers.first_mut() {
            let now = self.lanes[0].core.stats().cycles + self.lanes[0].fast.extra_cycles;
            checker.check_thermal(&self.thermal, &self.watts, dt, settled, now);
        }
        let temps = self.thermal.temperatures();
        for (c, lane) in self.lanes.iter_mut().enumerate() {
            let Some(activity) = lane.win_act else {
                continue;
            };
            let slice = &temps[c * blocks..(c + 1) * blocks];
            let was_frozen = lane.core.is_frozen();
            let now = lane.core.stats().cycles + lane.fast.extra_cycles;
            if consult {
                #[cfg(feature = "check")]
                let mut checker = self.checkers.get_mut(c);
                #[cfg(feature = "check")]
                if let Some(checker) = checker.as_mut() {
                    checker.before_sample(&lane.core, &lane.manager);
                }
                lane.manager.on_sample(
                    &mut lane.core,
                    slice,
                    now,
                    &activity.int_iq,
                    &activity.fp_iq,
                );
                #[cfg(feature = "check")]
                if let Some(checker) = checker.as_mut() {
                    checker.after_sample(
                        &lane.core,
                        &lane.manager,
                        slice,
                        now,
                        &activity.int_iq,
                        &activity.fp_iq,
                    );
                }
            }
            if !was_frozen {
                for (sum, t) in lane.temp_sum.iter_mut().zip(slice) {
                    *sum += t;
                }
                lane.temp_samples += 1;
            }
            for (max, t) in lane.temp_max.iter_mut().zip(slice) {
                *max = max.max(*t);
            }
        }
    }

    /// Per-lane analogue of the scalar `fast_record_window`: captures
    /// each busy lane's window deltas as its extrapolation basis and
    /// blends its slice of the measured power into the held vector
    /// (EWMA, α = 1/2; straight copy on a lane's first detailed
    /// window).
    fn fast_record_windows(&mut self) {
        let blocks = self.blocks;
        for (c, lane) in self.lanes.iter_mut().enumerate() {
            if lane.win_act.is_none() {
                continue;
            }
            let chunk = &self.watts[c * blocks..(c + 1) * blocks];
            let first_sample = lane.fast.sample_cycles == 0;
            let after = lane.core.stats();
            lane.fast.sample_cycles = after.cycles - lane.before.cycles;
            lane.fast.sample_committed = after.committed - lane.before.committed;
            lane.fast.sample_fetched = after.fetched - lane.before.fetched;
            lane.fast.sample_frozen = after.frozen_cycles - lane.before.frozen_cycles;
            lane.fast.sample_throttled = after.throttled_cycles - lane.before.throttled_cycles;
            lane.fast.sample_fetch_gated =
                after.fetch_gated_cycles - lane.before.fetch_gated_cycles;
            if first_sample {
                lane.fast.window_watts.copy_from_slice(chunk);
            } else {
                for (held, w) in lane.fast.window_watts.iter_mut().zip(chunk) {
                    *held = 0.5 * *held + 0.5 * w;
                }
            }
        }
    }

    /// One analytically skipped sub-interval: compose the die's held
    /// power vector (per-lane held watts; idle leakage for idle or
    /// frozen lanes), advance the RC network in closed form, then
    /// fast-forward each busy lane's workload and extrapolated
    /// counters. Mirrors the scalar `fast_skip_advance` per lane.
    fn fast_skip_advance<T: TraceSource>(&mut self, tasks: &mut TaskSet<T>, sub: u64) {
        let blocks = self.blocks;
        let dt = sub as f64 / self.config.frequency_hz;
        for (c, lane) in self.lanes.iter_mut().enumerate() {
            lane.skip_frozen = lane.core.is_frozen();
            let chunk = &mut self.watts[c * blocks..(c + 1) * blocks];
            if lane.task.is_some() && !lane.skip_frozen {
                chunk.copy_from_slice(&lane.fast.window_watts);
            } else {
                chunk.copy_from_slice(&self.idle_watts);
            }
        }
        self.thermal.advance(&self.watts, dt);
        for lane in &mut self.lanes {
            let Some(idx) = lane.task else {
                continue;
            };
            if lane.skip_frozen {
                lane.fast.extra_cycles += sub;
                lane.fast.extra_frozen += sub;
            } else {
                lane.fast.extra_cycles += sub;
                let len = lane.fast.sample_cycles;
                let (trace, left) = tasks.payload_mut(idx);
                let mut src = BudgetedTrace { inner: trace, left };
                src.skip_ops(FastState::scaled(lane.fast.sample_fetched, sub, len));
                lane.fast.extra_committed +=
                    FastState::scaled(lane.fast.sample_committed, sub, len);
                lane.fast.extra_frozen += FastState::scaled(lane.fast.sample_frozen, sub, len);
                lane.fast.extra_throttled +=
                    FastState::scaled(lane.fast.sample_throttled, sub, len);
                lane.fast.extra_fetch_gated +=
                    FastState::scaled(lane.fast.sample_fetch_gated, sub, len);
            }
        }
        // The closed-form advance is outside the backward-Euler
        // residual's reach; re-base the die-level watches.
        #[cfg(feature = "check")]
        if let Some(checker) = self.checkers.first_mut() {
            checker.resync_thermal(&self.thermal);
        }
    }

    /// The consult + statistics tail of a skipped sub-interval: each
    /// busy lane's manager sees the analytically advanced temperatures
    /// of its own slice at its own virtual time, fed the held IQ
    /// activity — the scalar skip path, per lane.
    fn fast_skip_consult(&mut self, consult: bool) {
        let blocks = self.blocks;
        let temps = self.thermal.temperatures();
        for (c, lane) in self.lanes.iter_mut().enumerate() {
            if lane.task.is_none() {
                continue;
            }
            let slice = &temps[c * blocks..(c + 1) * blocks];
            let now = lane.core.stats().cycles + lane.fast.extra_cycles;
            if consult {
                let (int_iq, fp_iq) = (lane.fast.window_int_iq, lane.fast.window_fp_iq);
                lane.manager.on_sample(&mut lane.core, slice, now, &int_iq, &fp_iq);
            }
            if !lane.skip_frozen {
                for (sum, t) in lane.temp_sum.iter_mut().zip(slice) {
                    *sum += t;
                }
                lane.temp_samples += 1;
            }
            for (max, t) in lane.temp_max.iter_mut().zip(slice) {
                *max = max.max(*t);
            }
        }
    }

    /// Snapshot of the accumulated results.
    #[must_use]
    pub fn result(&self) -> MultiCoreResult {
        MultiCoreResult {
            cores: (0..self.lanes.len()).map(|c| self.lane_result(c)).collect(),
            migrations: self.migrations,
            migration_stall_cycles: self.migration_stall_cycles,
            tasks_completed: self.tasks_completed,
        }
    }

    /// One lane's [`RunResult`], mirroring the scalar construction
    /// field for field (bit-identical at N = 1).
    fn lane_result(&self, c: usize) -> RunResult {
        let lane = &self.lanes[c];
        let base = c * self.blocks;
        let stats = lane.core.stats();
        let mstats = lane.manager.stats();
        let samples = lane.temp_samples.max(1) as f64;
        let temperatures = self
            .core_plan
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| BlockTemperature {
                name: b.name.clone(),
                avg: if lane.temp_samples == 0 {
                    self.thermal.temperature(base + i)
                } else {
                    lane.temp_sum[i] / samples
                },
                max: if lane.temp_max[i] == f64::MIN {
                    self.thermal.temperature(base + i)
                } else {
                    lane.temp_max[i]
                },
                last: self.thermal.temperature(base + i),
            })
            .collect();
        let cycles = stats.cycles + lane.fast.extra_cycles;
        let committed = stats.committed + lane.fast.extra_committed;
        RunResult {
            cycles,
            committed,
            ipc: if cycles == 0 { 0.0 } else { committed as f64 / cycles as f64 },
            frozen_cycles: stats.frozen_cycles + lane.fast.extra_frozen,
            toggles: mstats.toggles,
            alu_turnoffs: mstats.alu_turnoffs,
            rf_turnoffs: mstats.rf_turnoffs,
            freezes: mstats.freezes,
            opp_transitions: mstats.opp_transitions,
            duty_shifts: mstats.duty_shifts,
            throttled_cycles: stats.throttled_cycles + lane.fast.extra_throttled,
            fetch_gated_cycles: stats.fetch_gated_cycles + lane.fast.extra_fetch_gated,
            temperatures,
            int_issued_per_unit: stats.int_issued_per_unit,
            int_rf_reads: stats.int_rf_reads,
            mispredict_rate: lane.core.bpred().mispredict_rate(),
            l1d_miss_rate: lane.core.memory().l1d().miss_rate(),
        }
    }

    /// Captures the simulator's dynamic state (see [`MultiCoreState`]
    /// for what is and is not included). Capture at a sampling-window
    /// boundary with no segment mid-flight you cannot re-dispatch.
    #[must_use]
    pub fn state(&self) -> MultiCoreState {
        MultiCoreState {
            lanes: self
                .lanes
                .iter()
                .map(|lane| LaneState {
                    core: lane.core.snapshot(),
                    manager: lane.manager.snapshot(),
                    temp_sum_bits: encode_bits(&lane.temp_sum),
                    temp_max_bits: encode_bits(&lane.temp_max),
                    temp_samples: lane.temp_samples,
                    fast: FastEngineState {
                        prefix_left: 0,
                        window_pos: 0,
                        window_watts_bits: encode_bits(&lane.fast.window_watts),
                        window_int_iq: lane.fast.window_int_iq,
                        window_fp_iq: lane.fast.window_fp_iq,
                        sample_cycles: lane.fast.sample_cycles,
                        sample_committed: lane.fast.sample_committed,
                        sample_fetched: lane.fast.sample_fetched,
                        sample_frozen: lane.fast.sample_frozen,
                        sample_throttled: lane.fast.sample_throttled,
                        sample_fetch_gated: lane.fast.sample_fetch_gated,
                        extra_cycles: lane.fast.extra_cycles,
                        extra_committed: lane.fast.extra_committed,
                        extra_frozen: lane.fast.extra_frozen,
                        extra_throttled: lane.fast.extra_throttled,
                        extra_fetch_gated: lane.fast.extra_fetch_gated,
                    },
                    stall_left: lane.stall_left,
                })
                .collect(),
            thermal_node_bits: encode_bits(self.thermal.node_temperatures()),
            warmed: self.warmed,
            fast_prefix_left: self.fast_prefix_left,
            fast_window_pos: self.fast_window_pos,
            sched_word: self.scheduler.state_word(),
            migrations: self.migrations,
            migration_stall_cycles: self.migration_stall_cycles,
            tasks_completed: self.tasks_completed,
            job_cores: self.job_cores.clone(),
        }
    }

    /// Restores dynamic state captured by [`state`](Self::state) into a
    /// simulator built from the same configuration. Lanes come back
    /// idle; the next `run` re-dispatches from the caller's [`TaskSet`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] naming the first piece of state that
    /// does not fit this simulator.
    pub fn restore_state(&mut self, state: &MultiCoreState) -> Result<(), Error> {
        if state.lanes.len() != self.lanes.len() {
            return Err(Error::Config(format!(
                "state covers {} lanes, die has {}",
                state.lanes.len(),
                self.lanes.len()
            )));
        }
        for (c, (lane, ls)) in self.lanes.iter_mut().zip(&state.lanes).enumerate() {
            if ls.temp_sum_bits.len() != self.blocks
                || ls.temp_max_bits.len() != self.blocks
                || ls.fast.window_watts_bits.len() != self.blocks
            {
                return Err(Error::Config(format!(
                    "lane {c} state vectors do not match the {}-block floorplan",
                    self.blocks
                )));
            }
            lane.core
                .restore(&ls.core)
                .map_err(|e| Error::Config(format!("lane {c} core: {e}")))?;
            lane.manager.restore(&ls.manager);
            lane.temp_sum = decode_bits(&ls.temp_sum_bits);
            lane.temp_max = decode_bits(&ls.temp_max_bits);
            lane.temp_samples = ls.temp_samples;
            lane.fast.window_watts = decode_bits(&ls.fast.window_watts_bits);
            lane.fast.window_int_iq = ls.fast.window_int_iq;
            lane.fast.window_fp_iq = ls.fast.window_fp_iq;
            lane.fast.sample_cycles = ls.fast.sample_cycles;
            lane.fast.sample_committed = ls.fast.sample_committed;
            lane.fast.sample_fetched = ls.fast.sample_fetched;
            lane.fast.sample_frozen = ls.fast.sample_frozen;
            lane.fast.sample_throttled = ls.fast.sample_throttled;
            lane.fast.sample_fetch_gated = ls.fast.sample_fetch_gated;
            lane.fast.extra_cycles = ls.fast.extra_cycles;
            lane.fast.extra_committed = ls.fast.extra_committed;
            lane.fast.extra_frozen = ls.fast.extra_frozen;
            lane.fast.extra_throttled = ls.fast.extra_throttled;
            lane.fast.extra_fetch_gated = ls.fast.extra_fetch_gated;
            lane.stall_left = ls.stall_left;
            lane.task = None;
        }
        self.thermal
            .restore_node_temperatures(&decode_bits(&state.thermal_node_bits))
            .map_err(|e| Error::Config(format!("thermal: {e}")))?;
        self.warmed = state.warmed;
        self.fast_prefix_left = state.fast_prefix_left;
        self.fast_window_pos = state.fast_window_pos;
        self.scheduler.restore_word(state.sched_word);
        self.migrations = state.migrations;
        self.migration_stall_cycles = state.migration_stall_cycles;
        self.tasks_completed = state.tasks_completed;
        self.job_cores = state.job_cores.clone();
        #[cfg(feature = "check")]
        if !self.checkers.is_empty() {
            self.enable_checking()?;
        }
        Ok(())
    }

    /// Arms one runtime checker per lane (pipeline invariants, the
    /// in-order oracle, and the mitigation mirror against each lane's
    /// temperature slice) plus, on checker 0, the die-level thermal
    /// residual watch and — on multi-core dies — the cross-core energy
    /// and lateral-symmetry invariants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the floorplan lacks the sensor
    /// blocks the mitigation mirror needs.
    #[cfg(feature = "check")]
    pub fn enable_checking(&mut self) -> Result<(), Error> {
        self.checkers.clear();
        for lane in &mut self.lanes {
            lane.core.enable_op_log();
            let checker = powerbalance_check::RuntimeChecker::new(
                &self.core_plan,
                &self.config.mitigation,
                &lane.core,
                &self.thermal,
            )
            .map_err(Error::Config)?;
            self.checkers.push(checker);
        }
        if self.lanes.len() > 1 {
            if let Some(checker) = self.checkers.first_mut() {
                checker.enable_crosscore(self.lanes.len(), self.blocks, &self.thermal);
            }
        }
        Ok(())
    }

    /// Closes out every lane's oracle and returns all retained
    /// violations across lanes. Empty when checking was never enabled.
    #[cfg(feature = "check")]
    pub fn finish_checking(&mut self) -> Vec<powerbalance_check::Violation> {
        let mut all = Vec::new();
        for (lane, checker) in self.lanes.iter().zip(&mut self.checkers) {
            checker.finish(&lane.core);
            all.extend_from_slice(checker.violations());
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use powerbalance_workloads::spec2000;

    fn trace(name: &str, seed: u64) -> powerbalance_workloads::TraceGenerator {
        spec2000::by_name(name).expect("profile").trace(seed)
    }

    #[test]
    fn one_core_one_task_matches_the_scalar_simulator_bitwise() {
        let mut scalar = Simulator::new(SimConfig::default()).expect("valid config");
        let scalar_result = scalar.run(&mut trace("gzip", 7), 90_000);

        let mut multi = MultiCoreSimulator::new(SimConfig::default()).expect("valid config");
        let mut tasks = TaskSet::one_per_job([trace("gzip", 7)]);
        let result = multi.run(&mut tasks, 90_000);
        assert_eq!(result.cores.len(), 1);
        assert_eq!(result.cores[0], scalar_result, "N=1 must be bit-identical");
        assert_eq!(result.migrations, 0);
    }

    #[test]
    fn two_cores_run_independent_workloads() {
        let cfg = SimConfig { cores: 2, ..SimConfig::default() };
        let mut sim = MultiCoreSimulator::new(cfg).expect("valid config");
        let mut tasks = TaskSet::one_per_job([trace("gzip", 3), trace("mesa", 11)]);
        let r = sim.run(&mut tasks, 60_000);
        assert_eq!(r.cores.len(), 2);
        assert!(r.cores[0].committed > 1_000);
        assert!(r.cores[1].committed > 1_000);
        assert_eq!(r.tasks_completed, 0, "unbounded segments outlive the budget");
        let merged = r.merged();
        assert_eq!(merged.committed, r.cores[0].committed + r.cores[1].committed);
        assert!(merged.temperatures.iter().any(|t| t.name.starts_with("C1.")));
    }

    #[test]
    fn hot_neighbor_heats_an_idle_core() {
        // Core 0 runs; core 1 idles. Core 1 must still warm above
        // ambient through the lateral coupling and shared package.
        let cfg = SimConfig { cores: 2, ..SimConfig::default() };
        let mut sim = MultiCoreSimulator::new(cfg).expect("valid config");
        let mut tasks = TaskSet::one_per_job([trace("crafty", 5)]);
        let r = sim.run(&mut tasks, 120_000);
        let ambient = 318.0;
        let idle_peak = r.cores[1].temperatures.iter().map(|t| t.last).fold(f64::MIN, f64::max);
        let busy_peak = r.cores[0].temperatures.iter().map(|t| t.last).fold(f64::MIN, f64::max);
        assert!(idle_peak > ambient + 0.05, "neighbor heat must arrive: {idle_peak}");
        assert!(busy_peak > idle_peak, "the busy core stays the hotter one");
    }

    #[test]
    fn bounded_segments_retire_and_round_robin_rotates() {
        let cfg = SimConfig { cores: 2, ..SimConfig::default() };
        let mut sim = MultiCoreSimulator::new(cfg).expect("valid config");
        let mut tasks = TaskSet::new([
            Task::ops(0, 4_000, trace("gzip", 1)),
            Task::ops(1, 4_000, trace("gzip", 2)),
            Task::ops(2, 4_000, trace("gzip", 3)),
            Task::ops(3, 4_000, trace("gzip", 4)),
        ]);
        let r = sim.run(&mut tasks, 400_000);
        assert_eq!(r.tasks_completed, 4, "all bounded segments retire");
        assert!(tasks.is_drained());
        assert!(
            r.cores[0].committed > 0 && r.cores[1].committed > 0,
            "round-robin spreads segments over both cores"
        );
    }

    #[test]
    fn migration_charges_the_fetch_stall_penalty() {
        // The same job runs two segments; round-robin places them on
        // different cores, so the second dispatch is a migration.
        let cfg = SimConfig { cores: 2, ..SimConfig::default() };
        let mut sim = MultiCoreSimulator::new(cfg).expect("valid config");
        let mut tasks = TaskSet::new([
            Task::ops(9, 3_000, trace("gzip", 1)),
            Task::ops(9, 3_000, trace("gzip", 2)),
        ]);
        let r = sim.run(&mut tasks, 300_000);
        assert_eq!(r.migrations, 1, "second segment of job 9 moved cores");
        assert_eq!(r.migration_stall_cycles, DEFAULT_MIGRATION_STALL);
    }

    #[test]
    fn state_round_trip_resumes_bit_identically() {
        let cfg = SimConfig { cores: 2, ..SimConfig::default() };
        let budget = 40_000;
        // Uninterrupted reference.
        let mut reference = MultiCoreSimulator::new(cfg.clone()).expect("valid config");
        let mut ref_tasks = TaskSet::one_per_job([trace("gzip", 3), trace("mesa", 11)]);
        let expect = reference.run(&mut ref_tasks, 2 * budget);

        // Run half, capture, restore into a fresh die, run the rest.
        let mut first = MultiCoreSimulator::new(cfg.clone()).expect("valid config");
        let mut tasks = TaskSet::one_per_job([trace("gzip", 3), trace("mesa", 11)]);
        first.run(&mut tasks, budget);
        let state = first.state();
        let mut resumed = MultiCoreSimulator::new(cfg).expect("valid config");
        resumed.restore_state(&state).expect("same shape");
        let got = resumed.run(&mut tasks, budget);
        assert_eq!(got, expect, "restored run must continue bit-identically");
    }

    #[test]
    fn fast_fidelity_covers_the_budget_on_two_cores() {
        let cfg = SimConfig {
            cores: 2,
            fidelity: Fidelity::Fast,
            fast_window: 40_000,
            fast_warmup: 20_000,
            ..SimConfig::default()
        };
        let mut sim = MultiCoreSimulator::new(cfg).expect("valid config");
        let mut tasks = TaskSet::one_per_job([trace("gzip", 3), trace("crafty", 5)]);
        let r = sim.run(&mut tasks, 200_000);
        for (c, core) in r.cores.iter().enumerate() {
            assert!(core.cycles >= 200_000, "core {c} covers the budget: {}", core.cycles);
            assert!(core.ipc > 0.0, "core {c} made progress");
        }
        let detailed = sim.core(0).stats().cycles;
        assert!(detailed < 120_000, "interval engine skipped most cycles: {detailed}");
    }

    #[test]
    fn one_core_fast_matches_the_scalar_simulator_bitwise() {
        let cfg = SimConfig {
            fidelity: Fidelity::Fast,
            fast_window: 40_000,
            fast_warmup: 20_000,
            ..SimConfig::default()
        };
        let mut scalar = Simulator::new(cfg.clone()).expect("valid config");
        let scalar_result = scalar.run(&mut trace("crafty", 5), 250_000);

        let mut multi = MultiCoreSimulator::new(cfg).expect("valid config");
        let mut tasks = TaskSet::one_per_job([trace("crafty", 5)]);
        let result = multi.run(&mut tasks, 250_000);
        assert_eq!(result.cores[0], scalar_result, "N=1 Fast must be bit-identical");
    }

    #[test]
    fn multicore_state_json_round_trips() {
        let cfg = SimConfig { cores: 3, ..SimConfig::default() };
        let mut sim = MultiCoreSimulator::new(cfg).expect("valid config");
        let mut tasks =
            TaskSet::one_per_job([trace("gzip", 1), trace("mesa", 2), trace("crafty", 3)]);
        sim.run(&mut tasks, 30_000);
        let state = sim.state();
        let json = serde::json::to_string(&state);
        let value = serde::json::Value::parse(&json).expect("valid JSON");
        let back: MultiCoreState = Deserialize::deserialize(&value).expect("round trip");
        assert_eq!(back, state);
    }
}

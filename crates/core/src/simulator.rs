//! The top-level simulator: core + power + thermal + mitigation.

use crate::config::Fidelity;
use crate::snapshot::{decode_bits, encode_bits};
use crate::{BlockTemperature, Error, RunResult, SimConfig, SimulatorState};
use powerbalance_isa::TraceSource;
use powerbalance_mitigation::{MitigationStats, Sensors, ThermalManager};
use powerbalance_power::PowerModel;
use powerbalance_thermal::{ev6, Floorplan, ThermalModel};
use powerbalance_uarch::{ActivitySample, Core, CoreStats, IqActivity};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// Why a controlled run ([`Simulator::run_controlled`]) returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCause {
    /// The cycle budget elapsed (or the trace drained) normally.
    Completed,
    /// The cancellation flag was observed set between sampling windows.
    Cancelled,
    /// The wall-clock deadline passed between sampling windows.
    TimedOut,
}

impl StopCause {
    /// Whether the run finished its full budget (neither cancelled nor
    /// timed out).
    #[must_use]
    pub fn is_completed(self) -> bool {
        self == StopCause::Completed
    }
}

/// Cooperative controls for a long simulation: an optional cancellation
/// flag and an optional wall-clock deadline.
///
/// Both are checked *between* sampling windows, never inside one, so a
/// controlled run stops within one [`SimConfig::sample_interval`] of the
/// request and the cycles it did simulate are bit-identical to an
/// uncontrolled run of the same length. The default value checks nothing
/// and costs two branches per sampling window.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunControl<'a> {
    cancel: Option<&'a AtomicBool>,
    deadline: Option<Instant>,
}

impl<'a> RunControl<'a> {
    /// A control that never stops the run early.
    #[must_use]
    pub fn unlimited() -> Self {
        RunControl::default()
    }

    /// Stops the run at the next sampling-window boundary once `flag` is
    /// set. The flag is shared (e.g. with a server's DELETE handler);
    /// setting it is the caller's business.
    #[must_use]
    pub fn with_cancel(mut self, flag: &'a AtomicBool) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// Stops the run at the first sampling-window boundary after
    /// `deadline` passes.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The reason the run should stop now, if any. Cancellation wins over
    /// a passed deadline when both hold.
    #[must_use]
    pub fn stop_cause(&self) -> Option<StopCause> {
        if let Some(flag) = self.cancel {
            if flag.load(Ordering::Relaxed) {
                return Some(StopCause::Cancelled);
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(StopCause::TimedOut);
            }
        }
        None
    }
}

/// Dynamic state of the interval engine: where we are in the macro
/// window, the power vector held from the last detailed sampling window,
/// the statistics deltas that window produced (the extrapolation basis),
/// and the running extrapolated totals for the analytically skipped
/// sub-intervals. All of it is simulation state — a mid-window snapshot
/// must resume bit-exactly — so the whole struct rides along in
/// [`SimulatorState`].
#[derive(Debug, Clone, Default)]
pub(crate) struct FastState {
    /// Detailed warmup-prefix cycles still to run before interval
    /// sampling engages ([`SimConfig::fast_warmup`]); while positive,
    /// every sub-interval is simulated in detail and `window_pos` stays
    /// at zero. (The multi-core engine keeps this clock die-global and
    /// leaves the per-lane copies at zero.)
    pub(crate) prefix_left: u64,
    /// Sub-intervals completed in the current macro window; `0` means the
    /// next sub-interval is simulated in detail.
    pub(crate) window_pos: u64,
    /// Per-block power measured by the last detailed window, held constant
    /// across the analytic advances that follow it.
    pub(crate) window_watts: Vec<f64>,
    /// Integer issue-queue activity of the last detailed window, replayed
    /// into skipped-interval mitigation consults so the toggling
    /// controller keeps seeing which queue half is compaction-active.
    pub(crate) window_int_iq: IqActivity,
    /// FP issue-queue activity of the last detailed window.
    pub(crate) window_fp_iq: IqActivity,
    /// Core cycles the last detailed window actually ran (its length).
    pub(crate) sample_cycles: u64,
    /// Instructions committed during the last detailed window.
    pub(crate) sample_committed: u64,
    /// Micro-ops fetched (consumed from the trace) during the last
    /// detailed window; the basis for fast-forwarding the workload across
    /// skipped sub-intervals.
    pub(crate) sample_fetched: u64,
    /// Frozen cycles during the last detailed window.
    pub(crate) sample_frozen: u64,
    /// Throttled cycles during the last detailed window.
    pub(crate) sample_throttled: u64,
    /// Fetch-gated cycles during the last detailed window.
    pub(crate) sample_fetch_gated: u64,
    /// Cycles skipped (advanced analytically) so far.
    pub(crate) extra_cycles: u64,
    /// Commits attributed to skipped cycles by extrapolation.
    pub(crate) extra_committed: u64,
    /// Frozen cycles attributed to skipped cycles.
    pub(crate) extra_frozen: u64,
    /// Throttled cycles attributed to skipped cycles.
    pub(crate) extra_throttled: u64,
    /// Fetch-gated cycles attributed to skipped cycles.
    pub(crate) extra_fetch_gated: u64,
}

impl FastState {
    /// Extrapolates one of the detailed window's counters over `skipped`
    /// cycles, proportionally to the window's own length.
    pub(crate) fn scaled(basis: u64, skipped: u64, window_len: u64) -> u64 {
        if window_len == 0 {
            return 0;
        }
        (u128::from(basis) * u128::from(skipped) / u128::from(window_len)) as u64
    }
}

/// A complete thermal/performance simulation of one CPU configuration.
///
/// Drives the cycle-level core, converts its activity into per-block power
/// each sampling window, steps the RC thermal model, and lets the
/// mitigation manager react to the new temperatures — the same
/// sense/react loop the paper's SimpleScalar + Wattch + HotSpot setup runs.
///
/// # Examples
///
/// ```
/// use powerbalance::{Simulator, SimConfig};
/// use powerbalance_workloads::spec2000;
///
/// let mut sim = Simulator::new(SimConfig::default())?;
/// let result = sim.run(&mut spec2000::by_name("gzip").unwrap().trace(7), 50_000);
/// assert!(result.ipc > 0.0);
/// # Ok::<(), powerbalance::Error>(())
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: SimConfig,
    plan: Floorplan,
    core: Core,
    power: PowerModel,
    thermal: ThermalModel,
    manager: ThermalManager,
    /// Per-block running sums for averages over non-stalled samples.
    temp_sum: Vec<f64>,
    temp_samples: u64,
    temp_max: Vec<f64>,
    warmed: bool,
    /// Per-block power scratch reused every sampling window; pure scratch,
    /// never snapshotted.
    watts: Vec<f64>,
    /// Per-block power of a fully idle (frozen) core: pure leakage.
    /// Derived from the configuration, so never snapshotted. The interval
    /// engine advances with this vector while the core is frozen, matching
    /// what the power model reports for an activity-free window.
    idle_watts: Vec<f64>,
    /// Optional per-sample temperature trace: `(cycle, temps)` rows.
    history: Option<Vec<(u64, Vec<f64>)>>,
    /// Interval-engine state ([`Fidelity::Fast`]); inert zeros under
    /// [`Fidelity::Exact`], whose code path never reads it.
    fast: FastState,
    /// Differential oracle + invariant checkers, armed by
    /// [`enable_checking`](Simulator::enable_checking). Boxed: the checker
    /// is diagnostic tooling and should not widen the simulator itself.
    #[cfg(feature = "check")]
    checker: Option<Box<powerbalance_check::RuntimeChecker>>,
}

impl Simulator {
    /// Builds a simulator from `config`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if any subsystem rejects its parameters.
    pub fn new(config: SimConfig) -> Result<Self, Error> {
        config.validate()?;
        if config.cores != 1 {
            return Err(Error::Config(format!(
                "config requests {} cores; the scalar Simulator is single-core — use \
                 MultiCoreSimulator",
                config.cores
            )));
        }
        let plan = ev6::build(config.floorplan);
        let core = Core::new(config.core.clone())?;
        let power = PowerModel::new(&plan, config.energy, config.frequency_hz)?;
        let thermal = ThermalModel::new(&plan, config.package);
        let sensors = Sensors::new(&plan)?;
        let manager = ThermalManager::new(config.mitigation, sensors);
        let blocks = plan.blocks().len();
        let mut idle_watts = vec![0.0; blocks];
        power.block_power_into(&ActivitySample::default(), &mut idle_watts);
        let prefix_left = match config.fidelity {
            Fidelity::Fast => config.fast_warmup,
            Fidelity::Exact => 0,
        };
        Ok(Simulator {
            config,
            plan,
            core,
            power,
            thermal,
            manager,
            temp_sum: vec![0.0; blocks],
            temp_samples: 0,
            temp_max: vec![f64::MIN; blocks],
            warmed: false,
            watts: vec![0.0; blocks],
            idle_watts,
            history: None,
            fast: FastState {
                prefix_left,
                window_watts: vec![0.0; blocks],
                ..FastState::default()
            },
            #[cfg(feature = "check")]
            checker: None,
        })
    }

    /// Advances the core one cycle, bracketed by the runtime checker when
    /// one is armed. With the `check` feature off this is exactly
    /// `Core::cycle` — the hot loop stays allocation- and branch-free.
    #[inline]
    fn checked_cycle<T: TraceSource>(&mut self, trace: &mut T) {
        #[cfg(feature = "check")]
        if let Some(checker) = &mut self.checker {
            checker.before_cycle(&self.core);
            self.core.cycle(trace);
            checker.after_cycle(&mut self.core);
            return;
        }
        self.core.cycle(trace);
    }

    /// The configuration this simulator was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The floorplan in use.
    #[must_use]
    pub fn floorplan(&self) -> &Floorplan {
        &self.plan
    }

    /// Immutable access to the core (stats, predictor, caches).
    #[must_use]
    pub fn core(&self) -> &Core {
        &self.core
    }

    /// Immutable access to the thermal model (current temperatures).
    #[must_use]
    pub fn thermal(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The mitigation manager (toggle/turnoff/freeze counters).
    #[must_use]
    pub fn manager(&self) -> &ThermalManager {
        &self.manager
    }

    /// Starts recording one `(cycle, temperatures)` row per thermal sample.
    ///
    /// Useful for plotting heating/cooling transients; off by default
    /// because long runs accumulate one row per sampling window.
    pub fn record_history(&mut self) {
        if self.history.is_none() {
            self.history = Some(Vec::new());
        }
    }

    /// The recorded temperature trace, if [`record_history`] was called:
    /// `(cycle, per-block temperatures)` rows in sample order.
    ///
    /// [`record_history`]: Simulator::record_history
    #[must_use]
    pub fn history(&self) -> Option<&[(u64, Vec<f64>)]> {
        self.history.as_deref()
    }

    /// Runs for up to `cycles` cycles (or until the trace drains) and
    /// returns the accumulated results.
    ///
    /// Can be called repeatedly to extend a run; statistics accumulate.
    pub fn run<T: TraceSource>(&mut self, trace: &mut T, cycles: u64) -> RunResult {
        self.run_controlled(trace, cycles, &RunControl::unlimited()).0
    }

    /// Like [`run`](Simulator::run), but checks `control` between sampling
    /// windows and stops early on cancellation or a passed deadline.
    ///
    /// Returns the results accumulated so far (a stopped run's statistics
    /// are exact for the cycles it did simulate) and why the run returned.
    /// Stopping is purely observational: the simulated cycles are
    /// bit-identical to an uncontrolled run, so a [`StopCause::Completed`]
    /// outcome is indistinguishable from [`run`](Simulator::run).
    pub fn run_controlled<T: TraceSource>(
        &mut self,
        trace: &mut T,
        cycles: u64,
        control: &RunControl<'_>,
    ) -> (RunResult, StopCause) {
        if self.config.fidelity == Fidelity::Fast {
            let cause = self.run_fast(trace, cycles, control, true);
            return (self.result(), cause);
        }
        // `Core::cycle` advances the counter by exactly one, so an elapsed
        // tally replaces the repeated `self.core.stats().cycles` reads the
        // loop head would otherwise pay per window.
        let mut elapsed = 0u64;
        let mut cause = StopCause::Completed;
        while elapsed < cycles && !self.core.is_done() {
            if let Some(stop) = control.stop_cause() {
                cause = stop;
                break;
            }
            let window = self.config.sample_interval.min(cycles - elapsed);
            elapsed += self.run_window(trace, window);
            self.sample(true);
        }
        (self.result(), cause)
    }

    /// Runs for up to `cycles` cycles like [`run`](Simulator::run), but
    /// **never consults the mitigation manager**: power is accounted and
    /// the thermal model steps normally, yet no toggles, turnoffs, or
    /// freezes happen and no mitigation counters move.
    ///
    /// This makes the resulting state independent of
    /// [`SimConfig::mitigation`], which is what lets one warmed snapshot
    /// seed measured runs of *every* technique variant
    /// ([`crate::Snapshot::resume_with_config`]). Statistics (IPC,
    /// temperature averages) keep accumulating across the warmup/measured
    /// boundary, exactly as if [`run`](Simulator::run) had been called
    /// throughout with mitigation disabled for the first `cycles` cycles.
    pub fn run_warmup<T: TraceSource>(&mut self, trace: &mut T, cycles: u64) {
        let _ = self.run_warmup_controlled(trace, cycles, &RunControl::unlimited());
    }

    /// Like [`run_warmup`](Simulator::run_warmup), but checks `control`
    /// between sampling windows — see
    /// [`run_controlled`](Simulator::run_controlled) for the semantics.
    pub fn run_warmup_controlled<T: TraceSource>(
        &mut self,
        trace: &mut T,
        cycles: u64,
        control: &RunControl<'_>,
    ) -> StopCause {
        if self.config.fidelity == Fidelity::Fast {
            return self.run_fast(trace, cycles, control, false);
        }
        let mut elapsed = 0u64;
        while elapsed < cycles && !self.core.is_done() {
            if let Some(stop) = control.stop_cause() {
                return stop;
            }
            let window = self.config.sample_interval.min(cycles - elapsed);
            elapsed += self.run_window(trace, window);
            self.sample(false);
        }
        StopCause::Completed
    }

    /// Advances the core cycle-by-cycle for up to `window` cycles, stopping
    /// early when the trace drains; returns the cycles actually run.
    ///
    /// One phase of a sampling window. The phases
    /// ([`run_window`](Self::run_window) →
    /// [`window_activity`](Self::window_activity) → power →
    /// [`sample_prepare`](Self::sample_prepare) → thermal →
    /// [`sample_stats`](Self::sample_stats)) are split out so the batched
    /// campaign engine ([`crate::BatchSimulator`]) can drive each phase
    /// across all lockstep siblings before moving to the next; the scalar
    /// [`sample`](Self::sample) chains them directly, which is what keeps
    /// the two paths bit-identical by construction.
    pub(crate) fn run_window<T: TraceSource>(&mut self, trace: &mut T, window: u64) -> u64 {
        let mut ran = 0u64;
        for _ in 0..window {
            self.checked_cycle(trace);
            ran += 1;
            if self.core.is_done() {
                break;
            }
        }
        ran
    }

    /// The interval engine ([`Fidelity::Fast`]).
    ///
    /// The first [`SimConfig::fast_warmup`] cycles run fully detailed —
    /// sampling every sub-interval like Exact — so the branch predictor
    /// and caches reach their trained steady state before any
    /// extrapolation happens; without the prefix the core would train
    /// `stretch×` slower and the die would run systematically colder for
    /// the whole run. After the prefix, time is diced into sub-intervals
    /// of one `sample_interval` each,
    /// `fast_window / sample_interval` of them per macro window. The first
    /// sub-interval of each window is simulated cycle-by-cycle and ends in
    /// the ordinary [`sample`](Self::sample). The remaining sub-intervals
    /// hold that window's power vector constant, advance the RC network
    /// analytically ([`ThermalModel::advance`]), fast-forward the workload
    /// ([`TraceSource::skip_ops`]), and extrapolate the window's
    /// throughput counters over the skipped cycles.
    ///
    /// Mitigation keeps its Exact-mode cadence: skipped sub-intervals end
    /// in a manager consult too, fed the analytically advanced
    /// temperatures and the held IQ activity, so trip points, hysteresis
    /// loops, and freeze/OPP schedules all play out against the same
    /// sampling clock as an Exact run. All timestamps handed to the
    /// manager are *virtual* cycles (core cycles + skipped cycles), which
    /// is what keeps cooling times and transition stalls the right length
    /// in simulated time. While the core is frozen, skipped sub-intervals
    /// advance with the idle (leakage-only) power vector — exactly what
    /// the power model reports for an activity-free window — so the die
    /// cools and the thaw happens when Exact's would.
    ///
    /// The runtime checker is exercised on detailed samples only — the
    /// backward-Euler residual check does not apply to the closed-form
    /// advance.
    fn run_fast<T: TraceSource>(
        &mut self,
        trace: &mut T,
        cycles: u64,
        control: &RunControl<'_>,
        consult_manager: bool,
    ) -> StopCause {
        let stretch = self.config.fast_window / self.config.sample_interval;
        let mut elapsed = 0u64;
        while elapsed < cycles && !self.core.is_done() {
            if let Some(stop) = control.stop_cause() {
                return stop;
            }
            let sub = self.config.sample_interval.min(cycles - elapsed);
            let in_prefix = self.fast.prefix_left > 0;
            if in_prefix || self.fast.window_pos == 0 {
                let before = *self.core.stats();
                elapsed += self.run_window(trace, sub);
                self.sample(consult_manager);
                self.fast_record_window(&before);
            } else {
                elapsed += sub;
                let frozen = self.fast_skip_advance(trace, sub);
                // Keep the mitigation loop on its Exact-mode cadence: one
                // consult per sampling interval, at virtual time, against
                // the analytically advanced temperatures.
                let now = self.virtual_now();
                if consult_manager {
                    self.manager.on_sample(
                        &mut self.core,
                        self.thermal.temperatures(),
                        now,
                        &self.fast.window_int_iq,
                        &self.fast.window_fp_iq,
                    );
                }
                // Mirror the statistics a detailed sample would record.
                self.sample_stats(frozen, now);
            }
            self.fast_tick(in_prefix, sub, stretch);
        }
        StopCause::Completed
    }

    /// Records the throughput deltas and power vector of the detailed
    /// sub-interval that just ended (core stats snapshotted in `before`) as
    /// the extrapolation basis for the skipped sub-intervals that follow.
    ///
    /// Must run after [`sample`](Self::sample) (or, in the batched engine,
    /// after the power phase) so `self.watts` holds the window's measured
    /// power.
    pub(crate) fn fast_record_window(&mut self, before: &CoreStats) {
        // Nothing between the window's start and this call mutates the
        // basis, so "is this the first detailed window?" can be read here.
        let first_sample = self.fast.sample_cycles == 0;
        let after = self.core.stats();
        self.fast.sample_cycles = after.cycles - before.cycles;
        self.fast.sample_committed = after.committed - before.committed;
        self.fast.sample_fetched = after.fetched - before.fetched;
        self.fast.sample_frozen = after.frozen_cycles - before.frozen_cycles;
        self.fast.sample_throttled = after.throttled_cycles - before.throttled_cycles;
        self.fast.sample_fetch_gated = after.fetch_gated_cycles - before.fetch_gated_cycles;
        if first_sample {
            self.fast.window_watts.copy_from_slice(&self.watts);
        } else {
            // One detailed window is a noisy estimate of the power
            // the skipped cycles will dissipate; blending recent
            // windows halves the estimator variance at the cost of
            // one macro window of lag (EWMA, α = 1/2).
            for (held, w) in self.fast.window_watts.iter_mut().zip(&self.watts) {
                *held = 0.5 * *held + 0.5 * w;
            }
        }
    }

    /// Advances one analytically skipped sub-interval of `sub` cycles:
    /// closed-form thermal advance, workload fast-forward, extrapolated
    /// counter updates. Returns whether the core was frozen at entry —
    /// the `was_frozen` the caller must hand to
    /// [`sample_stats`](Self::sample_stats), captured before any consult.
    pub(crate) fn fast_skip_advance<T: TraceSource>(&mut self, trace: &mut T, sub: u64) -> bool {
        let dt = sub as f64 / self.config.frequency_hz;
        let frozen = self.core.is_frozen();
        if frozen {
            // A frozen core fetches, commits, and switches nothing:
            // the die sees pure leakage and the whole sub-interval
            // is stall time.
            self.thermal.advance(&self.idle_watts, dt);
            self.fast.extra_cycles += sub;
            self.fast.extra_frozen += sub;
        } else {
            self.thermal.advance(&self.fast.window_watts, dt);
            self.fast.extra_cycles += sub;
            let len = self.fast.sample_cycles;
            // Fast-forward the workload past the instructions the
            // skipped cycles would have consumed, so the next
            // detailed window samples the phase of the program
            // that virtual time has actually reached.
            trace.skip_ops(FastState::scaled(self.fast.sample_fetched, sub, len));
            self.fast.extra_committed += FastState::scaled(self.fast.sample_committed, sub, len);
            self.fast.extra_frozen += FastState::scaled(self.fast.sample_frozen, sub, len);
            self.fast.extra_throttled += FastState::scaled(self.fast.sample_throttled, sub, len);
            self.fast.extra_fetch_gated +=
                FastState::scaled(self.fast.sample_fetch_gated, sub, len);
        }
        // The closed-form advance is outside the backward-Euler
        // residual's reach; re-base the checker so the next
        // detailed step is measured from the advanced state.
        #[cfg(feature = "check")]
        if let Some(checker) = &mut self.checker {
            checker.resync_thermal(&self.thermal);
        }
        frozen
    }

    /// Closes one Fast sub-interval: burns warmup-prefix budget or steps
    /// the macro-window phase counter.
    pub(crate) fn fast_tick(&mut self, in_prefix: bool, sub: u64, stretch: u64) {
        if in_prefix {
            // The prefix is detailed wall-to-wall; the macro-window
            // phase only starts counting once it is spent, so the
            // first post-prefix sub-interval begins a fresh window.
            self.fast.prefix_left = self.fast.prefix_left.saturating_sub(sub);
        } else {
            self.fast.window_pos = (self.fast.window_pos + 1) % stretch;
        }
    }

    /// One sense/react step: power → thermal → (optionally) mitigation →
    /// statistics. Chains the window phases the batched engine drives
    /// individually; keeping the scalar path on the same helpers is what
    /// pins batched execution bit-identical to scalar.
    fn sample(&mut self, consult_manager: bool) {
        let Some(activity) = self.window_activity() else {
            return;
        };
        // DVFS scales dynamic energy by V²f; the unscaled path is kept for
        // the common case so spatial-only runs execute the identical code.
        let scale = self.manager.dynamic_power_scale();
        if scale == 1.0 {
            self.power.block_power_into(&activity, &mut self.watts);
        } else {
            self.power.block_power_scaled_into(&activity, scale, &mut self.watts);
        }
        let (dt, settled) = self.sample_prepare(&activity);
        if settled {
            // Jump to this workload's own steady state instead of heating
            // from ambient for millions of cycles.
            self.thermal.settle(&self.watts);
        } else {
            self.thermal.step(&self.watts, dt);
        }

        // Temperatures are borrowed from the thermal model everywhere
        // below; the only copy made is the optional history row.
        let was_frozen = self.core.is_frozen();
        // Virtual time: under Exact the offset is always zero; under Fast
        // this keeps manager deadlines (cooling times, transition stalls)
        // measured in simulated cycles rather than detailed-only cycles.
        let now = self.virtual_now();
        #[cfg(feature = "check")]
        if let Some(checker) = &mut self.checker {
            checker.check_thermal(&self.thermal, &self.watts, dt, settled, now);
        }
        if consult_manager {
            #[cfg(feature = "check")]
            if let Some(checker) = &mut self.checker {
                checker.before_sample(&self.core, &self.manager);
            }
            self.manager.on_sample(
                &mut self.core,
                self.thermal.temperatures(),
                now,
                &activity.int_iq,
                &activity.fp_iq,
            );
            #[cfg(feature = "check")]
            if let Some(checker) = &mut self.checker {
                checker.after_sample(
                    &self.core,
                    &self.manager,
                    self.thermal.temperatures(),
                    now,
                    &activity.int_iq,
                    &activity.fp_iq,
                );
            }
        }
        self.sample_stats(was_frozen, now);
    }

    /// Harvests the window's activity counters, or `None` for an empty
    /// window (no cycles ran — the trace drained at the window boundary).
    /// Also latches the issue-queue activity the interval engine replays
    /// into skipped-interval consults: a pair of Copy structs, so the
    /// Exact path pays two register-width stores and reads nothing back.
    pub(crate) fn window_activity(&mut self) -> Option<ActivitySample> {
        let activity = self.core.take_activity();
        if activity.cycles == 0 {
            return None;
        }
        self.fast.window_int_iq = activity.int_iq;
        self.fast.window_fp_iq = activity.fp_iq;
        Some(activity)
    }

    /// The thermal decision for a window whose power is already in
    /// `self.watts`: returns `(dt, settled)` where `settled` means this
    /// window performs the one-time warm-start settle (latched here)
    /// instead of a backward-Euler step.
    pub(crate) fn sample_prepare(&mut self, activity: &ActivitySample) -> (f64, bool) {
        let dt = activity.cycles as f64 / self.config.frequency_hz;
        let settled = self.config.warm_start && !self.warmed;
        if settled {
            self.warmed = true;
        }
        (dt, settled)
    }

    /// Accumulates the per-window temperature statistics and the optional
    /// history row. `was_frozen` must be the freeze state *before* the
    /// window's consult; `now` the virtual cycle stamp.
    pub(crate) fn sample_stats(&mut self, was_frozen: bool, now: u64) {
        // The paper's table temperatures average over execution (non
        // -stalled) time; track the peak unconditionally.
        if !was_frozen {
            for (sum, t) in self.temp_sum.iter_mut().zip(self.thermal.temperatures()) {
                *sum += t;
            }
            self.temp_samples += 1;
        }
        for (max, t) in self.temp_max.iter_mut().zip(self.thermal.temperatures()) {
            *max = max.max(*t);
        }
        if let Some(history) = &mut self.history {
            history.push((now, self.thermal.temperatures().to_vec()));
        }
    }

    /// Virtual time: core cycles plus analytically skipped cycles. Under
    /// Exact the offset is always zero.
    pub(crate) fn virtual_now(&self) -> u64 {
        self.core.stats().cycles + self.fast.extra_cycles
    }

    /// Mutable core access for the batched engine's external actuation.
    pub(crate) fn core_mut(&mut self) -> &mut Core {
        &mut self.core
    }

    /// The per-block power scratch as a power-accumulation target.
    pub(crate) fn watts_mut(&mut self) -> &mut [f64] {
        &mut self.watts
    }

    /// This simulator as one lane of a batched thermal solve: its model
    /// plus the power vector the current window accumulated.
    pub(crate) fn thermal_lane(&mut self) -> (&mut ThermalModel, &[f64]) {
        (&mut self.thermal, &self.watts)
    }

    /// The held issue-queue activity of the last detailed window — what
    /// skipped-interval consults replay.
    pub(crate) fn window_iqs(&self) -> (IqActivity, IqActivity) {
        (self.fast.window_int_iq, self.fast.window_fp_iq)
    }

    /// Whether the interval engine is still inside its detailed warmup
    /// prefix.
    pub(crate) fn fast_in_prefix(&self) -> bool {
        self.fast.prefix_left > 0
    }

    /// Sub-intervals completed in the current macro window.
    pub(crate) fn fast_window_pos(&self) -> u64 {
        self.fast.window_pos
    }

    /// Captures the simulator's dynamic state for [`crate::Snapshot`].
    ///
    /// The recorded temperature history ([`record_history`]) is *not*
    /// part of the state: it is a plotting aid, not simulation state, and
    /// restoring it into a fork would duplicate rows.
    ///
    /// [`record_history`]: Simulator::record_history
    #[must_use]
    pub fn state(&self) -> SimulatorState {
        SimulatorState {
            core: self.core.snapshot(),
            manager: self.manager.snapshot(),
            thermal_node_bits: encode_bits(self.thermal.node_temperatures()),
            temp_sum_bits: encode_bits(&self.temp_sum),
            temp_max_bits: encode_bits(&self.temp_max),
            temp_samples: self.temp_samples,
            warmed: self.warmed,
            fast: crate::snapshot::FastEngineState {
                prefix_left: self.fast.prefix_left,
                window_pos: self.fast.window_pos,
                window_watts_bits: encode_bits(&self.fast.window_watts),
                window_int_iq: self.fast.window_int_iq,
                window_fp_iq: self.fast.window_fp_iq,
                sample_cycles: self.fast.sample_cycles,
                sample_committed: self.fast.sample_committed,
                sample_fetched: self.fast.sample_fetched,
                sample_frozen: self.fast.sample_frozen,
                sample_throttled: self.fast.sample_throttled,
                sample_fetch_gated: self.fast.sample_fetch_gated,
                extra_cycles: self.fast.extra_cycles,
                extra_committed: self.fast.extra_committed,
                extra_frozen: self.fast.extra_frozen,
                extra_throttled: self.fast.extra_throttled,
                extra_fetch_gated: self.fast.extra_fetch_gated,
            },
        }
    }

    /// Restores dynamic state captured by [`state`](Simulator::state).
    ///
    /// The simulator must have been built from a structurally compatible
    /// configuration (same core geometry, floorplan, package, energy
    /// tables, frequency, and sampling cadence; the mitigation technique
    /// may differ). [`crate::Snapshot::resume_with_config`] enforces that
    /// contract; calling this directly performs only the shape checks the
    /// sub-restores provide.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] naming the first subsystem whose state
    /// does not fit this simulator.
    pub fn restore_state(&mut self, state: &SimulatorState) -> Result<(), Error> {
        let blocks = self.plan.blocks().len();
        if state.temp_sum_bits.len() != blocks || state.temp_max_bits.len() != blocks {
            return Err(Error::Config(format!(
                "temperature statistics cover {} blocks, floorplan has {blocks}",
                state.temp_sum_bits.len()
            )));
        }
        self.core.restore(&state.core).map_err(|e| Error::Config(format!("core: {e}")))?;
        self.thermal
            .restore_node_temperatures(&decode_bits(&state.thermal_node_bits))
            .map_err(|e| Error::Config(format!("thermal: {e}")))?;
        if state.fast.window_watts_bits.len() != blocks {
            return Err(Error::Config(format!(
                "fast-engine power vector covers {} blocks, floorplan has {blocks}",
                state.fast.window_watts_bits.len()
            )));
        }
        self.manager.restore(&state.manager);
        self.temp_sum = decode_bits(&state.temp_sum_bits);
        self.temp_max = decode_bits(&state.temp_max_bits);
        self.temp_samples = state.temp_samples;
        self.warmed = state.warmed;
        self.fast.prefix_left = state.fast.prefix_left;
        self.fast.window_pos = state.fast.window_pos;
        self.fast.window_watts = decode_bits(&state.fast.window_watts_bits);
        self.fast.window_int_iq = state.fast.window_int_iq;
        self.fast.window_fp_iq = state.fast.window_fp_iq;
        self.fast.sample_cycles = state.fast.sample_cycles;
        self.fast.sample_committed = state.fast.sample_committed;
        self.fast.sample_fetched = state.fast.sample_fetched;
        self.fast.sample_frozen = state.fast.sample_frozen;
        self.fast.sample_throttled = state.fast.sample_throttled;
        self.fast.sample_fetch_gated = state.fast.sample_fetch_gated;
        self.fast.extra_cycles = state.fast.extra_cycles;
        self.fast.extra_committed = state.fast.extra_committed;
        self.fast.extra_frozen = state.fast.extra_frozen;
        self.fast.extra_throttled = state.fast.extra_throttled;
        self.fast.extra_fetch_gated = state.fast.extra_fetch_gated;
        // A restored simulator is a different execution: re-arm checking
        // against the restored state so the oracle does not cross-check
        // the new run against pre-restore history.
        #[cfg(feature = "check")]
        if self.checker.is_some() {
            self.enable_checking()?;
        }
        Ok(())
    }

    /// Arms the differential oracle and runtime invariant checkers
    /// (DESIGN.md §10): every subsequent cycle is bracketed by the
    /// pipeline invariants, every retirement is cross-checked against an
    /// in-order reference executor, every thermal solve is verified
    /// against the heat equation, and every mitigation sample is compared
    /// with an independent mirror of the manager's decision rules.
    ///
    /// May be called mid-run (e.g. after a warm-start restore): the
    /// checkers pick up from the current architectural state. Violations
    /// accumulate silently; collect them with
    /// [`finish_checking`](Simulator::finish_checking) or inspect
    /// [`checker`](Simulator::checker) mid-run.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the floorplan lacks the sensor blocks
    /// the mitigation mirror needs.
    #[cfg(feature = "check")]
    pub fn enable_checking(&mut self) -> Result<(), Error> {
        self.core.enable_op_log();
        let checker = powerbalance_check::RuntimeChecker::new(
            &self.plan,
            &self.config.mitigation,
            &self.core,
            &self.thermal,
        )
        .map_err(Error::Config)?;
        self.checker = Some(Box::new(checker));
        Ok(())
    }

    /// Closes out the oracle (end-of-run retirement accounting, final
    /// architectural-state comparison) and returns all retained
    /// violations. Returns an empty list when checking was never enabled.
    #[cfg(feature = "check")]
    pub fn finish_checking(&mut self) -> Vec<powerbalance_check::Violation> {
        match &mut self.checker {
            Some(checker) => {
                checker.finish(&self.core);
                checker.violations().to_vec()
            }
            None => Vec::new(),
        }
    }

    /// The armed runtime checker, if [`enable_checking`] was called.
    ///
    /// [`enable_checking`]: Simulator::enable_checking
    #[cfg(feature = "check")]
    #[must_use]
    pub fn checker(&self) -> Option<&powerbalance_check::RuntimeChecker> {
        self.checker.as_deref()
    }

    /// Snapshot of the accumulated results.
    #[must_use]
    pub fn result(&self) -> RunResult {
        self.result_with_stats(self.manager.stats())
    }

    /// Like [`result`](Self::result) but reporting `mstats` instead of the
    /// internal manager's counters — the batched engine holds each
    /// sibling's mitigation statistics outside the shared class simulator.
    pub(crate) fn result_with_stats(&self, mstats: &MitigationStats) -> RunResult {
        let stats = self.core.stats();
        let samples = self.temp_samples.max(1) as f64;
        let temperatures = self
            .plan
            .blocks()
            .iter()
            .enumerate()
            .map(|(i, b)| BlockTemperature {
                name: b.name.clone(),
                avg: if self.temp_samples == 0 {
                    self.thermal.temperature(i)
                } else {
                    self.temp_sum[i] / samples
                },
                max: if self.temp_max[i] == f64::MIN {
                    self.thermal.temperature(i)
                } else {
                    self.temp_max[i]
                },
                last: self.thermal.temperature(i),
            })
            .collect();
        // Fold the interval engine's extrapolated cycles back into the
        // headline counters. Under Exact fidelity every `extra_*` is zero
        // and the arithmetic below reduces bit-for-bit to the core's own
        // counters (the IPC expression mirrors `CoreStats::ipc`).
        let cycles = stats.cycles + self.fast.extra_cycles;
        let committed = stats.committed + self.fast.extra_committed;
        RunResult {
            cycles,
            committed,
            ipc: if cycles == 0 { 0.0 } else { committed as f64 / cycles as f64 },
            frozen_cycles: stats.frozen_cycles + self.fast.extra_frozen,
            toggles: mstats.toggles,
            alu_turnoffs: mstats.alu_turnoffs,
            rf_turnoffs: mstats.rf_turnoffs,
            freezes: mstats.freezes,
            opp_transitions: mstats.opp_transitions,
            duty_shifts: mstats.duty_shifts,
            throttled_cycles: stats.throttled_cycles + self.fast.extra_throttled,
            fetch_gated_cycles: stats.fetch_gated_cycles + self.fast.extra_fetch_gated,
            temperatures,
            int_issued_per_unit: stats.int_issued_per_unit,
            int_rf_reads: stats.int_rf_reads,
            mispredict_rate: self.core.bpred().mispredict_rate(),
            l1d_miss_rate: self.core.memory().l1d().miss_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;
    use powerbalance_workloads::spec2000;

    #[test]
    fn runs_and_reports() {
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let r = sim.run(&mut trace, 60_000);
        assert!(r.cycles >= 60_000);
        assert!(r.committed > 1_000);
        assert_eq!(r.temperatures.len(), sim.floorplan().blocks().len());
        assert!(r.avg_temp("IntQ0").expect("block exists") > 318.0);
    }

    #[test]
    fn run_extends_cumulatively() {
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let first = sim.run(&mut trace, 30_000);
        let second = sim.run(&mut trace, 30_000);
        assert!(second.cycles >= first.cycles + 30_000);
        assert!(second.committed > first.committed);
    }

    #[test]
    fn deterministic_across_instances() {
        let build = || {
            let mut sim = Simulator::new(experiments::issue_queue(true)).expect("valid config");
            let mut trace = spec2000::by_name("mesa").expect("profile").trace(11);
            sim.run(&mut trace, 80_000)
        };
        let a = build();
        let b = build();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.toggles, b.toggles);
        assert_eq!(a.freezes, b.freezes);
        for (x, y) in a.temperatures.iter().zip(&b.temperatures) {
            assert!((x.avg - y.avg).abs() < 1e-12);
        }
    }

    #[test]
    fn history_records_one_row_per_sample() {
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        sim.record_history();
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let r = sim.run(&mut trace, 50_000);
        let history = sim.history().expect("recording enabled");
        let expected = r.cycles / sim.config().sample_interval;
        assert_eq!(history.len() as u64, expected);
        // Rows are cycle-ordered and sized per block.
        let blocks = sim.floorplan().blocks().len();
        let mut last = 0;
        for (cycle, temps) in history {
            assert!(*cycle > last || last == 0);
            last = *cycle;
            assert_eq!(temps.len(), blocks);
        }
    }

    #[test]
    fn history_is_off_by_default() {
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let _ = sim.run(&mut trace, 20_000);
        assert!(sim.history().is_none());
    }

    #[test]
    fn controlled_run_without_controls_matches_run() {
        let run_plain = || {
            let mut sim = Simulator::new(experiments::issue_queue(true)).expect("valid config");
            let mut trace = spec2000::by_name("mesa").expect("profile").trace(11);
            sim.run(&mut trace, 80_000)
        };
        let mut sim = Simulator::new(experiments::issue_queue(true)).expect("valid config");
        let mut trace = spec2000::by_name("mesa").expect("profile").trace(11);
        let (controlled, cause) = sim.run_controlled(&mut trace, 80_000, &RunControl::unlimited());
        assert_eq!(cause, StopCause::Completed);
        assert_eq!(controlled, run_plain());
    }

    #[test]
    fn pre_set_cancel_flag_stops_before_the_first_window() {
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let flag = AtomicBool::new(true);
        let control = RunControl::unlimited().with_cancel(&flag);
        let (result, cause) = sim.run_controlled(&mut trace, 100_000, &control);
        assert_eq!(cause, StopCause::Cancelled);
        assert_eq!(result.cycles, 0, "cancel is checked before the first window");
    }

    #[test]
    fn cancel_stops_at_a_window_boundary_with_exact_stats() {
        // Run 30k cycles uncontrolled, then cancel a controlled run after
        // it has started: the cancelled run's statistics must exactly
        // match an uncontrolled run of the length it reached.
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let flag = AtomicBool::new(false);
        let control = RunControl::unlimited().with_cancel(&flag);
        let (first, cause) = sim.run_controlled(&mut trace, 30_000, &control);
        assert_eq!(cause, StopCause::Completed);
        flag.store(true, Ordering::Relaxed);
        let (second, cause) = sim.run_controlled(&mut trace, 30_000, &control);
        assert_eq!(cause, StopCause::Cancelled);
        assert_eq!(second.cycles, first.cycles, "no extra window ran after the cancel");

        let mut reference = Simulator::new(SimConfig::default()).expect("valid config");
        let mut ref_trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let reference_result = reference.run(&mut ref_trace, first.cycles);
        assert_eq!(second, reference_result, "partial stats are exact");
    }

    #[test]
    fn passed_deadline_times_the_run_out() {
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let control = RunControl::unlimited().with_deadline(Instant::now());
        let (result, cause) = sim.run_controlled(&mut trace, 100_000, &control);
        assert_eq!(cause, StopCause::TimedOut);
        assert_eq!(result.cycles, 0);
        // Cancellation wins when both stop conditions hold.
        let flag = AtomicBool::new(true);
        let both = RunControl::unlimited().with_cancel(&flag).with_deadline(Instant::now());
        assert_eq!(both.stop_cause(), Some(StopCause::Cancelled));
    }

    #[test]
    fn warmup_honours_controls_too() {
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let flag = AtomicBool::new(true);
        let control = RunControl::unlimited().with_cancel(&flag);
        let cause = sim.run_warmup_controlled(&mut trace, 50_000, &control);
        assert_eq!(cause, StopCause::Cancelled);
        assert_eq!(sim.core().stats().cycles, 0);
    }

    #[test]
    fn fast_mode_covers_the_full_budget_with_a_fraction_of_detailed_cycles() {
        let cfg = SimConfig {
            fidelity: Fidelity::Fast,
            fast_window: 40_000,
            fast_warmup: 0,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(cfg).expect("valid config");
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let r = sim.run(&mut trace, 200_000);
        assert!(r.cycles >= 200_000, "virtual cycles cover the budget: {}", r.cycles);
        assert!(r.committed > 1_000);
        assert!(r.ipc > 0.0);
        // Only 1 sub-interval in 4 is simulated in detail (stretch = 4).
        let detailed = sim.core().stats().cycles;
        assert!(detailed <= 50_000 + 10_000, "detailed cycles {detailed} exceed the duty cycle");
        assert!(r.avg_temp("IntQ0").expect("block exists") > 318.0);
    }

    #[test]
    fn fast_warmup_prefix_is_bit_identical_to_exact() {
        // A Fast run that ends inside its detailed warmup prefix IS an
        // Exact run: every cycle was simulated, nothing extrapolated.
        let fast_cfg = SimConfig {
            fidelity: Fidelity::Fast,
            fast_window: 40_000,
            fast_warmup: 120_000,
            ..SimConfig::default()
        };
        let mut fast = Simulator::new(fast_cfg).expect("valid config");
        let mut trace = spec2000::by_name("crafty").expect("profile").trace(5);
        let f = fast.run(&mut trace, 120_000);

        let mut exact = Simulator::new(SimConfig::default()).expect("valid config");
        let mut trace = spec2000::by_name("crafty").expect("profile").trace(5);
        let e = exact.run(&mut trace, 120_000);
        assert_eq!(f, e, "prefix cycles are exact");
        assert_eq!(fast.core().stats().cycles, exact.core().stats().cycles);
    }

    #[test]
    fn fast_mode_is_deterministic() {
        let build = || {
            let cfg = SimConfig {
                fidelity: Fidelity::Fast,
                fast_window: 50_000,
                ..experiments::issue_queue(true)
            };
            let mut sim = Simulator::new(cfg).expect("valid config");
            let mut trace = spec2000::by_name("mesa").expect("profile").trace(11);
            sim.run(&mut trace, 300_000)
        };
        let a = build();
        let b = build();
        assert_eq!(a, b, "fast runs are bit-deterministic");
    }

    #[test]
    fn fast_mode_history_keeps_the_exact_sampling_cadence() {
        // One history row per sub-interval, detailed or skipped: plotting
        // density does not degrade under Fast fidelity.
        let cfg = SimConfig {
            fidelity: Fidelity::Fast,
            fast_window: 50_000,
            fast_warmup: 20_000,
            ..SimConfig::default()
        };
        let mut sim = Simulator::new(cfg).expect("valid config");
        sim.record_history();
        let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
        let r = sim.run(&mut trace, 150_000);
        let history = sim.history().expect("recording enabled");
        assert_eq!(history.len() as u64, r.cycles / sim.config().sample_interval);
        let mut last = 0;
        for (cycle, temps) in history {
            assert!(*cycle > last || last == 0, "virtual cycle stamps are ordered");
            last = *cycle;
            assert_eq!(temps.len(), sim.floorplan().blocks().len());
        }
    }

    #[test]
    fn fast_mode_temperatures_stay_physical() {
        let cfg = SimConfig {
            fidelity: Fidelity::Fast,
            fast_window: 100_000,
            ..experiments::alu(experiments::AluPolicy::FineGrainTurnoff)
        };
        let mut sim = Simulator::new(cfg).expect("valid config");
        let mut trace = spec2000::by_name("crafty").expect("profile").trace(5);
        let r = sim.run(&mut trace, 500_000);
        for t in &r.temperatures {
            assert!(t.avg >= 318.0 - 1e-9 && t.avg < 500.0, "{}: avg {}", t.name, t.avg);
            assert!(t.max >= t.last - 1e-9, "{}: max {} < last {}", t.name, t.max, t.last);
        }
    }

    #[test]
    fn warm_start_heats_the_die_immediately() {
        let cfg = SimConfig { warm_start: true, ..SimConfig::default() };
        let mut sim = Simulator::new(cfg).expect("valid config");
        let mut trace = spec2000::by_name("crafty").expect("profile").trace(5);
        let r = sim.run(&mut trace, 30_000);
        assert!(
            r.hottest().avg > 330.0,
            "warm start should reach operating temperature: {:?}",
            r.hottest()
        );
    }
}

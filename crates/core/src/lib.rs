//! `powerbalance` — a reproduction of *Balancing Resource Utilization to
//! Mitigate Power Density in Processor Pipelines* (Powell, Schuchman,
//! Vijaykumar; MICRO 2005).
//!
//! The paper observes that three back-end resources of an out-of-order
//! superscalar — the compacting issue queue, the statically-prioritized
//! ALUs, and the register-file copies — are utilized *asymmetrically* by
//! design, which concentrates power density and triggers thermal
//! emergencies. It proposes three simple spatial techniques (activity
//! toggling, fine-grain turnoff, and priority mapping with turnoff) that
//! balance utilization and defer the performance-killing temporal stalls.
//!
//! This crate is the user-facing facade over the full simulation stack:
//!
//! | layer | crate |
//! |---|---|
//! | synthetic SPEC2000-like workloads | `powerbalance-workloads` |
//! | cycle-level 6-wide OoO core | `powerbalance-uarch` |
//! | event-energy accounting (Table 3) | `powerbalance-power` |
//! | HotSpot-style RC thermal model | `powerbalance-thermal` |
//! | the paper's techniques | `powerbalance-mitigation` |
//!
//! # Quickstart
//!
//! ```
//! use powerbalance::{experiments, Simulator};
//! use powerbalance_workloads::spec2000;
//!
//! // Issue-queue-constrained CPU with activity toggling (paper §4.1).
//! let config = experiments::issue_queue(true);
//! let mut sim = Simulator::new(config)?;
//! let profile = spec2000::by_name("mesa").expect("known benchmark");
//! let result = sim.run(&mut profile.trace(42), 200_000);
//! println!("mesa: IPC {:.2}, {} toggles", result.ipc, result.toggles);
//! # Ok::<(), powerbalance::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod error;
pub mod experiments;
mod multicore;
mod result;
mod simulator;
mod snapshot;

pub use batch::{batch_key, BatchSimulator};
pub use config::{Fidelity, SimConfig, DEFAULT_FAST_WINDOW};
pub use error::Error;
pub use multicore::{
    JobCore, LaneState, MultiCoreResult, MultiCoreSimulator, MultiCoreState, TaskSet,
};
pub use result::{BlockTemperature, RunResult};
pub use simulator::{RunControl, Simulator, StopCause};
pub use snapshot::{FastEngineState, SimulatorState, Snapshot, FORMAT_VERSION};

// The scheduling vocabulary rides along with the multi-core engine so
// callers can build task queues without a direct `powerbalance-sched`
// dependency.
pub use powerbalance_sched::{SchedulerKind, SegmentLen, Task, TaskQueue, DEFAULT_MIGRATION_STALL};

// Re-export the subsystem vocabulary users need to configure runs.
// `spec2000` rides along so downstream crates (harness, bench, cli) can
// name benchmarks without depending on `powerbalance-workloads` directly.
pub use powerbalance_isa::{TraceCursor, TraceSource};
pub use powerbalance_mitigation::{
    DutyLadder, DvfsParams, GateParams, GlobalPolicy, MitigationConfig, OppLadder, OppLevel,
    Thresholds, TripPoint, TripSeverity, TripTable,
};
pub use powerbalance_power::EnergyTables;
pub use powerbalance_thermal::ev6::FloorplanKind;
pub use powerbalance_thermal::PackageConfig;
pub use powerbalance_uarch::{CoreConfig, IqMode, MappingPolicy, SelectPolicy};
pub use powerbalance_workloads::spec2000;

// Correctness tooling (only with the `check` feature): the violation
// vocabulary fuzz/test drivers need to inspect and persist findings.
#[cfg(feature = "check")]
pub use powerbalance_check::{RuntimeChecker, Violation, ViolationKind};

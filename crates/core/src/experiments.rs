//! Preset configurations for every experiment in the paper's evaluation.
//!
//! Each function returns the [`SimConfig`] for one bar/row of a figure or
//! table; the `powerbalance-bench` binaries sweep these over the 22
//! benchmarks to regenerate the paper's results.

use crate::SimConfig;
use powerbalance_mitigation::MitigationConfig;
use powerbalance_thermal::ev6::FloorplanKind;
use powerbalance_uarch::{MappingPolicy, SelectPolicy};
use serde::{Deserialize, Serialize};

/// ALU-experiment scheduling policy (paper §4.2 / Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluPolicy {
    /// Static priority, whole-core stall on any hot ALU (baseline).
    Base,
    /// Static priority with fine-grain turnoff of hot ALUs.
    FineGrainTurnoff,
    /// Ideal round-robin issue (upper bound), with fine-grain turnoff.
    RoundRobin,
}

/// Issue-queue experiment (paper §4.1, Table 4, Figure 6).
///
/// `toggling = false` is the base configuration; `true` enables activity
/// toggling on both queues. Both run on the issue-queue-constrained
/// floorplan.
///
/// # Examples
///
/// ```
/// use powerbalance::experiments;
///
/// let base = experiments::issue_queue(false);
/// let toggling = experiments::issue_queue(true);
/// assert!(!base.mitigation.activity_toggling);
/// assert!(toggling.mitigation.activity_toggling);
/// ```
#[must_use]
pub fn issue_queue(toggling: bool) -> SimConfig {
    SimConfig {
        floorplan: FloorplanKind::IssueConstrained,
        mitigation: if toggling {
            MitigationConfig::toggling_only()
        } else {
            MitigationConfig::baseline()
        },
        ..SimConfig::default()
    }
}

/// ALU experiment (paper §4.2, Table 5, Figure 7) on the ALU-constrained
/// floorplan.
#[must_use]
pub fn alu(policy: AluPolicy) -> SimConfig {
    let mut cfg = SimConfig { floorplan: FloorplanKind::AluConstrained, ..SimConfig::default() };
    match policy {
        AluPolicy::Base => {
            cfg.mitigation = MitigationConfig::baseline();
        }
        AluPolicy::FineGrainTurnoff => {
            cfg.mitigation = MitigationConfig::alu_turnoff_only();
        }
        AluPolicy::RoundRobin => {
            cfg.mitigation = MitigationConfig::alu_turnoff_only();
            cfg.core.select_policy = SelectPolicy::RoundRobin;
        }
    }
    cfg
}

/// Register-file experiment (paper §4.3, Table 6, Figure 8) on the
/// register-file-constrained floorplan: one of the four mapping × turnoff
/// combinations.
#[must_use]
pub fn regfile(mapping: MappingPolicy, turnoff: bool) -> SimConfig {
    let mut cfg = SimConfig {
        floorplan: FloorplanKind::RegfileConstrained,
        mitigation: if turnoff {
            MitigationConfig::rf_turnoff_only()
        } else {
            MitigationConfig::baseline()
        },
        ..SimConfig::default()
    };
    cfg.core.mapping = mapping;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        issue_queue(false).validate().expect("iq base");
        issue_queue(true).validate().expect("iq toggling");
        for p in [AluPolicy::Base, AluPolicy::FineGrainTurnoff, AluPolicy::RoundRobin] {
            alu(p).validate().unwrap_or_else(|e| panic!("alu {p:?}: {e}"));
        }
        for m in
            [MappingPolicy::Balanced, MappingPolicy::Priority, MappingPolicy::CompletelyBalanced]
        {
            for t in [false, true] {
                regfile(m, t).validate().unwrap_or_else(|e| panic!("rf {m:?}/{t}: {e}"));
            }
        }
    }

    #[test]
    fn presets_pick_the_right_floorplan() {
        assert_eq!(issue_queue(true).floorplan, FloorplanKind::IssueConstrained);
        assert_eq!(alu(AluPolicy::Base).floorplan, FloorplanKind::AluConstrained);
        assert_eq!(
            regfile(MappingPolicy::Priority, true).floorplan,
            FloorplanKind::RegfileConstrained
        );
    }

    #[test]
    fn round_robin_sets_select_policy() {
        assert_eq!(alu(AluPolicy::RoundRobin).core.select_policy, SelectPolicy::RoundRobin);
        assert_eq!(alu(AluPolicy::FineGrainTurnoff).core.select_policy, SelectPolicy::Static);
    }

    #[test]
    fn regfile_presets_set_mapping() {
        assert_eq!(regfile(MappingPolicy::Balanced, false).core.mapping, MappingPolicy::Balanced);
        assert_eq!(regfile(MappingPolicy::Priority, true).core.mapping, MappingPolicy::Priority);
    }
}

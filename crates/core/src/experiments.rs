//! Preset configurations for every experiment in the paper's evaluation.
//!
//! Each function returns the [`SimConfig`] for one bar/row of a figure or
//! table; the `powerbalance-bench` binaries sweep these over the 22
//! benchmarks to regenerate the paper's results.

use crate::SimConfig;
use powerbalance_mitigation::MitigationConfig;
use powerbalance_thermal::ev6::FloorplanKind;
use powerbalance_uarch::{MappingPolicy, SelectPolicy};
use serde::{Deserialize, Serialize};

/// ALU-experiment scheduling policy (paper §4.2 / Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AluPolicy {
    /// Static priority, whole-core stall on any hot ALU (baseline).
    Base,
    /// Static priority with fine-grain turnoff of hot ALUs.
    FineGrainTurnoff,
    /// Ideal round-robin issue (upper bound), with fine-grain turnoff.
    RoundRobin,
}

/// Issue-queue experiment (paper §4.1, Table 4, Figure 6).
///
/// `toggling = false` is the base configuration; `true` enables activity
/// toggling on both queues. Both run on the issue-queue-constrained
/// floorplan.
///
/// # Examples
///
/// ```
/// use powerbalance::experiments;
///
/// let base = experiments::issue_queue(false);
/// let toggling = experiments::issue_queue(true);
/// assert!(!base.mitigation.activity_toggling);
/// assert!(toggling.mitigation.activity_toggling);
/// ```
#[must_use]
pub fn issue_queue(toggling: bool) -> SimConfig {
    SimConfig {
        floorplan: FloorplanKind::IssueConstrained,
        mitigation: if toggling {
            MitigationConfig::toggling_only()
        } else {
            MitigationConfig::baseline()
        },
        ..SimConfig::default()
    }
}

/// ALU experiment (paper §4.2, Table 5, Figure 7) on the ALU-constrained
/// floorplan.
#[must_use]
pub fn alu(policy: AluPolicy) -> SimConfig {
    let mut cfg = SimConfig { floorplan: FloorplanKind::AluConstrained, ..SimConfig::default() };
    match policy {
        AluPolicy::Base => {
            cfg.mitigation = MitigationConfig::baseline();
        }
        AluPolicy::FineGrainTurnoff => {
            cfg.mitigation = MitigationConfig::alu_turnoff_only();
        }
        AluPolicy::RoundRobin => {
            cfg.mitigation = MitigationConfig::alu_turnoff_only();
            cfg.core.select_policy = SelectPolicy::RoundRobin;
        }
    }
    cfg
}

/// Register-file experiment (paper §4.3, Table 6, Figure 8) on the
/// register-file-constrained floorplan: one of the four mapping × turnoff
/// combinations.
#[must_use]
pub fn regfile(mapping: MappingPolicy, turnoff: bool) -> SimConfig {
    let mut cfg = SimConfig {
        floorplan: FloorplanKind::RegfileConstrained,
        mitigation: if turnoff {
            MitigationConfig::rf_turnoff_only()
        } else {
            MitigationConfig::baseline()
        },
        ..SimConfig::default()
    };
    cfg.core.mapping = mapping;
    cfg
}

/// One column of the spatial-vs-global ablation (paper §5, Figure 9):
/// which thermal policy handles an overheating resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// No mitigation beyond the temporal freeze backstop.
    None,
    /// All three spatial techniques (toggling, ALU turnoff, RF turnoff).
    Spatial,
    /// Global dynamic voltage/frequency scaling over the OPP ladder.
    Dvfs,
    /// Global fetch gating (front-end duty-cycle throttle).
    FetchGate,
    /// Global clock throttling (whole-core duty-cycle gating).
    ClockThrottle,
    /// Spatial techniques with the DVFS ladder layered on top.
    Combined,
}

impl PolicyKind {
    /// Every policy, in the order ablation tables print them.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::None,
        PolicyKind::Spatial,
        PolicyKind::Dvfs,
        PolicyKind::FetchGate,
        PolicyKind::ClockThrottle,
        PolicyKind::Combined,
    ];

    /// Stable CLI/JSON name for the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::None => "none",
            PolicyKind::Spatial => "spatial",
            PolicyKind::Dvfs => "dvfs",
            PolicyKind::FetchGate => "fetch-gate",
            PolicyKind::ClockThrottle => "clock-throttle",
            PolicyKind::Combined => "combined",
        }
    }

    /// Parses the name produced by [`name`](PolicyKind::name).
    ///
    /// # Errors
    ///
    /// Returns a message listing the accepted names.
    pub fn from_name(name: &str) -> Result<Self, String> {
        PolicyKind::ALL.into_iter().find(|p| p.name() == name).ok_or_else(|| {
            let names: Vec<&str> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
            format!("unknown policy '{name}' (expected one of: {})", names.join(", "))
        })
    }

    /// The mitigation configuration this policy column runs with.
    #[must_use]
    pub fn mitigation(self) -> MitigationConfig {
        match self {
            PolicyKind::None => MitigationConfig::baseline(),
            PolicyKind::Spatial => MitigationConfig::spatial_all(),
            PolicyKind::Dvfs => MitigationConfig::dvfs(),
            PolicyKind::FetchGate => MitigationConfig::fetch_gating(),
            PolicyKind::ClockThrottle => MitigationConfig::clock_throttle(),
            PolicyKind::Combined => MitigationConfig::combined(),
        }
    }
}

/// Policy-ablation experiment (paper §5, Figure 9): one thermal policy on
/// one constrained floorplan, everything else at defaults.
#[must_use]
pub fn policy(kind: PolicyKind, floorplan: FloorplanKind) -> SimConfig {
    SimConfig { floorplan, mitigation: kind.mitigation(), ..SimConfig::default() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        issue_queue(false).validate().expect("iq base");
        issue_queue(true).validate().expect("iq toggling");
        for p in [AluPolicy::Base, AluPolicy::FineGrainTurnoff, AluPolicy::RoundRobin] {
            alu(p).validate().unwrap_or_else(|e| panic!("alu {p:?}: {e}"));
        }
        for m in
            [MappingPolicy::Balanced, MappingPolicy::Priority, MappingPolicy::CompletelyBalanced]
        {
            for t in [false, true] {
                regfile(m, t).validate().unwrap_or_else(|e| panic!("rf {m:?}/{t}: {e}"));
            }
        }
    }

    #[test]
    fn policy_presets_validate_and_round_trip_names() {
        for kind in PolicyKind::ALL {
            let cfg = policy(kind, FloorplanKind::IssueConstrained);
            cfg.validate().unwrap_or_else(|e| panic!("policy {kind:?}: {e}"));
            assert_eq!(PolicyKind::from_name(kind.name()), Ok(kind));
        }
        assert!(PolicyKind::from_name("hotspot").is_err());
    }

    #[test]
    fn presets_pick_the_right_floorplan() {
        assert_eq!(issue_queue(true).floorplan, FloorplanKind::IssueConstrained);
        assert_eq!(alu(AluPolicy::Base).floorplan, FloorplanKind::AluConstrained);
        assert_eq!(
            regfile(MappingPolicy::Priority, true).floorplan,
            FloorplanKind::RegfileConstrained
        );
    }

    #[test]
    fn round_robin_sets_select_policy() {
        assert_eq!(alu(AluPolicy::RoundRobin).core.select_policy, SelectPolicy::RoundRobin);
        assert_eq!(alu(AluPolicy::FineGrainTurnoff).core.select_policy, SelectPolicy::Static);
    }

    #[test]
    fn regfile_presets_set_mapping() {
        assert_eq!(regfile(MappingPolicy::Balanced, false).core.mapping, MappingPolicy::Balanced);
        assert_eq!(regfile(MappingPolicy::Priority, true).core.mapping, MappingPolicy::Priority);
    }
}

//! Run results.

use serde::{Deserialize, Serialize};

/// Temperature statistics for one floorplan block over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockTemperature {
    /// Block name (e.g. `"IntQ1"`).
    pub name: String,
    /// Average temperature over non-stalled execution (K) — the paper's
    /// Table 4/5/6 metric.
    pub avg: f64,
    /// Peak temperature seen at any sample (K).
    pub max: f64,
    /// Temperature at the end of the run (K) — the steady state, for runs
    /// long enough to converge.
    pub last: f64,
}

/// Results of one simulation run.
///
/// # Examples
///
/// ```
/// use powerbalance::{experiments, Simulator};
/// use powerbalance_workloads::spec2000;
///
/// let mut sim = Simulator::new(experiments::issue_queue(false))?;
/// let result = sim.run(&mut spec2000::by_name("art").unwrap().trace(1), 50_000);
/// assert!(result.cycles > 0);
/// assert!(result.avg_temp("IntQ0").is_some());
/// # Ok::<(), powerbalance::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Cycles simulated (including stall time).
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed IPC, the paper's primary performance metric.
    pub ipc: f64,
    /// Cycles lost to temporal (whole-core) stalls.
    pub frozen_cycles: u64,
    /// Issue-queue head/tail toggles.
    pub toggles: u64,
    /// Functional-unit turnoff events.
    pub alu_turnoffs: u64,
    /// Register-file copy turnoff events.
    pub rf_turnoffs: u64,
    /// Temporal stall events.
    pub freezes: u64,
    /// Per-block temperature statistics.
    pub temperatures: Vec<BlockTemperature>,
    /// Issues per integer ALU (priority-order asymmetry).
    pub int_issued_per_unit: [u64; 6],
    /// Reads per integer register-file copy.
    pub int_rf_reads: [u64; 2],
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// L1 data-cache miss rate.
    pub l1d_miss_rate: f64,
}

impl RunResult {
    /// Average temperature of the named block, if present.
    #[must_use]
    pub fn avg_temp(&self, name: &str) -> Option<f64> {
        self.temperatures.iter().find(|t| t.name == name).map(|t| t.avg)
    }

    /// Peak temperature of the named block, if present.
    #[must_use]
    pub fn max_temp(&self, name: &str) -> Option<f64> {
        self.temperatures.iter().find(|t| t.name == name).map(|t| t.max)
    }

    /// End-of-run temperature of the named block, if present.
    #[must_use]
    pub fn last_temp(&self, name: &str) -> Option<f64> {
        self.temperatures.iter().find(|t| t.name == name).map(|t| t.last)
    }

    /// The hottest block by average temperature.
    ///
    /// # Panics
    ///
    /// Panics if the result has no temperature entries.
    #[must_use]
    pub fn hottest(&self) -> &BlockTemperature {
        self.temperatures
            .iter()
            .max_by(|a, b| a.avg.partial_cmp(&b.avg).expect("temps are finite"))
            .expect("runs always record temperatures")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            cycles: 1000,
            committed: 800,
            ipc: 0.8,
            frozen_cycles: 0,
            toggles: 2,
            alu_turnoffs: 0,
            rf_turnoffs: 0,
            freezes: 0,
            temperatures: vec![
                BlockTemperature { name: "IntQ0".into(), avg: 350.0, max: 351.0, last: 350.5 },
                BlockTemperature { name: "IntQ1".into(), avg: 352.0, max: 353.5, last: 352.4 },
            ],
            int_issued_per_unit: [100, 80, 60, 40, 20, 10],
            int_rf_reads: [400, 200],
            mispredict_rate: 0.01,
            l1d_miss_rate: 0.02,
        }
    }

    #[test]
    fn lookup_by_name() {
        let r = result();
        assert_eq!(r.avg_temp("IntQ1"), Some(352.0));
        assert_eq!(r.max_temp("IntQ1"), Some(353.5));
        assert_eq!(r.last_temp("IntQ1"), Some(352.4));
        assert_eq!(r.avg_temp("nope"), None);
    }

    #[test]
    fn hottest_is_by_average() {
        assert_eq!(result().hottest().name, "IntQ1");
    }
}

//! Run results.

use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// Temperature statistics for one floorplan block over a run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BlockTemperature {
    /// Block name (e.g. `"IntQ1"`).
    pub name: String,
    /// Average temperature over non-stalled execution (K) — the paper's
    /// Table 4/5/6 metric.
    pub avg: f64,
    /// Peak temperature seen at any sample (K).
    pub max: f64,
    /// Temperature at the end of the run (K) — the steady state, for runs
    /// long enough to converge.
    pub last: f64,
}

/// Results of one simulation run.
///
/// # Examples
///
/// ```
/// use powerbalance::{experiments, Simulator};
/// use powerbalance_workloads::spec2000;
///
/// let mut sim = Simulator::new(experiments::issue_queue(false))?;
/// let result = sim.run(&mut spec2000::by_name("art").unwrap().trace(1), 50_000);
/// assert!(result.cycles > 0);
/// assert!(result.avg_temp("IntQ0").is_some());
/// # Ok::<(), powerbalance::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Cycles simulated (including stall time).
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Committed IPC, the paper's primary performance metric.
    pub ipc: f64,
    /// Cycles lost to temporal (whole-core) stalls.
    pub frozen_cycles: u64,
    /// Issue-queue head/tail toggles.
    pub toggles: u64,
    /// Functional-unit turnoff events.
    pub alu_turnoffs: u64,
    /// Register-file copy turnoff events.
    pub rf_turnoffs: u64,
    /// Temporal stall events.
    pub freezes: u64,
    /// DVFS operating-point transitions (global policies only).
    pub opp_transitions: u64,
    /// Fetch-gate / clock-throttle duty-ladder shifts (global policies
    /// only).
    pub duty_shifts: u64,
    /// Cycles lost to global clock throttling.
    pub throttled_cycles: u64,
    /// Front-end cycles idled by fetch gating.
    pub fetch_gated_cycles: u64,
    /// Per-block temperature statistics.
    pub temperatures: Vec<BlockTemperature>,
    /// Issues per integer ALU (priority-order asymmetry).
    pub int_issued_per_unit: [u64; 6],
    /// Reads per integer register-file copy.
    pub int_rf_reads: [u64; 2],
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// L1 data-cache miss rate.
    pub l1d_miss_rate: f64,
}

// Manual serde: the global-policy counters are omitted when zero so
// artifacts pinned before the policy layer existed (and every spatial-only
// run) keep a byte-identical wire form.
impl Serialize for RunResult {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("cycles".to_string(), self.cycles.serialize()),
            ("committed".to_string(), self.committed.serialize()),
            ("ipc".to_string(), self.ipc.serialize()),
            ("frozen_cycles".to_string(), self.frozen_cycles.serialize()),
            ("toggles".to_string(), self.toggles.serialize()),
            ("alu_turnoffs".to_string(), self.alu_turnoffs.serialize()),
            ("rf_turnoffs".to_string(), self.rf_turnoffs.serialize()),
            ("freezes".to_string(), self.freezes.serialize()),
        ];
        for (name, v) in [
            ("opp_transitions", self.opp_transitions),
            ("duty_shifts", self.duty_shifts),
            ("throttled_cycles", self.throttled_cycles),
            ("fetch_gated_cycles", self.fetch_gated_cycles),
        ] {
            if v != 0 {
                fields.push((name.to_string(), v.serialize()));
            }
        }
        fields.push(("temperatures".to_string(), self.temperatures.serialize()));
        fields.push(("int_issued_per_unit".to_string(), self.int_issued_per_unit.serialize()));
        fields.push(("int_rf_reads".to_string(), self.int_rf_reads.serialize()));
        fields.push(("mispredict_rate".to_string(), self.mispredict_rate.serialize()));
        fields.push(("l1d_miss_rate".to_string(), self.l1d_miss_rate.serialize()));
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for RunResult {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let optional = |key: &str| -> Result<u64, Error> {
            match value.get(key) {
                Some(v) => Deserialize::deserialize(v),
                None => Ok(0),
            }
        };
        Ok(RunResult {
            cycles: Deserialize::deserialize(value.field("cycles")?)?,
            committed: Deserialize::deserialize(value.field("committed")?)?,
            ipc: Deserialize::deserialize(value.field("ipc")?)?,
            frozen_cycles: Deserialize::deserialize(value.field("frozen_cycles")?)?,
            toggles: Deserialize::deserialize(value.field("toggles")?)?,
            alu_turnoffs: Deserialize::deserialize(value.field("alu_turnoffs")?)?,
            rf_turnoffs: Deserialize::deserialize(value.field("rf_turnoffs")?)?,
            freezes: Deserialize::deserialize(value.field("freezes")?)?,
            opp_transitions: optional("opp_transitions")?,
            duty_shifts: optional("duty_shifts")?,
            throttled_cycles: optional("throttled_cycles")?,
            fetch_gated_cycles: optional("fetch_gated_cycles")?,
            temperatures: Deserialize::deserialize(value.field("temperatures")?)?,
            int_issued_per_unit: Deserialize::deserialize(value.field("int_issued_per_unit")?)?,
            int_rf_reads: Deserialize::deserialize(value.field("int_rf_reads")?)?,
            mispredict_rate: Deserialize::deserialize(value.field("mispredict_rate")?)?,
            l1d_miss_rate: Deserialize::deserialize(value.field("l1d_miss_rate")?)?,
        })
    }
}

impl RunResult {
    /// Average temperature of the named block, if present.
    #[must_use]
    pub fn avg_temp(&self, name: &str) -> Option<f64> {
        self.temperatures.iter().find(|t| t.name == name).map(|t| t.avg)
    }

    /// Peak temperature of the named block, if present.
    #[must_use]
    pub fn max_temp(&self, name: &str) -> Option<f64> {
        self.temperatures.iter().find(|t| t.name == name).map(|t| t.max)
    }

    /// End-of-run temperature of the named block, if present.
    #[must_use]
    pub fn last_temp(&self, name: &str) -> Option<f64> {
        self.temperatures.iter().find(|t| t.name == name).map(|t| t.last)
    }

    /// The hottest block by average temperature.
    ///
    /// # Panics
    ///
    /// Panics if the result has no temperature entries.
    #[must_use]
    pub fn hottest(&self) -> &BlockTemperature {
        self.temperatures
            .iter()
            .max_by(|a, b| a.avg.partial_cmp(&b.avg).expect("temps are finite"))
            .expect("runs always record temperatures")
    }

    /// Peak temperature across all blocks (K) — the thermal budget every
    /// policy must respect, used to compare them at equal temperature.
    ///
    /// # Panics
    ///
    /// Panics if the result has no temperature entries.
    #[must_use]
    pub fn peak_temp(&self) -> f64 {
        let peak = self.temperatures.iter().map(|t| t.max).fold(f64::MIN, f64::max);
        assert!(peak.is_finite(), "runs always record temperatures");
        peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result() -> RunResult {
        RunResult {
            cycles: 1000,
            committed: 800,
            ipc: 0.8,
            frozen_cycles: 0,
            toggles: 2,
            alu_turnoffs: 0,
            rf_turnoffs: 0,
            freezes: 0,
            opp_transitions: 0,
            duty_shifts: 0,
            throttled_cycles: 0,
            fetch_gated_cycles: 0,
            temperatures: vec![
                BlockTemperature { name: "IntQ0".into(), avg: 350.0, max: 351.0, last: 350.5 },
                BlockTemperature { name: "IntQ1".into(), avg: 352.0, max: 353.5, last: 352.4 },
            ],
            int_issued_per_unit: [100, 80, 60, 40, 20, 10],
            int_rf_reads: [400, 200],
            mispredict_rate: 0.01,
            l1d_miss_rate: 0.02,
        }
    }

    #[test]
    fn lookup_by_name() {
        let r = result();
        assert_eq!(r.avg_temp("IntQ1"), Some(352.0));
        assert_eq!(r.max_temp("IntQ1"), Some(353.5));
        assert_eq!(r.last_temp("IntQ1"), Some(352.4));
        assert_eq!(r.avg_temp("nope"), None);
    }

    #[test]
    fn hottest_is_by_average() {
        assert_eq!(result().hottest().name, "IntQ1");
    }

    #[test]
    fn peak_temp_is_max_over_blocks() {
        assert_eq!(result().peak_temp(), 353.5);
    }

    #[test]
    fn serde_omits_zero_policy_counters_and_round_trips() {
        let round_trip = |r: &RunResult| -> (String, RunResult) {
            let json = serde::json::to_string(r);
            let value = serde::json::Value::parse(&json).expect("valid JSON");
            (json, RunResult::deserialize(&value).expect("round trips"))
        };

        let spatial = result();
        let (json, back) = round_trip(&spatial);
        assert!(
            !json.contains("opp_transitions") && !json.contains("throttled_cycles"),
            "spatial-only results must keep the pre-policy wire form: {json}"
        );
        assert_eq!(back, spatial);

        let global = RunResult { opp_transitions: 3, throttled_cycles: 120, ..result() };
        let (json, back) = round_trip(&global);
        assert!(json.contains("\"opp_transitions\":3"), "nonzero counters must serialize: {json}");
        assert_eq!(back, global);
    }
}

//! Deterministic snapshot/restore of a full simulation.
//!
//! A [`Snapshot`] captures everything a [`Simulator`] plus its workload
//! trace need to resume *bit-identically*: the cycle-level core (rename
//! maps, active list, issue queues, branch predictor, caches, functional
//! units), the thermal model's full RC node-temperature vector, the
//! mitigation manager's counters and any in-progress stall, the
//! simulator's temperature statistics, and the trace generator's RNG and
//! position. The power model is stateless (see `powerbalance-power`) and
//! is rebuilt from configuration.
//!
//! # Serialization format
//!
//! Snapshots serialize through the workspace's JSON layer
//! ([`serde::json`]). The document is an object whose first field is
//! `format_version` ([`FORMAT_VERSION`]); readers reject documents whose
//! version they do not understand *before* interpreting the rest, so old
//! binaries fail cleanly on new snapshots and vice versa.
//!
//! Floating-point state that must survive the trip exactly — node
//! temperatures and the temperature accumulators, which include
//! sentinel values like `f64::MIN` that the JSON number grammar cannot
//! express — is stored as raw IEEE-754 bit patterns (`f64::to_bits`,
//! one `u64` per value). Configuration floats stay human-readable: the
//! writer emits the shortest round-tripping decimal for them.
//!
//! # Examples
//!
//! ```
//! use powerbalance::{SimConfig, Simulator, Snapshot, spec2000};
//!
//! let profile = spec2000::by_name("gzip").expect("known benchmark");
//! let mut trace = profile.trace(7);
//! let mut sim = Simulator::new(SimConfig::default())?;
//! sim.run(&mut trace, 20_000);
//!
//! // Capture, then fork two independent continuations.
//! let snap = Snapshot::capture(&sim, &profile, &trace);
//! let (mut sim_b, mut trace_b) = snap.resume()?;
//! let a = sim.run(&mut trace, 20_000);
//! let b = sim_b.run(&mut trace_b, 20_000);
//! assert_eq!(a.committed, b.committed);
//! # Ok::<(), powerbalance::Error>(())
//! ```

use crate::{Error, SimConfig, Simulator};
use powerbalance_mitigation::ManagerState;
use powerbalance_uarch::CoreState;
use powerbalance_workloads::{TraceGenerator, TraceState, WorkloadProfile};
use serde::{Deserialize, Serialize};

/// Version stamp written into every serialized snapshot.
///
/// Bump this whenever the layout of [`Snapshot`], [`SimulatorState`], or
/// any state struct they embed changes shape or meaning. Readers refuse
/// mismatched versions outright — there is no migration machinery, by
/// design: snapshots are caches of recomputable state, so invalidating
/// them on a version bump is always safe.
pub const FORMAT_VERSION: u32 = 4;

/// Serializable dynamic state of a [`Simulator`] (everything except the
/// configuration it was built from and the trace driving it).
///
/// Obtain one with [`Simulator::state`] and apply it with
/// [`Simulator::restore_state`]. Most users want the self-contained
/// [`Snapshot`] instead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatorState {
    /// Full pipeline state.
    pub core: CoreState,
    /// Mitigation counters and any in-progress temporal stall.
    pub manager: ManagerState,
    /// IEEE-754 bit patterns of every RC node temperature (blocks first,
    /// then internal package nodes), in floorplan node order.
    pub thermal_node_bits: Vec<u64>,
    /// Bit patterns of the per-block temperature running sums.
    pub temp_sum_bits: Vec<u64>,
    /// Bit patterns of the per-block temperature maxima (`f64::MIN`
    /// until a block has been sampled — exactly why bits are stored).
    pub temp_max_bits: Vec<u64>,
    /// Number of non-stalled samples behind `temp_sum_bits`.
    pub temp_samples: u64,
    /// Whether the warm-start settle has already happened.
    pub warmed: bool,
    /// Interval-engine state; zeros under [`crate::Fidelity::Exact`].
    pub fast: FastEngineState,
}

/// Serialized dynamic state of the [`crate::Fidelity::Fast`] interval
/// engine: the macro-window phase, the held power vector, the last
/// detailed window's statistics deltas, and the extrapolated totals. A
/// mid-window capture resumes bit-exactly because all of it round-trips.
///
/// Under [`crate::Fidelity::Exact`] every field is zero/empty-of-zeros.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FastEngineState {
    /// Detailed warmup-prefix cycles still to run before interval
    /// sampling engages.
    pub prefix_left: u64,
    /// Sub-intervals completed in the current macro window (`0` = the
    /// next sub-interval is detailed).
    pub window_pos: u64,
    /// IEEE-754 bit patterns of the held per-block power vector.
    pub window_watts_bits: Vec<u64>,
    /// Integer issue-queue activity of the last detailed window (fed to
    /// skipped-interval mitigation consults).
    pub window_int_iq: powerbalance_uarch::IqActivity,
    /// FP issue-queue activity of the last detailed window.
    pub window_fp_iq: powerbalance_uarch::IqActivity,
    /// Core cycles the last detailed window ran.
    pub sample_cycles: u64,
    /// Commits in the last detailed window.
    pub sample_committed: u64,
    /// Micro-ops fetched from the trace in the last detailed window.
    pub sample_fetched: u64,
    /// Frozen cycles in the last detailed window.
    pub sample_frozen: u64,
    /// Throttled cycles in the last detailed window.
    pub sample_throttled: u64,
    /// Fetch-gated cycles in the last detailed window.
    pub sample_fetch_gated: u64,
    /// Cycles advanced analytically so far.
    pub extra_cycles: u64,
    /// Extrapolated commits over the skipped cycles.
    pub extra_committed: u64,
    /// Extrapolated frozen cycles.
    pub extra_frozen: u64,
    /// Extrapolated throttled cycles.
    pub extra_throttled: u64,
    /// Extrapolated fetch-gated cycles.
    pub extra_fetch_gated: u64,
}

/// Encodes floats as their exact IEEE-754 bit patterns.
pub(crate) fn encode_bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Inverse of [`encode_bits`].
pub(crate) fn decode_bits(bits: &[u64]) -> Vec<f64> {
    bits.iter().map(|b| f64::from_bits(*b)).collect()
}

/// A self-contained, serializable checkpoint of one simulation run.
///
/// Couples a [`SimulatorState`] with the [`SimConfig`] it was captured
/// under and the workload (profile + generator position) driving it, so a
/// snapshot file alone suffices to reconstruct and continue the run.
///
/// Resuming under a configuration that differs **only in mitigation** is
/// explicitly supported ([`resume_with_config`]): warmup phases never
/// consult the mitigation manager (see [`Simulator::run_warmup`]), so one
/// warmed snapshot can seed measured runs of every technique variant.
///
/// [`resume_with_config`]: Snapshot::resume_with_config
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Layout version; see [`FORMAT_VERSION`].
    pub format_version: u32,
    /// The configuration the state was captured under.
    pub config: SimConfig,
    /// The workload profile driving the run.
    pub profile: WorkloadProfile,
    /// The trace generator's dynamic state (RNG, position, ring state).
    pub trace: TraceState,
    /// The simulator's dynamic state.
    pub state: SimulatorState,
}

impl Snapshot {
    /// Captures the current state of `sim` and its trace.
    ///
    /// For the resumed run to be bit-identical to an uninterrupted one,
    /// capture at a sample boundary — i.e. after a [`Simulator::run`] or
    /// [`Simulator::run_warmup`] call whose cycle count is a multiple of
    /// [`SimConfig::sample_interval`] — so no partially-accumulated
    /// activity window is lost (activity counters are drained into the
    /// thermal model at each boundary).
    #[must_use]
    pub fn capture(sim: &Simulator, profile: &WorkloadProfile, trace: &TraceGenerator) -> Snapshot {
        Snapshot {
            format_version: FORMAT_VERSION,
            config: sim.config().clone(),
            profile: profile.clone(),
            trace: trace.snapshot(),
            state: sim.state(),
        }
    }

    /// Rebuilds a simulator and trace generator that continue exactly
    /// where [`capture`](Snapshot::capture) left off.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the snapshot is from a different
    /// format version or its state vectors do not fit the configuration.
    pub fn resume(&self) -> Result<(Simulator, TraceGenerator), Error> {
        self.resume_with_config(self.config.clone())
    }

    /// Like [`resume`](Snapshot::resume), but builds the simulator from
    /// `config` instead of the captured configuration.
    ///
    /// `config` must be *structurally compatible* with the snapshot: every
    /// field except `mitigation` must match, because the captured state
    /// vectors are shaped by (and their contents depend on) the core
    /// geometry, floorplan, package, energy tables, frequency, and
    /// sampling cadence. The mitigation technique is free to differ —
    /// that is what lets a warm-start campaign share one warmup across
    /// technique variants.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on a version mismatch, a structurally
    /// incompatible `config`, or state vectors that fail validation.
    pub fn resume_with_config(
        &self,
        config: SimConfig,
    ) -> Result<(Simulator, TraceGenerator), Error> {
        if self.format_version != FORMAT_VERSION {
            return Err(Error::Config(format!(
                "snapshot format version {} is not supported (expected {FORMAT_VERSION})",
                self.format_version
            )));
        }
        let captured = &self.config;
        let mismatch = |what: &str| {
            Err(Error::Config(format!(
                "snapshot is structurally incompatible: {what} differs from the captured config"
            )))
        };
        if config.core != captured.core {
            return mismatch("core");
        }
        if config.floorplan != captured.floorplan {
            return mismatch("floorplan");
        }
        if config.package != captured.package {
            return mismatch("package");
        }
        if config.energy != captured.energy {
            return mismatch("energy");
        }
        if config.frequency_hz != captured.frequency_hz {
            return mismatch("frequency_hz");
        }
        if config.sample_interval != captured.sample_interval {
            return mismatch("sample_interval");
        }
        if config.warm_start != captured.warm_start {
            return mismatch("warm_start");
        }
        // A Fast run's state embeds window phase and extrapolated totals
        // an Exact simulator has no meaning for (and vice versa), and two
        // Fast runs with different macro windows sample on different
        // cadences — so fidelity is structure, not policy.
        if config.fidelity != captured.fidelity {
            return mismatch("fidelity");
        }
        if config.fidelity == crate::Fidelity::Fast {
            if config.fast_window != captured.fast_window {
                return mismatch("fast_window");
            }
            if config.fast_warmup != captured.fast_warmup {
                return mismatch("fast_warmup");
            }
        }
        // The die geometry (and with it every state-vector length) depends
        // on the core count, and the scheduler's rotation word is part of
        // the captured state — both are structure, not policy.
        if config.cores != captured.cores {
            return mismatch("cores");
        }
        if config.cores > 1 && config.scheduler != captured.scheduler {
            return mismatch("scheduler");
        }

        let mut sim = Simulator::new(config)?;
        sim.restore_state(&self.state)?;
        let mut trace = TraceGenerator::new(self.profile.clone(), 0);
        trace.restore(&self.trace);
        Ok((sim, trace))
    }

    /// Serializes the snapshot as a compact JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string(self)
    }

    /// Parses a snapshot serialized by [`to_json`](Snapshot::to_json).
    ///
    /// The `format_version` field is checked *before* the rest of the
    /// document is interpreted, so a snapshot from a different layout
    /// fails with a version message rather than an arbitrary shape error.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] on malformed JSON, a version mismatch,
    /// or a shape mismatch.
    pub fn from_json(input: &str) -> Result<Snapshot, Error> {
        let value = serde::json::Value::parse(input)
            .map_err(|e| Error::Config(format!("snapshot is not valid JSON: {e}")))?;
        let version = value
            .field("format_version")
            .and_then(serde::json::Value::as_u64)
            .map_err(|e| Error::Config(format!("snapshot has no readable format_version: {e}")))?;
        if version != u64::from(FORMAT_VERSION) {
            return Err(Error::Config(format!(
                "snapshot format version {version} is not supported (expected {FORMAT_VERSION})"
            )));
        }
        Deserialize::deserialize(&value).map_err(|e| {
            Error::Config(format!("snapshot does not match the v{version} layout: {e}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments;
    use powerbalance_mitigation::MitigationConfig;
    use powerbalance_workloads::spec2000;

    fn run_pair(cycles: u64) -> (Simulator, TraceGenerator, WorkloadProfile) {
        let profile = spec2000::by_name("gzip").expect("profile");
        let mut trace = profile.trace(7);
        let mut sim = Simulator::new(SimConfig::default()).expect("valid config");
        sim.run(&mut trace, cycles);
        (sim, trace, profile)
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let (sim, trace, profile) = run_pair(30_000);
        let snap = Snapshot::capture(&sim, &profile, &trace);
        let back = Snapshot::from_json(&snap.to_json()).expect("round trip");
        assert_eq!(back, snap);
    }

    #[test]
    fn resume_continues_bit_identically() {
        let (mut sim, mut trace, profile) = run_pair(40_000);
        let snap = Snapshot::capture(&sim, &profile, &trace);
        let (mut sim2, mut trace2) = snap.resume().expect("compatible");

        let a = sim.run(&mut trace, 40_000);
        let b = sim2.run(&mut trace2, 40_000);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.freezes, b.freezes);
        for (x, y) in a.temperatures.iter().zip(&b.temperatures) {
            assert_eq!(x.avg.to_bits(), y.avg.to_bits(), "{}", x.name);
            assert_eq!(x.max.to_bits(), y.max.to_bits(), "{}", x.name);
            assert_eq!(x.last.to_bits(), y.last.to_bits(), "{}", x.name);
        }
    }

    #[test]
    fn version_mismatch_is_rejected_before_shape_errors() {
        let (sim, trace, profile) = run_pair(10_000);
        let mut snap = Snapshot::capture(&sim, &profile, &trace);
        snap.format_version = FORMAT_VERSION + 1;
        // resume() refuses.
        let err = snap.resume().expect_err("future version");
        assert!(err.to_string().contains("format version"), "{err}");
        // And so does the parser, even when the rest of the document is
        // garbage from this version's point of view.
        let doc = format!("{{\"format_version\":{}}}", FORMAT_VERSION + 1);
        let err = Snapshot::from_json(&doc).expect_err("future version");
        assert!(err.to_string().contains("format version"), "{err}");
    }

    #[test]
    fn resume_with_different_mitigation_is_allowed() {
        let (sim, trace, profile) = run_pair(20_000);
        let snap = Snapshot::capture(&sim, &profile, &trace);
        let cfg = SimConfig { mitigation: MitigationConfig::spatial_all(), ..snap.config.clone() };
        let (sim2, _) = snap.resume_with_config(cfg).expect("mitigation may differ");
        assert!(sim2.manager().config().activity_toggling);
    }

    #[test]
    fn structurally_different_config_is_rejected() {
        let (sim, trace, profile) = run_pair(20_000);
        let snap = Snapshot::capture(&sim, &profile, &trace);
        // A different core geometry (issue-queue-constrained experiment)
        // must not accept this snapshot.
        let err = snap.resume_with_config(experiments::issue_queue(false)).expect_err("core");
        assert!(err.to_string().contains("structurally incompatible"), "{err}");
    }
}

//! Batched lockstep execution: K mitigation variants over one trace.
//!
//! A measured campaign sweeps many mitigation techniques over the *same*
//! (benchmark, seed, floorplan, cadence) tuple. Run separately, the K
//! variants re-simulate the identical core K times and only start to
//! differ once a trip point actually fires — which, for well-mitigated
//! configurations, is rarely. [`BatchSimulator`] exploits that: siblings
//! whose observable behaviour is still identical share one
//! **equivalence-class** [`Simulator`] (one core, one thermal solve, one
//! pass over the trace), while each sibling keeps its own
//! [`ThermalManager`] so every policy still decides every window. The
//! moment two siblings' decisions diverge, the class **forks** — the
//! shared state is snapshotted bit-exactly into a new class and both
//! lineages continue independently, their traces split via `Clone` (a
//! [`powerbalance_isa::TraceCursor`] fork under Exact fidelity, a private
//! generator clone under Fast).
//!
//! Classes that remain split still amortise the thermal solve: each
//! sampling window ends in one structure-of-arrays backward-Euler solve
//! across all live classes ([`BatchThermalSolver`]), reusing a single LU
//! factorization for K right-hand sides, and one batched power
//! accumulation ([`PowerModel::block_power_many_into`]).
//!
//! The engine drives the same window phases the scalar simulator's
//! `sample` chains (`run_window` → `window_activity` → power →
//! `sample_prepare` → thermal → consult → `sample_stats`), in the same
//! order, with the same floating-point operation sequence — batched
//! results are **bit-identical** to K sequential scalar runs, a contract
//! pinned by differential tests and the fuzzer.

use crate::config::Fidelity;
use crate::simulator::{RunControl, Simulator, StopCause};
use crate::{Error, RunResult, SimConfig, SimulatorState};
use powerbalance_isa::TraceSource;
use powerbalance_mitigation::{Actuation, MitigationConfig, Sensors, ThermalManager};
use powerbalance_power::PowerModel;
use powerbalance_thermal::{BatchThermalSolver, ThermalModel};
use powerbalance_uarch::{ActivitySample, CoreStats};

/// The part of a [`SimConfig`] that lockstep siblings must share: the
/// whole configuration with `mitigation` normalized to the baseline.
///
/// Two configurations are batch-eligible exactly when their keys compare
/// equal; campaign runners group jobs by (serialized) key.
#[must_use]
pub fn batch_key(config: &SimConfig) -> SimConfig {
    SimConfig { mitigation: MitigationConfig::baseline(), ..config.clone() }
}

/// One equivalence class: a shared simulator plus the sibling indices
/// currently riding on it, and the per-window phase scratch.
#[derive(Debug)]
struct BatchClass<T> {
    sim: Simulator,
    trace: T,
    /// Sibling indices sharing this class, in ascending order; the first
    /// is the representative whose manager actuates the shared core.
    members: Vec<usize>,
    /// The shared core finished its trace; the class no longer steps.
    done: bool,
    /// This window's activity, `None` while idle or between windows.
    pending: Option<ActivitySample>,
    /// This window's thermal step size (valid while `pending` is set).
    dt: f64,
    /// Whether this window performs the one-time warm-start settle.
    settled: bool,
    /// Core counters at the start of the current detailed Fast window.
    before: CoreStats,
    /// `(was_frozen, virtual_now)` captured before the consult — the
    /// inputs `sample_stats` needs, and the marker that this class ran
    /// (and must consult + account) this window.
    stat_ctx: Option<(bool, u64)>,
}

/// One partition of a class's members by what their decision would do.
#[derive(Debug)]
struct Partition {
    actions: Vec<Actuation>,
    /// Post-apply dynamic-power scale, bit-packed: identical commands on
    /// different DVFS ladders must not share a core next window.
    scale_bits: u64,
    members: Vec<usize>,
}

/// Steps K sibling configurations in lockstep over one shared trace.
///
/// Siblings must agree on everything except [`SimConfig::mitigation`]
/// (checked at construction; see [`batch_key`]). Results come back in
/// sibling order and are bit-identical to K sequential [`Simulator`]
/// runs of the same configurations.
///
/// The trace type is cloned on fork: wrap a generator in a
/// [`powerbalance_isa::TraceCursor`] to share generated ops between
/// diverged classes (Exact fidelity), or pass the generator directly when
/// `skip_ops` must stay O(1) (Fast fidelity).
///
/// # Examples
///
/// ```
/// use powerbalance::{BatchSimulator, SimConfig, Simulator};
/// use powerbalance_isa::TraceCursor;
/// use powerbalance_workloads::spec2000;
///
/// let profile = spec2000::by_name("gzip").unwrap();
/// let configs = vec![SimConfig::default(), SimConfig::default()];
/// let mut batch = BatchSimulator::new(configs, TraceCursor::new(profile.trace(7)))?;
/// let results = batch.run(50_000);
///
/// let mut scalar = Simulator::new(SimConfig::default())?;
/// assert_eq!(results[0], scalar.run(&mut profile.trace(7), 50_000));
/// # Ok::<(), powerbalance::Error>(())
/// ```
#[derive(Debug)]
pub struct BatchSimulator<T> {
    configs: Vec<SimConfig>,
    /// Per-sibling managers: every policy observes every window even while
    /// its sibling shares a class.
    managers: Vec<ThermalManager>,
    /// Sibling index → index into `classes`.
    class_of: Vec<usize>,
    classes: Vec<BatchClass<T>>,
    power: PowerModel,
    solver: BatchThermalSolver,
    /// Scratch: per-lane `(activity, scale)` rows for the power phase.
    rows: Vec<(ActivitySample, f64)>,
    /// Scratch: distinct `(settled, dt_bits)` thermal groups, first-seen
    /// order.
    groups: Vec<(bool, u64)>,
}

impl<T: TraceSource + Clone> BatchSimulator<T> {
    /// Builds a lockstep batch over `configs`, all consuming `trace`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if `configs` is empty, any configuration
    /// is invalid, or two siblings differ outside `mitigation`.
    pub fn new(configs: Vec<SimConfig>, trace: T) -> Result<Self, Error> {
        let Some(first) = configs.first() else {
            return Err(Error::Config("a batch needs at least one sibling configuration".into()));
        };
        let key = batch_key(first);
        for (i, c) in configs.iter().enumerate() {
            c.validate()?;
            if i > 0 && batch_key(c) != key {
                return Err(Error::Config(format!(
                    "sibling {i} differs from sibling 0 outside `mitigation`; lockstep \
                     siblings must share workload parameters, core, floorplan, package, \
                     energy tables, cadence, and fidelity"
                )));
            }
        }
        let energy = first.energy;
        let frequency_hz = first.frequency_hz;
        let sim = Simulator::new(configs[0].clone())?;
        let mut managers = Vec::with_capacity(configs.len());
        for c in &configs {
            let sensors = Sensors::new(sim.floorplan()).map_err(Error::Config)?;
            managers.push(ThermalManager::new(c.mitigation, sensors));
        }
        let power = PowerModel::new(sim.floorplan(), energy, frequency_hz)?;
        let before = *sim.core().stats();
        let classes = vec![BatchClass {
            sim,
            trace,
            members: (0..configs.len()).collect(),
            done: false,
            pending: None,
            dt: 0.0,
            settled: false,
            before,
            stat_ctx: None,
        }];
        Ok(BatchSimulator {
            class_of: vec![0; configs.len()],
            configs,
            managers,
            classes,
            power,
            solver: BatchThermalSolver::new(),
            rows: Vec::new(),
            groups: Vec::new(),
        })
    }

    /// The sibling configurations, in result order.
    #[must_use]
    pub fn configs(&self) -> &[SimConfig] {
        &self.configs
    }

    /// Number of siblings in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the batch has no siblings (never true: construction
    /// requires at least one).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Number of live equivalence classes: 1 while every sibling still
    /// shares the core, up to `len()` once fully diverged.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// The mitigation manager deciding for sibling `i`.
    #[must_use]
    pub fn manager(&self, i: usize) -> &ThermalManager {
        &self.managers[i]
    }

    /// Runs every sibling for up to `cycles` cycles (or until its trace
    /// drains) and returns the accumulated results in sibling order.
    pub fn run(&mut self, cycles: u64) -> Vec<RunResult> {
        self.run_controlled(cycles, &RunControl::unlimited()).0
    }

    /// Like [`run`](Self::run), but checks `control` between sampling
    /// windows — the whole batch stops together, so every sibling's
    /// partial statistics cover the same simulated span.
    pub fn run_controlled(
        &mut self,
        cycles: u64,
        control: &RunControl<'_>,
    ) -> (Vec<RunResult>, StopCause) {
        let cause = self.drive(cycles, control, true);
        (self.results(), cause)
    }

    /// Runs every sibling for up to `cycles` cycles **without consulting
    /// any manager** — the batched mirror of [`Simulator::run_warmup`].
    /// With no consults there is nothing to diverge on, so the batch stays
    /// a single class throughout.
    pub fn run_warmup(&mut self, cycles: u64) {
        let _ = self.run_warmup_controlled(cycles, &RunControl::unlimited());
    }

    /// Like [`run_warmup`](Self::run_warmup), but checks `control` between
    /// sampling windows.
    pub fn run_warmup_controlled(&mut self, cycles: u64, control: &RunControl<'_>) -> StopCause {
        self.drive(cycles, control, false)
    }

    /// Restores a warm-start snapshot into the (unforked) batch: the
    /// shared class adopts the simulator state and **every** sibling's
    /// manager adopts the snapshot's manager state — exactly what each
    /// scalar resume would do.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the batch has already forked or the
    /// state does not fit the shared simulator's shape.
    pub fn restore_state(&mut self, state: &SimulatorState) -> Result<(), Error> {
        if self.classes.len() != 1 {
            return Err(Error::Config(
                "restore_state requires an unforked batch (call it before running)".into(),
            ));
        }
        self.classes[0].sim.restore_state(state)?;
        for manager in &mut self.managers {
            manager.restore(&state.manager);
        }
        Ok(())
    }

    /// The accumulated results, in sibling order: each sibling reports its
    /// class's shared core/thermal statistics plus its *own* manager's
    /// mitigation counters.
    #[must_use]
    pub fn results(&self) -> Vec<RunResult> {
        (0..self.configs.len())
            .map(|m| self.classes[self.class_of[m]].sim.result_with_stats(self.managers[m].stats()))
            .collect()
    }

    fn any_live(&self) -> bool {
        self.classes.iter().any(|c| !c.done)
    }

    fn drive(&mut self, cycles: u64, control: &RunControl<'_>, consult: bool) -> StopCause {
        match self.configs[0].fidelity {
            Fidelity::Exact => self.drive_exact(cycles, control, consult),
            Fidelity::Fast => self.drive_fast(cycles, control, consult),
        }
    }

    /// The Exact driver: every window runs cycle-by-cycle on each live
    /// class, then the batched power/thermal/consult/stats phases.
    fn drive_exact(&mut self, cycles: u64, control: &RunControl<'_>, consult: bool) -> StopCause {
        let interval = self.configs[0].sample_interval;
        let mut elapsed = 0u64;
        while elapsed < cycles && self.any_live() {
            if let Some(stop) = control.stop_cause() {
                return stop;
            }
            let window = interval.min(cycles - elapsed);
            for class in &mut self.classes {
                class.pending = None;
                class.stat_ctx = None;
                if class.done {
                    continue;
                }
                let BatchClass { sim, trace, pending, .. } = class;
                sim.run_window(trace, window);
                *pending = sim.window_activity();
            }
            self.accumulate_power();
            self.solve_thermal();
            self.capture_stat_ctx();
            if consult {
                self.consult_and_fork();
            }
            self.finish_window(None);
            elapsed += window;
        }
        StopCause::Completed
    }

    /// The Fast (interval-engine) driver. All classes share one phase
    /// clock — `prefix_left`/`window_pos` evolve identically in lockstep
    /// and are carried through forks — so a sub-interval is detailed or
    /// skipped for every class at once.
    fn drive_fast(&mut self, cycles: u64, control: &RunControl<'_>, consult: bool) -> StopCause {
        let interval = self.configs[0].sample_interval;
        let stretch = self.configs[0].fast_window / interval;
        let mut elapsed = 0u64;
        while elapsed < cycles && self.any_live() {
            if let Some(stop) = control.stop_cause() {
                return stop;
            }
            let sub = interval.min(cycles - elapsed);
            let (in_prefix, detailed) = {
                let lead = self.classes.iter().find(|c| !c.done).expect("a live class exists");
                let in_prefix = lead.sim.fast_in_prefix();
                (in_prefix, in_prefix || lead.sim.fast_window_pos() == 0)
            };
            debug_assert!(
                self.classes
                    .iter()
                    .filter(|c| !c.done)
                    .all(|c| c.sim.fast_in_prefix() == in_prefix
                        && (in_prefix || (c.sim.fast_window_pos() == 0) == detailed)),
                "lockstep classes drifted out of phase"
            );
            if detailed {
                for class in &mut self.classes {
                    class.pending = None;
                    class.stat_ctx = None;
                    if class.done {
                        continue;
                    }
                    class.before = *class.sim.core().stats();
                    let BatchClass { sim, trace, pending, .. } = class;
                    sim.run_window(trace, sub);
                    *pending = sim.window_activity();
                }
                self.accumulate_power();
                self.solve_thermal();
                for class in &mut self.classes {
                    if class.pending.is_some() {
                        let before = class.before;
                        class.sim.fast_record_window(&before);
                    }
                }
                self.capture_stat_ctx();
            } else {
                for class in &mut self.classes {
                    class.pending = None;
                    class.stat_ctx = None;
                    if class.done {
                        continue;
                    }
                    let BatchClass { sim, trace, stat_ctx, .. } = class;
                    let frozen = sim.fast_skip_advance(trace, sub);
                    *stat_ctx = Some((frozen, sim.virtual_now()));
                }
            }
            if consult {
                self.consult_and_fork();
            }
            self.finish_window(Some((in_prefix, sub, stretch)));
            elapsed += sub;
        }
        StopCause::Completed
    }

    /// Power phase: one batched accumulation over every class that ran
    /// this window, each lane scaled by its representative's current
    /// (pre-consult) dynamic-power scale — the scale every member of the
    /// class shares by the partition invariant.
    fn accumulate_power(&mut self) {
        self.rows.clear();
        let mut outs: Vec<&mut [f64]> = Vec::with_capacity(self.classes.len());
        for class in &mut self.classes {
            if let Some(activity) = class.pending {
                let scale = self.managers[class.members[0]].dynamic_power_scale();
                debug_assert!(
                    class.members.iter().all(|&m| self.managers[m].dynamic_power_scale() == scale),
                    "class members disagree on dynamic power scale"
                );
                self.rows.push((activity, scale));
                outs.push(class.sim.watts_mut());
            }
        }
        self.power.block_power_many_into(&self.rows, &mut outs);
    }

    /// Thermal phase: group live classes by `(settled, dt)` — identical
    /// for all in the common lockstep case — and run one SoA solve per
    /// group, each reusing a single LU factorization across its lanes.
    fn solve_thermal(&mut self) {
        self.groups.clear();
        for class in &mut self.classes {
            if let Some(activity) = class.pending {
                let (dt, settled) = class.sim.sample_prepare(&activity);
                class.dt = dt;
                class.settled = settled;
                let key = (settled, dt.to_bits());
                if !self.groups.contains(&key) {
                    self.groups.push(key);
                }
            }
        }
        let groups = std::mem::take(&mut self.groups);
        for &(settled, dt_bits) in &groups {
            let mut lanes: Vec<(&mut ThermalModel, &[f64])> = self
                .classes
                .iter_mut()
                .filter(|c| {
                    c.pending.is_some() && c.settled == settled && c.dt.to_bits() == dt_bits
                })
                .map(|c| c.sim.thermal_lane())
                .collect();
            if settled {
                self.solver.settle_many(&mut lanes);
            } else {
                self.solver.step_many(&mut lanes, f64::from_bits(dt_bits));
            }
        }
        self.groups = groups;
    }

    /// Captures `(was_frozen, virtual_now)` per class after the thermal
    /// solve and before any consult — the same instant the scalar sample
    /// reads them.
    fn capture_stat_ctx(&mut self) {
        for class in &mut self.classes {
            if class.pending.is_some() {
                class.stat_ctx = Some((class.sim.core().is_frozen(), class.sim.virtual_now()));
            }
        }
    }

    /// Consult phase: every member's manager decides against its class's
    /// shared core; members are partitioned by (commands, projected power
    /// scale); classes whose members disagree fork **before** any command
    /// is applied; then each partition's representative actuates its class
    /// core and the co-members adopt the representative's post-apply
    /// manager state (identical pre-state + identical commands ⇒ identical
    /// post-state, without double-applying core side effects such as a
    /// register-file restore charge).
    fn consult_and_fork(&mut self) {
        let original = self.classes.len();
        for ci in 0..original {
            let Some((_, now)) = self.classes[ci].stat_ctx else {
                continue;
            };
            let (int_iq, fp_iq) = self.classes[ci].sim.window_iqs();
            let mut partitions: Vec<Partition> = Vec::new();
            {
                let class = &self.classes[ci];
                let core = class.sim.core();
                let temps = class.sim.thermal().temperatures();
                for &m in &class.members {
                    self.managers[m].decide(core, temps, now, &int_iq, &fp_iq);
                    let scale_bits = self.managers[m].projected_power_scale().to_bits();
                    let actions = self.managers[m].decided_actions();
                    match partitions
                        .iter_mut()
                        .find(|p| p.scale_bits == scale_bits && p.actions.as_slice() == actions)
                    {
                        Some(p) => p.members.push(m),
                        None => partitions.push(Partition {
                            actions: actions.to_vec(),
                            scale_bits,
                            members: vec![m],
                        }),
                    }
                }
            }
            // Fork before applying anything: every child branches from the
            // exact state the decisions were made against.
            let mut targets = vec![ci];
            if partitions.len() > 1 {
                let state = self.classes[ci].sim.state();
                for part in &partitions[1..] {
                    let mut sim = Simulator::new(self.configs[part.members[0]].clone())
                        .expect("sibling configs were validated at construction");
                    sim.restore_state(&state)
                        .expect("fork restores into an identically shaped simulator");
                    let parent = &self.classes[ci];
                    let child = BatchClass {
                        sim,
                        trace: parent.trace.clone(),
                        members: part.members.clone(),
                        done: parent.done,
                        pending: None,
                        dt: parent.dt,
                        settled: parent.settled,
                        before: parent.before,
                        stat_ctx: parent.stat_ctx,
                    };
                    for &m in &part.members {
                        self.class_of[m] = self.classes.len();
                    }
                    targets.push(self.classes.len());
                    self.classes.push(child);
                }
                self.classes[ci].members = partitions[0].members.clone();
            }
            for (part, &target) in partitions.iter().zip(&targets) {
                let rep = part.members[0];
                self.managers[rep].apply_decided(self.classes[target].sim.core_mut());
                let snap = self.managers[rep].snapshot();
                for &m in &part.members[1..] {
                    self.managers[m].restore(&snap);
                }
            }
        }
    }

    /// Statistics phase: every class that ran this window (children
    /// included — they inherited the parent's pre-consult context)
    /// accumulates its temperature statistics, ticks the Fast phase clock
    /// when `fast` carries `(in_prefix, sub, stretch)`, and refreshes its
    /// done flag.
    fn finish_window(&mut self, fast: Option<(bool, u64, u64)>) {
        for class in &mut self.classes {
            if let Some((was_frozen, now)) = class.stat_ctx.take() {
                class.sim.sample_stats(was_frozen, now);
                if let Some((in_prefix, sub, stretch)) = fast {
                    class.sim.fast_tick(in_prefix, sub, stretch);
                }
                class.done = class.sim.core().is_done();
            }
            class.pending = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{self, PolicyKind};
    use powerbalance_isa::TraceCursor;
    use powerbalance_thermal::ev6::FloorplanKind;
    use powerbalance_workloads::spec2000;

    fn scalar(cfg: &SimConfig, bench: &str, seed: u64, cycles: u64) -> RunResult {
        let mut sim = Simulator::new(cfg.clone()).expect("valid config");
        let mut trace = spec2000::by_name(bench).expect("profile").trace(seed);
        sim.run(&mut trace, cycles)
    }

    #[test]
    fn identical_siblings_share_one_class_and_match_scalar() {
        let configs = vec![SimConfig::default(); 3];
        let trace = TraceCursor::new(spec2000::by_name("gzip").expect("profile").trace(3));
        let mut batch = BatchSimulator::new(configs, trace).expect("eligible");
        let results = batch.run(60_000);
        assert_eq!(batch.class_count(), 1, "baseline siblings never diverge");
        let reference = scalar(&SimConfig::default(), "gzip", 3, 60_000);
        for r in &results {
            assert_eq!(*r, reference, "batched result drifted from scalar");
        }
    }

    #[test]
    fn diverging_policies_fork_and_stay_bitwise_scalar_exact() {
        // "eon" on the issue-constrained floorplan trips within 1M cycles
        // (the recipe tests/techniques.rs relies on), so the policies
        // actually diverge and the fork path is exercised.
        let configs: Vec<SimConfig> =
            [PolicyKind::None, PolicyKind::Spatial, PolicyKind::FetchGate]
                .iter()
                .map(|k| experiments::policy(*k, FloorplanKind::IssueConstrained))
                .collect();
        let trace = TraceCursor::new(spec2000::by_name("eon").expect("profile").trace(42));
        let mut batch = BatchSimulator::new(configs.clone(), trace).expect("eligible");
        let results = batch.run(1_000_000);
        assert!(batch.class_count() > 1, "constrained floorplan must split the policies");
        for (cfg, r) in configs.iter().zip(&results) {
            assert_eq!(*r, scalar(cfg, "eon", 42, 1_000_000), "sibling drifted from scalar");
        }
    }

    #[test]
    fn diverging_policies_stay_bitwise_scalar_fast() {
        let make = |k: &PolicyKind| SimConfig {
            fidelity: Fidelity::Fast,
            fast_window: 40_000,
            fast_warmup: 20_000,
            ..experiments::policy(*k, FloorplanKind::AluConstrained)
        };
        let configs: Vec<SimConfig> = PolicyKind::ALL.iter().map(make).collect();
        let profile = spec2000::by_name("crafty").expect("profile");
        let mut batch = BatchSimulator::new(configs.clone(), profile.trace(5)).expect("eligible");
        let results = batch.run(300_000);
        for (cfg, r) in configs.iter().zip(&results) {
            assert_eq!(*r, scalar(cfg, "crafty", 5, 300_000), "sibling drifted from scalar");
        }
    }

    #[test]
    fn warmup_then_run_matches_scalar_warmup_then_run() {
        let configs = vec![
            experiments::policy(PolicyKind::FetchGate, FloorplanKind::IssueConstrained),
            experiments::policy(PolicyKind::None, FloorplanKind::IssueConstrained),
        ];
        let trace = TraceCursor::new(spec2000::by_name("gzip").expect("profile").trace(3));
        let mut batch = BatchSimulator::new(configs.clone(), trace).expect("eligible");
        batch.run_warmup(40_000);
        assert_eq!(batch.class_count(), 1, "warmup never consults, so never forks");
        let results = batch.run(80_000);
        for (cfg, r) in configs.iter().zip(&results) {
            let mut sim = Simulator::new(cfg.clone()).expect("valid config");
            let mut trace = spec2000::by_name("gzip").expect("profile").trace(3);
            sim.run_warmup(&mut trace, 40_000);
            assert_eq!(*r, sim.run(&mut trace, 80_000), "warmup+run drifted from scalar");
        }
    }

    #[test]
    fn ineligible_siblings_are_rejected() {
        let configs = vec![
            SimConfig::default(),
            SimConfig { floorplan: FloorplanKind::IssueConstrained, ..SimConfig::default() },
        ];
        let trace = TraceCursor::new(spec2000::by_name("gzip").expect("profile").trace(3));
        let err = BatchSimulator::new(configs, trace).expect_err("floorplans differ");
        assert!(err.to_string().contains("outside `mitigation`"), "{err}");
        let trace = TraceCursor::new(spec2000::by_name("gzip").expect("profile").trace(3));
        let err = BatchSimulator::<_>::new(vec![], trace).expect_err("empty batch");
        assert!(err.to_string().contains("at least one"), "{err}");
    }

    #[test]
    fn batch_key_normalizes_only_mitigation() {
        let a = experiments::policy(PolicyKind::Dvfs, FloorplanKind::IssueConstrained);
        let b = experiments::policy(PolicyKind::Combined, FloorplanKind::IssueConstrained);
        assert_eq!(batch_key(&a), batch_key(&b));
        let c = experiments::policy(PolicyKind::Dvfs, FloorplanKind::AluConstrained);
        assert_ne!(batch_key(&a), batch_key(&c));
    }

    #[test]
    fn controlled_cancel_stops_the_whole_batch_together() {
        use std::sync::atomic::AtomicBool;
        let configs = vec![SimConfig::default(); 2];
        let trace = TraceCursor::new(spec2000::by_name("gzip").expect("profile").trace(3));
        let mut batch = BatchSimulator::new(configs, trace).expect("eligible");
        let flag = AtomicBool::new(true);
        let control = RunControl::unlimited().with_cancel(&flag);
        let (results, cause) = batch.run_controlled(100_000, &control);
        assert_eq!(cause, StopCause::Cancelled);
        for r in &results {
            assert_eq!(r.cycles, 0, "cancel is checked before the first window");
        }
    }
}

//! Top-level simulation configuration.

use powerbalance_mitigation::MitigationConfig;
use powerbalance_power::EnergyTables;
use powerbalance_thermal::ev6::FloorplanKind;
use powerbalance_thermal::PackageConfig;
use powerbalance_uarch::CoreConfig;
use serde::{Deserialize, Serialize};

/// Everything needed to build a [`crate::Simulator`].
///
/// Defaults reproduce the paper's Table 2 machine: a 6-wide core at
/// 4.2 GHz on the baseline EV6-like floorplan, temperatures sampled every
/// 10 000 cycles (well under every compressed thermal time constant),
/// temporal-stall-only mitigation.
///
/// # Examples
///
/// ```
/// use powerbalance::{FloorplanKind, MitigationConfig, SimConfig};
///
/// let cfg = SimConfig {
///     floorplan: FloorplanKind::AluConstrained,
///     mitigation: MitigationConfig::alu_turnoff_only(),
///     ..SimConfig::default()
/// };
/// assert_eq!(cfg.frequency_hz, 4.2e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The core microarchitecture.
    pub core: CoreConfig,
    /// Which floorplan variant to simulate on.
    pub floorplan: FloorplanKind,
    /// Thermal package parameters (incl. time compression).
    pub package: PackageConfig,
    /// Per-event energies.
    pub energy: EnergyTables,
    /// Enabled mitigation techniques and thresholds.
    pub mitigation: MitigationConfig,
    /// Clock frequency in hertz (paper Table 2: 4.2 GHz).
    pub frequency_hz: f64,
    /// Cycles between temperature samples. The paper samples every
    /// 100 000 cycles; with time-compressed thermal constants we sample
    /// 10× more often to keep the same samples-per-time-constant ratio.
    pub sample_interval: u64,
    /// After the first sample window, jump the thermal model to the steady
    /// state of that window's power (fast warm-up to each workload's own
    /// operating point). When `false` the die starts at ambient.
    pub warm_start: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            core: CoreConfig::default(),
            floorplan: FloorplanKind::Baseline,
            package: PackageConfig::default(),
            energy: EnergyTables::default(),
            mitigation: MitigationConfig::baseline(),
            frequency_hz: 4.2e9,
            sample_interval: 10_000,
            warm_start: true,
        }
    }
}

impl SimConfig {
    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant across all subsystems.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()?;
        self.package.validate()?;
        self.energy.validate()?;
        self.mitigation.validate()?;
        if self.frequency_hz <= 0.0 || self.frequency_hz.is_nan() {
            return Err("frequency_hz must be positive".into());
        }
        if self.sample_interval == 0 {
            return Err("sample_interval must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        SimConfig::default().validate().expect("default config is valid");
    }

    #[test]
    fn invalid_subsystem_bubbles_up() {
        let mut cfg = SimConfig::default();
        cfg.core.iq_size = 7;
        assert!(cfg.validate().is_err());

        let cfg = SimConfig { sample_interval: 0, ..SimConfig::default() };
        assert!(cfg.validate().is_err());
    }
}

//! Top-level simulation configuration.

use powerbalance_mitigation::MitigationConfig;
use powerbalance_power::EnergyTables;
use powerbalance_sched::SchedulerKind;
use powerbalance_thermal::ev6::FloorplanKind;
use powerbalance_thermal::PackageConfig;
use powerbalance_uarch::CoreConfig;
use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// How faithfully the simulator integrates power and heat over time.
///
/// `Exact` is the cycle-by-cycle engine every golden artifact was pinned
/// on. `Fast` is a CoMeT-style interval engine: the core runs in detail
/// for one sampling window per macro-interval, and the thermal RC network
/// is advanced analytically (closed-form, reusing the LU machinery) for
/// the rest, with the measured utilization held constant and the workload
/// fast-forwarded to stay phase-aligned. A detailed warmup prefix
/// ([`SimConfig::fast_warmup`]) runs first so the predictor and caches
/// reach the same trained state Exact's would. Mitigation policies keep
/// their Exact-mode cadence — one consult per sampling interval, against the
/// analytically advanced temperatures — so all six policy families work
/// unmodified. The accuracy contract binding Fast to Exact is pinned in
/// `tests/fidelity_contract.rs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fidelity {
    /// Cycle-accurate simulation of every sampling window.
    #[default]
    Exact,
    /// Interval simulation: detailed samples, analytic thermal advance
    /// in between.
    Fast,
}

impl Fidelity {
    /// Both fidelities, in presentation order.
    pub const ALL: [Fidelity; 2] = [Fidelity::Exact, Fidelity::Fast];

    /// Stable lowercase name (CLI flag / query-string vocabulary).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Exact => "exact",
            Fidelity::Fast => "fast",
        }
    }

    /// Parses [`name`](Self::name) back into a fidelity.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Fidelity> {
        Self::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// Default macro-interval length for [`Fidelity::Fast`] (cycles).
///
/// With the default 10 000-cycle sampling interval this is a 1-in-20
/// detailed-window duty cycle — comfortably past the 10× speedup target
/// while keeping one mitigation consult per 200k cycles, well under the
/// compressed thermal time constants.
pub const DEFAULT_FAST_WINDOW: u64 = 200_000;

/// Default detailed warmup prefix for [`Fidelity::Fast`] (cycles).
///
/// Interval sampling only sees `1/stretch` of the cycles, so the branch
/// predictor and caches would train `stretch×` slower than under
/// [`Fidelity::Exact`] and the die would run systematically colder for
/// the whole run. Simulating the first `fast_warmup` cycles in full
/// detail lets the core reach its trained steady state (the measured
/// transient is well under 200k cycles for every bundled workload)
/// before the interval engine starts extrapolating from it. The cost is
/// a fixed prefix: a budget of `B` cycles runs in
/// `P + (B - P) / stretch` detailed cycles, so multi-million-cycle
/// campaigns still clear 10× while short runs degrade gracefully toward
/// Exact (a run shorter than the prefix *is* Exact, minus the engine's
/// bookkeeping).
pub const DEFAULT_FAST_WARMUP: u64 = 200_000;

/// Most cores a multi-core die may instantiate. The tiling is linear
/// (cores abut along x), so very wide dies stop being physically
/// meaningful long before they stop being computable; eight covers every
/// sweep in the evaluation with headroom.
pub const MAX_CORES: usize = 8;

/// Everything needed to build a [`crate::Simulator`].
///
/// Defaults reproduce the paper's Table 2 machine: a 6-wide core at
/// 4.2 GHz on the baseline EV6-like floorplan, temperatures sampled every
/// 10 000 cycles (well under every compressed thermal time constant),
/// temporal-stall-only mitigation.
///
/// # Examples
///
/// ```
/// use powerbalance::{FloorplanKind, MitigationConfig, SimConfig};
///
/// let cfg = SimConfig {
///     floorplan: FloorplanKind::AluConstrained,
///     mitigation: MitigationConfig::alu_turnoff_only(),
///     ..SimConfig::default()
/// };
/// assert_eq!(cfg.frequency_hz, 4.2e9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// The core microarchitecture.
    pub core: CoreConfig,
    /// Which floorplan variant to simulate on.
    pub floorplan: FloorplanKind,
    /// Thermal package parameters (incl. time compression).
    pub package: PackageConfig,
    /// Per-event energies.
    pub energy: EnergyTables,
    /// Enabled mitigation techniques and thresholds.
    pub mitigation: MitigationConfig,
    /// Clock frequency in hertz (paper Table 2: 4.2 GHz).
    pub frequency_hz: f64,
    /// Cycles between temperature samples. The paper samples every
    /// 100 000 cycles; with time-compressed thermal constants we sample
    /// 10× more often to keep the same samples-per-time-constant ratio.
    pub sample_interval: u64,
    /// After the first sample window, jump the thermal model to the steady
    /// state of that window's power (fast warm-up to each workload's own
    /// operating point). When `false` the die starts at ambient.
    pub warm_start: bool,
    /// Integration fidelity (see [`Fidelity`]).
    pub fidelity: Fidelity,
    /// Macro-interval length in cycles for [`Fidelity::Fast`]: one
    /// detailed sampling window is simulated per `fast_window` cycles and
    /// the rest are advanced analytically. Must be a positive multiple of
    /// `sample_interval`. Ignored under [`Fidelity::Exact`].
    pub fast_window: u64,
    /// Detailed warmup prefix in cycles for [`Fidelity::Fast`]: the first
    /// `fast_warmup` cycles of the run are simulated cycle-by-cycle (so
    /// the predictor, caches, and thermal state all train exactly as
    /// under [`Fidelity::Exact`]) before interval sampling engages.
    /// Ignored under [`Fidelity::Exact`].
    pub fast_warmup: u64,
    /// Number of cores tiled on the die (1..=[`MAX_CORES`]). `1` is the
    /// scalar single-core machine every golden artifact was pinned on;
    /// above 1 the floorplan is replicated with lateral RC coupling
    /// between adjacent cores and runs under
    /// [`crate::MultiCoreSimulator`].
    pub cores: usize,
    /// Which scheduler places workload segments onto cores. Ignored at
    /// `cores == 1` (there is nothing to place).
    pub scheduler: SchedulerKind,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            core: CoreConfig::default(),
            floorplan: FloorplanKind::Baseline,
            package: PackageConfig::default(),
            energy: EnergyTables::default(),
            mitigation: MitigationConfig::baseline(),
            frequency_hz: 4.2e9,
            sample_interval: 10_000,
            warm_start: true,
            fidelity: Fidelity::Exact,
            fast_window: DEFAULT_FAST_WINDOW,
            fast_warmup: DEFAULT_FAST_WARMUP,
            cores: 1,
            scheduler: SchedulerKind::RoundRobin,
        }
    }
}

// Manual serde: the fidelity and multi-core fields are omitted at their
// defaults so configs written before those features existed (and every
// single-core Exact run) keep a byte-identical wire form — the pinned
// campaign/ablation goldens must not churn.
impl Serialize for SimConfig {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("core".to_string(), self.core.serialize()),
            ("floorplan".to_string(), self.floorplan.serialize()),
            ("package".to_string(), self.package.serialize()),
            ("energy".to_string(), self.energy.serialize()),
            ("mitigation".to_string(), self.mitigation.serialize()),
            ("frequency_hz".to_string(), self.frequency_hz.serialize()),
            ("sample_interval".to_string(), self.sample_interval.serialize()),
            ("warm_start".to_string(), self.warm_start.serialize()),
        ];
        if self.fidelity != Fidelity::Exact {
            fields.push(("fidelity".to_string(), self.fidelity.serialize()));
        }
        if self.fast_window != DEFAULT_FAST_WINDOW {
            fields.push(("fast_window".to_string(), self.fast_window.serialize()));
        }
        if self.fast_warmup != DEFAULT_FAST_WARMUP {
            fields.push(("fast_warmup".to_string(), self.fast_warmup.serialize()));
        }
        if self.cores != 1 {
            fields.push(("cores".to_string(), self.cores.serialize()));
        }
        if self.scheduler != SchedulerKind::RoundRobin {
            fields.push(("scheduler".to_string(), self.scheduler.name().serialize()));
        }
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for SimConfig {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(SimConfig {
            core: Deserialize::deserialize(value.field("core")?)?,
            floorplan: Deserialize::deserialize(value.field("floorplan")?)?,
            package: Deserialize::deserialize(value.field("package")?)?,
            energy: Deserialize::deserialize(value.field("energy")?)?,
            mitigation: Deserialize::deserialize(value.field("mitigation")?)?,
            frequency_hz: Deserialize::deserialize(value.field("frequency_hz")?)?,
            sample_interval: Deserialize::deserialize(value.field("sample_interval")?)?,
            warm_start: Deserialize::deserialize(value.field("warm_start")?)?,
            fidelity: match value.get("fidelity") {
                Some(v) => Deserialize::deserialize(v)?,
                None => Fidelity::Exact,
            },
            fast_window: match value.get("fast_window") {
                Some(v) => Deserialize::deserialize(v)?,
                None => DEFAULT_FAST_WINDOW,
            },
            fast_warmup: match value.get("fast_warmup") {
                Some(v) => Deserialize::deserialize(v)?,
                None => DEFAULT_FAST_WARMUP,
            },
            cores: match value.get("cores") {
                Some(v) => Deserialize::deserialize(v)?,
                None => 1,
            },
            scheduler: match value.get("scheduler") {
                Some(v) => {
                    let name: String = Deserialize::deserialize(v)?;
                    SchedulerKind::from_name(&name)
                        .ok_or_else(|| Error::custom(format!("unknown scheduler '{name}'")))?
                }
                None => SchedulerKind::RoundRobin,
            },
        })
    }
}

impl SimConfig {
    /// Validates the composite configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant across all subsystems.
    pub fn validate(&self) -> Result<(), String> {
        self.core.validate()?;
        self.package.validate()?;
        self.energy.validate()?;
        self.mitigation.validate()?;
        if self.frequency_hz <= 0.0 || self.frequency_hz.is_nan() {
            return Err("frequency_hz must be positive".into());
        }
        if self.sample_interval == 0 {
            return Err("sample_interval must be positive".into());
        }
        if self.fidelity == Fidelity::Fast {
            if self.fast_window < self.sample_interval {
                return Err("fast_window must be at least one sample_interval".into());
            }
            if !self.fast_window.is_multiple_of(self.sample_interval) {
                return Err("fast_window must be a multiple of sample_interval".into());
            }
        }
        if self.cores == 0 || self.cores > MAX_CORES {
            return Err(format!("cores must be in 1..={MAX_CORES}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        SimConfig::default().validate().expect("default config is valid");
    }

    #[test]
    fn invalid_subsystem_bubbles_up() {
        let mut cfg = SimConfig::default();
        cfg.core.iq_size = 7;
        assert!(cfg.validate().is_err());

        let cfg = SimConfig { sample_interval: 0, ..SimConfig::default() };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn fidelity_names_round_trip() {
        for f in Fidelity::ALL {
            assert_eq!(Fidelity::from_name(f.name()), Some(f));
        }
        assert_eq!(Fidelity::from_name("detailed"), None);
    }

    #[test]
    fn fast_window_validation() {
        // Exact mode ignores fast_window entirely.
        let cfg = SimConfig { fast_window: 3, ..SimConfig::default() };
        cfg.validate().expect("exact ignores fast_window");

        let mut cfg = SimConfig { fidelity: Fidelity::Fast, ..SimConfig::default() };
        cfg.validate().expect("default fast_window is valid");
        cfg.fast_window = 5_000; // below sample_interval
        assert!(cfg.validate().is_err());
        cfg.fast_window = 15_000; // not a multiple
        assert!(cfg.validate().is_err());
        cfg.fast_window = 10_000; // stretch 1: legal degenerate case
        cfg.validate().expect("stretch-1 fast mode is valid");
    }

    #[test]
    fn exact_wire_form_omits_fidelity_fields() {
        // Pinned goldens predate the interval engine; a default-fidelity
        // config must serialize byte-identically to the old shape.
        let json = serde::json::to_string(&SimConfig::default());
        assert!(!json.contains("fidelity"), "default config leaks fidelity: {json}");
        assert!(!json.contains("fast_window"), "default config leaks fast_window: {json}");
        assert!(!json.contains("fast_warmup"), "default config leaks fast_warmup: {json}");
        let parsed: SimConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(parsed, SimConfig::default());
    }

    #[test]
    fn single_core_wire_form_omits_multicore_fields() {
        // Artifacts written before the multi-core subsystem existed must
        // stay byte-identical at the N=1 defaults.
        let json = serde::json::to_string(&SimConfig::default());
        assert!(!json.contains("cores"), "default config leaks cores: {json}");
        assert!(!json.contains("scheduler"), "default config leaks scheduler: {json}");
        let parsed: SimConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(parsed, SimConfig::default());
    }

    #[test]
    fn multicore_wire_form_round_trips() {
        let cfg =
            SimConfig { cores: 4, scheduler: SchedulerKind::CoolestFirst, ..SimConfig::default() };
        let json = serde::json::to_string(&cfg);
        assert!(json.contains("\"cores\":4"), "{json}");
        assert!(json.contains("\"scheduler\":\"coolest-first\""), "{json}");
        let parsed: SimConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(parsed, cfg);
        assert!(
            serde::json::from_str::<SimConfig>(&json.replace("coolest-first", "hottest")).is_err()
        );
    }

    #[test]
    fn cores_validation() {
        let cfg = SimConfig { cores: 0, ..SimConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg = SimConfig { cores: MAX_CORES + 1, ..SimConfig::default() };
        assert!(cfg.validate().is_err());
        let cfg =
            SimConfig { cores: 4, scheduler: SchedulerKind::Threshold, ..SimConfig::default() };
        cfg.validate().expect("4-core config is valid");
    }

    #[test]
    fn fast_wire_form_round_trips() {
        let cfg = SimConfig {
            fidelity: Fidelity::Fast,
            fast_window: 40_000,
            fast_warmup: 50_000,
            ..SimConfig::default()
        };
        let json = serde::json::to_string(&cfg);
        assert!(json.contains("\"fidelity\":\"Fast\""), "{json}");
        assert!(json.contains("\"fast_window\":40000"), "{json}");
        assert!(json.contains("\"fast_warmup\":50000"), "{json}");
        let parsed: SimConfig = serde::json::from_str(&json).unwrap();
        assert_eq!(parsed, cfg);
    }
}

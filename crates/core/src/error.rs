//! Error type for the facade.

use std::fmt;

/// Errors from building or running a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A configuration value violated an invariant; the message names it.
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<String> for Error {
    fn from(msg: String) -> Self {
        Error::Config(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = Error::Config("iq_size must be even".into());
        assert!(e.to_string().contains("iq_size"));
    }

    #[test]
    fn implements_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(Error::Config("x".into()));
    }
}

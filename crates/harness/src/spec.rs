//! Typed campaign descriptions.

use powerbalance::{spec2000, Error, SimConfig};
use serde::{Deserialize, Serialize};

/// One named configuration within a campaign — one bar/row of a figure or
/// table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedConfig {
    /// Short label used in table headers and JSON artifacts (e.g.
    /// `"toggling"`).
    pub name: String,
    /// The full simulator configuration.
    pub config: SimConfig,
    /// Per-config cycle-budget override; `None` uses the campaign's budget.
    /// (The time-compression ablation scales run length per config so every
    /// run covers the same number of thermal time constants.)
    pub cycles: Option<u64>,
}

/// The typed description of an experiment campaign: a cross-product of
/// named configurations and benchmarks, run for a fixed cycle budget from a
/// fixed workload seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSpec {
    /// Campaign name, used in progress lines and JSON artifacts.
    pub name: String,
    /// The configurations to run, in column order.
    pub configs: Vec<NamedConfig>,
    /// The benchmarks to run, in row order.
    pub benchmarks: Vec<String>,
    /// Simulated cycles per job (unless a config overrides it).
    pub cycles: u64,
    /// Workload seed, threaded into every trace.
    pub seed: u64,
    /// Warmup cycles run before each job's measured `cycles`, with thermal
    /// and power accounting active but the mitigation manager never
    /// consulted. `0` (the default) skips warmup entirely. Because warmup
    /// state is mitigation-independent, jobs that share a benchmark, seed,
    /// and warmup-relevant configuration can share one warmup snapshot —
    /// see [`crate::RunnerOptions::warm_cache`].
    pub warmup_cycles: u64,
}

impl CampaignSpec {
    /// Starts an empty campaign with the default cycle budget and seed.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            configs: Vec::new(),
            benchmarks: Vec::new(),
            cycles: crate::DEFAULT_CYCLES,
            seed: crate::DEFAULT_SEED,
            warmup_cycles: 0,
        }
    }

    /// Adds a named configuration.
    #[must_use]
    pub fn config(mut self, name: impl Into<String>, config: SimConfig) -> Self {
        self.configs.push(NamedConfig { name: name.into(), config, cycles: None });
        self
    }

    /// Adds a named configuration with its own cycle budget.
    #[must_use]
    pub fn config_with_cycles(
        mut self,
        name: impl Into<String>,
        config: SimConfig,
        cycles: u64,
    ) -> Self {
        self.configs.push(NamedConfig { name: name.into(), config, cycles: Some(cycles) });
        self
    }

    /// Adds one benchmark.
    #[must_use]
    pub fn benchmark(mut self, name: impl Into<String>) -> Self {
        self.benchmarks.push(name.into());
        self
    }

    /// Adds several benchmarks.
    #[must_use]
    pub fn benchmarks<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.benchmarks.extend(names.into_iter().map(Into::into));
        self
    }

    /// Adds all 22 benchmarks, in [`spec2000::ALL`] order.
    #[must_use]
    pub fn all_benchmarks(self) -> Self {
        self.benchmarks(spec2000::ALL.iter().copied())
    }

    /// Sets the per-job cycle budget.
    #[must_use]
    pub fn cycles(mut self, cycles: u64) -> Self {
        self.cycles = cycles;
        self
    }

    /// Sets the workload seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the mitigation-free warmup run before each job's measured
    /// cycles (see [`CampaignSpec::warmup_cycles`]).
    #[must_use]
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.warmup_cycles = cycles;
        self
    }

    /// Total number of (benchmark × config) jobs.
    #[must_use]
    pub fn job_count(&self) -> usize {
        self.benchmarks.len() * self.configs.len()
    }

    /// The cycle budget for the config at `config_index`.
    #[must_use]
    pub fn cycles_for(&self, config_index: usize) -> u64 {
        self.configs[config_index].cycles.unwrap_or(self.cycles)
    }

    /// Checks the campaign is runnable: at least one config and benchmark,
    /// every benchmark known, every config valid, and no duplicate labels
    /// (duplicates would make JSON artifacts ambiguous).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] naming the offending entry.
    pub fn validate(&self) -> Result<(), Error> {
        if self.configs.is_empty() {
            return Err(Error::Config(format!("campaign '{}' has no configs", self.name)));
        }
        if self.benchmarks.is_empty() {
            return Err(Error::Config(format!("campaign '{}' has no benchmarks", self.name)));
        }
        for bench in &self.benchmarks {
            if spec2000::by_name(bench).is_none() {
                return Err(Error::Config(format!("unknown benchmark '{bench}'")));
            }
        }
        for (i, nc) in self.configs.iter().enumerate() {
            nc.config
                .validate()
                .map_err(|e| Error::Config(format!("config '{}': {e}", nc.name)))?;
            if self.configs[..i].iter().any(|other| other.name == nc.name) {
                return Err(Error::Config(format!("duplicate config name '{}'", nc.name)));
            }
        }
        for (i, bench) in self.benchmarks.iter().enumerate() {
            if self.benchmarks[..i].iter().any(|other| other == bench) {
                return Err(Error::Config(format!("duplicate benchmark '{bench}'")));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::experiments;

    #[test]
    fn builder_accumulates() {
        let spec = CampaignSpec::new("t")
            .config("base", experiments::issue_queue(false))
            .config_with_cycles("short", experiments::issue_queue(true), 1_000)
            .benchmark("eon")
            .benchmarks(["gzip", "mesa"])
            .cycles(5_000)
            .seed(7);
        assert_eq!(spec.job_count(), 6);
        assert_eq!(spec.cycles_for(0), 5_000);
        assert_eq!(spec.cycles_for(1), 1_000);
        assert_eq!(spec.seed, 7);
        spec.validate().expect("valid spec");
    }

    #[test]
    fn all_benchmarks_covers_the_suite() {
        let spec =
            CampaignSpec::new("t").config("base", experiments::issue_queue(false)).all_benchmarks();
        assert_eq!(spec.benchmarks.len(), spec2000::ALL.len());
        spec.validate().expect("valid spec");
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let base = || CampaignSpec::new("t").config("base", experiments::issue_queue(false));
        assert!(CampaignSpec::new("empty").benchmark("eon").validate().is_err());
        assert!(base().validate().is_err(), "no benchmarks");
        assert!(base().benchmark("doom3").validate().is_err(), "unknown benchmark");
        assert!(
            base()
                .config("base", experiments::issue_queue(true))
                .benchmark("eon")
                .validate()
                .is_err(),
            "duplicate config name"
        );
        assert!(
            base().benchmark("eon").benchmark("eon").validate().is_err(),
            "duplicate benchmark"
        );
    }
}

//! The bounded parallel campaign runner.

use crate::result::{CampaignResult, JobResult};
use crate::spec::CampaignSpec;
use crate::warmstart::WarmStartCache;
use powerbalance::{spec2000, Error, RunResult, SimConfig, Simulator};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable consulted for the worker-pool size when no explicit
/// thread count is given.
pub const THREADS_ENV_VAR: &str = "POWERBALANCE_THREADS";

/// Options controlling how a campaign is executed (not *what* it computes —
/// that lives in [`CampaignSpec`]).
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker-pool size; `None` falls back to [`THREADS_ENV_VAR`], then
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Emit one progress line per finished job on stderr.
    pub progress: bool,
    /// Share one warmup snapshot across jobs whose `(benchmark, seed,
    /// warmup budget, config-modulo-mitigation)` match (default `true`).
    /// With `false`, every job computes its own warmup privately — same
    /// results, no sharing; useful for timing comparisons and as the
    /// differential oracle for the cache itself. Irrelevant when
    /// [`CampaignSpec::warmup_cycles`] is 0.
    pub warm_cache: bool,
    /// Directory to persist warmup snapshots in (and, with
    /// [`resume`](RunnerOptions::resume), load them from). `None` keeps
    /// the cache purely in-memory. Only consulted when `warm_cache` is on.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load matching snapshots from `checkpoint_dir` instead of
    /// recomputing them (a mismatched or unreadable file silently falls
    /// back to computation).
    pub resume: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            threads: None,
            progress: false,
            warm_cache: true,
            checkpoint_dir: None,
            resume: false,
        }
    }
}

/// Resolves the worker-pool size: `explicit` if given, else the
/// [`THREADS_ENV_VAR`] environment variable if set to a positive integer,
/// else [`std::thread::available_parallelism`]. Always at least 1.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var(THREADS_ENV_VAR).ok().and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
        .max(1)
}

/// Runs one (benchmark × config) simulation outside any campaign: builds a
/// fresh simulator, seeds the workload trace, runs for `cycles`.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
) -> Result<RunResult, Error> {
    let profile = spec2000::by_name(bench)
        .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
    let mut sim = Simulator::new(config.clone())?;
    Ok(sim.run(&mut profile.trace(seed), cycles))
}

/// Like [`run_one`], but preceded by `warmup_cycles` of mitigation-free
/// warmup, optionally forked from a shared [`WarmStartCache`].
///
/// With a cache, the warmup snapshot is computed (or loaded) at most once
/// per key and the measured run resumes from it under this job's own
/// mitigation config. Without one, the warmup runs inline, uninterrupted,
/// on the job's own simulator — no snapshot is ever taken. Both paths
/// produce bit-identical results (warmup never consults the mitigation
/// manager, and restore is exact); the differential test layer pins that
/// equivalence, which is what makes the cold path the oracle for the
/// cache.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one_warmed(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
    warmup_cycles: u64,
    cache: Option<&WarmStartCache>,
) -> Result<RunResult, Error> {
    if warmup_cycles == 0 {
        return run_one(config, bench, cycles, seed);
    }
    match cache {
        Some(cache) => {
            let snapshot = cache.get_or_compute(bench, seed, warmup_cycles, config)?;
            let (mut sim, mut trace) = snapshot.resume_with_config(config.clone())?;
            Ok(sim.run(&mut trace, cycles))
        }
        None => {
            let profile = spec2000::by_name(bench)
                .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
            let mut sim = Simulator::new(config.clone())?;
            let mut trace = profile.trace(seed);
            sim.run_warmup(&mut trace, warmup_cycles);
            Ok(sim.run(&mut trace, cycles))
        }
    }
}

/// Runs every (benchmark × config) job of `spec` on a bounded worker pool
/// and returns the results in deterministic spec order.
///
/// Workers pull jobs from a shared atomic cursor, so scheduling is at job
/// granularity: a slow benchmark on one config does not serialize the rest
/// of the campaign behind it. Each finished job lands in its own result
/// slot, indexed by position in the spec, so the output order — and, since
/// every simulation is seeded, the output *content* — is identical whether
/// the pool has one worker or many.
///
/// # Errors
///
/// Returns [`Error::Config`] if the spec fails validation. Individual jobs
/// cannot fail after validation: every benchmark and config has already
/// been checked.
///
/// # Panics
///
/// Panics if a worker thread panics (the simulator itself is panic-free on
/// validated configs).
pub fn run_campaign(spec: &CampaignSpec, options: &RunnerOptions) -> Result<CampaignResult, Error> {
    spec.validate()?;
    let total = spec.job_count();
    let threads = resolve_threads(options.threads).min(total).max(1);
    let ncfg = spec.configs.len();

    let cache = if spec.warmup_cycles > 0 && options.warm_cache {
        Some(match &options.checkpoint_dir {
            Some(dir) => WarmStartCache::with_checkpoint_dir(dir, options.resume),
            None => WarmStartCache::in_memory(),
        })
    } else {
        None
    };

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();

    let campaign_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let bench_index = index / ncfg;
                let config_index = index % ncfg;
                let bench = &spec.benchmarks[bench_index];
                let named = &spec.configs[config_index];
                let cycles = spec.cycles_for(config_index);

                let start = Instant::now();
                let result = run_one_warmed(
                    &named.config,
                    bench,
                    cycles,
                    spec.seed,
                    spec.warmup_cycles,
                    cache.as_ref(),
                )
                .expect("spec was validated before dispatch");
                let wall = start.elapsed();
                let wall_secs = wall.as_secs_f64();
                let sim_cycles_per_sec =
                    if wall_secs > 0.0 { result.cycles as f64 / wall_secs } else { 0.0 };

                if options.progress {
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[{} {finished}/{total}] {bench}/{}: IPC {:.3}, {:.0} ms, {:.1} Mcyc/s",
                        spec.name,
                        named.name,
                        result.ipc,
                        wall_secs * 1e3,
                        sim_cycles_per_sec / 1e6,
                    );
                }

                *slots[index].lock().expect("no worker panicked holding this lock") =
                    Some(JobResult {
                        bench: bench.clone(),
                        config: named.name.clone(),
                        bench_index,
                        config_index,
                        seed: spec.seed,
                        cycles_requested: cycles,
                        wall_nanos: wall.as_nanos() as u64,
                        sim_cycles_per_sec,
                        result,
                    });
            });
        }
    });

    if options.progress {
        if let Some(cache) = &cache {
            let (computed, loaded, hits) = cache.stats();
            eprintln!(
                "[{} warm-start] {computed} warmup(s) computed, {loaded} loaded from disk, \
                 {hits} cache hit(s)",
                spec.name
            );
        }
    }

    let jobs = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding this lock")
                .expect("every slot was filled before the scope ended")
        })
        .collect();
    Ok(CampaignResult {
        spec: spec.clone(),
        threads,
        wall_nanos: campaign_start.elapsed().as_nanos() as u64,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::experiments;

    #[test]
    fn resolve_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit 0 clamps to 1");
    }

    #[test]
    fn run_one_rejects_unknown_benchmark() {
        let err = run_one(&experiments::issue_queue(false), "doom3", 1_000, 1);
        assert!(err.is_err());
    }

    #[test]
    fn campaign_rejects_invalid_spec() {
        let spec = CampaignSpec::new("empty");
        assert!(run_campaign(&spec, &RunnerOptions::default()).is_err());
    }

    #[test]
    fn campaign_results_land_in_spec_order() {
        let spec = CampaignSpec::new("order")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["eon", "gzip", "mesa"])
            .cycles(20_000);
        let result = run_campaign(&spec, &RunnerOptions { threads: Some(4), ..Default::default() })
            .expect("campaign runs");
        assert_eq!(result.jobs.len(), 6);
        for (i, job) in result.jobs.iter().enumerate() {
            assert_eq!(job.bench_index, i / 2);
            assert_eq!(job.config_index, i % 2);
            assert_eq!(job.bench, spec.benchmarks[job.bench_index]);
            assert_eq!(job.config, spec.configs[job.config_index].name);
            assert!(job.result.cycles >= 20_000);
            assert!(job.wall_nanos > 0);
        }
    }

    #[test]
    fn warm_cache_matches_private_warmups() {
        // The same campaign with the shared warm-start cache on and off
        // must produce identical simulation outcomes: the cache is pure
        // wall-time optimization.
        let spec = CampaignSpec::new("warm")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["gzip", "mesa"])
            .cycles(30_000)
            .warmup(30_000)
            .seed(5);
        let warm = run_campaign(&spec, &RunnerOptions { threads: Some(4), ..Default::default() })
            .expect("warm campaign");
        let cold = run_campaign(
            &spec,
            &RunnerOptions { threads: Some(2), warm_cache: false, ..Default::default() },
        )
        .expect("cold campaign");
        assert!(warm.same_outcome(&cold), "cache must not change results");
        // Warmup ran: the measured window alone is `cycles`, so total
        // simulated cycles include the warmup.
        assert!(warm.jobs[0].result.cycles >= 60_000);
    }

    #[test]
    fn zero_warmup_is_the_legacy_path() {
        let spec = CampaignSpec::new("legacy")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
            .seed(9);
        let a = run_campaign(&spec, &RunnerOptions::default()).expect("runs");
        let direct = run_one(&spec.configs[0].config, "gzip", 20_000, 9).expect("runs");
        assert_eq!(a.jobs[0].result, direct);
    }

    #[test]
    fn campaign_matches_run_one() {
        let spec = CampaignSpec::new("match")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
            .seed(9);
        let campaign = run_campaign(&spec, &RunnerOptions::default()).expect("campaign runs");
        let direct = run_one(&spec.configs[0].config, "gzip", 20_000, 9).expect("runs");
        assert_eq!(campaign.jobs[0].result, direct);
    }
}

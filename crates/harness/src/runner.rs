//! The bounded parallel campaign runner.

use crate::result::{CampaignResult, JobResult};
use crate::spec::CampaignSpec;
use powerbalance::{spec2000, Error, RunResult, SimConfig, Simulator};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable consulted for the worker-pool size when no explicit
/// thread count is given.
pub const THREADS_ENV_VAR: &str = "POWERBALANCE_THREADS";

/// Options controlling how a campaign is executed (not *what* it computes —
/// that lives in [`CampaignSpec`]).
#[derive(Debug, Clone, Default)]
pub struct RunnerOptions {
    /// Worker-pool size; `None` falls back to [`THREADS_ENV_VAR`], then
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Emit one progress line per finished job on stderr.
    pub progress: bool,
}

/// Resolves the worker-pool size: `explicit` if given, else the
/// [`THREADS_ENV_VAR`] environment variable if set to a positive integer,
/// else [`std::thread::available_parallelism`]. Always at least 1.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    explicit
        .or_else(|| {
            std::env::var(THREADS_ENV_VAR).ok().and_then(|v| v.trim().parse::<usize>().ok())
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, usize::from))
        .max(1)
}

/// Runs one (benchmark × config) simulation outside any campaign: builds a
/// fresh simulator, seeds the workload trace, runs for `cycles`.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
) -> Result<RunResult, Error> {
    let profile = spec2000::by_name(bench)
        .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
    let mut sim = Simulator::new(config.clone())?;
    Ok(sim.run(&mut profile.trace(seed), cycles))
}

/// Runs every (benchmark × config) job of `spec` on a bounded worker pool
/// and returns the results in deterministic spec order.
///
/// Workers pull jobs from a shared atomic cursor, so scheduling is at job
/// granularity: a slow benchmark on one config does not serialize the rest
/// of the campaign behind it. Each finished job lands in its own result
/// slot, indexed by position in the spec, so the output order — and, since
/// every simulation is seeded, the output *content* — is identical whether
/// the pool has one worker or many.
///
/// # Errors
///
/// Returns [`Error::Config`] if the spec fails validation. Individual jobs
/// cannot fail after validation: every benchmark and config has already
/// been checked.
///
/// # Panics
///
/// Panics if a worker thread panics (the simulator itself is panic-free on
/// validated configs).
pub fn run_campaign(spec: &CampaignSpec, options: &RunnerOptions) -> Result<CampaignResult, Error> {
    spec.validate()?;
    let total = spec.job_count();
    let threads = resolve_threads(options.threads).min(total).max(1);
    let ncfg = spec.configs.len();

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();

    let campaign_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let bench_index = index / ncfg;
                let config_index = index % ncfg;
                let bench = &spec.benchmarks[bench_index];
                let named = &spec.configs[config_index];
                let cycles = spec.cycles_for(config_index);

                let start = Instant::now();
                let result = run_one(&named.config, bench, cycles, spec.seed)
                    .expect("spec was validated before dispatch");
                let wall = start.elapsed();
                let wall_secs = wall.as_secs_f64();
                let sim_cycles_per_sec =
                    if wall_secs > 0.0 { result.cycles as f64 / wall_secs } else { 0.0 };

                if options.progress {
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[{} {finished}/{total}] {bench}/{}: IPC {:.3}, {:.0} ms, {:.1} Mcyc/s",
                        spec.name,
                        named.name,
                        result.ipc,
                        wall_secs * 1e3,
                        sim_cycles_per_sec / 1e6,
                    );
                }

                *slots[index].lock().expect("no worker panicked holding this lock") =
                    Some(JobResult {
                        bench: bench.clone(),
                        config: named.name.clone(),
                        bench_index,
                        config_index,
                        seed: spec.seed,
                        cycles_requested: cycles,
                        wall_nanos: wall.as_nanos() as u64,
                        sim_cycles_per_sec,
                        result,
                    });
            });
        }
    });

    let jobs = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding this lock")
                .expect("every slot was filled before the scope ended")
        })
        .collect();
    Ok(CampaignResult {
        spec: spec.clone(),
        threads,
        wall_nanos: campaign_start.elapsed().as_nanos() as u64,
        jobs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::experiments;

    #[test]
    fn resolve_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit 0 clamps to 1");
    }

    #[test]
    fn run_one_rejects_unknown_benchmark() {
        let err = run_one(&experiments::issue_queue(false), "doom3", 1_000, 1);
        assert!(err.is_err());
    }

    #[test]
    fn campaign_rejects_invalid_spec() {
        let spec = CampaignSpec::new("empty");
        assert!(run_campaign(&spec, &RunnerOptions::default()).is_err());
    }

    #[test]
    fn campaign_results_land_in_spec_order() {
        let spec = CampaignSpec::new("order")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["eon", "gzip", "mesa"])
            .cycles(20_000);
        let result = run_campaign(&spec, &RunnerOptions { threads: Some(4), progress: false })
            .expect("campaign runs");
        assert_eq!(result.jobs.len(), 6);
        for (i, job) in result.jobs.iter().enumerate() {
            assert_eq!(job.bench_index, i / 2);
            assert_eq!(job.config_index, i % 2);
            assert_eq!(job.bench, spec.benchmarks[job.bench_index]);
            assert_eq!(job.config, spec.configs[job.config_index].name);
            assert!(job.result.cycles >= 20_000);
            assert!(job.wall_nanos > 0);
        }
    }

    #[test]
    fn campaign_matches_run_one() {
        let spec = CampaignSpec::new("match")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
            .seed(9);
        let campaign = run_campaign(&spec, &RunnerOptions::default()).expect("campaign runs");
        let direct = run_one(&spec.configs[0].config, "gzip", 20_000, 9).expect("runs");
        assert_eq!(campaign.jobs[0].result, direct);
    }
}

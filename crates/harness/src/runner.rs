//! The bounded parallel campaign runner.

use crate::result::{CampaignResult, JobResult};
use crate::spec::CampaignSpec;
use crate::warmstart::{WarmStartCache, WarmupOutcome};
use powerbalance::{
    batch_key, spec2000, BatchSimulator, Error, Fidelity, MultiCoreSimulator, RunControl,
    RunResult, SimConfig, Simulator, Snapshot, StopCause, Task, TaskSet, TraceCursor, TraceSource,
};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable consulted for the worker-pool size when no explicit
/// thread count is given.
pub const THREADS_ENV_VAR: &str = "POWERBALANCE_THREADS";

/// Options controlling how a campaign is executed (not *what* it computes —
/// that lives in [`CampaignSpec`]).
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker-pool size; `None` falls back to [`THREADS_ENV_VAR`], then
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Emit one progress line per finished job on stderr.
    pub progress: bool,
    /// Share one warmup snapshot across jobs whose `(benchmark, seed,
    /// warmup budget, config-modulo-mitigation)` match (default `true`).
    /// With `false`, every job computes its own warmup privately — same
    /// results, no sharing; useful for timing comparisons and as the
    /// differential oracle for the cache itself. Irrelevant when
    /// [`CampaignSpec::warmup_cycles`] is 0.
    pub warm_cache: bool,
    /// Directory to persist warmup snapshots in (and, with
    /// [`resume`](RunnerOptions::resume), load them from). `None` keeps
    /// the cache purely in-memory. Only consulted when `warm_cache` is on.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load matching snapshots from `checkpoint_dir` instead of
    /// recomputing them (a mismatched or unreadable file silently falls
    /// back to computation).
    pub resume: bool,
    /// Upper bound on how many batch-eligible jobs — same benchmark, same
    /// measured cycle budget, configurations identical outside
    /// `mitigation` (see [`powerbalance::batch_key`]) — execute together
    /// in one lockstep [`BatchSimulator`] unit (default 6). `1` disables
    /// batching. Batched and scalar execution are bit-identical (pinned by
    /// the differential test layer), so this trades scheduling granularity
    /// against wall-clock throughput, never results.
    pub max_batch: usize,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            threads: None,
            progress: false,
            warm_cache: true,
            checkpoint_dir: None,
            resume: false,
            max_batch: 6,
        }
    }
}

/// Resolves the worker-pool size: `explicit` if given (clamped to at least
/// 1), else the [`THREADS_ENV_VAR`] environment variable if set to a
/// positive integer, else [`std::thread::available_parallelism`].
///
/// An env-var value that is not a positive integer (`0`, garbage, empty)
/// warns on stderr and falls back to the automatic count — the same
/// clamp-to-usable behavior the explicit-flag path has, instead of
/// silently ignoring the variable.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    resolve_threads_from(explicit, std::env::var(THREADS_ENV_VAR).ok().as_deref())
}

/// [`resolve_threads`] with the environment read factored out for
/// testability (mutating real process environment races parallel tests).
fn resolve_threads_from(explicit: Option<usize>, env: Option<&str>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(raw) = env {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "warning: {THREADS_ENV_VAR}='{raw}' is not a positive integer; \
                 falling back to the automatic thread count"
            ),
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs one (benchmark × config) simulation outside any campaign: builds a
/// fresh simulator, seeds the workload trace, runs for `cycles`.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
) -> Result<RunResult, Error> {
    let profile = spec2000::by_name(bench)
        .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
    let mut sim = Simulator::new(config.clone())?;
    Ok(sim.run(&mut profile.trace(seed), cycles))
}

/// Like [`run_one`], but preceded by `warmup_cycles` of mitigation-free
/// warmup, optionally forked from a shared [`WarmStartCache`].
///
/// With a cache, the warmup snapshot is computed (or loaded) at most once
/// per key and the measured run resumes from it under this job's own
/// mitigation config. Without one, the warmup runs inline, uninterrupted,
/// on the job's own simulator — no snapshot is ever taken. Both paths
/// produce bit-identical results (warmup never consults the mitigation
/// manager, and restore is exact); the differential test layer pins that
/// equivalence, which is what makes the cold path the oracle for the
/// cache.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one_warmed(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
    warmup_cycles: u64,
    cache: Option<&WarmStartCache>,
) -> Result<RunResult, Error> {
    run_one_warmed_controlled(
        config,
        bench,
        cycles,
        seed,
        warmup_cycles,
        cache,
        &RunControl::unlimited(),
    )
    .map(|(result, _)| result)
}

/// Like [`run_one_warmed`], but threads a [`RunControl`] (cancellation
/// flag and/or deadline) through the warmup and measured phases, both of
/// which check it between sampling windows.
///
/// The *shared* cached warmup observes the control too
/// ([`WarmStartCache::get_or_compute_controlled`]): a job stopped while
/// blocked on (or computing) a shared warmup returns promptly with the
/// stop cause and an empty result, and the half-warmed state is discarded
/// rather than cached.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one_warmed_controlled(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
    warmup_cycles: u64,
    cache: Option<&WarmStartCache>,
    control: &RunControl<'_>,
) -> Result<(RunResult, StopCause), Error> {
    if config.cores > 1 {
        // Multi-core dies run the multi-core engine: one unbounded
        // instance of the benchmark per core (seeds `seed..seed+N`), the
        // configured scheduler placing them, and the shared-die thermal
        // solve coupling the lanes. The warm-start cache only holds
        // scalar snapshots, so the warmup runs inline; the job reports
        // the merged die-level result (`C{c}.`-prefixed block names).
        return run_multicore_warmed_controlled(
            config,
            bench,
            cycles,
            seed,
            warmup_cycles,
            control,
        );
    }
    if warmup_cycles == 0 {
        let profile = spec2000::by_name(bench)
            .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
        let mut sim = Simulator::new(config.clone())?;
        return Ok(sim.run_controlled(&mut profile.trace(seed), cycles, control));
    }
    match cache {
        Some(cache) => {
            let snapshot = match cache.get_or_compute_controlled(
                bench,
                seed,
                warmup_cycles,
                config,
                control,
            )? {
                WarmupOutcome::Ready(snapshot) => snapshot,
                WarmupOutcome::Stopped(cause) => {
                    let sim = Simulator::new(config.clone())?;
                    return Ok((sim.result(), cause));
                }
            };
            let (mut sim, mut trace) = snapshot.resume_with_config(config.clone())?;
            Ok(sim.run_controlled(&mut trace, cycles, control))
        }
        None => {
            let profile = spec2000::by_name(bench)
                .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
            let mut sim = Simulator::new(config.clone())?;
            let mut trace = profile.trace(seed);
            let warmup_cause = sim.run_warmup_controlled(&mut trace, warmup_cycles, control);
            if !warmup_cause.is_completed() {
                return Ok((sim.result(), warmup_cause));
            }
            Ok(sim.run_controlled(&mut trace, cycles, control))
        }
    }
}

/// The multi-core arm of [`run_one_warmed_controlled`]: N cores on one
/// die, each running its own seeded instance of the benchmark as an
/// unbounded job, warmup inline (mitigation managers never consulted),
/// then the measured window. Returns the merged die-level result.
fn run_multicore_warmed_controlled(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
    warmup_cycles: u64,
    control: &RunControl<'_>,
) -> Result<(RunResult, StopCause), Error> {
    let profile = spec2000::by_name(bench)
        .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
    let mut sim = MultiCoreSimulator::new(config.clone())?;
    let mut tasks = TaskSet::new(
        (0..config.cores)
            .map(|c| Task::unbounded(c as u64, profile.trace(seed.wrapping_add(c as u64)))),
    );
    if warmup_cycles > 0 {
        let cause = sim.run_warmup_controlled(&mut tasks, warmup_cycles, control);
        if !cause.is_completed() {
            return Ok((sim.result().merged(), cause));
        }
    }
    let (result, cause) = sim.run_controlled(&mut tasks, cycles, control);
    Ok((result.merged(), cause))
}

/// Runs K batch-eligible sibling jobs in one lockstep [`BatchSimulator`]:
/// the batched mirror of [`run_one_warmed_controlled`], bit-identical to
/// calling it K times with the same arguments.
///
/// All `configs` must share a [`powerbalance::batch_key`] (same benchmark
/// trace, core, floorplan, package, energy tables, cadence, fidelity —
/// only `mitigation` may differ). Warm-start handling mirrors the scalar
/// path exactly: with a cache, one shared snapshot (interruptibly
/// computed) is restored into the unforked batch; without one, the batch
/// runs the mitigation-free warmup inline. Under Exact fidelity the
/// siblings share generated micro-ops through a [`TraceCursor`] ring;
/// under Fast each equivalence class keeps a private generator clone so
/// skipped intervals stay O(1).
///
/// Results come back in `configs` order. A stop (cancel/timeout) stops
/// the whole batch at the same window boundary, so every sibling's
/// partial statistics cover the same simulated span.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown, a config fails
/// validation, or the configs are not batch-eligible siblings.
pub fn run_batch_warmed_controlled(
    configs: &[SimConfig],
    bench: &str,
    cycles: u64,
    seed: u64,
    warmup_cycles: u64,
    cache: Option<&WarmStartCache>,
    control: &RunControl<'_>,
) -> Result<(Vec<RunResult>, StopCause), Error> {
    let profile = spec2000::by_name(bench)
        .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
    let Some(first) = configs.first() else {
        return Err(Error::Config("a batch needs at least one sibling configuration".into()));
    };
    let warm = match cache {
        Some(cache) if warmup_cycles > 0 => {
            match cache.get_or_compute_controlled(bench, seed, warmup_cycles, first, control)? {
                WarmupOutcome::Ready(snapshot) => Some(snapshot),
                WarmupOutcome::Stopped(cause) => {
                    // Nothing ran; report every sibling's empty result.
                    let batch = BatchSimulator::new(configs.to_vec(), profile.trace(seed))?;
                    return Ok((batch.results(), cause));
                }
            }
        }
        _ => None,
    };
    match warm {
        Some(snapshot) => {
            // `resume_with_config` validates structural compatibility and
            // rebuilds the trace at its post-warmup position; the throwaway
            // scalar simulator it also builds is negligible next to K
            // measured runs.
            let (_, trace) = snapshot.resume_with_config(first.clone())?;
            match first.fidelity {
                Fidelity::Exact => batch_over(
                    configs,
                    TraceCursor::new(trace),
                    Some(&snapshot),
                    0,
                    cycles,
                    control,
                ),
                Fidelity::Fast => batch_over(configs, trace, Some(&snapshot), 0, cycles, control),
            }
        }
        None => {
            let trace = profile.trace(seed);
            match first.fidelity {
                Fidelity::Exact => batch_over(
                    configs,
                    TraceCursor::new(trace),
                    None,
                    warmup_cycles,
                    cycles,
                    control,
                ),
                Fidelity::Fast => batch_over(configs, trace, None, warmup_cycles, cycles, control),
            }
        }
    }
}

/// Monomorphized batch body: build, optionally warm (restore or inline
/// warmup), then run under `control`.
fn batch_over<T: TraceSource + Clone>(
    configs: &[SimConfig],
    trace: T,
    warm: Option<&Snapshot>,
    warmup_cycles: u64,
    cycles: u64,
    control: &RunControl<'_>,
) -> Result<(Vec<RunResult>, StopCause), Error> {
    let mut batch = BatchSimulator::new(configs.to_vec(), trace)?;
    if let Some(snapshot) = warm {
        batch.restore_state(&snapshot.state)?;
    } else if warmup_cycles > 0 {
        let cause = batch.run_warmup_controlled(warmup_cycles, control);
        if !cause.is_completed() {
            return Ok((batch.results(), cause));
        }
    }
    Ok(batch.run_controlled(cycles, control))
}

/// Summary of one finished job, exposed as live progress while a
/// controlled campaign is still running (the server's `GET
/// /v1/campaigns/<id>` endpoint reports these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProgress {
    /// Benchmark name.
    pub bench: String,
    /// Config name.
    pub config: String,
    /// The job's IPC.
    pub ipc: f64,
    /// Host wall-clock time the job took, in nanoseconds.
    pub wall_nanos: u64,
}

/// Shared cancellation + live progress for one controlled campaign.
///
/// The submitting side keeps a handle (typically in an `Arc`): calling
/// [`cancel`](CampaignControl::cancel) stops every worker at its next
/// sampling-window boundary, and [`progress`](CampaignControl::progress) /
/// [`finished_jobs`](CampaignControl::finished_jobs) observe completion
/// without touching the runner.
#[derive(Debug, Default)]
pub struct CampaignControl {
    cancel: AtomicBool,
    total: AtomicUsize,
    completed: AtomicUsize,
    finished: Mutex<Vec<JobProgress>>,
}

impl CampaignControl {
    /// A fresh control with no progress and the cancel flag clear.
    #[must_use]
    pub fn new() -> Self {
        CampaignControl::default()
    }

    /// Requests cooperative cancellation: every in-flight job stops at its
    /// next sampling-window boundary and no new jobs start.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The raw cancellation flag, for wiring into a [`RunControl`].
    #[must_use]
    pub fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    /// Records the campaign's job count before it starts running, so
    /// observers of a still-queued campaign see a meaningful total.
    pub fn set_total(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
    }

    /// `(completed, total)` job counts. Total is 0 until
    /// [`set_total`](CampaignControl::set_total) or the runner records it.
    #[must_use]
    pub fn progress(&self) -> (usize, usize) {
        (self.completed.load(Ordering::Relaxed), self.total.load(Ordering::Relaxed))
    }

    /// Snapshots the finished jobs so far, in completion order.
    #[must_use]
    pub fn finished_jobs(&self) -> Vec<JobProgress> {
        self.finished.lock().expect("no recorder panics holding this lock").clone()
    }

    fn record(&self, progress: JobProgress) {
        self.finished.lock().expect("no recorder panics holding this lock").push(progress);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one finished job from an external executor (a remote shard
    /// completing on a worker node) so observers see live progress exactly
    /// as they would for a local run.
    pub fn record_external(&self, progress: JobProgress) {
        self.record(progress);
    }

    /// Clears recorded progress (completed count and finished-job log)
    /// while leaving the total and cancel flag alone. Used when a campaign
    /// falls back from distributed to local execution so jobs are not
    /// double-counted.
    pub fn reset_progress(&self) {
        self.finished.lock().expect("no recorder panics holding this lock").clear();
        self.completed.store(0, Ordering::Relaxed);
    }
}

/// How a controlled campaign ended.
#[derive(Debug)]
pub enum CampaignOutcome {
    /// Every job ran to completion.
    Completed(CampaignResult),
    /// Cancellation was requested; in-flight jobs stopped at a window
    /// boundary and their partial results were discarded.
    Cancelled,
    /// A job exceeded the per-job wall-clock timeout. The rest of the
    /// campaign was aborted.
    TimedOut {
        /// Benchmark of the job that timed out.
        bench: String,
        /// Config name of the job that timed out.
        config: String,
    },
}

/// Runs every (benchmark × config) job of `spec` on a bounded worker pool
/// and returns the results in deterministic spec order.
///
/// Jobs are first grouped into execution *units*: batch-eligible siblings
/// (same benchmark and cycle budget, configs identical outside
/// `mitigation`) run together in one lockstep [`BatchSimulator`], up to
/// [`RunnerOptions::max_batch`] per unit; everything else runs on the
/// scalar path. Workers pull units from a shared atomic cursor, so
/// scheduling stays fine-grained: a slow benchmark on one config does not
/// serialize the rest of the campaign behind it. Each finished job lands
/// in its own result slot, indexed by position in the spec, so the output
/// order — and, since every simulation is seeded and batching is
/// bit-identical to scalar execution, the output *content* — is identical
/// whether the pool has one worker or many, batching or not.
///
/// # Errors
///
/// Returns [`Error::Config`] if the spec fails validation. Individual jobs
/// cannot fail after validation: every benchmark and config has already
/// been checked.
///
/// # Panics
///
/// Panics if a worker thread panics (the simulator itself is panic-free on
/// validated configs).
pub fn run_campaign(spec: &CampaignSpec, options: &RunnerOptions) -> Result<CampaignResult, Error> {
    let control = CampaignControl::new();
    match run_campaign_controlled(spec, options, &control, None, None)? {
        CampaignOutcome::Completed(result) => Ok(result),
        // With a private, never-cancelled control and no timeout, the only
        // possible outcome is completion.
        CampaignOutcome::Cancelled | CampaignOutcome::TimedOut { .. } => {
            unreachable!("private control is never cancelled and has no timeout")
        }
    }
}

/// [`run_campaign`] with cooperative controls for long-lived callers (the
/// simulation server): a shared [`CampaignControl`] for cancellation and
/// live progress, an optional per-job wall-clock timeout, and an optional
/// externally owned [`WarmStartCache`] shared across *campaigns* (the
/// per-campaign cache from [`RunnerOptions`] is used when `shared_cache`
/// is `None`).
///
/// A timeout on any job aborts the whole campaign (the job's partial
/// results are discarded), mirroring how a stuck request must release its
/// worker; cancellation does the same but reports
/// [`CampaignOutcome::Cancelled`].
///
/// # Errors
///
/// Returns [`Error::Config`] if the spec fails validation.
///
/// # Panics
///
/// Panics if a worker thread panics (the simulator itself is panic-free on
/// validated configs).
pub fn run_campaign_controlled(
    spec: &CampaignSpec,
    options: &RunnerOptions,
    control: &CampaignControl,
    job_timeout: Option<Duration>,
    shared_cache: Option<&WarmStartCache>,
) -> Result<CampaignOutcome, Error> {
    spec.validate()?;
    let total = spec.job_count();
    control.set_total(total);
    let ncfg = spec.configs.len();
    let units = plan_units(spec, options.max_batch);
    let threads = resolve_threads(options.threads).min(units.len()).max(1);

    let private_cache = if shared_cache.is_none() && spec.warmup_cycles > 0 && options.warm_cache {
        Some(match &options.checkpoint_dir {
            Some(dir) => WarmStartCache::with_checkpoint_dir(dir, options.resume),
            None => WarmStartCache::in_memory(),
        })
    } else {
        None
    };
    let cache = match shared_cache {
        Some(shared) if spec.warmup_cycles > 0 && options.warm_cache => Some(shared),
        _ => private_cache.as_ref(),
    };

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
    // First job to time out wins the abort; later jobs just observe the
    // raised cancel flag.
    let timed_out: Mutex<Option<(String, String)>> = Mutex::new(None);

    let campaign_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if control.is_cancelled() {
                    break;
                }
                let unit_index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(unit) = units.get(unit_index) else {
                    break;
                };
                let bench_index = unit[0] / ncfg;
                let bench = &spec.benchmarks[bench_index];
                let cycles = spec.cycles_for(unit[0] % ncfg);

                let start = Instant::now();
                let mut run_control = RunControl::unlimited().with_cancel(control.cancel_flag());
                if let Some(timeout) = job_timeout {
                    run_control = run_control.with_deadline(start + timeout);
                }
                let (results, cause) = if unit.len() == 1 {
                    let named = &spec.configs[unit[0] % ncfg];
                    run_one_warmed_controlled(
                        &named.config,
                        bench,
                        cycles,
                        spec.seed,
                        spec.warmup_cycles,
                        cache,
                        &run_control,
                    )
                    .map(|(result, cause)| (vec![result], cause))
                    .expect("spec was validated before dispatch")
                } else {
                    let configs: Vec<SimConfig> =
                        unit.iter().map(|&i| spec.configs[i % ncfg].config.clone()).collect();
                    run_batch_warmed_controlled(
                        &configs,
                        bench,
                        cycles,
                        spec.seed,
                        spec.warmup_cycles,
                        cache,
                        &run_control,
                    )
                    .expect("spec was validated and grouped by batch key before dispatch")
                };
                match cause {
                    StopCause::Completed => {}
                    StopCause::Cancelled => break,
                    StopCause::TimedOut => {
                        let mut slot =
                            timed_out.lock().expect("no worker panicked holding this lock");
                        if slot.is_none() {
                            *slot =
                                Some((bench.clone(), spec.configs[unit[0] % ncfg].name.clone()));
                        }
                        drop(slot);
                        // Pull every other worker out of its run too: the
                        // campaign is already lost.
                        control.cancel();
                        break;
                    }
                }
                // A batched unit's wall time is shared work: attribute an
                // equal share to each job so per-job throughput reflects
                // what the lockstep sharing actually bought.
                let wall = start.elapsed() / unit.len() as u32;
                let wall_secs = wall.as_secs_f64();

                for (&index, result) in unit.iter().zip(results) {
                    let config_index = index % ncfg;
                    let named = &spec.configs[config_index];
                    let sim_cycles_per_sec =
                        if wall_secs > 0.0 { result.cycles as f64 / wall_secs } else { 0.0 };

                    if options.progress {
                        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                        let tag = if unit.len() > 1 {
                            format!(" [batch of {}]", unit.len())
                        } else {
                            String::new()
                        };
                        eprintln!(
                            "[{} {finished}/{total}] {bench}/{}: IPC {:.3}, {:.0} ms, \
                             {:.1} Mcyc/s{tag}",
                            spec.name,
                            named.name,
                            result.ipc,
                            wall_secs * 1e3,
                            sim_cycles_per_sec / 1e6,
                        );
                    }
                    control.record(JobProgress {
                        bench: bench.clone(),
                        config: named.name.clone(),
                        ipc: result.ipc,
                        wall_nanos: wall.as_nanos() as u64,
                    });

                    *slots[index].lock().expect("no worker panicked holding this lock") =
                        Some(JobResult {
                            bench: bench.clone(),
                            config: named.name.clone(),
                            bench_index,
                            config_index,
                            seed: spec.seed,
                            cycles_requested: cycles,
                            wall_nanos: wall.as_nanos() as u64,
                            sim_cycles_per_sec,
                            result,
                        });
                }
            });
        }
    });

    if let Some((bench, config)) =
        timed_out.into_inner().expect("no worker panicked holding this lock")
    {
        return Ok(CampaignOutcome::TimedOut { bench, config });
    }
    if control.is_cancelled() {
        return Ok(CampaignOutcome::Cancelled);
    }

    if options.progress {
        if let Some(cache) = cache {
            let (computed, loaded, hits) = cache.stats();
            eprintln!(
                "[{} warm-start] {computed} warmup(s) computed, {loaded} loaded from disk, \
                 {hits} cache hit(s)",
                spec.name
            );
        }
    }

    let jobs = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding this lock")
                .expect("every slot was filled before the scope ended")
        })
        .collect();
    Ok(CampaignOutcome::Completed(CampaignResult {
        spec: spec.clone(),
        threads,
        wall_nanos: campaign_start.elapsed().as_nanos() as u64,
        jobs,
    }))
}

/// Groups the spec's flat job indices into execution units: per benchmark,
/// config slots sharing a (serialized [`batch_key`], measured cycle
/// budget) pair batch together in first-appearance order, chunked to
/// `max_batch`; singleton groups fall through to the scalar path. With
/// `max_batch <= 1` every job is its own unit — the pre-batching
/// scheduler, verbatim.
///
/// Public so distributed schedulers (the campaign fabric's coordinator)
/// can shard a spec along the exact same unit boundaries the local pool
/// uses, keeping batch-eligible groups intact on whichever node runs them.
pub fn plan_units(spec: &CampaignSpec, max_batch: usize) -> Vec<Vec<usize>> {
    let ncfg = spec.configs.len();
    let max = max_batch.max(1);
    let mut units = Vec::with_capacity(spec.job_count());
    for bench_index in 0..spec.benchmarks.len() {
        if max == 1 {
            units.extend((0..ncfg).map(|ci| vec![bench_index * ncfg + ci]));
            continue;
        }
        let mut groups: Vec<(String, u64, Vec<usize>)> = Vec::new();
        for config_index in 0..ncfg {
            // Multi-core jobs run the multi-core engine, which has its own
            // die-wide lockstep internally; keep them out of batch units.
            if spec.configs[config_index].config.cores > 1 {
                units.push(vec![bench_index * ncfg + config_index]);
                continue;
            }
            let key = serde::json::to_string(&batch_key(&spec.configs[config_index].config));
            let cycles = spec.cycles_for(config_index);
            match groups.iter_mut().find(|(k, c, _)| *k == key && *c == cycles) {
                Some((_, _, members)) => members.push(config_index),
                None => groups.push((key, cycles, vec![config_index])),
            }
        }
        for (_, _, members) in groups {
            for chunk in members.chunks(max) {
                units.push(chunk.iter().map(|&ci| bench_index * ncfg + ci).collect());
            }
        }
    }
    units
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::experiments::{self, PolicyKind};
    use powerbalance::FloorplanKind;

    #[test]
    fn plan_units_groups_by_batch_key_and_chunks() {
        let spec = CampaignSpec::new("plan")
            .config("a", experiments::policy(PolicyKind::None, FloorplanKind::IssueConstrained))
            .config("b", experiments::policy(PolicyKind::Spatial, FloorplanKind::IssueConstrained))
            .config("c", experiments::policy(PolicyKind::Dvfs, FloorplanKind::AluConstrained))
            .config("d", experiments::policy(PolicyKind::Combined, FloorplanKind::IssueConstrained))
            .benchmarks(["gzip", "mesa"])
            .cycles(10_000);
        // Per bench: configs 0, 1, 3 share a floorplan and batch; config 2
        // (different floorplan) stays scalar. First-appearance order.
        assert_eq!(plan_units(&spec, 6), vec![vec![0, 1, 3], vec![2], vec![4, 5, 7], vec![6]]);
        // Chunking respects the cap.
        assert_eq!(
            plan_units(&spec, 2),
            vec![vec![0, 1], vec![3], vec![2], vec![4, 5], vec![7], vec![6]]
        );
        // max_batch 1 is the pre-batching scheduler: one job per unit.
        let singletons = plan_units(&spec, 1);
        assert_eq!(singletons.len(), 8);
        assert!(singletons.iter().enumerate().all(|(i, u)| *u == vec![i]));
    }

    #[test]
    fn batched_campaign_matches_unbatched() {
        let spec = CampaignSpec::new("batchdiff")
            .config("none", experiments::policy(PolicyKind::None, FloorplanKind::IssueConstrained))
            .config(
                "spatial",
                experiments::policy(PolicyKind::Spatial, FloorplanKind::IssueConstrained),
            )
            .config(
                "fetch-gate",
                experiments::policy(PolicyKind::FetchGate, FloorplanKind::IssueConstrained),
            )
            .benchmark("gzip")
            .cycles(40_000)
            .warmup(20_000)
            .seed(7);
        let batched =
            run_campaign(&spec, &RunnerOptions { threads: Some(2), ..Default::default() })
                .expect("batched campaign");
        let scalar = run_campaign(
            &spec,
            &RunnerOptions { threads: Some(2), max_batch: 1, ..Default::default() },
        )
        .expect("scalar campaign");
        assert!(batched.same_outcome(&scalar), "batching must not change results");
    }

    #[test]
    fn resolve_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit 0 clamps to 1");
        // Explicit beats the environment even when the env value is valid.
        assert_eq!(resolve_threads_from(Some(2), Some("7")), 2);
        assert_eq!(resolve_threads_from(Some(0), Some("7")), 1, "explicit 0 still clamps");
    }

    #[test]
    fn resolve_env_accepts_positive_integers() {
        assert_eq!(resolve_threads_from(None, Some("5")), 5);
        assert_eq!(resolve_threads_from(None, Some("  5  ")), 5, "whitespace is trimmed");
        assert_eq!(resolve_threads_from(None, Some("1")), 1);
    }

    #[test]
    fn resolve_env_garbage_falls_back_to_auto() {
        let auto = std::thread::available_parallelism().map_or(1, usize::from);
        // `0` and non-numeric values warn and fall back to the automatic
        // count instead of being silently ignored or clamped differently
        // from the explicit-flag path.
        assert_eq!(resolve_threads_from(None, Some("0")), auto);
        assert_eq!(resolve_threads_from(None, Some("lots")), auto);
        assert_eq!(resolve_threads_from(None, Some("")), auto);
        assert_eq!(resolve_threads_from(None, Some("-2")), auto);
        assert_eq!(resolve_threads_from(None, None), auto, "unset env is the auto path");
    }

    #[test]
    fn run_one_rejects_unknown_benchmark() {
        let err = run_one(&experiments::issue_queue(false), "doom3", 1_000, 1);
        assert!(err.is_err());
    }

    #[test]
    fn campaign_rejects_invalid_spec() {
        let spec = CampaignSpec::new("empty");
        assert!(run_campaign(&spec, &RunnerOptions::default()).is_err());
    }

    #[test]
    fn campaign_results_land_in_spec_order() {
        let spec = CampaignSpec::new("order")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["eon", "gzip", "mesa"])
            .cycles(20_000);
        let result = run_campaign(&spec, &RunnerOptions { threads: Some(4), ..Default::default() })
            .expect("campaign runs");
        assert_eq!(result.jobs.len(), 6);
        for (i, job) in result.jobs.iter().enumerate() {
            assert_eq!(job.bench_index, i / 2);
            assert_eq!(job.config_index, i % 2);
            assert_eq!(job.bench, spec.benchmarks[job.bench_index]);
            assert_eq!(job.config, spec.configs[job.config_index].name);
            assert!(job.result.cycles >= 20_000);
            assert!(job.wall_nanos > 0);
        }
    }

    #[test]
    fn warm_cache_matches_private_warmups() {
        // The same campaign with the shared warm-start cache on and off
        // must produce identical simulation outcomes: the cache is pure
        // wall-time optimization.
        let spec = CampaignSpec::new("warm")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["gzip", "mesa"])
            .cycles(30_000)
            .warmup(30_000)
            .seed(5);
        let warm = run_campaign(&spec, &RunnerOptions { threads: Some(4), ..Default::default() })
            .expect("warm campaign");
        let cold = run_campaign(
            &spec,
            &RunnerOptions { threads: Some(2), warm_cache: false, ..Default::default() },
        )
        .expect("cold campaign");
        assert!(warm.same_outcome(&cold), "cache must not change results");
        // Warmup ran: the measured window alone is `cycles`, so total
        // simulated cycles include the warmup.
        assert!(warm.jobs[0].result.cycles >= 60_000);
    }

    #[test]
    fn zero_warmup_is_the_legacy_path() {
        let spec = CampaignSpec::new("legacy")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
            .seed(9);
        let a = run_campaign(&spec, &RunnerOptions::default()).expect("runs");
        let direct = run_one(&spec.configs[0].config, "gzip", 20_000, 9).expect("runs");
        assert_eq!(a.jobs[0].result, direct);
    }

    #[test]
    fn cancelled_campaign_reports_cancelled() {
        let spec = CampaignSpec::new("cancelled")
            .config("base", experiments::issue_queue(false))
            .benchmarks(["eon", "gzip", "mesa"])
            .cycles(50_000);
        let control = CampaignControl::new();
        control.cancel();
        let outcome = run_campaign_controlled(
            &spec,
            &RunnerOptions { threads: Some(2), ..Default::default() },
            &control,
            None,
            None,
        )
        .expect("valid spec");
        assert!(matches!(outcome, CampaignOutcome::Cancelled));
        let (completed, total) = control.progress();
        assert_eq!(total, 3);
        assert_eq!(completed, 0, "pre-cancelled campaign runs no jobs");
    }

    #[test]
    fn job_timeout_aborts_the_campaign() {
        let spec = CampaignSpec::new("timeout")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(5_000_000);
        let control = CampaignControl::new();
        let outcome = run_campaign_controlled(
            &spec,
            &RunnerOptions { threads: Some(1), ..Default::default() },
            &control,
            Some(Duration::ZERO),
            None,
        )
        .expect("valid spec");
        match outcome {
            CampaignOutcome::TimedOut { bench, config } => {
                assert_eq!(bench, "gzip");
                assert_eq!(config, "base");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn controlled_campaign_records_progress_and_matches_uncontrolled() {
        let spec = CampaignSpec::new("progress")
            .config("base", experiments::issue_queue(false))
            .benchmarks(["eon", "gzip"])
            .cycles(20_000);
        let control = CampaignControl::new();
        let outcome = run_campaign_controlled(
            &spec,
            &RunnerOptions { threads: Some(2), ..Default::default() },
            &control,
            Some(Duration::from_secs(600)),
            None,
        )
        .expect("valid spec");
        let CampaignOutcome::Completed(result) = outcome else {
            panic!("campaign should complete")
        };
        assert_eq!(control.progress(), (2, 2));
        assert_eq!(control.finished_jobs().len(), 2);
        let plain = run_campaign(&spec, &RunnerOptions { threads: Some(1), ..Default::default() })
            .expect("valid spec");
        assert!(result.same_outcome(&plain), "controls must not change results");
    }

    #[test]
    fn shared_cache_spans_campaigns() {
        let spec = |name: &str| {
            CampaignSpec::new(name)
                .config("base", experiments::issue_queue(false))
                .benchmark("gzip")
                .cycles(10_000)
                .warmup(20_000)
                .seed(3)
        };
        let cache = WarmStartCache::in_memory();
        for name in ["first", "second"] {
            let control = CampaignControl::new();
            let outcome = run_campaign_controlled(
                &spec(name),
                &RunnerOptions::default(),
                &control,
                None,
                Some(&cache),
            )
            .expect("valid spec");
            assert!(matches!(outcome, CampaignOutcome::Completed(_)));
        }
        let (computed, _, hits) = cache.stats();
        assert_eq!(computed, 1, "second campaign reuses the first warmup");
        assert_eq!(hits, 1);
    }

    #[test]
    fn multicore_jobs_run_the_multicore_engine() {
        let two_core = SimConfig { cores: 2, ..experiments::issue_queue(false) };
        let spec = CampaignSpec::new("mc")
            .config("scalar", experiments::issue_queue(false))
            .config("2core", two_core)
            .benchmark("gzip")
            .cycles(30_000)
            .warmup(10_000)
            .seed(4);
        // The multi-core job must never be grouped into a BatchSimulator
        // unit (which is scalar-only).
        for unit in plan_units(&spec, 6) {
            if unit.contains(&1) {
                assert_eq!(unit.len(), 1, "multi-core jobs stay singleton units");
            }
        }
        let result = run_campaign(&spec, &RunnerOptions::default()).expect("campaign runs");
        let die = &result.jobs[1].result;
        assert!(
            die.temperatures.iter().any(|t| t.name.starts_with("C1.")),
            "the 2-core job reports die-level prefixed blocks"
        );
        assert!(die.committed > result.jobs[0].result.committed, "two cores commit more than one");
    }

    #[test]
    fn campaign_matches_run_one() {
        let spec = CampaignSpec::new("match")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
            .seed(9);
        let campaign = run_campaign(&spec, &RunnerOptions::default()).expect("campaign runs");
        let direct = run_one(&spec.configs[0].config, "gzip", 20_000, 9).expect("runs");
        assert_eq!(campaign.jobs[0].result, direct);
    }
}

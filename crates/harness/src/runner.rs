//! The bounded parallel campaign runner.

use crate::result::{CampaignResult, JobResult};
use crate::spec::CampaignSpec;
use crate::warmstart::WarmStartCache;
use powerbalance::{spec2000, Error, RunControl, RunResult, SimConfig, Simulator, StopCause};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Environment variable consulted for the worker-pool size when no explicit
/// thread count is given.
pub const THREADS_ENV_VAR: &str = "POWERBALANCE_THREADS";

/// Options controlling how a campaign is executed (not *what* it computes —
/// that lives in [`CampaignSpec`]).
#[derive(Debug, Clone)]
pub struct RunnerOptions {
    /// Worker-pool size; `None` falls back to [`THREADS_ENV_VAR`], then
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Emit one progress line per finished job on stderr.
    pub progress: bool,
    /// Share one warmup snapshot across jobs whose `(benchmark, seed,
    /// warmup budget, config-modulo-mitigation)` match (default `true`).
    /// With `false`, every job computes its own warmup privately — same
    /// results, no sharing; useful for timing comparisons and as the
    /// differential oracle for the cache itself. Irrelevant when
    /// [`CampaignSpec::warmup_cycles`] is 0.
    pub warm_cache: bool,
    /// Directory to persist warmup snapshots in (and, with
    /// [`resume`](RunnerOptions::resume), load them from). `None` keeps
    /// the cache purely in-memory. Only consulted when `warm_cache` is on.
    pub checkpoint_dir: Option<PathBuf>,
    /// Load matching snapshots from `checkpoint_dir` instead of
    /// recomputing them (a mismatched or unreadable file silently falls
    /// back to computation).
    pub resume: bool,
}

impl Default for RunnerOptions {
    fn default() -> Self {
        RunnerOptions {
            threads: None,
            progress: false,
            warm_cache: true,
            checkpoint_dir: None,
            resume: false,
        }
    }
}

/// Resolves the worker-pool size: `explicit` if given (clamped to at least
/// 1), else the [`THREADS_ENV_VAR`] environment variable if set to a
/// positive integer, else [`std::thread::available_parallelism`].
///
/// An env-var value that is not a positive integer (`0`, garbage, empty)
/// warns on stderr and falls back to the automatic count — the same
/// clamp-to-usable behavior the explicit-flag path has, instead of
/// silently ignoring the variable.
#[must_use]
pub fn resolve_threads(explicit: Option<usize>) -> usize {
    resolve_threads_from(explicit, std::env::var(THREADS_ENV_VAR).ok().as_deref())
}

/// [`resolve_threads`] with the environment read factored out for
/// testability (mutating real process environment races parallel tests).
fn resolve_threads_from(explicit: Option<usize>, env: Option<&str>) -> usize {
    if let Some(n) = explicit {
        return n.max(1);
    }
    if let Some(raw) = env {
        match raw.trim().parse::<usize>() {
            Ok(n) if n >= 1 => return n,
            _ => eprintln!(
                "warning: {THREADS_ENV_VAR}='{raw}' is not a positive integer; \
                 falling back to the automatic thread count"
            ),
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Runs one (benchmark × config) simulation outside any campaign: builds a
/// fresh simulator, seeds the workload trace, runs for `cycles`.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
) -> Result<RunResult, Error> {
    let profile = spec2000::by_name(bench)
        .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
    let mut sim = Simulator::new(config.clone())?;
    Ok(sim.run(&mut profile.trace(seed), cycles))
}

/// Like [`run_one`], but preceded by `warmup_cycles` of mitigation-free
/// warmup, optionally forked from a shared [`WarmStartCache`].
///
/// With a cache, the warmup snapshot is computed (or loaded) at most once
/// per key and the measured run resumes from it under this job's own
/// mitigation config. Without one, the warmup runs inline, uninterrupted,
/// on the job's own simulator — no snapshot is ever taken. Both paths
/// produce bit-identical results (warmup never consults the mitigation
/// manager, and restore is exact); the differential test layer pins that
/// equivalence, which is what makes the cold path the oracle for the
/// cache.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one_warmed(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
    warmup_cycles: u64,
    cache: Option<&WarmStartCache>,
) -> Result<RunResult, Error> {
    run_one_warmed_controlled(
        config,
        bench,
        cycles,
        seed,
        warmup_cycles,
        cache,
        &RunControl::unlimited(),
    )
    .map(|(result, _)| result)
}

/// Like [`run_one_warmed`], but threads a [`RunControl`] (cancellation
/// flag and/or deadline) through the warmup and measured phases, both of
/// which check it between sampling windows.
///
/// One deliberate gap: a *shared* cached warmup ([`WarmStartCache::
/// get_or_compute`]) is not interruptible, because several jobs may be
/// blocked on the one computation — only the private-warmup path and the
/// measured run observe the control. Callers that need a hard bound on
/// warmup time should bound `warmup_cycles` at admission instead (the
/// server does).
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or the config
/// fails validation.
pub fn run_one_warmed_controlled(
    config: &SimConfig,
    bench: &str,
    cycles: u64,
    seed: u64,
    warmup_cycles: u64,
    cache: Option<&WarmStartCache>,
    control: &RunControl<'_>,
) -> Result<(RunResult, StopCause), Error> {
    if warmup_cycles == 0 {
        let profile = spec2000::by_name(bench)
            .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
        let mut sim = Simulator::new(config.clone())?;
        return Ok(sim.run_controlled(&mut profile.trace(seed), cycles, control));
    }
    match cache {
        Some(cache) => {
            let snapshot = cache.get_or_compute(bench, seed, warmup_cycles, config)?;
            let (mut sim, mut trace) = snapshot.resume_with_config(config.clone())?;
            Ok(sim.run_controlled(&mut trace, cycles, control))
        }
        None => {
            let profile = spec2000::by_name(bench)
                .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
            let mut sim = Simulator::new(config.clone())?;
            let mut trace = profile.trace(seed);
            let warmup_cause = sim.run_warmup_controlled(&mut trace, warmup_cycles, control);
            if !warmup_cause.is_completed() {
                return Ok((sim.result(), warmup_cause));
            }
            Ok(sim.run_controlled(&mut trace, cycles, control))
        }
    }
}

/// Summary of one finished job, exposed as live progress while a
/// controlled campaign is still running (the server's `GET
/// /v1/campaigns/<id>` endpoint reports these).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProgress {
    /// Benchmark name.
    pub bench: String,
    /// Config name.
    pub config: String,
    /// The job's IPC.
    pub ipc: f64,
    /// Host wall-clock time the job took, in nanoseconds.
    pub wall_nanos: u64,
}

/// Shared cancellation + live progress for one controlled campaign.
///
/// The submitting side keeps a handle (typically in an `Arc`): calling
/// [`cancel`](CampaignControl::cancel) stops every worker at its next
/// sampling-window boundary, and [`progress`](CampaignControl::progress) /
/// [`finished_jobs`](CampaignControl::finished_jobs) observe completion
/// without touching the runner.
#[derive(Debug, Default)]
pub struct CampaignControl {
    cancel: AtomicBool,
    total: AtomicUsize,
    completed: AtomicUsize,
    finished: Mutex<Vec<JobProgress>>,
}

impl CampaignControl {
    /// A fresh control with no progress and the cancel flag clear.
    #[must_use]
    pub fn new() -> Self {
        CampaignControl::default()
    }

    /// Requests cooperative cancellation: every in-flight job stops at its
    /// next sampling-window boundary and no new jobs start.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// The raw cancellation flag, for wiring into a [`RunControl`].
    #[must_use]
    pub fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    /// Records the campaign's job count before it starts running, so
    /// observers of a still-queued campaign see a meaningful total.
    pub fn set_total(&self, total: usize) {
        self.total.store(total, Ordering::Relaxed);
    }

    /// `(completed, total)` job counts. Total is 0 until
    /// [`set_total`](CampaignControl::set_total) or the runner records it.
    #[must_use]
    pub fn progress(&self) -> (usize, usize) {
        (self.completed.load(Ordering::Relaxed), self.total.load(Ordering::Relaxed))
    }

    /// Snapshots the finished jobs so far, in completion order.
    #[must_use]
    pub fn finished_jobs(&self) -> Vec<JobProgress> {
        self.finished.lock().expect("no recorder panics holding this lock").clone()
    }

    fn record(&self, progress: JobProgress) {
        self.finished.lock().expect("no recorder panics holding this lock").push(progress);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }
}

/// How a controlled campaign ended.
#[derive(Debug)]
pub enum CampaignOutcome {
    /// Every job ran to completion.
    Completed(CampaignResult),
    /// Cancellation was requested; in-flight jobs stopped at a window
    /// boundary and their partial results were discarded.
    Cancelled,
    /// A job exceeded the per-job wall-clock timeout. The rest of the
    /// campaign was aborted.
    TimedOut {
        /// Benchmark of the job that timed out.
        bench: String,
        /// Config name of the job that timed out.
        config: String,
    },
}

/// Runs every (benchmark × config) job of `spec` on a bounded worker pool
/// and returns the results in deterministic spec order.
///
/// Workers pull jobs from a shared atomic cursor, so scheduling is at job
/// granularity: a slow benchmark on one config does not serialize the rest
/// of the campaign behind it. Each finished job lands in its own result
/// slot, indexed by position in the spec, so the output order — and, since
/// every simulation is seeded, the output *content* — is identical whether
/// the pool has one worker or many.
///
/// # Errors
///
/// Returns [`Error::Config`] if the spec fails validation. Individual jobs
/// cannot fail after validation: every benchmark and config has already
/// been checked.
///
/// # Panics
///
/// Panics if a worker thread panics (the simulator itself is panic-free on
/// validated configs).
pub fn run_campaign(spec: &CampaignSpec, options: &RunnerOptions) -> Result<CampaignResult, Error> {
    let control = CampaignControl::new();
    match run_campaign_controlled(spec, options, &control, None, None)? {
        CampaignOutcome::Completed(result) => Ok(result),
        // With a private, never-cancelled control and no timeout, the only
        // possible outcome is completion.
        CampaignOutcome::Cancelled | CampaignOutcome::TimedOut { .. } => {
            unreachable!("private control is never cancelled and has no timeout")
        }
    }
}

/// [`run_campaign`] with cooperative controls for long-lived callers (the
/// simulation server): a shared [`CampaignControl`] for cancellation and
/// live progress, an optional per-job wall-clock timeout, and an optional
/// externally owned [`WarmStartCache`] shared across *campaigns* (the
/// per-campaign cache from [`RunnerOptions`] is used when `shared_cache`
/// is `None`).
///
/// A timeout on any job aborts the whole campaign (the job's partial
/// results are discarded), mirroring how a stuck request must release its
/// worker; cancellation does the same but reports
/// [`CampaignOutcome::Cancelled`].
///
/// # Errors
///
/// Returns [`Error::Config`] if the spec fails validation.
///
/// # Panics
///
/// Panics if a worker thread panics (the simulator itself is panic-free on
/// validated configs).
pub fn run_campaign_controlled(
    spec: &CampaignSpec,
    options: &RunnerOptions,
    control: &CampaignControl,
    job_timeout: Option<Duration>,
    shared_cache: Option<&WarmStartCache>,
) -> Result<CampaignOutcome, Error> {
    spec.validate()?;
    let total = spec.job_count();
    control.set_total(total);
    let threads = resolve_threads(options.threads).min(total).max(1);
    let ncfg = spec.configs.len();

    let private_cache = if shared_cache.is_none() && spec.warmup_cycles > 0 && options.warm_cache {
        Some(match &options.checkpoint_dir {
            Some(dir) => WarmStartCache::with_checkpoint_dir(dir, options.resume),
            None => WarmStartCache::in_memory(),
        })
    } else {
        None
    };
    let cache = match shared_cache {
        Some(shared) if spec.warmup_cycles > 0 && options.warm_cache => Some(shared),
        _ => private_cache.as_ref(),
    };

    let cursor = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobResult>>> = (0..total).map(|_| Mutex::new(None)).collect();
    // First job to time out wins the abort; later jobs just observe the
    // raised cancel flag.
    let timed_out: Mutex<Option<(String, String)>> = Mutex::new(None);

    let campaign_start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                if control.is_cancelled() {
                    break;
                }
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                if index >= total {
                    break;
                }
                let bench_index = index / ncfg;
                let config_index = index % ncfg;
                let bench = &spec.benchmarks[bench_index];
                let named = &spec.configs[config_index];
                let cycles = spec.cycles_for(config_index);

                let start = Instant::now();
                let mut run_control = RunControl::unlimited().with_cancel(control.cancel_flag());
                if let Some(timeout) = job_timeout {
                    run_control = run_control.with_deadline(start + timeout);
                }
                let (result, cause) = run_one_warmed_controlled(
                    &named.config,
                    bench,
                    cycles,
                    spec.seed,
                    spec.warmup_cycles,
                    cache,
                    &run_control,
                )
                .expect("spec was validated before dispatch");
                match cause {
                    StopCause::Completed => {}
                    StopCause::Cancelled => break,
                    StopCause::TimedOut => {
                        let mut slot =
                            timed_out.lock().expect("no worker panicked holding this lock");
                        if slot.is_none() {
                            *slot = Some((bench.clone(), named.name.clone()));
                        }
                        drop(slot);
                        // Pull every other worker out of its run too: the
                        // campaign is already lost.
                        control.cancel();
                        break;
                    }
                }
                let wall = start.elapsed();
                let wall_secs = wall.as_secs_f64();
                let sim_cycles_per_sec =
                    if wall_secs > 0.0 { result.cycles as f64 / wall_secs } else { 0.0 };

                if options.progress {
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    eprintln!(
                        "[{} {finished}/{total}] {bench}/{}: IPC {:.3}, {:.0} ms, {:.1} Mcyc/s",
                        spec.name,
                        named.name,
                        result.ipc,
                        wall_secs * 1e3,
                        sim_cycles_per_sec / 1e6,
                    );
                }
                control.record(JobProgress {
                    bench: bench.clone(),
                    config: named.name.clone(),
                    ipc: result.ipc,
                    wall_nanos: wall.as_nanos() as u64,
                });

                *slots[index].lock().expect("no worker panicked holding this lock") =
                    Some(JobResult {
                        bench: bench.clone(),
                        config: named.name.clone(),
                        bench_index,
                        config_index,
                        seed: spec.seed,
                        cycles_requested: cycles,
                        wall_nanos: wall.as_nanos() as u64,
                        sim_cycles_per_sec,
                        result,
                    });
            });
        }
    });

    if let Some((bench, config)) =
        timed_out.into_inner().expect("no worker panicked holding this lock")
    {
        return Ok(CampaignOutcome::TimedOut { bench, config });
    }
    if control.is_cancelled() {
        return Ok(CampaignOutcome::Cancelled);
    }

    if options.progress {
        if let Some(cache) = cache {
            let (computed, loaded, hits) = cache.stats();
            eprintln!(
                "[{} warm-start] {computed} warmup(s) computed, {loaded} loaded from disk, \
                 {hits} cache hit(s)",
                spec.name
            );
        }
    }

    let jobs = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no worker panicked holding this lock")
                .expect("every slot was filled before the scope ended")
        })
        .collect();
    Ok(CampaignOutcome::Completed(CampaignResult {
        spec: spec.clone(),
        threads,
        wall_nanos: campaign_start.elapsed().as_nanos() as u64,
        jobs,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::experiments;

    #[test]
    fn resolve_prefers_explicit() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1, "explicit 0 clamps to 1");
        // Explicit beats the environment even when the env value is valid.
        assert_eq!(resolve_threads_from(Some(2), Some("7")), 2);
        assert_eq!(resolve_threads_from(Some(0), Some("7")), 1, "explicit 0 still clamps");
    }

    #[test]
    fn resolve_env_accepts_positive_integers() {
        assert_eq!(resolve_threads_from(None, Some("5")), 5);
        assert_eq!(resolve_threads_from(None, Some("  5  ")), 5, "whitespace is trimmed");
        assert_eq!(resolve_threads_from(None, Some("1")), 1);
    }

    #[test]
    fn resolve_env_garbage_falls_back_to_auto() {
        let auto = std::thread::available_parallelism().map_or(1, usize::from);
        // `0` and non-numeric values warn and fall back to the automatic
        // count instead of being silently ignored or clamped differently
        // from the explicit-flag path.
        assert_eq!(resolve_threads_from(None, Some("0")), auto);
        assert_eq!(resolve_threads_from(None, Some("lots")), auto);
        assert_eq!(resolve_threads_from(None, Some("")), auto);
        assert_eq!(resolve_threads_from(None, Some("-2")), auto);
        assert_eq!(resolve_threads_from(None, None), auto, "unset env is the auto path");
    }

    #[test]
    fn run_one_rejects_unknown_benchmark() {
        let err = run_one(&experiments::issue_queue(false), "doom3", 1_000, 1);
        assert!(err.is_err());
    }

    #[test]
    fn campaign_rejects_invalid_spec() {
        let spec = CampaignSpec::new("empty");
        assert!(run_campaign(&spec, &RunnerOptions::default()).is_err());
    }

    #[test]
    fn campaign_results_land_in_spec_order() {
        let spec = CampaignSpec::new("order")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["eon", "gzip", "mesa"])
            .cycles(20_000);
        let result = run_campaign(&spec, &RunnerOptions { threads: Some(4), ..Default::default() })
            .expect("campaign runs");
        assert_eq!(result.jobs.len(), 6);
        for (i, job) in result.jobs.iter().enumerate() {
            assert_eq!(job.bench_index, i / 2);
            assert_eq!(job.config_index, i % 2);
            assert_eq!(job.bench, spec.benchmarks[job.bench_index]);
            assert_eq!(job.config, spec.configs[job.config_index].name);
            assert!(job.result.cycles >= 20_000);
            assert!(job.wall_nanos > 0);
        }
    }

    #[test]
    fn warm_cache_matches_private_warmups() {
        // The same campaign with the shared warm-start cache on and off
        // must produce identical simulation outcomes: the cache is pure
        // wall-time optimization.
        let spec = CampaignSpec::new("warm")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["gzip", "mesa"])
            .cycles(30_000)
            .warmup(30_000)
            .seed(5);
        let warm = run_campaign(&spec, &RunnerOptions { threads: Some(4), ..Default::default() })
            .expect("warm campaign");
        let cold = run_campaign(
            &spec,
            &RunnerOptions { threads: Some(2), warm_cache: false, ..Default::default() },
        )
        .expect("cold campaign");
        assert!(warm.same_outcome(&cold), "cache must not change results");
        // Warmup ran: the measured window alone is `cycles`, so total
        // simulated cycles include the warmup.
        assert!(warm.jobs[0].result.cycles >= 60_000);
    }

    #[test]
    fn zero_warmup_is_the_legacy_path() {
        let spec = CampaignSpec::new("legacy")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
            .seed(9);
        let a = run_campaign(&spec, &RunnerOptions::default()).expect("runs");
        let direct = run_one(&spec.configs[0].config, "gzip", 20_000, 9).expect("runs");
        assert_eq!(a.jobs[0].result, direct);
    }

    #[test]
    fn cancelled_campaign_reports_cancelled() {
        let spec = CampaignSpec::new("cancelled")
            .config("base", experiments::issue_queue(false))
            .benchmarks(["eon", "gzip", "mesa"])
            .cycles(50_000);
        let control = CampaignControl::new();
        control.cancel();
        let outcome = run_campaign_controlled(
            &spec,
            &RunnerOptions { threads: Some(2), ..Default::default() },
            &control,
            None,
            None,
        )
        .expect("valid spec");
        assert!(matches!(outcome, CampaignOutcome::Cancelled));
        let (completed, total) = control.progress();
        assert_eq!(total, 3);
        assert_eq!(completed, 0, "pre-cancelled campaign runs no jobs");
    }

    #[test]
    fn job_timeout_aborts_the_campaign() {
        let spec = CampaignSpec::new("timeout")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(5_000_000);
        let control = CampaignControl::new();
        let outcome = run_campaign_controlled(
            &spec,
            &RunnerOptions { threads: Some(1), ..Default::default() },
            &control,
            Some(Duration::ZERO),
            None,
        )
        .expect("valid spec");
        match outcome {
            CampaignOutcome::TimedOut { bench, config } => {
                assert_eq!(bench, "gzip");
                assert_eq!(config, "base");
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn controlled_campaign_records_progress_and_matches_uncontrolled() {
        let spec = CampaignSpec::new("progress")
            .config("base", experiments::issue_queue(false))
            .benchmarks(["eon", "gzip"])
            .cycles(20_000);
        let control = CampaignControl::new();
        let outcome = run_campaign_controlled(
            &spec,
            &RunnerOptions { threads: Some(2), ..Default::default() },
            &control,
            Some(Duration::from_secs(600)),
            None,
        )
        .expect("valid spec");
        let CampaignOutcome::Completed(result) = outcome else {
            panic!("campaign should complete")
        };
        assert_eq!(control.progress(), (2, 2));
        assert_eq!(control.finished_jobs().len(), 2);
        let plain = run_campaign(&spec, &RunnerOptions { threads: Some(1), ..Default::default() })
            .expect("valid spec");
        assert!(result.same_outcome(&plain), "controls must not change results");
    }

    #[test]
    fn shared_cache_spans_campaigns() {
        let spec = |name: &str| {
            CampaignSpec::new(name)
                .config("base", experiments::issue_queue(false))
                .benchmark("gzip")
                .cycles(10_000)
                .warmup(20_000)
                .seed(3)
        };
        let cache = WarmStartCache::in_memory();
        for name in ["first", "second"] {
            let control = CampaignControl::new();
            let outcome = run_campaign_controlled(
                &spec(name),
                &RunnerOptions::default(),
                &control,
                None,
                Some(&cache),
            )
            .expect("valid spec");
            assert!(matches!(outcome, CampaignOutcome::Completed(_)));
        }
        let (computed, _, hits) = cache.stats();
        assert_eq!(computed, 1, "second campaign reuses the first warmup");
        assert_eq!(hits, 1);
    }

    #[test]
    fn campaign_matches_run_one() {
        let spec = CampaignSpec::new("match")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
            .seed(9);
        let campaign = run_campaign(&spec, &RunnerOptions::default()).expect("campaign runs");
        let direct = run_one(&spec.configs[0].config, "gzip", 20_000, 9).expect("runs");
        assert_eq!(campaign.jobs[0].result, direct);
    }
}

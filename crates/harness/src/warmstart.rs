//! Warm-start snapshot caching for campaigns.
//!
//! Campaign jobs that share a `(benchmark, seed, warmup budget,
//! warmup-relevant configuration)` quadruple go through the exact same
//! mitigation-free warmup (see [`Simulator::run_warmup`]), so computing it
//! once and forking every measured run from the resulting [`Snapshot`] is
//! free speedup. "Warmup-relevant" means every [`SimConfig`] field except
//! `mitigation`: the warmup never consults the mitigation manager, so
//! technique variants over the same machine share; different core
//! geometries, floorplans, or packages do not.
//!
//! [`WarmStartCache`] keeps computed snapshots in memory for the lifetime
//! of a campaign (each computed exactly once; concurrent requesters wait
//! on the first computation, interruptibly — see
//! [`WarmStartCache::get_or_compute_controlled`]) and can additionally
//! persist them to a checkpoint directory so later *processes* skip the
//! warmup too:
//!
//! * with a checkpoint directory set, every computed snapshot is written
//!   to `<dir>/<fnv1a-of-key>.json` (atomically: temp file + rename);
//! * with `resume` also set, the cache tries the directory before
//!   computing, verifying both the snapshot format version and the full
//!   cache key stored inside the file (so a hash collision or a stale
//!   file from an incompatible run falls back to recomputation instead of
//!   poisoning results).

use powerbalance::{
    spec2000, Error, MitigationConfig, RunControl, SimConfig, Simulator, Snapshot, StopCause,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// One cache slot: computed exactly once, shareable across workers, and
/// able to remember a failed computation (hence `Result` inside the cell).
///
/// The computing worker holds `claimed` while it runs the warmup; everyone
/// else polls the cell *and their own [`RunControl`]* instead of blocking
/// inside the `OnceLock`, so a cancelled or timed-out job unblocks even
/// while another worker keeps computing. If the computing worker itself is
/// stopped early it never publishes into the cell — it drops the claim and
/// removes the map entry, so a later request recomputes from scratch
/// instead of inheriting a half-warmed snapshot.
#[derive(Debug, Default)]
struct SlotState {
    claimed: AtomicBool,
    cell: OnceLock<Result<Arc<Snapshot>, Error>>,
}

type Slot = Arc<SlotState>;

/// How a controlled cache request ended.
#[derive(Debug, Clone)]
pub enum WarmupOutcome {
    /// The snapshot is available (computed here, by another worker, or
    /// loaded from the checkpoint directory).
    Ready(Arc<Snapshot>),
    /// The caller's [`RunControl`] stopped the request before a snapshot
    /// was available; the cache is left unpoisoned.
    Stopped(StopCause),
}

/// A shared, thread-safe cache of warmup snapshots.
///
/// # Examples
///
/// ```
/// use powerbalance::experiments;
/// use powerbalance_harness::WarmStartCache;
///
/// let cache = WarmStartCache::in_memory();
/// let snap = cache
///     .get_or_compute("gzip", 42, 20_000, &experiments::issue_queue(true))
///     .expect("warmup runs");
/// // The same key returns the same snapshot without re-simulating.
/// let again = cache
///     .get_or_compute("gzip", 42, 20_000, &experiments::issue_queue(false))
///     .expect("cache hit: same machine, different mitigation");
/// assert_eq!(*snap, *again);
/// ```
#[derive(Debug, Default)]
pub struct WarmStartCache {
    entries: Mutex<HashMap<String, Slot>>,
    checkpoint_dir: Option<PathBuf>,
    resume: bool,
    hits: Mutex<u64>,
    computed: Mutex<u64>,
    loaded: Mutex<u64>,
}

/// On-disk wrapper around a persisted snapshot: stores the full cache key
/// so a load can verify it landed on the right file (file names are only
/// a 64-bit hash of the key).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
struct CheckpointFile {
    key: String,
    snapshot: Snapshot,
}

impl WarmStartCache {
    /// A purely in-memory cache (no checkpoint directory).
    #[must_use]
    pub fn in_memory() -> Self {
        WarmStartCache::default()
    }

    /// A cache that persists computed snapshots under `dir`, and — when
    /// `resume` is set — loads matching snapshots from `dir` instead of
    /// recomputing them.
    #[must_use]
    pub fn with_checkpoint_dir(dir: impl Into<PathBuf>, resume: bool) -> Self {
        WarmStartCache { checkpoint_dir: Some(dir.into()), resume, ..WarmStartCache::default() }
    }

    /// The canonical cache key for a warmup.
    ///
    /// Includes the snapshot format version (so a format bump invalidates
    /// on-disk checkpoints), the benchmark, seed, and warmup budget, and
    /// the full configuration with `mitigation` normalized to the baseline
    /// — the warmup never consults the mitigation manager, so configs
    /// differing only there share a key.
    #[must_use]
    pub fn key(bench: &str, seed: u64, warmup_cycles: u64, config: &SimConfig) -> String {
        let normalized = SimConfig { mitigation: MitigationConfig::baseline(), ..config.clone() };
        format!(
            "{{\"format_version\":{},\"bench\":{},\"seed\":{seed},\"warmup_cycles\":{warmup_cycles},\"config\":{}}}",
            powerbalance::FORMAT_VERSION,
            serde::json::to_string(bench),
            serde::json::to_string(&normalized),
        )
    }

    /// The file a snapshot for `key` is persisted at under `dir`.
    #[must_use]
    pub fn checkpoint_path(dir: &Path, key: &str) -> PathBuf {
        dir.join(format!("{:016x}.json", fnv1a(key.as_bytes())))
    }

    /// Returns the warmup snapshot for the quadruple, computing (or
    /// loading from the checkpoint directory) at most once per key.
    ///
    /// The returned snapshot was captured under `config` with its
    /// mitigation normalized to the baseline; resume it into the actual
    /// measured config with [`Snapshot::resume_with_config`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the benchmark is unknown or the
    /// configuration fails validation. Checkpoint-directory I/O problems
    /// are not errors: unreadable or mismatched files fall back to
    /// recomputation, and failed writes are ignored (the cache is an
    /// optimization, never a correctness dependency).
    pub fn get_or_compute(
        &self,
        bench: &str,
        seed: u64,
        warmup_cycles: u64,
        config: &SimConfig,
    ) -> Result<Arc<Snapshot>, Error> {
        match self.get_or_compute_controlled(
            bench,
            seed,
            warmup_cycles,
            config,
            &RunControl::unlimited(),
        )? {
            WarmupOutcome::Ready(snapshot) => Ok(snapshot),
            WarmupOutcome::Stopped(_) => {
                unreachable!("an unlimited control never stops a warmup")
            }
        }
    }

    /// Like [`get_or_compute`](Self::get_or_compute), but observes
    /// `control` throughout: the computing worker threads it into the
    /// warmup itself ([`Simulator::run_warmup_controlled`]) and everyone
    /// else polls it while waiting on that computation — so a cancelled
    /// job blocked on a *shared* warmup unblocks at the next sampling
    /// window instead of riding the whole warmup out.
    ///
    /// A stop is never cached: if the computing worker is stopped early,
    /// the partial warmup is discarded and the key forgotten, so the next
    /// request (possibly one of the former waiters, if its own control
    /// allows) recomputes from scratch. Only completed snapshots — and
    /// configuration errors — are published.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Config`] if the benchmark is unknown or the
    /// configuration fails validation.
    pub fn get_or_compute_controlled(
        &self,
        bench: &str,
        seed: u64,
        warmup_cycles: u64,
        config: &SimConfig,
        control: &RunControl<'_>,
    ) -> Result<WarmupOutcome, Error> {
        let key = Self::key(bench, seed, warmup_cycles, config);
        let mut computed_here = false;
        let result = loop {
            // Re-fetch each iteration: an aborted computation removes the
            // entry, and waiters must migrate to the replacement slot.
            let slot = self.slot(&key);
            if let Some(result) = slot.cell.get() {
                break result.clone();
            }
            if let Some(stop) = control.stop_cause() {
                return Ok(WarmupOutcome::Stopped(stop));
            }
            if slot.claimed.swap(true, Ordering::AcqRel) {
                // Another worker is computing this key. Sleep briefly and
                // re-check both the cell and our own control.
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            computed_here = true;
            match self.load_or_compute(&key, bench, seed, warmup_cycles, config, control) {
                Ok(Ok(snapshot)) => {
                    let _ = slot.cell.set(Ok(Arc::clone(&snapshot)));
                    break Ok(snapshot);
                }
                Ok(Err(stop)) => {
                    self.forget(&key, &slot);
                    slot.claimed.store(false, Ordering::Release);
                    return Ok(WarmupOutcome::Stopped(stop));
                }
                Err(e) => {
                    // Config errors are deterministic; cache the failure so
                    // sibling jobs fail fast instead of re-simulating.
                    let _ = slot.cell.set(Err(e.clone()));
                    break Err(e);
                }
            }
        };
        if !computed_here {
            *self.hits.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        }
        result.map(WarmupOutcome::Ready)
    }

    /// The live slot for `key`, created on first request.
    fn slot(&self, key: &str) -> Slot {
        // Lock poisoning is recovered rather than propagated: a worker that
        // panicked mid-campaign leaves the map/counters in a consistent
        // state (every mutation here is a single insert or increment), and
        // failing every later job over it would turn one bad run into a
        // dead campaign.
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(entries.entry(key.to_string()).or_default())
    }

    /// Drops `key`'s entry, but only if it still maps to `slot` — a
    /// replacement published by a later generation must survive.
    fn forget(&self, key: &str, slot: &Slot) {
        let mut entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if entries.get(key).is_some_and(|current| Arc::ptr_eq(current, slot)) {
            entries.remove(key);
        }
    }

    /// Publishes an externally produced snapshot under `key`, so a node
    /// that received a shipped warm-start checkpoint serves it to local
    /// jobs without recomputing. A snapshot already resolved for `key`
    /// (computed, loaded, or previously inserted) wins — `OnceLock`
    /// semantics — keeping results independent of insertion races.
    pub fn insert(&self, key: &str, snapshot: Snapshot) {
        let slot = self.slot(key);
        let _ = slot.cell.set(Ok(Arc::new(snapshot)));
    }

    /// The resolved snapshot for `key`, if one has been computed, loaded,
    /// or inserted. Never blocks and never triggers a computation; an
    /// in-flight or failed slot reads as `None`.
    #[must_use]
    pub fn lookup(&self, key: &str) -> Option<Arc<Snapshot>> {
        let entries = self.entries.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let slot = entries.get(key)?;
        match slot.cell.get() {
            Some(Ok(snapshot)) => Some(Arc::clone(snapshot)),
            _ => None,
        }
    }

    /// Cache statistics: `(computed, loaded from disk, in-memory hits)`.
    #[must_use]
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            *self.computed.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
            *self.loaded.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
            *self.hits.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    fn load_or_compute(
        &self,
        key: &str,
        bench: &str,
        seed: u64,
        warmup_cycles: u64,
        config: &SimConfig,
        control: &RunControl<'_>,
    ) -> Result<Result<Arc<Snapshot>, StopCause>, Error> {
        if self.resume {
            if let Some(dir) = &self.checkpoint_dir {
                if let Some(snapshot) = load_checkpoint(&Self::checkpoint_path(dir, key), key) {
                    *self.loaded.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
                    return Ok(Ok(Arc::new(snapshot)));
                }
            }
        }

        let snapshot = match compute_warmup_controlled(bench, seed, warmup_cycles, config, control)?
        {
            Ok(snapshot) => snapshot,
            Err(stop) => return Ok(Err(stop)),
        };
        *self.computed.lock().unwrap_or_else(std::sync::PoisonError::into_inner) += 1;
        if let Some(dir) = &self.checkpoint_dir {
            // Best-effort persistence; a full disk must not fail the run.
            let _ = write_checkpoint(dir, key, &snapshot);
        }
        Ok(Ok(Arc::new(snapshot)))
    }
}

/// Runs the mitigation-free warmup and captures it as a [`Snapshot`].
///
/// The simulator is built with the mitigation normalized to the baseline,
/// making the captured snapshot canonical for its cache key no matter
/// which technique variant requested it first.
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or `config`
/// fails validation.
pub fn compute_warmup(
    bench: &str,
    seed: u64,
    warmup_cycles: u64,
    config: &SimConfig,
) -> Result<Snapshot, Error> {
    match compute_warmup_controlled(bench, seed, warmup_cycles, config, &RunControl::unlimited())? {
        Ok(snapshot) => Ok(snapshot),
        Err(_) => unreachable!("an unlimited control never stops a warmup"),
    }
}

/// [`compute_warmup`] with a [`RunControl`] threaded through the warmup
/// simulation, which checks it between sampling windows.
///
/// The outer `Result` is the configuration check; the inner one is the
/// control: `Ok(Err(cause))` means the warmup was stopped early and **no**
/// snapshot was captured (a partial warmup must never masquerade as a
/// complete one).
///
/// # Errors
///
/// Returns [`Error::Config`] if the benchmark is unknown or `config`
/// fails validation.
pub fn compute_warmup_controlled(
    bench: &str,
    seed: u64,
    warmup_cycles: u64,
    config: &SimConfig,
    control: &RunControl<'_>,
) -> Result<Result<Snapshot, StopCause>, Error> {
    let profile = spec2000::by_name(bench)
        .ok_or_else(|| Error::Config(format!("unknown benchmark '{bench}'")))?;
    let normalized = SimConfig { mitigation: MitigationConfig::baseline(), ..config.clone() };
    let mut sim = Simulator::new(normalized)?;
    let mut trace = profile.trace(seed);
    let cause = sim.run_warmup_controlled(&mut trace, warmup_cycles, control);
    if !cause.is_completed() {
        return Ok(Err(cause));
    }
    Ok(Ok(Snapshot::capture(&sim, &profile, &trace)))
}

/// 64-bit FNV-1a — the checkpoint file-name hash. Stable across runs and
/// platforms (unlike `std`'s `DefaultHasher`, which is randomly seeded).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn load_checkpoint(path: &Path, key: &str) -> Option<Snapshot> {
    let text = std::fs::read_to_string(path).ok()?;
    let file: CheckpointFile = serde::json::from_str(&text).ok()?;
    if file.key != key {
        return None; // hash collision or stale/corrupt file
    }
    if file.snapshot.format_version != powerbalance::FORMAT_VERSION {
        return None;
    }
    Some(file.snapshot)
}

fn write_checkpoint(dir: &Path, key: &str, snapshot: &Snapshot) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = WarmStartCache::checkpoint_path(dir, key);
    let file = CheckpointFile { key: key.to_string(), snapshot: snapshot.clone() };
    // Write to a temp file in the same directory, then rename into place:
    // readers never observe a partial document, and concurrent writers of
    // the same key settle on identical bytes anyway.
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, serde::json::to_string(&file))?;
    std::fs::rename(&tmp, &path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::experiments;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("powerbalance-warmstart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn pre_stopped_controlled_request_leaves_the_cache_unpoisoned() {
        let cache = WarmStartCache::in_memory();
        let config = experiments::issue_queue(false);
        let flag = AtomicBool::new(true);
        let control = RunControl::unlimited().with_cancel(&flag);
        let outcome = cache
            .get_or_compute_controlled("gzip", 4, 20_000, &config, &control)
            .expect("valid config");
        assert!(matches!(outcome, WarmupOutcome::Stopped(StopCause::Cancelled)), "{outcome:?}");
        let (computed, _, _) = cache.stats();
        assert_eq!(computed, 0, "a stopped request must not count as computed");

        // The aborted key was forgotten, not poisoned: an uncontrolled
        // retry computes the full warmup.
        let snap = cache.get_or_compute("gzip", 4, 20_000, &config).expect("recompute");
        let reference = compute_warmup("gzip", 4, 20_000, &config).expect("warmup");
        assert_eq!(*snap, reference, "the retry must produce the full, untainted warmup");
        let (computed, _, _) = cache.stats();
        assert_eq!(computed, 1);
    }

    #[test]
    fn cancel_during_shared_warmup_unblocks_computer_and_waiters() {
        // Two workers land on the same (huge) warmup key: one computes,
        // one waits on the computation. Cancelling their shared flag must
        // unblock *both* promptly — the waiter from its poll loop, the
        // computer from inside `run_warmup_controlled` — and must not
        // publish the partial warmup.
        let cache = WarmStartCache::in_memory();
        let config = experiments::issue_queue(false);
        let flag = AtomicBool::new(false);
        let outcomes: Vec<WarmupOutcome> = std::thread::scope(|scope| {
            let workers: Vec<_> = (0..2)
                .map(|_| {
                    scope.spawn(|| {
                        let control = RunControl::unlimited().with_cancel(&flag);
                        cache
                            .get_or_compute_controlled("gzip", 8, 50_000_000, &config, &control)
                            .expect("valid config")
                    })
                })
                .collect();
            std::thread::sleep(Duration::from_millis(100));
            flag.store(true, Ordering::Relaxed);
            workers.into_iter().map(|w| w.join().expect("worker panicked")).collect()
        });
        for outcome in &outcomes {
            assert!(matches!(outcome, WarmupOutcome::Stopped(StopCause::Cancelled)), "{outcome:?}");
        }
        let (computed, _, _) = cache.stats();
        assert_eq!(computed, 0, "the 50M-cycle warmup must not have completed in 100ms");
        assert!(
            cache.entries.lock().unwrap().is_empty(),
            "an aborted computation must forget its key"
        );
    }

    #[test]
    fn key_ignores_mitigation_but_not_geometry() {
        let toggling = experiments::issue_queue(true);
        let base = experiments::issue_queue(false);
        assert_eq!(
            WarmStartCache::key("gzip", 1, 100, &toggling),
            WarmStartCache::key("gzip", 1, 100, &base),
            "configs differing only in mitigation share a warmup"
        );
        let other_machine = experiments::alu(powerbalance::experiments::AluPolicy::RoundRobin);
        assert_ne!(
            WarmStartCache::key("gzip", 1, 100, &base),
            WarmStartCache::key("gzip", 1, 100, &other_machine),
            "different core geometry must not share"
        );
        assert_ne!(
            WarmStartCache::key("gzip", 1, 100, &base),
            WarmStartCache::key("gzip", 2, 100, &base)
        );
        assert_ne!(
            WarmStartCache::key("gzip", 1, 100, &base),
            WarmStartCache::key("mesa", 1, 100, &base)
        );
        assert_ne!(
            WarmStartCache::key("gzip", 1, 100, &base),
            WarmStartCache::key("gzip", 1, 200, &base)
        );
    }

    #[test]
    fn in_memory_cache_computes_once() {
        let cache = WarmStartCache::in_memory();
        let a = cache
            .get_or_compute("gzip", 5, 20_000, &experiments::issue_queue(true))
            .expect("warmup");
        let b = cache
            .get_or_compute("gzip", 5, 20_000, &experiments::issue_queue(false))
            .expect("warmup");
        assert!(Arc::ptr_eq(&a, &b), "second request must hit the cache");
        let (computed, loaded, hits) = cache.stats();
        assert_eq!((computed, loaded, hits), (1, 0, 1));
    }

    #[test]
    fn checkpoints_round_trip_through_disk() {
        let dir = temp_dir("roundtrip");
        let config = experiments::issue_queue(false);

        let writer = WarmStartCache::with_checkpoint_dir(&dir, false);
        let original = writer.get_or_compute("eon", 3, 20_000, &config).expect("warmup");
        let key = WarmStartCache::key("eon", 3, 20_000, &config);
        let path = WarmStartCache::checkpoint_path(&dir, &key);
        assert!(path.is_file(), "checkpoint must be persisted at {path:?}");

        // A fresh cache with --resume semantics loads instead of computing.
        let reader = WarmStartCache::with_checkpoint_dir(&dir, true);
        let loaded = reader.get_or_compute("eon", 3, 20_000, &config).expect("load");
        assert_eq!(*loaded, *original);
        let (computed, from_disk, _) = reader.stats();
        assert_eq!((computed, from_disk), (0, 1));

        // Without --resume the directory is write-only.
        let no_resume = WarmStartCache::with_checkpoint_dir(&dir, false);
        let _ = no_resume.get_or_compute("eon", 3, 20_000, &config).expect("warmup");
        let (computed, from_disk, _) = no_resume.stats();
        assert_eq!((computed, from_disk), (1, 0));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_or_mismatched_checkpoints_fall_back_to_compute() {
        let dir = temp_dir("corrupt");
        let config = experiments::issue_queue(false);
        let key = WarmStartCache::key("gzip", 9, 20_000, &config);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = WarmStartCache::checkpoint_path(&dir, &key);

        // Garbage file: recompute.
        std::fs::write(&path, "not json").expect("write");
        let cache = WarmStartCache::with_checkpoint_dir(&dir, true);
        let snap = cache.get_or_compute("gzip", 9, 20_000, &config).expect("fallback");
        let (computed, loaded, _) = cache.stats();
        assert_eq!((computed, loaded), (1, 0));

        // A file whose embedded key disagrees (as a hash collision would):
        // recompute rather than trust it.
        let wrong = CheckpointFile { key: "something else".to_string(), snapshot: (*snap).clone() };
        std::fs::write(&path, serde::json::to_string(&wrong)).expect("write");
        let cache = WarmStartCache::with_checkpoint_dir(&dir, true);
        let _ = cache.get_or_compute("gzip", 9, 20_000, &config).expect("fallback");
        let (computed, loaded, _) = cache.stats();
        assert_eq!((computed, loaded), (1, 0));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_checkpoint_falls_back_to_compute() {
        // A process killed mid-write (or a full disk) can leave a file
        // that starts as valid JSON but stops mid-document. The loader
        // must treat it like any other corruption: recompute, then heal
        // the file by overwriting it with the fresh snapshot.
        let dir = temp_dir("truncated");
        let config = experiments::issue_queue(false);
        let key = WarmStartCache::key("gzip", 11, 20_000, &config);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let path = WarmStartCache::checkpoint_path(&dir, &key);

        // Build a genuine checkpoint document and cut it in half.
        let snapshot = compute_warmup("gzip", 11, 20_000, &config).expect("warmup");
        let file = CheckpointFile { key: key.clone(), snapshot };
        let text = serde::json::to_string(&file);
        std::fs::write(&path, &text[..text.len() / 2]).expect("write");

        let cache = WarmStartCache::with_checkpoint_dir(&dir, true);
        let healed = cache.get_or_compute("gzip", 11, 20_000, &config).expect("fallback");
        let (computed, loaded, _) = cache.stats();
        assert_eq!((computed, loaded), (1, 0), "truncated file must not be trusted");
        assert_eq!(*healed, file.snapshot, "recompute reproduces the snapshot");

        // The recompute's best-effort persistence replaced the damage: a
        // later resume loads cleanly.
        let later = WarmStartCache::with_checkpoint_dir(&dir, true);
        let _ = later.get_or_compute("gzip", 11, 20_000, &config).expect("load");
        let (computed, loaded, _) = later.stats();
        assert_eq!((computed, loaded), (0, 1), "healed checkpoint must load");

        let _ = std::fs::remove_dir_all(&dir);
    }
}

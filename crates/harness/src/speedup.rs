//! IPC-speedup math shared by the figure binaries and the CLI.
//!
//! Speedups are undefined when the baseline made no forward progress (IPC
//! 0 — a run that spent its whole budget frozen). Rather than dividing by
//! zero and averaging infinities into the headline numbers, the helpers
//! here make that case explicit: [`speedup_pct`] returns `None` and
//! [`mean_speedup_pct`] averages over the defined pairs only.

/// Percentage IPC change from `base_ipc` to `new_ipc`, or `None` when the
/// baseline is zero, negative, or non-finite (no meaningful ratio exists).
#[must_use]
pub fn speedup_pct(base_ipc: f64, new_ipc: f64) -> Option<f64> {
    if base_ipc > 0.0 && base_ipc.is_finite() && new_ipc.is_finite() {
        Some((new_ipc / base_ipc - 1.0) * 100.0)
    } else {
        None
    }
}

/// Mean percentage speedup over the `(base_ipc, new_ipc)` pairs with a
/// defined speedup. Returns 0.0 when no pair is defined.
#[must_use]
pub fn mean_speedup_pct(pairs: &[(f64, f64)]) -> f64 {
    let valid: Vec<f64> = pairs.iter().filter_map(|&(base, new)| speedup_pct(base, new)).collect();
    if valid.is_empty() {
        0.0
    } else {
        valid.iter().sum::<f64>() / valid.len() as f64
    }
}

/// Renders a speedup as a fixed-width cell: `"+1.23"`-style percentages, or
/// `"n/a"` when the baseline IPC was zero.
#[must_use]
pub fn format_pct(speedup: Option<f64>, width: usize, precision: usize) -> String {
    match speedup {
        Some(pct) => format!("{pct:>width$.precision$}"),
        None => format!("{:>width$}", "n/a"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_and_negative_speedups() {
        assert!((speedup_pct(1.0, 1.1).expect("defined") - 10.0).abs() < 1e-9);
        assert!((speedup_pct(2.0, 1.0).expect("defined") + 50.0).abs() < 1e-9);
    }

    #[test]
    fn zero_or_bad_baseline_is_undefined() {
        assert_eq!(speedup_pct(0.0, 1.0), None);
        assert_eq!(speedup_pct(-1.0, 1.0), None);
        assert_eq!(speedup_pct(f64::NAN, 1.0), None);
        assert_eq!(speedup_pct(1.0, f64::INFINITY), None);
    }

    #[test]
    fn mean_skips_undefined_pairs() {
        let pairs = [(1.0, 1.2), (0.0, 5.0), (1.0, 0.8)];
        // Defined pairs: +20% and -20% → mean 0.
        assert!(mean_speedup_pct(&pairs).abs() < 1e-9);
    }

    #[test]
    fn mean_of_no_defined_pairs_is_zero() {
        assert_eq!(mean_speedup_pct(&[]), 0.0);
        assert_eq!(mean_speedup_pct(&[(0.0, 1.0)]), 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_pct(Some(1.234), 8, 2), "    1.23");
        assert_eq!(format_pct(None, 8, 2), "     n/a");
    }
}

//! Structured campaign results.

use crate::spec::CampaignSpec;
use powerbalance::RunResult;
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::path::Path;

/// The outcome of one (benchmark × config) job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobResult {
    /// Benchmark name.
    pub bench: String,
    /// Config name (from [`crate::NamedConfig`]).
    pub config: String,
    /// Row index of `bench` in the spec's benchmark list.
    pub bench_index: usize,
    /// Column index of `config` in the spec's config list.
    pub config_index: usize,
    /// Workload seed the job ran with.
    pub seed: u64,
    /// Cycle budget the job was given.
    pub cycles_requested: u64,
    /// Host wall-clock time the job took, in nanoseconds.
    pub wall_nanos: u64,
    /// Simulated cycles per host second — the run-level throughput metric.
    pub sim_cycles_per_sec: f64,
    /// Full simulation results.
    pub result: RunResult,
}

impl JobResult {
    /// Whether two jobs produced the same *simulation* outcome, ignoring
    /// host-timing fields (`wall_nanos`, `sim_cycles_per_sec`), which vary
    /// run to run. This is the equality the pool-size-invariance guarantee
    /// is stated in.
    #[must_use]
    pub fn same_outcome(&self, other: &JobResult) -> bool {
        self.bench == other.bench
            && self.config == other.config
            && self.bench_index == other.bench_index
            && self.config_index == other.config_index
            && self.seed == other.seed
            && self.cycles_requested == other.cycles_requested
            && self.result == other.result
    }
}

/// All results of one campaign, in deterministic (benchmark-major, then
/// config) order regardless of how the worker pool interleaved the jobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The spec this campaign ran from.
    pub spec: CampaignSpec,
    /// Worker threads the pool used.
    pub threads: usize,
    /// Wall-clock time for the whole campaign, in nanoseconds.
    pub wall_nanos: u64,
    /// One entry per (benchmark × config) job, bench-major in spec order.
    pub jobs: Vec<JobResult>,
}

impl CampaignResult {
    /// The job for `(bench, config_name)`, if both are in the spec.
    #[must_use]
    pub fn get(&self, bench: &str, config_name: &str) -> Option<&JobResult> {
        self.jobs.iter().find(|j| j.bench == bench && j.config == config_name)
    }

    /// Rows for table rendering: one `(benchmark, per-config results)` entry
    /// per benchmark, configs in spec order.
    #[must_use]
    pub fn rows(&self) -> Vec<(&str, Vec<&RunResult>)> {
        let ncfg = self.spec.configs.len();
        self.spec
            .benchmarks
            .iter()
            .enumerate()
            .map(|(bi, bench)| {
                let results =
                    self.jobs[bi * ncfg..(bi + 1) * ncfg].iter().map(|j| &j.result).collect();
                (bench.as_str(), results)
            })
            .collect()
    }

    /// The subset of rows whose config at `base_config_index` hit temporal
    /// stalls (`freezes > 0`) — the paper's "constrained" benchmark set,
    /// where mitigation actually had to act.
    #[must_use]
    pub fn constrained_subset(&self, base_config_index: usize) -> Vec<(&str, Vec<&RunResult>)> {
        self.rows()
            .into_iter()
            .filter(|(_, results)| results[base_config_index].freezes > 0)
            .collect()
    }

    /// Whether two campaigns produced identical simulation outcomes
    /// (ignoring host timing and thread count). Used to assert pool-size
    /// invariance.
    #[must_use]
    pub fn same_outcome(&self, other: &CampaignResult) -> bool {
        self.spec == other.spec
            && self.jobs.len() == other.jobs.len()
            && self.jobs.iter().zip(&other.jobs).all(|(a, b)| a.same_outcome(b))
    }

    /// Aggregate throughput: total simulated cycles per host second of
    /// campaign wall time.
    #[must_use]
    pub fn sim_cycles_per_sec(&self) -> f64 {
        let total: u64 = self.jobs.iter().map(|j| j.result.cycles).sum();
        let secs = self.wall_nanos as f64 / 1e9;
        if secs > 0.0 {
            total as f64 / secs
        } else {
            0.0
        }
    }

    /// The campaign as a pretty-printed JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Writes the JSON document to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_json(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CampaignSpec;
    use powerbalance::experiments;

    fn run(ipc: f64, freezes: u64) -> RunResult {
        RunResult {
            cycles: 1000,
            committed: (ipc * 1000.0) as u64,
            ipc,
            frozen_cycles: 0,
            toggles: 0,
            alu_turnoffs: 0,
            rf_turnoffs: 0,
            freezes,
            opp_transitions: 0,
            duty_shifts: 0,
            throttled_cycles: 0,
            fetch_gated_cycles: 0,
            temperatures: Vec::new(),
            int_issued_per_unit: [0; 6],
            int_rf_reads: [0; 2],
            mispredict_rate: 0.0,
            l1d_miss_rate: 0.0,
        }
    }

    fn campaign() -> CampaignResult {
        let spec = CampaignSpec::new("t")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .benchmarks(["eon", "gzip"]);
        let mut jobs = Vec::new();
        for (bi, bench) in spec.benchmarks.iter().enumerate() {
            for (ci, cfg) in spec.configs.iter().enumerate() {
                jobs.push(JobResult {
                    bench: bench.clone(),
                    config: cfg.name.clone(),
                    bench_index: bi,
                    config_index: ci,
                    seed: spec.seed,
                    cycles_requested: spec.cycles,
                    wall_nanos: 1,
                    sim_cycles_per_sec: 1.0,
                    // Give "eon" a frozen baseline so constrained_subset
                    // has something to select.
                    result: run(0.5 + bi as f64 + ci as f64, u64::from(bi == 0 && ci == 0)),
                });
            }
        }
        CampaignResult { spec, threads: 1, wall_nanos: 2_000_000, jobs }
    }

    #[test]
    fn get_and_rows_follow_spec_order() {
        let c = campaign();
        assert_eq!(c.get("gzip", "toggling").expect("present").result.ipc, 2.5);
        assert!(c.get("gzip", "nope").is_none());
        let rows = c.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "eon");
        assert_eq!(rows[1].1[0].ipc, 1.5);
    }

    #[test]
    fn constrained_subset_filters_on_base_freezes() {
        let c = campaign();
        let constrained = c.constrained_subset(0);
        assert_eq!(constrained.len(), 1);
        assert_eq!(constrained[0].0, "eon");
    }

    #[test]
    fn same_outcome_ignores_host_timing() {
        let a = campaign();
        let mut b = campaign();
        b.threads = 8;
        b.wall_nanos = 999;
        for job in &mut b.jobs {
            job.wall_nanos = 77;
            job.sim_cycles_per_sec = 123.0;
        }
        assert!(a.same_outcome(&b));
        b.jobs[0].result.ipc += 0.1;
        assert!(!a.same_outcome(&b));
    }

    #[test]
    fn json_round_trips() {
        let c = campaign();
        let text = c.to_json();
        let back: CampaignResult = serde::json::from_str(&text).expect("parses");
        assert_eq!(back, c);
    }
}

//! `powerbalance-harness` — experiment orchestration for the simulator.
//!
//! Every result in the paper (Tables 4–6, Figures 6–8, the §6 summary) is a
//! *campaign*: a cross-product of named mitigation configurations and a set
//! of benchmarks, run for a fixed cycle budget from a fixed seed. This crate
//! makes that a first-class, reusable subsystem:
//!
//! * [`CampaignSpec`] — the typed description of a campaign: named
//!   [`SimConfig`]s, a benchmark list, cycles, and the workload seed;
//! * [`run_campaign`] — a bounded worker pool (`std::thread::scope` over a
//!   shared atomic cursor) that schedules batch-eligible sibling jobs into
//!   lockstep [`powerbalance::BatchSimulator`] units (bit-identical to
//!   scalar execution, see [`RunnerOptions::max_batch`]) and everything
//!   else at per-(benchmark × config) job granularity, so mixed campaigns
//!   load-balance instead of serializing every config behind the slowest
//!   benchmark;
//! * [`CampaignResult`] — structured, serializable results: one
//!   [`JobResult`] per (benchmark, config) with the full [`RunResult`],
//!   per-job wall time, and simulated-cycles/second throughput, writable as
//!   a JSON artifact via the in-repo serializer (`serde::json`);
//! * [`speedup`] — shared IPC-speedup math with explicit handling of
//!   fully-frozen (IPC 0) baselines;
//! * [`WarmStartCache`] — warm-start snapshot caching: campaigns with a
//!   [`CampaignSpec::warmup_cycles`] budget compute each distinct
//!   mitigation-free warmup once, fork every technique variant's measured
//!   run from the shared [`powerbalance::Snapshot`], and can persist the
//!   snapshots to a checkpoint directory for later processes.
//!
//! Worker count resolves from, in order: an explicit request (CLI
//! `--threads`), the `POWERBALANCE_THREADS` environment variable, and
//! [`std::thread::available_parallelism`]. Results are deterministic and
//! independent of the worker count: jobs land in spec order regardless of
//! completion order, and each job's simulation is seeded end-to-end.
//!
//! # Examples
//!
//! ```
//! use powerbalance::experiments;
//! use powerbalance_harness::{run_campaign, CampaignSpec, RunnerOptions};
//!
//! let spec = CampaignSpec::new("iq-demo")
//!     .config("base", experiments::issue_queue(false))
//!     .config("toggling", experiments::issue_queue(true))
//!     .benchmark("eon")
//!     .cycles(50_000);
//! let result = run_campaign(&spec, &RunnerOptions::default())?;
//! assert_eq!(result.jobs.len(), 2);
//! let base = result.get("eon", "base").expect("job ran");
//! assert!(base.result.ipc > 0.0);
//! # Ok::<(), powerbalance::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod result;
mod runner;
mod spec;
pub mod speedup;
mod warmstart;

pub use result::{CampaignResult, JobResult};
pub use runner::{
    plan_units, resolve_threads, run_batch_warmed_controlled, run_campaign,
    run_campaign_controlled, run_one, run_one_warmed, run_one_warmed_controlled, CampaignControl,
    CampaignOutcome, JobProgress, RunnerOptions, THREADS_ENV_VAR,
};
pub use spec::{CampaignSpec, NamedConfig};
pub use warmstart::{compute_warmup, compute_warmup_controlled, WarmStartCache, WarmupOutcome};

/// Default simulated cycles per run: long enough for several heat/stall
/// cycles under the compressed thermal constants.
pub const DEFAULT_CYCLES: u64 = 1_000_000;

/// Default workload seed (any fixed value works; results are deterministic
/// per seed).
pub const DEFAULT_SEED: u64 = 42;

//! Integration tests for the campaign runner: pool-size invariance, seed
//! plumbing, and JSON artifacts through the in-repo serializer.

use powerbalance::experiments::{self, AluPolicy};
use powerbalance::RunResult;
use powerbalance_harness::{run_campaign, run_one, CampaignResult, CampaignSpec, RunnerOptions};

fn demo_spec() -> CampaignSpec {
    CampaignSpec::new("invariance")
        .config("base", experiments::issue_queue(false))
        .config("toggling", experiments::issue_queue(true))
        .config("alu-fg", experiments::alu(AluPolicy::FineGrainTurnoff))
        .benchmarks(["eon", "gzip", "mesa"])
        .cycles(25_000)
        .seed(5)
}

fn run_with(threads: usize) -> CampaignResult {
    run_campaign(&demo_spec(), &RunnerOptions { threads: Some(threads), ..Default::default() })
        .expect("campaign runs")
}

#[test]
fn pool_size_does_not_change_results() {
    let serial = run_with(1);
    let parallel = run_with(4);
    assert_eq!(serial.threads, 1);
    assert_eq!(parallel.threads, 4);
    assert!(serial.same_outcome(&parallel), "results must not depend on the pool size");
    // Bit-identical, field by field, for the paper-facing metrics.
    for (a, b) in serial.jobs.iter().zip(&parallel.jobs) {
        assert_eq!(a.result.committed, b.result.committed);
        assert_eq!(a.result.toggles, b.result.toggles);
        assert_eq!(a.result.freezes, b.result.freezes);
        assert_eq!(a.result.temperatures, b.result.temperatures);
        assert_eq!(a.result, b.result);
    }
}

#[test]
fn oversized_pools_clamp_to_the_job_count() {
    let spec = CampaignSpec::new("tiny")
        .config("base", experiments::issue_queue(false))
        .benchmark("eon")
        .cycles(10_000);
    let result = run_campaign(&spec, &RunnerOptions { threads: Some(64), ..Default::default() })
        .expect("campaign runs");
    assert_eq!(result.threads, 1, "one job never needs more than one worker");
}

#[test]
fn campaign_honors_its_seed() {
    let with_seed = |seed: u64| {
        let spec = CampaignSpec::new("seeded")
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(25_000)
            .seed(seed);
        run_campaign(&spec, &RunnerOptions::default()).expect("campaign runs")
    };
    let a = with_seed(1);
    let b = with_seed(2);
    assert_eq!(a.jobs[0].seed, 1);
    assert_eq!(b.jobs[0].seed, 2);
    assert_ne!(
        a.jobs[0].result.committed, b.jobs[0].result.committed,
        "different seeds must drive different workload traces"
    );
    let a_again = with_seed(1);
    assert!(a.same_outcome(&a_again), "equal seeds must reproduce the run exactly");
}

#[test]
fn run_result_round_trips_through_json() {
    let result: RunResult =
        run_one(&experiments::issue_queue(true), "eon", 25_000, 3).expect("run succeeds");
    let text = serde::json::to_string_pretty(&result);
    let back: RunResult = serde::json::from_str(&text).expect("artifact parses");
    assert_eq!(back, result, "JSON round-trip must be lossless");
}

#[test]
fn campaign_json_artifact_is_parseable_and_complete() {
    let result = run_with(2);
    let text = result.to_json();
    let value = serde::json::Value::parse(&text).expect("artifact parses");
    let field = |v: &serde::json::Value, key: &str| -> serde::json::Value {
        v.field(key).expect("field present").clone()
    };
    let jobs = field(&value, "jobs").as_array().expect("jobs array").to_vec();
    assert_eq!(jobs.len(), 9);
    for job in &jobs {
        // The acceptance-level content: per-(benchmark, config) IPC,
        // temperatures, mitigation counters, and per-job wall time.
        assert!(field(job, "bench").as_str().is_ok());
        assert!(field(job, "config").as_str().is_ok());
        assert!(field(job, "wall_nanos").as_u64().expect("wall time") > 0);
        let run = field(job, "result");
        assert!(field(&run, "ipc").as_f64().expect("ipc is a number") > 0.0);
        assert!(field(&run, "toggles").as_u64().is_ok());
        assert!(field(&run, "freezes").as_u64().is_ok());
        assert!(!field(&run, "temperatures").as_array().expect("temps").is_empty());
    }
    let back: CampaignResult = serde::json::from_str(&text).expect("round-trips");
    assert!(back.same_outcome(&result));
}

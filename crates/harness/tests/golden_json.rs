//! Golden-artifact test for the `--json` campaign output.
//!
//! Pins the artifact *schema and content* to a committed golden file so
//! that field renames, ordering changes, or numeric drift in the simulator
//! show up as a reviewable diff instead of silently breaking downstream
//! consumers. Host-timing fields (`wall_nanos`, `sim_cycles_per_sec`) and
//! the pool size (`threads`) legitimately vary run to run, so they are
//! normalized to fixed values before comparison.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p powerbalance-harness --test golden_json
//! ```

use powerbalance::experiments;
use powerbalance_harness::{run_campaign, CampaignSpec, RunnerOptions};
use serde::json::Value;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/campaign.json")
}

/// Rewrites every host-varying field to a fixed value, recursively.
fn normalize(value: &mut Value) {
    match value {
        Value::Object(fields) => {
            for (key, field) in fields.iter_mut() {
                match key.as_str() {
                    "wall_nanos" => *field = Value::U64(0),
                    "sim_cycles_per_sec" => *field = Value::F64(0.0),
                    "threads" => *field = Value::U64(1),
                    _ => normalize(field),
                }
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                normalize(item);
            }
        }
        _ => {}
    }
}

#[test]
fn campaign_json_matches_the_committed_golden_artifact() {
    // Small but representative: two mitigation configs, two benchmarks, a
    // warmup budget (so the spec's warm-start fields are pinned too), and
    // more than one worker (normalized away below).
    let spec = CampaignSpec::new("golden")
        .config("base", experiments::issue_queue(false))
        .config("toggling", experiments::issue_queue(true))
        .benchmarks(["eon", "gzip"])
        .cycles(30_000)
        .warmup(10_000)
        .seed(5);
    let result = run_campaign(&spec, &RunnerOptions { threads: Some(2), ..Default::default() })
        .expect("campaign runs");

    let mut value = Value::parse(&result.to_json()).expect("artifact parses");
    normalize(&mut value);
    let mut rendered = String::new();
    value.write_pretty(&mut rendered, 0);
    rendered.push('\n');

    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &rendered).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        rendered,
        golden,
        "campaign JSON artifact drifted from {}; if the change is intentional, \
         regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn normalization_only_touches_host_timing_fields() {
    let text =
        r#"{"threads": 8, "wall_nanos": 123, "jobs": [{"sim_cycles_per_sec": 4.5, "ipc": 1.25}]}"#;
    let mut value = Value::parse(text).expect("parses");
    normalize(&mut value);
    assert_eq!(value.field("threads").unwrap(), &Value::U64(1));
    assert_eq!(value.field("wall_nanos").unwrap(), &Value::U64(0));
    let job = value.field("jobs").unwrap().item(0).unwrap();
    assert_eq!(job.field("sim_cycles_per_sec").unwrap(), &Value::F64(0.0));
    assert_eq!(job.field("ipc").unwrap().as_f64().unwrap(), 1.25);
}

//! Per-cycle pipeline invariants.
//!
//! Everything here is checked at cycle *boundaries*: the watch captures
//! the pre-cycle state in [`CoreWatch::before_cycle`], lets the core run
//! one cycle, and audits the post-cycle state against it. No hooks inside
//! the pipeline are needed because every input the checks depend on
//! (freeze flag, unit enables, register-copy wiring, FP-multiplier
//! occupancy) only changes between cycles — the mitigation manager runs
//! at sample boundaries, and the multiplier's busy counter is decremented
//! by `pool.tick()` *after* FP select has read it.
//!
//! The age-order invariant tracks only *Waiting* entries: an issued entry
//! never returns to Waiting (the replay window merely delays compaction),
//! so across one cycle the Waiting population of a queue can change in
//! exactly two ways — entries leave by issuing, and newly dispatched
//! entries append after every survivor. Compaction and mode toggles may
//! relocate positions, but the rank order of survivors must be preserved
//! and dispatch order must match fetch order.

use crate::{Sink, ViolationKind};
use powerbalance_uarch::{Core, CoreStats, DutyCycle, EntryState, IssueQueue, UnitKind};

const MAX_INT_UNITS: usize = 6;
const MAX_FP_UNITS: usize = 4;
const MAX_RF_COPIES: usize = 2;

/// State captured at the pre-cycle boundary.
#[derive(Debug, Clone, Copy)]
struct Boundary {
    frozen: bool,
    /// Cycle counter at the boundary; the cycle about to run evaluates its
    /// duty-cycle gates at `now + 1` (the core bumps `now` first).
    now: u64,
    fetch_duty: DutyCycle,
    clock_duty: DutyCycle,
    stats: CoreStats,
    /// Integer ALU may be granted work: enabled *and* its register-file
    /// copy wiring allows reads.
    int_usable: [bool; MAX_INT_UNITS],
    fp_enabled: [bool; MAX_FP_UNITS],
    fp_mul_available: bool,
    rf_copy_enabled: [bool; MAX_RF_COPIES],
}

/// Waiting-population tracking for one issue queue.
#[derive(Debug)]
struct QueueWatch {
    label: &'static str,
    /// Waiting uids in rank (age) order at the last boundary.
    prev: Vec<u64>,
    /// Scratch for the current list.
    cur: Vec<u64>,
    /// Highest uid ever seen Waiting in this queue: anything above it is a
    /// fresh dispatch, anything at or below must be a survivor.
    max_uid: Option<u64>,
}

/// Outcome of auditing one queue transition.
struct Audit {
    survivors: u64,
    inserted: u64,
}

impl QueueWatch {
    fn new(label: &'static str) -> Self {
        QueueWatch { label, prev: Vec::new(), cur: Vec::new(), max_uid: None }
    }

    /// Records the Waiting population at a pre-cycle boundary.
    fn capture(&mut self, core: &Core, iq: &IssueQueue) {
        collect_waiting(core, iq, &mut self.prev);
        // Seed the uid horizon from pre-existing entries so a checker
        // enabled mid-run does not misread them as fresh dispatches.
        if let Some(&m) = self.prev.iter().max() {
            self.max_uid = Some(self.max_uid.map_or(m, |o| o.max(m)));
        }
    }

    /// Audits the post-cycle Waiting population against the captured one
    /// and the per-domain issue count, returning how many entries were
    /// dispatched into the queue this cycle.
    fn check(
        &mut self,
        core: &Core,
        iq: &IssueQueue,
        issued_delta: u64,
        cycle: u64,
        sink: &mut Sink,
    ) -> u64 {
        collect_waiting(core, iq, &mut self.cur);
        let audit = audit_transition(self.label, &self.prev, &self.cur, self.max_uid, cycle, sink);
        let departed = self.prev.len() as u64 - audit.survivors;
        if departed != issued_delta {
            sink.report(
                ViolationKind::IqAccounting,
                cycle,
                format!(
                    "{}: {departed} entries left Waiting this cycle but {issued_delta} \
                     issues were recorded",
                    self.label
                ),
            );
        }
        if let Some(&m) = self.cur.iter().max() {
            self.max_uid = Some(self.max_uid.map_or(m, |o| o.max(m)));
        }
        std::mem::swap(&mut self.prev, &mut self.cur);
        audit.inserted
    }
}

/// Pure transition audit over two rank-ordered Waiting uid lists.
///
/// `max_uid` is the horizon at the *previous* boundary: uids above it are
/// fresh dispatches. Checks that survivors keep their relative order, that
/// fresh entries arrive in fetch order, and that no fresh entry is ranked
/// ahead of a survivor (dispatch appends behind the compacted region).
fn audit_transition(
    label: &str,
    prev: &[u64],
    cur: &[u64],
    max_uid: Option<u64>,
    cycle: u64,
    sink: &mut Sink,
) -> Audit {
    let mut pi = 0usize;
    let mut survivors = 0u64;
    let mut inserted = 0u64;
    let mut last_new: Option<u64> = None;
    for &uid in cur {
        let is_new = max_uid.is_none_or(|m| uid > m);
        if is_new {
            if let Some(l) = last_new {
                if uid <= l {
                    sink.report(
                        ViolationKind::IqOrder,
                        cycle,
                        format!("{label}: dispatched uids out of fetch order ({l} before {uid})"),
                    );
                }
            }
            last_new = Some(uid);
            inserted += 1;
        } else {
            if last_new.is_some() {
                sink.report(
                    ViolationKind::IqOrder,
                    cycle,
                    format!(
                        "{label}: older waiting entry uid {uid} is ranked after a newly \
                         dispatched entry"
                    ),
                );
            }
            match prev[pi..].iter().position(|&p| p == uid) {
                Some(k) => {
                    pi += k + 1;
                    survivors += 1;
                }
                None => sink.report(
                    ViolationKind::IqOrder,
                    cycle,
                    format!(
                        "{label}: waiting uid {uid} is out of age order relative to the \
                         previous cycle (compaction reordered it, or it reappeared)"
                    ),
                ),
            }
        }
    }
    Audit { survivors, inserted }
}

/// Rank-ordered uids of all Waiting entries in a queue.
fn collect_waiting(core: &Core, iq: &IssueQueue, out: &mut Vec<u64>) {
    out.clear();
    for rank in 0..iq.size() {
        let pos = iq.position_of_rank(rank);
        if let Some(entry) = iq.entry(pos) {
            if entry.state == EntryState::Waiting {
                out.push(core.active_list().entry(entry.rob_id).uid);
            }
        }
    }
}

/// The per-cycle pipeline invariant checker.
#[derive(Debug)]
pub(crate) struct CoreWatch {
    n_int: usize,
    n_fp: usize,
    n_copies: usize,
    int_q: QueueWatch,
    fp_q: QueueWatch,
    prev: Option<Boundary>,
}

impl CoreWatch {
    pub(crate) fn new(core: &Core) -> Self {
        let cfg = core.config();
        CoreWatch {
            n_int: cfg.int_alus,
            n_fp: cfg.fp_adders,
            n_copies: cfg.int_rf_copies,
            int_q: QueueWatch::new("int IQ"),
            fp_q: QueueWatch::new("fp IQ"),
            prev: None,
        }
    }

    pub(crate) fn before_cycle(&mut self, core: &Core) {
        let mut b = Boundary {
            frozen: core.is_frozen(),
            now: core.now(),
            fetch_duty: core.fetch_duty(),
            clock_duty: core.clock_duty(),
            stats: *core.stats(),
            int_usable: [false; MAX_INT_UNITS],
            fp_enabled: [false; MAX_FP_UNITS],
            fp_mul_available: core.unit_available(UnitKind::FpMul, 0),
            rf_copy_enabled: [false; MAX_RF_COPIES],
        };
        for u in 0..self.n_int {
            b.int_usable[u] = core.unit_enabled(UnitKind::IntAlu, u) && core.wiring().alu_usable(u);
        }
        for u in 0..self.n_fp {
            b.fp_enabled[u] = core.unit_enabled(UnitKind::FpAdd, u);
        }
        for c in 0..self.n_copies {
            b.rf_copy_enabled[c] = core.rf_copy_enabled(c);
        }
        self.int_q.capture(core, core.int_iq());
        self.fp_q.capture(core, core.fp_iq());
        self.prev = Some(b);
    }

    pub(crate) fn after_cycle(&mut self, core: &Core, sink: &mut Sink) {
        let Some(prev) = self.prev.take() else { return };
        let cur = *core.stats();
        let cycle = cur.cycles;

        // Slot accounting: the cached occupancy always matches the slots.
        for (label, iq) in [("int IQ", core.int_iq()), ("fp IQ", core.fp_iq())] {
            let counted = iq.occupied_positions().count();
            if iq.occupancy() != counted {
                sink.report(
                    ViolationKind::IqAccounting,
                    cycle,
                    format!(
                        "{label}: cached occupancy {} != {counted} occupied slots",
                        iq.occupancy()
                    ),
                );
            }
        }

        let int_issued: u64 = (0..self.n_int)
            .map(|u| cur.int_issued_per_unit[u] - prev.stats.int_issued_per_unit[u])
            .sum();
        let fp_issued: u64 = (0..self.n_fp)
            .map(|u| cur.fp_issued_per_unit[u] - prev.stats.fp_issued_per_unit[u])
            .sum::<u64>()
            + (cur.fp_mul_issued - prev.stats.fp_mul_issued);

        let int_inserted = self.int_q.check(core, core.int_iq(), int_issued, cycle, sink);
        let fp_inserted = self.fp_q.check(core, core.fp_iq(), fp_issued, cycle, sink);

        let dispatched = cur.dispatched - prev.stats.dispatched;
        if int_inserted + fp_inserted != dispatched {
            sink.report(
                ViolationKind::IqAccounting,
                cycle,
                format!(
                    "dispatch accounting: {int_inserted} int + {fp_inserted} fp queue \
                     inserts != {dispatched} dispatched"
                ),
            );
        }
        let issued = cur.issued - prev.stats.issued;
        if issued != int_issued + fp_issued {
            sink.report(
                ViolationKind::IqAccounting,
                cycle,
                format!(
                    "issue accounting: total {issued} != per-unit sum {} + {}",
                    int_issued, fp_issued
                ),
            );
        }

        // Select trees must never grant a turned-off/unusable unit. The
        // boundary state is authoritative: enables only change between
        // cycles (mitigation runs at sample boundaries).
        for u in 0..self.n_int {
            if !prev.int_usable[u]
                && cur.int_issued_per_unit[u] != prev.stats.int_issued_per_unit[u]
            {
                sink.report(
                    ViolationKind::Select,
                    cycle,
                    format!("int select granted ALU {u}, which was turned off or unusable"),
                );
            }
        }
        for u in 0..self.n_fp {
            if !prev.fp_enabled[u] && cur.fp_issued_per_unit[u] != prev.stats.fp_issued_per_unit[u]
            {
                sink.report(
                    ViolationKind::Select,
                    cycle,
                    format!("fp select granted adder {u}, which was turned off"),
                );
            }
        }
        if !prev.fp_mul_available && cur.fp_mul_issued != prev.stats.fp_mul_issued {
            sink.report(
                ViolationKind::Select,
                cycle,
                "fp select granted the multiplier while it was busy or turned off".to_string(),
            );
        }
        for c in 0..self.n_copies {
            if !prev.rf_copy_enabled[c] && cur.int_rf_reads[c] != prev.stats.int_rf_reads[c] {
                sink.report(
                    ViolationKind::Select,
                    cycle,
                    format!("register-file copy {c} was read while turned off"),
                );
            }
        }

        // A frozen core makes no forward progress of any kind.
        if prev.frozen {
            let progress = [
                ("fetched", cur.fetched - prev.stats.fetched),
                ("dispatched", dispatched),
                ("issued", issued),
                ("committed", cur.committed - prev.stats.committed),
            ];
            for (what, delta) in progress {
                if delta != 0 {
                    sink.report(
                        ViolationKind::Frozen,
                        cycle,
                        format!("frozen core {what} {delta} ops this cycle"),
                    );
                }
            }
            if cur.frozen_cycles != prev.stats.frozen_cycles + 1 {
                sink.report(
                    ViolationKind::Frozen,
                    cycle,
                    format!(
                        "frozen cycle not accounted: frozen_cycles went {} -> {}",
                        prev.stats.frozen_cycles, cur.frozen_cycles
                    ),
                );
            }
        }

        // Duty-cycle gates evaluate at `now + 1` because the core bumps its
        // cycle counter before any stage runs.
        let throttle_gated = !prev.frozen && prev.clock_duty.gates(prev.now + 1);
        if throttle_gated {
            // A clock-gated grid cycle quiesces everything, like a
            // one-cycle freeze, and must be accounted as throttled.
            let progress = [
                ("fetched", cur.fetched - prev.stats.fetched),
                ("dispatched", dispatched),
                ("issued", issued),
                ("committed", cur.committed - prev.stats.committed),
            ];
            for (what, delta) in progress {
                if delta != 0 {
                    sink.report(
                        ViolationKind::Duty,
                        cycle,
                        format!("clock-gated core {what} {delta} ops this cycle"),
                    );
                }
            }
            if cur.throttled_cycles != prev.stats.throttled_cycles + 1 {
                sink.report(
                    ViolationKind::Duty,
                    cycle,
                    format!(
                        "throttled cycle not accounted: throttled_cycles went {} -> {}",
                        prev.stats.throttled_cycles, cur.throttled_cycles
                    ),
                );
            }
        }

        // Fetch gating only idles the front end: on a gated cycle nothing
        // may be fetched, and the gate must be accounted exactly once.
        if !prev.frozen && !throttle_gated && prev.fetch_duty.gates(prev.now + 1) {
            let fetched = cur.fetched - prev.stats.fetched;
            if fetched != 0 {
                sink.report(
                    ViolationKind::Duty,
                    cycle,
                    format!("fetch-gated core fetched {fetched} ops this cycle"),
                );
            }
            if cur.fetch_gated_cycles != prev.stats.fetch_gated_cycles + 1 {
                sink.report(
                    ViolationKind::Duty,
                    cycle,
                    format!(
                        "fetch-gated cycle not accounted: fetch_gated_cycles went {} -> {}",
                        prev.stats.fetch_gated_cycles, cur.fetch_gated_cycles
                    ),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_isa::{ArchReg, MicroOp, OpClass, SliceTrace};
    use powerbalance_uarch::CoreConfig;

    fn audit(prev: &[u64], cur: &[u64], max_uid: Option<u64>) -> (u64, u64, u64) {
        let mut sink = Sink::default();
        let out = audit_transition("test", prev, cur, max_uid, 0, &mut sink);
        (out.survivors, out.inserted, sink.total)
    }

    #[test]
    fn clean_transitions_pass() {
        // Issue the head, keep the rest, append new dispatches.
        assert_eq!(audit(&[3, 5, 8], &[5, 8, 11, 12], Some(8)), (2, 2, 0));
        // Unchanged population.
        assert_eq!(audit(&[3, 5], &[3, 5], Some(5)), (2, 0, 0));
        // Fresh checker: everything in the queue counts as new.
        assert_eq!(audit(&[], &[4, 7], None), (0, 2, 0));
    }

    #[test]
    fn survivor_reorder_is_flagged() {
        let (_, _, violations) = audit(&[3, 5, 8], &[5, 3, 8], Some(8));
        assert!(violations > 0, "swapped survivors must be flagged");
    }

    #[test]
    fn new_entry_ranked_before_survivor_is_flagged() {
        let (_, _, violations) = audit(&[3, 5], &[9, 3, 5], Some(5));
        assert!(violations > 0, "dispatch must append after survivors");
    }

    #[test]
    fn reappearing_entry_is_flagged() {
        // uid 4 was seen before (≤ max) but was not Waiting last cycle.
        let (_, _, violations) = audit(&[5], &[4, 5], Some(6));
        assert!(violations > 0, "issued entries must not return to Waiting");
    }

    #[test]
    fn dispatched_out_of_fetch_order_is_flagged() {
        let (_, _, violations) = audit(&[], &[9, 7], Some(5));
        assert!(violations > 0);
    }

    fn mixed_trace(n: usize) -> SliceTrace {
        (0..n)
            .map(|i| {
                let class = match i % 5 {
                    0 => OpClass::IntAlu,
                    1 => OpClass::FpAdd,
                    2 => OpClass::IntMul,
                    3 => OpClass::FpMul,
                    _ => OpClass::IntAlu,
                };
                let dest = if class.domain() == powerbalance_isa::ExecDomain::Int {
                    ArchReg::int((i % 30) as u8)
                } else {
                    ArchReg::fp((i % 30) as u8)
                };
                MicroOp::new(class)
                    .with_pc(0x1000 + 4 * i as u64)
                    .with_dest(dest)
                    .with_src1(ArchReg::int(((i + 1) % 30) as u8))
            })
            .collect()
    }

    #[test]
    fn real_core_runs_clean() {
        let mut core = Core::new(CoreConfig::default()).expect("valid config");
        let mut watch = CoreWatch::new(&core);
        let mut sink = Sink::default();
        let mut trace = mixed_trace(400);
        for _ in 0..50_000 {
            if core.is_done() {
                break;
            }
            watch.before_cycle(&core);
            core.cycle(&mut trace);
            watch.after_cycle(&core, &mut sink);
        }
        assert!(core.is_done(), "trace should drain in 50k cycles");
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn real_core_with_disabled_units_runs_clean() {
        let mut core = Core::new(CoreConfig::default()).expect("valid config");
        let mut watch = CoreWatch::new(&core);
        let mut sink = Sink::default();
        let mut trace = mixed_trace(400);
        for i in 0..400 {
            // Toggle unit/copy enables between cycles, as the mitigation
            // manager would; the select invariant must hold throughout.
            if i == 40 {
                core.set_unit_enabled(UnitKind::IntAlu, 0, false);
                core.set_unit_enabled(UnitKind::FpAdd, 1, false);
            }
            if i == 80 {
                core.set_unit_enabled(UnitKind::IntAlu, 0, true);
                core.set_unit_enabled(UnitKind::FpMul, 0, false);
            }
            if i == 120 {
                core.set_unit_enabled(UnitKind::FpMul, 0, true);
                core.set_unit_enabled(UnitKind::FpAdd, 1, true);
            }
            watch.before_cycle(&core);
            core.cycle(&mut trace);
            watch.after_cycle(&core, &mut sink);
        }
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn disabled_rf_copy_gates_its_alus() {
        // Under priority mapping, turning off register-file copy 0 makes
        // the high-priority ALUs unusable: a correct select tree routes
        // everything to the surviving copy's ALUs, which the watch must
        // accept — and a select tree that ignores the wiring is flagged.
        let cfg = CoreConfig {
            mapping: powerbalance_uarch::MappingPolicy::Priority,
            ..CoreConfig::default()
        };
        let mut core = Core::new(cfg).expect("valid config");
        let mut watch = CoreWatch::new(&core);
        let mut sink = Sink::default();
        let mut trace = mixed_trace(400);
        for i in 0..2_000 {
            if core.is_done() {
                break;
            }
            if i == 40 {
                core.set_rf_copy_enabled(0, false);
            }
            if i == 400 {
                core.set_rf_copy_enabled(0, true);
            }
            watch.before_cycle(&core);
            core.cycle(&mut trace);
            watch.after_cycle(&core, &mut sink);
        }
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn duty_gated_core_runs_clean() {
        // Fetch gating and clock throttling active at once: the watch must
        // accept the core's own accounting on every gated cycle.
        let mut core = Core::new(CoreConfig::default()).expect("valid config");
        core.set_fetch_duty(DutyCycle::new(1, 4));
        core.set_clock_duty(DutyCycle::new(3, 4));
        let mut watch = CoreWatch::new(&core);
        let mut sink = Sink::default();
        let mut trace = mixed_trace(400);
        for _ in 0..100_000 {
            if core.is_done() {
                break;
            }
            watch.before_cycle(&core);
            core.cycle(&mut trace);
            watch.after_cycle(&core, &mut sink);
        }
        assert!(core.is_done(), "duty-gated trace should drain in 100k cycles");
        assert!(core.stats().throttled_cycles > 0, "throttle never engaged");
        assert!(core.stats().fetch_gated_cycles > 0, "fetch gate never engaged");
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn unhonored_duty_gate_is_flagged() {
        // Claim the clock was gated at the boundary while the core actually
        // ran free: the missing throttled-cycle accounting must be flagged.
        let mut core = Core::new(CoreConfig::default()).expect("valid config");
        let mut watch = CoreWatch::new(&core);
        let mut sink = Sink::default();
        let mut trace = mixed_trace(100);
        watch.before_cycle(&core);
        if let Some(b) = &mut watch.prev {
            b.clock_duty = DutyCycle::new(0, 4);
        }
        core.cycle(&mut trace);
        watch.after_cycle(&core, &mut sink);
        assert!(sink.total > 0, "unhonored clock gate must be flagged");
    }

    #[test]
    fn frozen_core_progress_is_flagged() {
        let mut core = Core::new(CoreConfig::default()).expect("valid config");
        let mut watch = CoreWatch::new(&core);
        let mut sink = Sink::default();
        let mut trace = mixed_trace(100);
        watch.before_cycle(&core);
        core.cycle(&mut trace);
        watch.after_cycle(&core, &mut sink);
        assert_eq!(sink.total, 0);
        // Claim the core is frozen at the boundary, then let it run: the
        // progress it makes must be reported.
        watch.before_cycle(&core);
        if let Some(b) = &mut watch.prev {
            b.frozen = true;
        }
        core.cycle(&mut trace);
        watch.after_cycle(&core, &mut sink);
        assert!(sink.total > 0, "progress while frozen must be flagged");
    }
}

//! Thermal-solver invariants.
//!
//! The RC network is solved implicitly (backward Euler for transient
//! steps, a direct solve for the warm-start steady state), so the checker
//! can verify each solution *independently of the LU factorization* by
//! substituting it back into the discretized heat equation:
//!
//! * transient step: `(C_i/Δt)·(T⁺_i − T_i) + Σ_j G[i,j]·T⁺_j = P_i + A_i`
//! * steady state:   `Σ_j G[i,j]·T_j = P_i + A_i`
//!
//! where `A` is the ambient injection (nonzero only at the heat-sink
//! node). Residuals are compared against a row-scaled tolerance, so the
//! check is independent of the network's conductance magnitudes. On top
//! of the residuals: temperatures stay finite and inside physically
//! plausible bounds, and at steady state the package-level energy balance
//! holds — the heat leaving through the sink's convection conductance
//! equals the total power put in.

use crate::{Sink, ViolationKind};
use powerbalance_thermal::ThermalModel;

/// Relative residual tolerance. The LU solve is accurate to ~1e-13 of the
/// row scale; 1e-8 leaves real margin while still catching any genuine
/// solver or bookkeeping bug (a single swapped index shows up at ~1e-2).
const RESIDUAL_RTOL: f64 = 1e-8;

/// No block in a 358 K-limited processor plausibly reaches 500 K; beyond
/// it the simulation has diverged even if the algebra is consistent.
const MAX_PLAUSIBLE_TEMP: f64 = 500.0;

/// The thermal-layer invariant checker.
#[derive(Debug)]
pub(crate) struct ThermalWatch {
    /// Node temperatures before the step being verified.
    prev: Vec<f64>,
    /// Scratch: block power padded with zeros for spreader/sink nodes.
    power: Vec<f64>,
}

impl ThermalWatch {
    pub(crate) fn new(model: &ThermalModel) -> Self {
        ThermalWatch { prev: model.node_temperatures().to_vec(), power: Vec::new() }
    }

    /// Re-bases the watch on the model's current temperatures without
    /// checking anything. The interval engine moves the network with the
    /// closed-form [`ThermalModel::advance`] between detailed samples;
    /// that solution is verified by the thermal crate's property tests,
    /// not the backward-Euler residual, so the next transient step must
    /// be measured from the advanced state rather than the last checked
    /// one.
    pub(crate) fn resync(&mut self, model: &ThermalModel) {
        self.prev.copy_from_slice(model.node_temperatures());
    }

    /// Verifies the solve that just ran. `settled` means the model did a
    /// steady-state solve (warm start) instead of a transient step of `dt`
    /// seconds under `watts` per block.
    pub(crate) fn check(
        &mut self,
        model: &ThermalModel,
        watts: &[f64],
        dt: f64,
        settled: bool,
        now: u64,
        sink: &mut Sink,
    ) {
        let net = model.network();
        let n = net.node_count();
        let temps = model.node_temperatures();
        let ambient = net.ambient();

        for (i, &t) in temps.iter().enumerate() {
            if !t.is_finite() || t > MAX_PLAUSIBLE_TEMP {
                sink.report(
                    ViolationKind::Thermal,
                    now,
                    format!("node {i} temperature {t} is not physically plausible"),
                );
                // Residuals on non-finite data only cascade; stop here.
                self.prev.copy_from_slice(temps);
                return;
            }
        }
        for (i, &t) in temps.iter().take(model.block_count()).enumerate() {
            if t < ambient - 1e-6 {
                sink.report(
                    ViolationKind::Thermal,
                    now,
                    format!("block {i} at {t} K fell below the {ambient} K ambient"),
                );
            }
        }

        self.power.clear();
        self.power.extend_from_slice(watts);
        self.power.resize(n, 0.0);

        let g = net.conductance();
        let c = net.capacitance();
        let amb = net.ambient_power();
        for i in 0..n {
            let row = &g[i * n..(i + 1) * n];
            let conduct: f64 = row.iter().zip(temps).map(|(&gij, &tj)| gij * tj).sum();
            let row_scale: f64 =
                row.iter().zip(temps).map(|(&gij, &tj)| (gij * tj).abs()).sum::<f64>()
                    + self.power[i].abs()
                    + amb[i].abs()
                    + 1.0;
            let (residual, scale, label) = if settled {
                (conduct - self.power[i] - amb[i], row_scale, "steady-state")
            } else {
                let storage = c[i] / dt * (temps[i] - self.prev[i]);
                (
                    storage + conduct - self.power[i] - amb[i],
                    row_scale + (c[i] / dt * temps[i]).abs(),
                    "transient-step",
                )
            };
            if residual.abs() > RESIDUAL_RTOL * scale {
                sink.report(
                    ViolationKind::Thermal,
                    now,
                    format!(
                        "{label} residual at node {i} is {residual:.3e} \
                         (tolerance {:.3e}): solution does not satisfy the heat equation",
                        RESIDUAL_RTOL * scale
                    ),
                );
            }
        }

        if settled {
            // Package energy balance: all injected power leaves through
            // the sink-to-ambient convection conductance.
            let g_amb = amb[net.sink_index()] / ambient;
            let out = (temps[net.sink_index()] - ambient) * g_amb;
            let total: f64 = watts.iter().sum();
            if (out - total).abs() > RESIDUAL_RTOL * (total.abs() + 1.0) {
                sink.report(
                    ViolationKind::Thermal,
                    now,
                    format!(
                        "steady-state energy balance broken: {out:.6} W leaves the sink \
                         but {total:.6} W was injected"
                    ),
                );
            }
        }

        self.prev.copy_from_slice(temps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::{ev6, PackageConfig};

    fn model() -> ThermalModel {
        ThermalModel::new(&ev6::baseline(), PackageConfig::default())
    }

    #[test]
    fn transient_steps_satisfy_the_heat_equation() {
        let mut m = model();
        let mut watch = ThermalWatch::new(&m);
        let mut sink = Sink::default();
        let watts = vec![1.5; m.block_count()];
        for step in 0..5 {
            m.step(&watts, 2.5e-6);
            watch.check(&m, &watts, 2.5e-6, false, step, &mut sink);
        }
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn steady_state_satisfies_residual_and_energy_balance() {
        let mut m = model();
        let mut watch = ThermalWatch::new(&m);
        let mut sink = Sink::default();
        let watts = vec![2.0; m.block_count()];
        m.settle(&watts);
        watch.check(&m, &watts, 1.0, true, 0, &mut sink);
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn wrong_power_vector_breaks_the_residual() {
        let mut m = model();
        let mut watch = ThermalWatch::new(&m);
        let mut sink = Sink::default();
        let watts = vec![2.0; m.block_count()];
        m.step(&watts, 2.5e-6);
        // Claim the step was driven by different power than it was: the
        // substituted residual cannot balance.
        let wrong = vec![4.0; m.block_count()];
        watch.check(&m, &wrong, 2.5e-6, false, 0, &mut sink);
        assert!(sink.total > 0, "inconsistent power must be flagged");
    }

    #[test]
    fn tampered_temperature_breaks_the_residual() {
        let mut m = model();
        let mut watch = ThermalWatch::new(&m);
        let mut sink = Sink::default();
        let watts = vec![2.0; m.block_count()];
        m.settle(&watts);
        let mut temps = m.node_temperatures().to_vec();
        temps[0] += 0.5;
        m.restore_node_temperatures(&temps).expect("same node count");
        watch.check(&m, &watts, 1.0, true, 0, &mut sink);
        assert!(sink.total > 0, "tampered solution must be flagged");
    }
}

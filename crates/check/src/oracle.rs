//! The architectural oracle: an in-order reference executor.
//!
//! Micro-ops in this simulator carry no data values, so "architectural
//! state" is tracked as *writer identity*: for every architectural
//! register and every touched memory address, the fetch `uid` of the last
//! micro-op that wrote it. An in-order machine and a correct out-of-order
//! machine must agree on all of it — the OoO core only reorders execution,
//! never retirement. The oracle therefore keeps two copies: a *reference*
//! state driven by the fetch stream in program order, and an *observed*
//! state driven by the `(uid, op)` pairs the core reports at retirement.
//! Any divergence in retirement order, per-op identity, retired count, or
//! final state is a correctness bug in the core.

use crate::{Sink, ViolationKind};
use powerbalance_isa::{MicroOp, OpClass, RegClass};
use powerbalance_uarch::Core;
use std::collections::{HashMap, VecDeque};

/// Last-writer identity per architectural register and memory address.
#[derive(Debug, Default, PartialEq, Eq)]
struct ArchState {
    int_writer: [Option<u64>; 32],
    fp_writer: [Option<u64>; 32],
    mem_writer: HashMap<u64, u64>,
}

impl ArchState {
    fn apply(&mut self, uid: u64, op: &MicroOp) {
        if let Some(dest) = op.dest() {
            let idx = usize::from(dest.class_index());
            match dest.class() {
                RegClass::Int => self.int_writer[idx] = Some(uid),
                RegClass::Fp => self.fp_writer[idx] = Some(uid),
            }
        }
        if op.class() == OpClass::Store {
            if let Some(mem) = op.mem() {
                self.mem_writer.insert(mem.addr, uid);
            }
        }
    }
}

/// The differential oracle fed from the core's fetch and commit logs.
#[derive(Debug)]
pub(crate) struct Oracle {
    /// Fetched ops not yet retired, in program order.
    pending: VecDeque<MicroOp>,
    /// Ops with `uid < skip_until` were fetched before checking was
    /// enabled (warmup, restore): they are absent from the fetch log, so
    /// their retirements are only checked for ordering.
    skip_until: u64,
    /// The uid the next retirement must carry: this pipeline has no
    /// squash path, so retirement consumes uids consecutively.
    next_commit_uid: u64,
    reference: ArchState,
    observed: ArchState,
    /// Retirements fully cross-checked (uid ≥ `skip_until`).
    retired: u64,
}

impl Oracle {
    pub(crate) fn new(core: &Core) -> Self {
        let stats = core.stats();
        Oracle {
            pending: VecDeque::new(),
            skip_until: stats.fetched,
            next_commit_uid: stats.committed,
            reference: ArchState::default(),
            observed: ArchState::default(),
            retired: 0,
        }
    }

    pub(crate) fn on_cycle(
        &mut self,
        cycle: u64,
        fetched: &[MicroOp],
        committed: &[(u64, MicroOp)],
        sink: &mut Sink,
    ) {
        self.pending.extend(fetched.iter().copied());
        for &(uid, op) in committed {
            if uid != self.next_commit_uid {
                sink.report(
                    ViolationKind::Oracle,
                    cycle,
                    format!(
                        "retirement out of order: retired uid {uid}, expected {}",
                        self.next_commit_uid
                    ),
                );
            }
            self.next_commit_uid = uid + 1;
            if uid < self.skip_until {
                continue; // in flight before checking was enabled
            }
            match self.pending.pop_front() {
                Some(expected) => {
                    if expected != op {
                        sink.report(
                            ViolationKind::Oracle,
                            cycle,
                            format!(
                                "retired op differs from the fetched program order at uid \
                                 {uid}: fetched {expected:?}, retired {op:?}"
                            ),
                        );
                    }
                    self.reference.apply(uid, &expected);
                }
                None => sink.report(
                    ViolationKind::Oracle,
                    cycle,
                    format!("uid {uid} retired but was never observed at fetch"),
                ),
            }
            self.observed.apply(uid, &op);
            self.retired += 1;
        }
    }

    pub(crate) fn finish(&mut self, core: &Core, sink: &mut Sink) {
        let stats = core.stats();
        let cycle = stats.cycles;
        if core.is_done() {
            if !self.pending.is_empty() {
                sink.report(
                    ViolationKind::Oracle,
                    cycle,
                    format!(
                        "core drained but {} fetched ops never retired (first pc {:#x})",
                        self.pending.len(),
                        self.pending[0].pc()
                    ),
                );
            }
            if stats.committed != stats.fetched {
                sink.report(
                    ViolationKind::Oracle,
                    cycle,
                    format!(
                        "core drained with committed {} != fetched {}",
                        stats.committed, stats.fetched
                    ),
                );
            }
        }
        let expected_retired = stats.committed.saturating_sub(self.skip_until);
        if self.retired != expected_retired {
            sink.report(
                ViolationKind::Oracle,
                cycle,
                format!(
                    "oracle cross-checked {} retirements but the core reports {} \
                     (committed {} − pre-checker {})",
                    self.retired, expected_retired, stats.committed, self.skip_until
                ),
            );
        }
        self.compare_states(cycle, sink);
    }

    /// Final architectural-state comparison, bounded to one violation per
    /// register class plus one for memory.
    fn compare_states(&self, cycle: u64, sink: &mut Sink) {
        for (class, reference, observed) in [
            ("int", &self.reference.int_writer, &self.observed.int_writer),
            ("fp", &self.reference.fp_writer, &self.observed.fp_writer),
        ] {
            let diffs: Vec<String> = reference
                .iter()
                .zip(observed.iter())
                .enumerate()
                .filter(|(_, (r, o))| r != o)
                .take(4)
                .map(|(i, (r, o))| format!("{class}[{i}]: reference {r:?} vs observed {o:?}"))
                .collect();
            if !diffs.is_empty() {
                sink.report(
                    ViolationKind::Oracle,
                    cycle,
                    format!("final {class} register writers diverge: {}", diffs.join("; ")),
                );
            }
        }
        if self.reference.mem_writer != self.observed.mem_writer {
            let diverging = self
                .reference
                .mem_writer
                .iter()
                .filter(|(addr, uid)| self.observed.mem_writer.get(*addr) != Some(uid))
                .count()
                + self
                    .observed
                    .mem_writer
                    .keys()
                    .filter(|addr| !self.reference.mem_writer.contains_key(*addr))
                    .count();
            sink.report(
                ViolationKind::Oracle,
                cycle,
                format!("final memory writers diverge at {diverging} addresses"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_isa::{ArchReg, MemRef};

    fn op(dest: u8) -> MicroOp {
        MicroOp::new(OpClass::IntAlu).with_dest(ArchReg::int(dest))
    }

    fn fresh_oracle() -> Oracle {
        let core = Core::new(powerbalance_uarch::CoreConfig::default()).expect("valid config");
        Oracle::new(&core)
    }

    #[test]
    fn in_order_retirement_is_clean() {
        let mut oracle = fresh_oracle();
        let mut sink = Sink::default();
        let ops = [op(1), op(2), op(1)];
        oracle.on_cycle(1, &ops, &[], &mut sink);
        oracle.on_cycle(2, &[], &[(0, ops[0]), (1, ops[1]), (2, ops[2])], &mut sink);
        assert_eq!(sink.total, 0);
        assert_eq!(oracle.reference, oracle.observed);
        assert_eq!(oracle.reference.int_writer[1], Some(2));
        assert_eq!(oracle.reference.int_writer[2], Some(1));
    }

    #[test]
    fn out_of_order_retirement_is_flagged() {
        let mut oracle = fresh_oracle();
        let mut sink = Sink::default();
        let ops = [op(1), op(2)];
        oracle.on_cycle(1, &ops, &[], &mut sink);
        // Retire uid 1 before uid 0: both the ordering check and the
        // program-order op comparison fire.
        oracle.on_cycle(2, &[], &[(1, ops[1]), (0, ops[0])], &mut sink);
        assert!(sink.total >= 2, "reorder must be flagged, got {:?}", sink.violations);
    }

    #[test]
    fn corrupted_retired_op_is_flagged() {
        let mut oracle = fresh_oracle();
        let mut sink = Sink::default();
        oracle.on_cycle(1, &[op(1)], &[(0, op(7))], &mut sink);
        assert_eq!(sink.total, 1);
        assert!(sink.violations[0].detail.contains("differs"));
    }

    #[test]
    fn store_addresses_are_tracked() {
        let mut oracle = fresh_oracle();
        let mut sink = Sink::default();
        let st = MicroOp::new(OpClass::Store).with_mem(MemRef::new(0x40));
        let ld = MicroOp::new(OpClass::Load).with_mem(MemRef::new(0x40)).with_dest(ArchReg::int(3));
        oracle.on_cycle(1, &[st, ld], &[(0, st), (1, ld)], &mut sink);
        assert_eq!(sink.total, 0);
        assert_eq!(oracle.reference.mem_writer.get(&0x40), Some(&0));
        assert_eq!(oracle.reference.int_writer[3], Some(1), "loads write registers, not memory");
    }

    #[test]
    fn retirements_before_enablement_only_check_ordering() {
        let mut oracle = fresh_oracle();
        oracle.skip_until = 2;
        oracle.next_commit_uid = 0;
        let mut sink = Sink::default();
        // uids 0 and 1 predate the checker: no fetch-log entry for them.
        oracle.on_cycle(1, &[op(5)], &[(0, op(9)), (1, op(9)), (2, op(5))], &mut sink);
        assert_eq!(sink.total, 0);
        assert_eq!(oracle.retired, 1);
    }
}

//! Differential mirror of the mitigation manager.
//!
//! [`MitigationWatch`] re-implements the [`ThermalManager`]'s decision
//! rules (toggling hysteresis, turnoff/re-enable thresholds with the
//! register-file guard band, the temporal-freeze backstop) independently
//! from the same inputs, and compares *every* externally visible effect of
//! `on_sample` — issue-queue modes, unit and copy enables, write gating,
//! the freeze flag and deadline, and the event counters — against its own
//! prediction. Because the manager is deterministic, the comparison is
//! bidirectional: a missed transition and a spurious transition are both
//! divergences. This is what pins the paper's 0.5 K toggle hysteresis and
//! the turnoff re-enable margins: any drift in either implementation
//! breaks the agreement.

use crate::{Sink, ViolationKind};
use powerbalance_isa::ExecDomain;
use powerbalance_mitigation::{
    ManagerState, MitigationConfig, MitigationStats, Sensors, ThermalManager, RF_GUARD,
};
use powerbalance_thermal::Floorplan;
use powerbalance_uarch::{Core, IqActivity, IqMode, UnitKind};

const N_INT: usize = 6;
const N_FP: usize = 4;
/// Unit order matches the manager's walk: 6 integer ALUs, 4 FP adders,
/// then the FP multiplier.
const N_UNITS: usize = N_INT + N_FP + 1;
const N_COPIES: usize = 2;

/// Manager-visible machine state at a sample boundary; also the shape of
/// the mirror's prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SampleState {
    frozen: bool,
    frozen_until: Option<u64>,
    stats: MitigationStats,
    int_mode: IqMode,
    fp_mode: IqMode,
    unit_enabled: [bool; N_UNITS],
    copy_enabled: [bool; N_COPIES],
    writes_enabled: [bool; N_COPIES],
}

/// The mitigation-layer differential checker.
#[derive(Debug)]
pub(crate) struct MitigationWatch {
    cfg: MitigationConfig,
    sensors: Sensors,
    pre: Option<SampleState>,
}

impl MitigationWatch {
    pub(crate) fn new(plan: &Floorplan, cfg: &MitigationConfig) -> Result<Self, String> {
        Ok(MitigationWatch { cfg: *cfg, sensors: Sensors::new(plan)?, pre: None })
    }

    fn capture(&self, core: &Core, manager: &ThermalManager) -> SampleState {
        let ManagerState { stats, frozen_until } = manager.snapshot();
        let mut s = SampleState {
            frozen: core.is_frozen(),
            frozen_until,
            stats,
            int_mode: core.iq_mode(ExecDomain::Int),
            fp_mode: core.iq_mode(ExecDomain::Fp),
            unit_enabled: [true; N_UNITS],
            copy_enabled: [true; N_COPIES],
            writes_enabled: [true; N_COPIES],
        };
        // Unit/copy state is only queried for configs that can change it:
        // those configs force the full 6/4/2 geometry the sensors assume,
        // so the indices are always in range.
        if self.cfg.alu_turnoff {
            for i in 0..N_UNITS {
                let (kind, idx) = unit_at(i);
                s.unit_enabled[i] = core.unit_enabled(kind, idx);
            }
        }
        if self.cfg.rf_turnoff {
            for c in 0..N_COPIES {
                s.copy_enabled[c] = core.rf_copy_enabled(c);
                s.writes_enabled[c] = core.rf_copy_writes_enabled(c);
            }
        }
        s
    }

    pub(crate) fn before_sample(&mut self, core: &Core, manager: &ThermalManager) {
        self.pre = Some(self.capture(core, manager));
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn after_sample(
        &mut self,
        core: &Core,
        manager: &ThermalManager,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
        sink: &mut Sink,
    ) {
        let Some(pre) = self.pre.take() else { return };
        let predicted = self.predict(pre, temps, now, int_iq, fp_iq);
        let observed = self.capture(core, manager);
        self.compare(&predicted, &observed, now, sink);
    }

    /// Replays the manager's five decision steps on the pre-sample state.
    fn predict(
        &self,
        pre: SampleState,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) -> SampleState {
        let th = self.cfg.thresholds;
        let mut p = pre;

        // 1. Ongoing temporal stall: only cooled resources come back.
        if let Some(until) = p.frozen_until {
            if now < until {
                self.reenable_cooled(&mut p, temps);
                return p;
            }
            p.frozen_until = None;
            p.frozen = false;
        }

        // 2. Activity toggling with the 0.5 K hysteresis threshold.
        if self.cfg.activity_toggling {
            for (domain, q, act) in [
                (ExecDomain::Int, self.sensors.int_q, int_iq),
                (ExecDomain::Fp, self.sensors.fp_q, fp_iq),
            ] {
                let moves = [
                    act.compact_moves[0] + act.mux_selects[0],
                    act.compact_moves[1] + act.mux_selects[1],
                ];
                if moves[0] + moves[1] == 0 {
                    continue;
                }
                let active = usize::from(moves[1] > moves[0]);
                let quiet = 1 - active;
                if temps[q[active]] >= th.max_temp - th.toggle_proximity
                    && temps[q[active]] - temps[q[quiet]] > th.toggle_delta
                {
                    match domain {
                        ExecDomain::Int => {
                            p.int_mode = p.int_mode.flipped();
                            p.stats.int_toggles += 1;
                        }
                        ExecDomain::Fp => p.fp_mode = p.fp_mode.flipped(),
                    }
                    p.stats.toggles += 1;
                }
            }
        }

        // 3. Fine-grain unit turnoff with re-enable hysteresis.
        if self.cfg.alu_turnoff {
            for i in 0..N_UNITS {
                let block = self.unit_block(i);
                if p.unit_enabled[i] {
                    if temps[block] >= th.max_temp {
                        p.unit_enabled[i] = false;
                        p.stats.alu_turnoffs += 1;
                    }
                } else if temps[block] <= th.max_temp - th.reenable_margin {
                    p.unit_enabled[i] = true;
                }
            }
        }

        // 4. Register-file copy turnoff: the shutdown threshold sits
        //    RF_GUARD below critical unless the stale-copy solution gates
        //    writes instead.
        if self.cfg.rf_turnoff {
            let guard = if self.cfg.rf_stale_copy { 0.0 } else { RF_GUARD };
            for (copy, &block) in self.sensors.int_reg.iter().enumerate() {
                if p.copy_enabled[copy] {
                    if temps[block] >= th.max_temp - guard {
                        p.copy_enabled[copy] = false;
                        if self.cfg.rf_stale_copy {
                            p.writes_enabled[copy] = false;
                        }
                        p.stats.rf_turnoffs += 1;
                    }
                } else if temps[block] <= th.max_temp - th.reenable_margin {
                    p.copy_enabled[copy] = true;
                    if self.cfg.rf_stale_copy {
                        p.writes_enabled[copy] = true;
                    }
                }
            }
        }

        // 5. Temporal backstop, evaluated on the post-turnoff state.
        if self.needs_freeze(&p, temps) {
            p.frozen = true;
            p.frozen_until = Some(now + th.cooling_cycles);
            p.stats.freezes += 1;
        }
        p
    }

    fn reenable_cooled(&self, p: &mut SampleState, temps: &[f64]) {
        let limit = self.cfg.thresholds.max_temp - self.cfg.thresholds.reenable_margin;
        if self.cfg.alu_turnoff {
            for i in 0..N_UNITS {
                if !p.unit_enabled[i] && temps[self.unit_block(i)] <= limit {
                    p.unit_enabled[i] = true;
                }
            }
        }
        if self.cfg.rf_turnoff {
            for (copy, &b) in self.sensors.int_reg.iter().enumerate() {
                if !p.copy_enabled[copy] && temps[b] <= limit {
                    p.copy_enabled[copy] = true;
                    if self.cfg.rf_stale_copy {
                        p.writes_enabled[copy] = true;
                    }
                }
            }
        }
    }

    fn needs_freeze(&self, p: &SampleState, temps: &[f64]) -> bool {
        let max = self.cfg.thresholds.max_temp;
        for &b in self.sensors.int_q.iter().chain(self.sensors.fp_q.iter()) {
            if temps[b] >= max {
                return true;
            }
        }
        if self.cfg.alu_turnoff {
            let all_int_off = p.unit_enabled[..N_INT].iter().all(|&e| !e);
            let all_fp_off = p.unit_enabled[N_INT..N_INT + N_FP].iter().all(|&e| !e);
            if all_int_off || all_fp_off {
                return true;
            }
        } else {
            let hot_unit = self
                .sensors
                .int_alus
                .iter()
                .chain(self.sensors.fp_adders.iter())
                .chain(std::iter::once(&self.sensors.fp_mul))
                .any(|&b| temps[b] >= max);
            if hot_unit {
                return true;
            }
        }
        if self.cfg.rf_turnoff {
            if p.copy_enabled.iter().all(|&e| !e) {
                return true;
            }
        } else if self.sensors.int_reg.iter().any(|&b| temps[b] >= max) {
            return true;
        }
        false
    }

    fn unit_block(&self, i: usize) -> usize {
        if i < N_INT {
            self.sensors.int_alus[i]
        } else if i < N_INT + N_FP {
            self.sensors.fp_adders[i - N_INT]
        } else {
            self.sensors.fp_mul
        }
    }

    fn compare(&self, predicted: &SampleState, observed: &SampleState, now: u64, sink: &mut Sink) {
        if predicted == observed {
            return;
        }
        if observed.int_mode != predicted.int_mode || observed.fp_mode != predicted.fp_mode {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "toggle decision diverged from the hysteresis rules: modes \
                     (int {:?}, fp {:?}) vs predicted (int {:?}, fp {:?})",
                    observed.int_mode, observed.fp_mode, predicted.int_mode, predicted.fp_mode
                ),
            );
        }
        for i in 0..N_UNITS {
            if observed.unit_enabled[i] != predicted.unit_enabled[i] {
                let (kind, idx) = unit_at(i);
                sink.report(
                    ViolationKind::Mitigation,
                    now,
                    format!(
                        "{kind:?} {idx} enable is {} but the turnoff thresholds predict {}",
                        observed.unit_enabled[i], predicted.unit_enabled[i]
                    ),
                );
            }
        }
        for c in 0..N_COPIES {
            if observed.copy_enabled[c] != predicted.copy_enabled[c] {
                sink.report(
                    ViolationKind::Mitigation,
                    now,
                    format!(
                        "RF copy {c} enable is {} but the guard-band thresholds predict {}",
                        observed.copy_enabled[c], predicted.copy_enabled[c]
                    ),
                );
            }
            if observed.writes_enabled[c] != predicted.writes_enabled[c] {
                sink.report(
                    ViolationKind::Mitigation,
                    now,
                    format!(
                        "RF copy {c} write gating is {} but the stale-copy rules predict {}",
                        observed.writes_enabled[c], predicted.writes_enabled[c]
                    ),
                );
            }
        }
        if observed.frozen != predicted.frozen || observed.frozen_until != predicted.frozen_until {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "temporal stall diverged: frozen {} until {:?}, predicted {} until {:?}",
                    observed.frozen,
                    observed.frozen_until,
                    predicted.frozen,
                    predicted.frozen_until
                ),
            );
        }
        if observed.stats != predicted.stats {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "event counters diverged: observed {:?}, predicted {:?}",
                    observed.stats, predicted.stats
                ),
            );
        }
    }
}

fn unit_at(i: usize) -> (UnitKind, usize) {
    if i < N_INT {
        (UnitKind::IntAlu, i)
    } else if i < N_INT + N_FP {
        (UnitKind::FpAdd, i - N_INT)
    } else {
        (UnitKind::FpMul, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::ev6;
    use powerbalance_uarch::CoreConfig;

    fn setup(
        cfg: MitigationConfig,
    ) -> (MitigationWatch, ThermalManager, Core, Vec<f64>, Floorplan) {
        let plan = ev6::baseline();
        let watch = MitigationWatch::new(&plan, &cfg).expect("ev6 sensor blocks");
        let manager = ThermalManager::new(cfg, Sensors::new(&plan).expect("ev6 sensor blocks"));
        let core = Core::new(CoreConfig::default()).expect("valid config");
        let temps = vec![340.0; plan.blocks().len()];
        (watch, manager, core, temps, plan)
    }

    fn active_tail() -> IqActivity {
        let mut a = IqActivity::default();
        a.compact_moves[1] = 500;
        a.mux_selects[1] = 500;
        a
    }

    /// One checked sample: capture, run the real manager, compare.
    fn checked_sample(
        watch: &mut MitigationWatch,
        manager: &mut ThermalManager,
        core: &mut Core,
        temps: &[f64],
        now: u64,
        sink: &mut Sink,
    ) {
        let act = active_tail();
        watch.before_sample(core, manager);
        manager.on_sample(core, temps, now, &act, &act);
        watch.after_sample(core, manager, temps, now, &act, &act, sink);
    }

    #[test]
    fn mirror_agrees_through_a_mitigation_storm() {
        let (mut watch, mut manager, mut core, mut temps, plan) =
            setup(MitigationConfig::spatial_all());
        let mut sink = Sink::default();
        let hot = |plan: &Floorplan, name: &str| plan.index_of(name).expect("block");

        // Cool chip → hot queue half (toggle) → hot ALUs (turnoff) → hot
        // RF copies → everything critical (freeze) → cooldown (re-enable
        // during the stall) → thaw.
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 0, &mut sink);
        temps[hot(&plan, "IntQ1")] = 356.8;
        temps[hot(&plan, "IntQ0")] = 355.9;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 10_000, &mut sink);
        temps[hot(&plan, "IntExec0")] = 358.4;
        temps[hot(&plan, "IntExec3")] = 358.1;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 20_000, &mut sink);
        temps[hot(&plan, "IntReg0")] = 357.9;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 30_000, &mut sink);
        for i in 0..6 {
            temps[hot(&plan, &format!("IntExec{i}"))] = 358.2;
        }
        temps[hot(&plan, "IntQ1")] = 358.6; // queue half over the limit: freeze
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 40_000, &mut sink);
        assert!(core.is_frozen(), "queue half over the limit must freeze");
        temps.fill(340.0);
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 60_000, &mut sink);
        assert!(core.is_frozen(), "stall lasts the full cooling time");
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 200_000, &mut sink);
        assert!(!core.is_frozen(), "stall expired");
        assert_eq!(sink.total, 0, "mirror diverged: {:?}", sink.violations);
    }

    #[test]
    fn mirror_agrees_for_stale_copy_solution() {
        let mut cfg = MitigationConfig::rf_turnoff_only();
        cfg.rf_stale_copy = true;
        let (mut watch, mut manager, mut core, mut temps, plan) = setup(cfg);
        let mut sink = Sink::default();
        let r0 = plan.index_of("IntReg0").expect("block");
        temps[r0] = 358.0;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 0, &mut sink);
        assert!(!core.rf_copy_writes_enabled(0), "stale-copy solution gates writes");
        temps[r0] = 356.0;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 10_000, &mut sink);
        assert!(core.rf_copy_writes_enabled(0));
        assert_eq!(sink.total, 0, "mirror diverged: {:?}", sink.violations);
    }

    #[test]
    fn tampered_unit_state_is_flagged() {
        let (mut watch, mut manager, mut core, temps, _) =
            setup(MitigationConfig::alu_turnoff_only());
        let mut sink = Sink::default();
        let act = active_tail();
        watch.before_sample(&core, &manager);
        manager.on_sample(&mut core, &temps, 0, &act, &act);
        // A cool chip justifies no turnoff; fake one behind the manager's
        // back — the mirror must notice.
        core.set_unit_enabled(UnitKind::IntAlu, 2, false);
        watch.after_sample(&core, &manager, &temps, 0, &act, &act, &mut sink);
        assert!(sink.total > 0, "spurious turnoff must be flagged");
    }

    #[test]
    fn sub_threshold_toggle_is_flagged() {
        let (mut watch, mut manager, mut core, mut temps, plan) =
            setup(MitigationConfig::toggling_only());
        let mut sink = Sink::default();
        // 0.4 K delta: under the 0.5 K hysteresis threshold, so the
        // manager must not toggle — and the mirror flags it if the mode
        // flips anyway.
        temps[plan.index_of("IntQ1").expect("block")] = 356.9;
        temps[plan.index_of("IntQ0").expect("block")] = 356.5;
        let act = active_tail();
        watch.before_sample(&core, &manager);
        manager.on_sample(&mut core, &temps, 0, &act, &act);
        core.set_iq_mode(ExecDomain::Int, IqMode::Toggled); // fake a toggle
        watch.after_sample(&core, &manager, &temps, 0, &act, &act, &mut sink);
        assert!(sink.total > 0, "sub-threshold toggle must be flagged");
    }
}

//! Differential mirror of the mitigation manager.
//!
//! [`MitigationWatch`] re-implements every [`ThermalManager`] policy's
//! decision rules (toggling hysteresis, turnoff/re-enable thresholds with
//! the register-file guard band, the temporal-freeze backstop, and the
//! global ladders: DVFS operating points with transition stalls, fetch
//! gating, clock throttling) independently from the same inputs, and
//! compares *every* externally visible effect of `on_sample` —
//! issue-queue modes, unit and copy enables, write gating, the freeze
//! flag and deadline, ladder positions, fetch/clock duties, and the event
//! counters — against its own prediction. Because the manager is
//! deterministic, the comparison is bidirectional: a missed transition and
//! a spurious transition are both divergences. This is what pins the
//! paper's 0.5 K toggle hysteresis, the turnoff re-enable margins, and
//! the per-policy trip/clear hysteresis: any drift in either
//! implementation breaks the agreement. The mirror deliberately does not
//! call the policy helpers (`TripTable::tripped` and friends) — it walks
//! the trip points with its own loops so a bug in those helpers cannot
//! hide in both implementations.

use crate::{Sink, ViolationKind};
use powerbalance_isa::ExecDomain;
use powerbalance_mitigation::{
    DvfsParams, GateParams, GlobalPolicy, ManagerState, MitigationConfig, MitigationStats,
    PolicyState, Sensors, ThermalManager, TripSeverity, TripTable, RF_GUARD,
};
use powerbalance_thermal::Floorplan;
use powerbalance_uarch::{Core, DutyCycle, IqActivity, IqMode, UnitKind};

const N_INT: usize = 6;
const N_FP: usize = 4;
/// Unit order matches the manager's walk: 6 integer ALUs, 4 FP adders,
/// then the FP multiplier.
const N_UNITS: usize = N_INT + N_FP + 1;
const N_COPIES: usize = 2;

/// Manager-visible machine state at a sample boundary; also the shape of
/// the mirror's prediction.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SampleState {
    frozen: bool,
    frozen_until: Option<u64>,
    stats: MitigationStats,
    int_mode: IqMode,
    fp_mode: IqMode,
    unit_enabled: [bool; N_UNITS],
    copy_enabled: [bool; N_COPIES],
    writes_enabled: [bool; N_COPIES],
    policy: PolicyState,
    fetch_duty: DutyCycle,
    clock_duty: DutyCycle,
}

/// The mitigation-layer differential checker.
#[derive(Debug)]
pub(crate) struct MitigationWatch {
    cfg: MitigationConfig,
    sensors: Sensors,
    pre: Option<SampleState>,
}

impl MitigationWatch {
    pub(crate) fn new(plan: &Floorplan, cfg: &MitigationConfig) -> Result<Self, String> {
        Ok(MitigationWatch { cfg: *cfg, sensors: Sensors::new(plan)?, pre: None })
    }

    fn capture(&self, core: &Core, manager: &ThermalManager) -> SampleState {
        let ManagerState { stats, frozen_until, policy } = manager.snapshot();
        let mut s = SampleState {
            frozen: core.is_frozen(),
            frozen_until,
            stats,
            int_mode: core.iq_mode(ExecDomain::Int),
            fp_mode: core.iq_mode(ExecDomain::Fp),
            unit_enabled: [true; N_UNITS],
            copy_enabled: [true; N_COPIES],
            writes_enabled: [true; N_COPIES],
            policy,
            fetch_duty: core.fetch_duty(),
            clock_duty: core.clock_duty(),
        };
        // Unit/copy state is only queried for configs that can change it:
        // those configs force the full 6/4/2 geometry the sensors assume,
        // so the indices are always in range.
        if self.cfg.alu_turnoff {
            for i in 0..N_UNITS {
                let (kind, idx) = unit_at(i);
                s.unit_enabled[i] = core.unit_enabled(kind, idx);
            }
        }
        if self.cfg.rf_turnoff {
            for c in 0..N_COPIES {
                s.copy_enabled[c] = core.rf_copy_enabled(c);
                s.writes_enabled[c] = core.rf_copy_writes_enabled(c);
            }
        }
        s
    }

    pub(crate) fn before_sample(&mut self, core: &Core, manager: &ThermalManager) {
        self.pre = Some(self.capture(core, manager));
    }

    #[allow(clippy::too_many_arguments)]
    pub(crate) fn after_sample(
        &mut self,
        core: &Core,
        manager: &ThermalManager,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
        sink: &mut Sink,
    ) {
        let Some(pre) = self.pre.take() else { return };
        let predicted = self.predict(pre, temps, now, int_iq, fp_iq);
        let observed = self.capture(core, manager);
        self.compare(&predicted, &observed, now, sink);
    }

    /// Replays the active policy's decision steps on the pre-sample state.
    fn predict(
        &self,
        pre: SampleState,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) -> SampleState {
        let spatial = self.cfg.activity_toggling || self.cfg.alu_turnoff || self.cfg.rf_turnoff;
        match (&self.cfg.global, spatial) {
            (GlobalPolicy::None, _) => self.predict_spatial(pre, temps, now, int_iq, fp_iq),
            (_, false) => self.predict_global(pre, temps, now),
            (_, true) => self.predict_combined(pre, temps, now, int_iq, fp_iq),
        }
    }

    /// The original five-step spatial control loop.
    fn predict_spatial(
        &self,
        pre: SampleState,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) -> SampleState {
        let th = self.cfg.thresholds;
        let mut p = pre;

        // 1. Ongoing temporal stall: only cooled resources come back.
        if let Some(until) = p.frozen_until {
            if now < until {
                self.reenable_cooled(&mut p, temps);
                return p;
            }
            p.frozen_until = None;
            p.frozen = false;
        }

        // 2–4. The spatial techniques.
        self.predict_techniques(&mut p, temps, int_iq, fp_iq);

        // 5. Temporal backstop, evaluated on the post-turnoff state.
        if self.needs_freeze(&p, temps) {
            p.frozen = true;
            p.frozen_until = Some(now + th.cooling_cycles);
            p.stats.freezes += 1;
        }
        p
    }

    /// Steps 2–4: toggling, unit turnoff, register-file copy turnoff.
    fn predict_techniques(
        &self,
        p: &mut SampleState,
        temps: &[f64],
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) {
        let th = self.cfg.thresholds;

        // 2. Activity toggling with the 0.5 K hysteresis threshold.
        if self.cfg.activity_toggling {
            for (domain, q, act) in [
                (ExecDomain::Int, self.sensors.int_q, int_iq),
                (ExecDomain::Fp, self.sensors.fp_q, fp_iq),
            ] {
                let moves = [
                    act.compact_moves[0] + act.mux_selects[0],
                    act.compact_moves[1] + act.mux_selects[1],
                ];
                if moves[0] + moves[1] == 0 {
                    continue;
                }
                let active = usize::from(moves[1] > moves[0]);
                let quiet = 1 - active;
                if temps[q[active]] >= th.max_temp - th.toggle_proximity
                    && temps[q[active]] - temps[q[quiet]] > th.toggle_delta
                {
                    match domain {
                        ExecDomain::Int => {
                            p.int_mode = p.int_mode.flipped();
                            p.stats.int_toggles += 1;
                        }
                        ExecDomain::Fp => p.fp_mode = p.fp_mode.flipped(),
                    }
                    p.stats.toggles += 1;
                }
            }
        }

        // 3. Fine-grain unit turnoff with re-enable hysteresis.
        if self.cfg.alu_turnoff {
            for i in 0..N_UNITS {
                let block = self.unit_block(i);
                if p.unit_enabled[i] {
                    if temps[block] >= th.max_temp {
                        p.unit_enabled[i] = false;
                        p.stats.alu_turnoffs += 1;
                    }
                } else if temps[block] <= th.max_temp - th.reenable_margin {
                    p.unit_enabled[i] = true;
                }
            }
        }

        // 4. Register-file copy turnoff: the shutdown threshold sits
        //    RF_GUARD below critical unless the stale-copy solution gates
        //    writes instead.
        if self.cfg.rf_turnoff {
            let guard = if self.cfg.rf_stale_copy { 0.0 } else { RF_GUARD };
            for (copy, &block) in self.sensors.int_reg.iter().enumerate() {
                if p.copy_enabled[copy] {
                    if temps[block] >= th.max_temp - guard {
                        p.copy_enabled[copy] = false;
                        if self.cfg.rf_stale_copy {
                            p.writes_enabled[copy] = false;
                        }
                        p.stats.rf_turnoffs += 1;
                    }
                } else if temps[block] <= th.max_temp - th.reenable_margin {
                    p.copy_enabled[copy] = true;
                    if self.cfg.rf_stale_copy {
                        p.writes_enabled[copy] = true;
                    }
                }
            }
        }
    }

    /// The global ladder baselines: freeze/stall handling, critical-trip
    /// freeze, then one ladder step on the hottest sensor reading.
    fn predict_global(&self, pre: SampleState, temps: &[f64], now: u64) -> SampleState {
        let mut p = pre;
        if self.handle_frozen_or_stalled(&mut p, now) {
            return p;
        }
        let hottest = self.hottest(temps);
        if self.critical_tripped(hottest) {
            p.frozen = true;
            p.frozen_until = Some(now + self.cfg.thresholds.cooling_cycles);
            p.stats.freezes += 1;
            return p;
        }
        self.predict_ladder_step(&mut p, hottest, now);
        p
    }

    /// Spatial techniques plus a global ladder with one shared backstop.
    fn predict_combined(
        &self,
        pre: SampleState,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) -> SampleState {
        let mut p = pre;
        if self.handle_frozen_or_stalled(&mut p, now) {
            self.reenable_cooled(&mut p, temps);
            return p;
        }
        self.predict_techniques(&mut p, temps, int_iq, fp_iq);
        let hottest = self.hottest(temps);
        if self.needs_freeze(&p, temps) || self.critical_tripped(hottest) {
            p.frozen = true;
            p.frozen_until = Some(now + self.cfg.thresholds.cooling_cycles);
            p.stats.freezes += 1;
            return p;
        }
        self.predict_ladder_step(&mut p, hottest, now);
        p
    }

    /// Returns `true` while a freeze or transition stall is still in
    /// effect; clears both when the later deadline has passed.
    fn handle_frozen_or_stalled(&self, p: &mut SampleState, now: u64) -> bool {
        let until = match (p.frozen_until, p.policy.stall_until) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        if let Some(u) = until {
            if now < u {
                return true;
            }
            p.frozen = false;
            p.frozen_until = None;
            p.policy.stall_until = None;
        }
        false
    }

    /// Hottest reading across the monitored blocks (the mirror's own walk,
    /// not the zones iterator).
    fn hottest(&self, temps: &[f64]) -> f64 {
        let s = &self.sensors;
        s.int_q
            .iter()
            .chain(s.fp_q.iter())
            .chain(s.int_alus.iter())
            .chain(s.fp_adders.iter())
            .chain(std::iter::once(&s.fp_mul))
            .chain(s.int_reg.iter())
            .map(|&b| temps[b])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn global_trips(&self) -> Option<&TripTable> {
        match &self.cfg.global {
            GlobalPolicy::None => None,
            GlobalPolicy::Dvfs(DvfsParams { trips, .. })
            | GlobalPolicy::FetchGate(GateParams { trips, .. })
            | GlobalPolicy::ClockThrottle(GateParams { trips, .. }) => Some(trips),
        }
    }

    fn critical_tripped(&self, hottest: f64) -> bool {
        self.global_trips().is_some_and(|trips| {
            trips
                .points()
                .iter()
                .any(|pt| pt.severity == TripSeverity::Critical && hottest >= pt.temp)
        })
    }

    /// One ladder step, mirroring the policy's trip/clear hysteresis:
    /// any tripped point steps down, every non-critical point cleared
    /// steps back up.
    fn predict_ladder_step(&self, p: &mut SampleState, hottest: f64, now: u64) {
        let Some(trips) = self.global_trips() else { return };
        let tripped = trips.points().iter().any(|pt| hottest >= pt.temp);
        let all_clear = trips
            .points()
            .iter()
            .filter(|pt| pt.severity != TripSeverity::Critical)
            .all(|pt| hottest <= pt.clear_temp);
        match &self.cfg.global {
            GlobalPolicy::None => {}
            GlobalPolicy::Dvfs(dp) => {
                let level = if tripped && p.policy.opp_level + 1 < dp.ladder.len() {
                    p.policy.opp_level + 1
                } else if !tripped && all_clear && p.policy.opp_level > 0 {
                    p.policy.opp_level - 1
                } else {
                    return;
                };
                p.policy.opp_level = level;
                p.clock_duty = dp.ladder.level(level).duty;
                p.stats.opp_transitions += 1;
                p.policy.stall_until = Some(now + dp.transition_cycles);
                p.frozen = true;
            }
            GlobalPolicy::FetchGate(gp) | GlobalPolicy::ClockThrottle(gp) => {
                let level = if tripped && p.policy.gate_level + 1 < gp.ladder.len() {
                    p.policy.gate_level + 1
                } else if !tripped && all_clear && p.policy.gate_level > 0 {
                    p.policy.gate_level - 1
                } else {
                    return;
                };
                p.policy.gate_level = level;
                let duty = gp.ladder.level(level);
                if matches!(self.cfg.global, GlobalPolicy::FetchGate(_)) {
                    p.fetch_duty = duty;
                } else {
                    p.clock_duty = duty;
                }
                p.stats.duty_shifts += 1;
            }
        }
    }

    fn reenable_cooled(&self, p: &mut SampleState, temps: &[f64]) {
        let limit = self.cfg.thresholds.max_temp - self.cfg.thresholds.reenable_margin;
        if self.cfg.alu_turnoff {
            for i in 0..N_UNITS {
                if !p.unit_enabled[i] && temps[self.unit_block(i)] <= limit {
                    p.unit_enabled[i] = true;
                }
            }
        }
        if self.cfg.rf_turnoff {
            for (copy, &b) in self.sensors.int_reg.iter().enumerate() {
                if !p.copy_enabled[copy] && temps[b] <= limit {
                    p.copy_enabled[copy] = true;
                    if self.cfg.rf_stale_copy {
                        p.writes_enabled[copy] = true;
                    }
                }
            }
        }
    }

    fn needs_freeze(&self, p: &SampleState, temps: &[f64]) -> bool {
        let max = self.cfg.thresholds.max_temp;
        for &b in self.sensors.int_q.iter().chain(self.sensors.fp_q.iter()) {
            if temps[b] >= max {
                return true;
            }
        }
        if self.cfg.alu_turnoff {
            let all_int_off = p.unit_enabled[..N_INT].iter().all(|&e| !e);
            let all_fp_off = p.unit_enabled[N_INT..N_INT + N_FP].iter().all(|&e| !e);
            if all_int_off || all_fp_off {
                return true;
            }
        } else {
            let hot_unit = self
                .sensors
                .int_alus
                .iter()
                .chain(self.sensors.fp_adders.iter())
                .chain(std::iter::once(&self.sensors.fp_mul))
                .any(|&b| temps[b] >= max);
            if hot_unit {
                return true;
            }
        }
        if self.cfg.rf_turnoff {
            if p.copy_enabled.iter().all(|&e| !e) {
                return true;
            }
        } else if self.sensors.int_reg.iter().any(|&b| temps[b] >= max) {
            return true;
        }
        false
    }

    fn unit_block(&self, i: usize) -> usize {
        if i < N_INT {
            self.sensors.int_alus[i]
        } else if i < N_INT + N_FP {
            self.sensors.fp_adders[i - N_INT]
        } else {
            self.sensors.fp_mul
        }
    }

    fn compare(&self, predicted: &SampleState, observed: &SampleState, now: u64, sink: &mut Sink) {
        if predicted == observed {
            return;
        }
        if observed.int_mode != predicted.int_mode || observed.fp_mode != predicted.fp_mode {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "toggle decision diverged from the hysteresis rules: modes \
                     (int {:?}, fp {:?}) vs predicted (int {:?}, fp {:?})",
                    observed.int_mode, observed.fp_mode, predicted.int_mode, predicted.fp_mode
                ),
            );
        }
        for i in 0..N_UNITS {
            if observed.unit_enabled[i] != predicted.unit_enabled[i] {
                let (kind, idx) = unit_at(i);
                sink.report(
                    ViolationKind::Mitigation,
                    now,
                    format!(
                        "{kind:?} {idx} enable is {} but the turnoff thresholds predict {}",
                        observed.unit_enabled[i], predicted.unit_enabled[i]
                    ),
                );
            }
        }
        for c in 0..N_COPIES {
            if observed.copy_enabled[c] != predicted.copy_enabled[c] {
                sink.report(
                    ViolationKind::Mitigation,
                    now,
                    format!(
                        "RF copy {c} enable is {} but the guard-band thresholds predict {}",
                        observed.copy_enabled[c], predicted.copy_enabled[c]
                    ),
                );
            }
            if observed.writes_enabled[c] != predicted.writes_enabled[c] {
                sink.report(
                    ViolationKind::Mitigation,
                    now,
                    format!(
                        "RF copy {c} write gating is {} but the stale-copy rules predict {}",
                        observed.writes_enabled[c], predicted.writes_enabled[c]
                    ),
                );
            }
        }
        if observed.frozen != predicted.frozen || observed.frozen_until != predicted.frozen_until {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "temporal stall diverged: frozen {} until {:?}, predicted {} until {:?}",
                    observed.frozen,
                    observed.frozen_until,
                    predicted.frozen,
                    predicted.frozen_until
                ),
            );
        }
        if observed.policy != predicted.policy {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "ladder state diverged from the trip/clear hysteresis: observed {:?}, \
                     predicted {:?}",
                    observed.policy, predicted.policy
                ),
            );
        }
        if observed.fetch_duty != predicted.fetch_duty
            || observed.clock_duty != predicted.clock_duty
        {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "applied duty diverged: fetch {:?} / clock {:?}, predicted fetch {:?} / \
                     clock {:?}",
                    observed.fetch_duty,
                    observed.clock_duty,
                    predicted.fetch_duty,
                    predicted.clock_duty
                ),
            );
        }
        if observed.stats != predicted.stats {
            sink.report(
                ViolationKind::Mitigation,
                now,
                format!(
                    "event counters diverged: observed {:?}, predicted {:?}",
                    observed.stats, predicted.stats
                ),
            );
        }
    }
}

fn unit_at(i: usize) -> (UnitKind, usize) {
    if i < N_INT {
        (UnitKind::IntAlu, i)
    } else if i < N_INT + N_FP {
        (UnitKind::FpAdd, i - N_INT)
    } else {
        (UnitKind::FpMul, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::ev6;
    use powerbalance_uarch::CoreConfig;

    fn setup(
        cfg: MitigationConfig,
    ) -> (MitigationWatch, ThermalManager, Core, Vec<f64>, Floorplan) {
        let plan = ev6::baseline();
        let watch = MitigationWatch::new(&plan, &cfg).expect("ev6 sensor blocks");
        let manager = ThermalManager::new(cfg, Sensors::new(&plan).expect("ev6 sensor blocks"));
        let core = Core::new(CoreConfig::default()).expect("valid config");
        let temps = vec![340.0; plan.blocks().len()];
        (watch, manager, core, temps, plan)
    }

    fn active_tail() -> IqActivity {
        let mut a = IqActivity::default();
        a.compact_moves[1] = 500;
        a.mux_selects[1] = 500;
        a
    }

    /// One checked sample: capture, run the real manager, compare.
    fn checked_sample(
        watch: &mut MitigationWatch,
        manager: &mut ThermalManager,
        core: &mut Core,
        temps: &[f64],
        now: u64,
        sink: &mut Sink,
    ) {
        let act = active_tail();
        watch.before_sample(core, manager);
        manager.on_sample(core, temps, now, &act, &act);
        watch.after_sample(core, manager, temps, now, &act, &act, sink);
    }

    #[test]
    fn mirror_agrees_through_a_mitigation_storm() {
        let (mut watch, mut manager, mut core, mut temps, plan) =
            setup(MitigationConfig::spatial_all());
        let mut sink = Sink::default();
        let hot = |plan: &Floorplan, name: &str| plan.index_of(name).expect("block");

        // Cool chip → hot queue half (toggle) → hot ALUs (turnoff) → hot
        // RF copies → everything critical (freeze) → cooldown (re-enable
        // during the stall) → thaw.
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 0, &mut sink);
        temps[hot(&plan, "IntQ1")] = 356.8;
        temps[hot(&plan, "IntQ0")] = 355.9;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 10_000, &mut sink);
        temps[hot(&plan, "IntExec0")] = 358.4;
        temps[hot(&plan, "IntExec3")] = 358.1;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 20_000, &mut sink);
        temps[hot(&plan, "IntReg0")] = 357.9;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 30_000, &mut sink);
        for i in 0..6 {
            temps[hot(&plan, &format!("IntExec{i}"))] = 358.2;
        }
        temps[hot(&plan, "IntQ1")] = 358.6; // queue half over the limit: freeze
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 40_000, &mut sink);
        assert!(core.is_frozen(), "queue half over the limit must freeze");
        temps.fill(340.0);
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 60_000, &mut sink);
        assert!(core.is_frozen(), "stall lasts the full cooling time");
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 200_000, &mut sink);
        assert!(!core.is_frozen(), "stall expired");
        assert_eq!(sink.total, 0, "mirror diverged: {:?}", sink.violations);
    }

    #[test]
    fn mirror_agrees_for_stale_copy_solution() {
        let mut cfg = MitigationConfig::rf_turnoff_only();
        cfg.rf_stale_copy = true;
        let (mut watch, mut manager, mut core, mut temps, plan) = setup(cfg);
        let mut sink = Sink::default();
        let r0 = plan.index_of("IntReg0").expect("block");
        temps[r0] = 358.0;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 0, &mut sink);
        assert!(!core.rf_copy_writes_enabled(0), "stale-copy solution gates writes");
        temps[r0] = 356.0;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 10_000, &mut sink);
        assert!(core.rf_copy_writes_enabled(0));
        assert_eq!(sink.total, 0, "mirror diverged: {:?}", sink.violations);
    }

    #[test]
    fn tampered_unit_state_is_flagged() {
        let (mut watch, mut manager, mut core, temps, _) =
            setup(MitigationConfig::alu_turnoff_only());
        let mut sink = Sink::default();
        let act = active_tail();
        watch.before_sample(&core, &manager);
        manager.on_sample(&mut core, &temps, 0, &act, &act);
        // A cool chip justifies no turnoff; fake one behind the manager's
        // back — the mirror must notice.
        core.set_unit_enabled(UnitKind::IntAlu, 2, false);
        watch.after_sample(&core, &manager, &temps, 0, &act, &act, &mut sink);
        assert!(sink.total > 0, "spurious turnoff must be flagged");
    }

    #[test]
    fn mirror_agrees_for_dvfs_ladder() {
        let (mut watch, mut manager, mut core, mut temps, plan) = setup(MitigationConfig::dvfs());
        let mut sink = Sink::default();
        let a0 = plan.index_of("IntExec0").expect("block");

        // Passive trip: step down one OPP and stall for the transition.
        temps[a0] = 356.5;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 0, &mut sink);
        assert_eq!(manager.policy_state().opp_level, 1);
        assert!(core.is_frozen(), "transition stalls the core");
        assert_eq!(manager.stats().opp_transitions, 1);
        assert_eq!(manager.stats().freezes, 0, "a transition stall is not a thermal freeze");
        assert!((manager.dynamic_power_scale() - 0.95 * 0.95).abs() < 1e-12);

        // Mid-transition: nothing moves.
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 10_000, &mut sink);
        assert_eq!(manager.policy_state().opp_level, 1);

        // Transition over, still tripped: step down again.
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 50_000, &mut sink);
        assert_eq!(manager.policy_state().opp_level, 2);

        // Cooled below every clear temperature: step back up (after the
        // second transition completes).
        temps[a0] = 340.0;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 120_000, &mut sink);
        assert_eq!(manager.policy_state().opp_level, 1);

        // Critical trip freezes instead of stepping.
        temps[a0] = 358.5;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 250_000, &mut sink);
        assert_eq!(manager.stats().freezes, 1);
        assert!(core.is_frozen());
        assert_eq!(sink.total, 0, "mirror diverged: {:?}", sink.violations);
    }

    #[test]
    fn mirror_agrees_for_fetch_gating_and_clock_throttling() {
        for cfg in [MitigationConfig::fetch_gating(), MitigationConfig::clock_throttle()] {
            let (mut watch, mut manager, mut core, mut temps, plan) = setup(cfg);
            let mut sink = Sink::default();
            let q1 = plan.index_of("IntQ1").expect("block");

            temps[q1] = 356.2;
            checked_sample(&mut watch, &mut manager, &mut core, &temps, 0, &mut sink);
            assert_eq!(manager.policy_state().gate_level, 1);
            assert!(!core.is_frozen(), "duty changes are instantaneous");
            checked_sample(&mut watch, &mut manager, &mut core, &temps, 10_000, &mut sink);
            assert_eq!(manager.policy_state().gate_level, 2);

            // Hysteresis band: hold.
            temps[q1] = 355.5;
            checked_sample(&mut watch, &mut manager, &mut core, &temps, 20_000, &mut sink);
            assert_eq!(manager.policy_state().gate_level, 2);

            // Cleared: relax one level per sample.
            temps[q1] = 340.0;
            checked_sample(&mut watch, &mut manager, &mut core, &temps, 30_000, &mut sink);
            assert_eq!(manager.policy_state().gate_level, 1);
            checked_sample(&mut watch, &mut manager, &mut core, &temps, 40_000, &mut sink);
            assert_eq!(manager.policy_state().gate_level, 0);
            assert_eq!(manager.stats().duty_shifts, 4);
            assert_eq!(sink.total, 0, "mirror diverged: {:?}", sink.violations);
        }
    }

    #[test]
    fn mirror_agrees_for_combined_policy() {
        let (mut watch, mut manager, mut core, mut temps, plan) =
            setup(MitigationConfig::combined());
        let mut sink = Sink::default();
        let r0 = plan.index_of("IntReg0").expect("block");

        // A register copy inside the guard band (but below critical): the
        // spatial layer shuts it off; the ladder also sees the passive
        // trip and steps down one OPP.
        temps[r0] = 357.9;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 0, &mut sink);
        assert!(!core.rf_copy_enabled(0));
        assert_eq!(manager.stats().rf_turnoffs, 1);
        assert_eq!(manager.policy_state().opp_level, 1);
        assert!(core.is_frozen(), "OPP transition stalls the core");

        // Cool everything: the copy re-enables and the ladder relaxes.
        temps[r0] = 340.0;
        checked_sample(&mut watch, &mut manager, &mut core, &temps, 100_000, &mut sink);
        assert!(core.rf_copy_enabled(0));
        assert_eq!(manager.policy_state().opp_level, 0);
        assert_eq!(sink.total, 0, "mirror diverged: {:?}", sink.violations);
    }

    #[test]
    fn tampered_duty_is_flagged() {
        let (mut watch, mut manager, mut core, temps, _) = setup(MitigationConfig::fetch_gating());
        let mut sink = Sink::default();
        let act = active_tail();
        watch.before_sample(&core, &manager);
        manager.on_sample(&mut core, &temps, 0, &act, &act);
        // A cool chip justifies no gating; tighten the duty behind the
        // manager's back — the mirror must notice.
        core.set_fetch_duty(DutyCycle::new(1, 4));
        watch.after_sample(&core, &manager, &temps, 0, &act, &act, &mut sink);
        assert!(sink.total > 0, "spurious fetch gating must be flagged");
    }

    #[test]
    fn sub_threshold_toggle_is_flagged() {
        let (mut watch, mut manager, mut core, mut temps, plan) =
            setup(MitigationConfig::toggling_only());
        let mut sink = Sink::default();
        // 0.4 K delta: under the 0.5 K hysteresis threshold, so the
        // manager must not toggle — and the mirror flags it if the mode
        // flips anyway.
        temps[plan.index_of("IntQ1").expect("block")] = 356.9;
        temps[plan.index_of("IntQ0").expect("block")] = 356.5;
        let act = active_tail();
        watch.before_sample(&core, &manager);
        manager.on_sample(&mut core, &temps, 0, &act, &act);
        core.set_iq_mode(ExecDomain::Int, IqMode::Toggled); // fake a toggle
        watch.after_sample(&core, &manager, &temps, 0, &act, &act, &mut sink);
        assert!(sink.total > 0, "sub-threshold toggle must be flagged");
    }
}

//! Differential oracle and runtime invariant checkers.
//!
//! Every headline number in this reproduction rests on subtle
//! microarchitectural behaviour — compacting-queue age order, statically
//! prioritized select trees, turnoff-aware steering — that an optimization
//! bug could silently corrupt while still producing plausible-looking
//! temperatures. This crate makes those behaviours mechanically falsifiable
//! with three independent layers (DESIGN.md §10):
//!
//! * an **architectural oracle** ([`oracle`]): an in-order reference
//!   executor over the same fetched micro-op stream that cross-checks the
//!   out-of-order core's retired-instruction count, retirement order, and
//!   final architectural register/memory state (tracked as *last-writer
//!   identity*, since micro-ops carry no data values);
//! * **runtime invariant checkers** on the pipeline, mitigation, and
//!   thermal layers ([`invariants`], [`mitigation`], [`thermal`]): FIFO
//!   retirement, issue-queue occupancy accounting, compaction age order,
//!   select trees never granting busy or turned-off units, mitigation
//!   transitions matching an independent re-implementation of the manager's
//!   hysteresis rules, and the RC thermal network satisfying its own
//!   discretized heat equation every step;
//! * a **facade** ([`RuntimeChecker`]) that the simulator drives behind its
//!   `check` feature, collecting bounded [`Violation`] reports instead of
//!   panicking so a fuzzer can shrink and replay failures.
//!
//! The checkers deliberately depend only on the layer crates (`isa`,
//! `uarch`, `thermal`, `mitigation`) — never on `powerbalance` itself — so
//! the simulator can depend on them without a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crosscore;
mod invariants;
mod mitigation;
mod oracle;
mod thermal;

use powerbalance_isa::MicroOp;
use powerbalance_mitigation::{MitigationConfig, ThermalManager};
use powerbalance_thermal::{Floorplan, ThermalModel};
use powerbalance_uarch::{Core, IqActivity};
use serde::{Deserialize, Serialize};

/// Which checker family produced a [`Violation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    /// Architectural oracle: retirement order/count or final state diverged.
    Oracle,
    /// Issue-queue occupancy or insert/issue accounting inconsistency.
    IqAccounting,
    /// Compaction or insertion broke issue-queue age order.
    IqOrder,
    /// A select tree granted a busy, turned-off, or unusable unit.
    Select,
    /// A frozen core made forward progress.
    Frozen,
    /// A duty-cycle gate (fetch gating or clock throttling) was not honored.
    Duty,
    /// The mitigation manager diverged from its differential mirror.
    Mitigation,
    /// Thermal bounds or RC-network residual checks failed.
    Thermal,
    /// A multi-core die's per-core energy balance or lateral-coupling
    /// antisymmetry failed.
    CrossCoreEnergy,
}

/// One invariant failure, with enough context to diagnose it offline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Checker family.
    pub kind: ViolationKind,
    /// Core cycle at which the violation was detected.
    pub cycle: u64,
    /// Human-readable description with the observed and expected values.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[cycle {}] {:?}: {}", self.cycle, self.kind, self.detail)
    }
}

/// How many violation details are retained; beyond this only the total is
/// counted (one bad invariant can otherwise flood memory on a long run).
const MAX_RETAINED: usize = 64;

/// Collects violations from the individual checkers.
#[derive(Debug, Default)]
pub(crate) struct Sink {
    violations: Vec<Violation>,
    total: u64,
}

impl Sink {
    pub(crate) fn report(&mut self, kind: ViolationKind, cycle: u64, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_RETAINED {
            self.violations.push(Violation { kind, cycle, detail });
        }
    }
}

/// The combined checker the simulator drives behind its `check` feature.
///
/// Lifecycle per simulated cycle: [`before_cycle`](Self::before_cycle),
/// the core's own `cycle()`, then [`after_cycle`](Self::after_cycle). Per
/// sampling window: [`check_thermal`](Self::check_thermal) after the
/// thermal step/settle, and [`before_sample`](Self::before_sample) /
/// [`after_sample`](Self::after_sample) bracketing the mitigation
/// manager's `on_sample`. [`finish`](Self::finish) closes out the oracle.
///
/// Violations are collected, not panicked: a fuzz driver inspects
/// [`violations`](Self::violations) after the run and shrinks/replays.
#[derive(Debug)]
pub struct RuntimeChecker {
    sink: Sink,
    oracle: oracle::Oracle,
    core_watch: invariants::CoreWatch,
    mitigation_watch: mitigation::MitigationWatch,
    thermal_watch: thermal::ThermalWatch,
    /// Cross-core invariants; armed only on multi-core dies
    /// ([`enable_crosscore`](Self::enable_crosscore)).
    crosscore_watch: Option<crosscore::CrossCoreWatch>,
    // Scratch buffers for draining the core's op logs without allocating.
    fetched: Vec<MicroOp>,
    committed: Vec<(u64, MicroOp)>,
}

impl RuntimeChecker {
    /// Builds a checker against the given floorplan/mitigation config and
    /// the *current* state of the core and thermal model (so it can be
    /// enabled mid-run, e.g. after a warm-start restore).
    ///
    /// The caller must also call `Core::enable_op_log` so the oracle sees
    /// the fetch/retire streams.
    ///
    /// # Errors
    ///
    /// Returns an error if the floorplan lacks the sensor blocks the
    /// mitigation mirror needs.
    pub fn new(
        plan: &Floorplan,
        mitigation: &MitigationConfig,
        core: &Core,
        thermal: &ThermalModel,
    ) -> Result<Self, String> {
        Ok(RuntimeChecker {
            sink: Sink::default(),
            oracle: oracle::Oracle::new(core),
            core_watch: invariants::CoreWatch::new(core),
            mitigation_watch: mitigation::MitigationWatch::new(plan, mitigation)?,
            thermal_watch: thermal::ThermalWatch::new(thermal),
            crosscore_watch: None,
            fetched: Vec::new(),
            committed: Vec::new(),
        })
    }

    /// Arms the cross-core invariants for a multi-core die of `cores`
    /// copies of a `blocks`-block floorplan (nodes core-major). Checks
    /// the static conductance symmetry immediately and the per-core
    /// energy balance plus lateral-flow antisymmetry on every subsequent
    /// [`check_thermal`](Self::check_thermal).
    pub fn enable_crosscore(&mut self, cores: usize, blocks: usize, thermal: &ThermalModel) {
        self.crosscore_watch =
            Some(crosscore::CrossCoreWatch::new(cores, blocks, thermal, &mut self.sink));
    }

    /// Captures the pre-cycle boundary state the invariants compare against.
    pub fn before_cycle(&mut self, core: &Core) {
        self.core_watch.before_cycle(core);
    }

    /// Drains the op logs into the oracle and runs the per-cycle pipeline
    /// invariants against the boundary captured by
    /// [`before_cycle`](Self::before_cycle).
    pub fn after_cycle(&mut self, core: &mut Core) {
        self.fetched.clear();
        self.committed.clear();
        core.drain_op_log_into(&mut self.fetched, &mut self.committed);
        let cycle = core.stats().cycles;
        self.oracle.on_cycle(cycle, &self.fetched, &self.committed, &mut self.sink);
        self.core_watch.after_cycle(core, &mut self.sink);
    }

    /// Captures the pre-sample manager/core state for the mitigation mirror.
    pub fn before_sample(&mut self, core: &Core, manager: &ThermalManager) {
        self.mitigation_watch.before_sample(core, manager);
    }

    /// Replays the manager's decision rules on the captured pre-state and
    /// compares every post-sample effect (modes, enables, freeze, stats).
    pub fn after_sample(
        &mut self,
        core: &Core,
        manager: &ThermalManager,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) {
        self.mitigation_watch.after_sample(
            core,
            manager,
            temps,
            now,
            int_iq,
            fp_iq,
            &mut self.sink,
        );
    }

    /// Verifies the thermal solve that just ran: bounds, the backward-Euler
    /// step residual (or the steady-state residual when `settled`), and
    /// the package-level energy balance.
    pub fn check_thermal(
        &mut self,
        model: &ThermalModel,
        watts: &[f64],
        dt: f64,
        settled: bool,
        now: u64,
    ) {
        self.thermal_watch.check(model, watts, dt, settled, now, &mut self.sink);
        if let Some(crosscore) = &mut self.crosscore_watch {
            crosscore.check(model, watts, dt, settled, now, &mut self.sink);
        }
    }

    /// Re-bases the thermal watch on the model's current state after a
    /// closed-form advance (the interval engine's skipped sub-intervals),
    /// which the backward-Euler residual deliberately does not cover.
    pub fn resync_thermal(&mut self, model: &ThermalModel) {
        self.thermal_watch.resync(model);
        if let Some(crosscore) = &mut self.crosscore_watch {
            crosscore.resync(model);
        }
    }

    /// Closes out the oracle: end-of-run retirement counts and the final
    /// architectural-state comparison.
    pub fn finish(&mut self, core: &Core) {
        self.oracle.finish(core, &mut self.sink);
    }

    /// The retained violations (at most [`MAX_RETAINED`]), in detection order.
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.sink.violations
    }

    /// Total violations detected, including those beyond the retention cap.
    #[must_use]
    pub fn total_violations(&self) -> u64 {
        self.sink.total
    }

    /// `true` if no invariant has failed so far.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.sink.total == 0
    }
}

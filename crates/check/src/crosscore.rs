//! Cross-core thermal invariants for multi-core dies.
//!
//! A multi-core floorplan is N translated copies of the per-core block
//! layout with lateral RC coupling between adjacent copies. Two
//! invariants make that coupling mechanically falsifiable:
//!
//! * **Per-core energy balance.** For a symmetric Laplacian `G`, summing
//!   the backward-Euler rows over the nodes of one core makes every
//!   intra-core conduction term cancel pairwise, leaving the exact
//!   identity
//!
//!   `Σ_{i∈c} (P_i + A_i)  =  Σ_{i∈c} (C_i/Δt)·(T⁺_i − T_i)  +  F_c`
//!
//!   where `F_c = Σ_{i∈c, j∉c} g_ij·(T⁺_i − T⁺_j)` is the heat flowing
//!   out of core `c` into its neighbors and the package. The same
//!   identity with the storage term dropped holds for the steady-state
//!   solve. Any bookkeeping bug that misattributes power or temperature
//!   between cores breaks it at ~1e-2 relative, far above the LU solve's
//!   ~1e-13 noise floor.
//!
//! * **Lateral-coupling antisymmetry.** The heat flow from core A into
//!   core B, computed from A's own matrix rows, must equal the negation
//!   of the B→A flow computed independently from B's rows:
//!   `F(A→B) = −F(B→A)`. With a bitwise-symmetric `G` the per-edge terms
//!   are exact IEEE negations of each other, so the check runs at a tiny
//!   relative tolerance; an asymmetric stamp (one swapped index in the
//!   replication) shows up immediately.

use crate::{Sink, ViolationKind};
use powerbalance_thermal::ThermalModel;

/// Relative tolerance for the per-core energy balance: same rationale as
/// the node-level residual check (LU noise ~1e-13 of the row scale).
const BALANCE_RTOL: f64 = 1e-8;

/// Relative tolerance for flow antisymmetry. The two directions are
/// computed as exact IEEE negations when `G` is bitwise symmetric, so
/// this only has to absorb summation-order noise.
const SYMMETRY_RTOL: f64 = 1e-12;

/// The cross-core invariant checker. Armed only on multi-core dies.
#[derive(Debug)]
pub(crate) struct CrossCoreWatch {
    cores: usize,
    /// Floorplan blocks per core; node `i` belongs to core `i / blocks`
    /// when `i < cores * blocks`, otherwise to the package.
    blocks: usize,
    /// Node temperatures before the step being verified (the watch keeps
    /// its own copy so it stays independent of [`super::thermal`]).
    prev: Vec<f64>,
}

impl CrossCoreWatch {
    /// Builds the watch and checks the static matrix properties once:
    /// every cross-core conductance entry must be symmetric
    /// (`G[i,j] == G[j,i]`) and non-positive (off-diagonal Laplacian).
    pub(crate) fn new(cores: usize, blocks: usize, model: &ThermalModel, sink: &mut Sink) -> Self {
        let net = model.network();
        let n = net.node_count();
        let g = net.conductance();
        for i in 0..cores * blocks {
            for j in (i + 1)..cores * blocks {
                if i / blocks == j / blocks {
                    continue;
                }
                let gij = g[i * n + j];
                let gji = g[j * n + i];
                if gij.to_bits() != gji.to_bits() {
                    sink.report(
                        ViolationKind::CrossCoreEnergy,
                        0,
                        format!(
                            "cross-core conductance is asymmetric: G[{i},{j}] = {gij:e} \
                             but G[{j},{i}] = {gji:e}"
                        ),
                    );
                }
                if gij > 0.0 {
                    sink.report(
                        ViolationKind::CrossCoreEnergy,
                        0,
                        format!("cross-core conductance G[{i},{j}] = {gij:e} is positive"),
                    );
                }
            }
        }
        CrossCoreWatch { cores, blocks, prev: model.node_temperatures().to_vec() }
    }

    /// Re-bases on the model's current state (closed-form advances are
    /// outside the backward-Euler identity's reach).
    pub(crate) fn resync(&mut self, model: &ThermalModel) {
        self.prev.copy_from_slice(model.node_temperatures());
    }

    /// Heat flow out of the node set `lo..hi` into every node outside it,
    /// evaluated at `temps` using the rows of the nodes inside the set.
    fn outflow(g: &[f64], n: usize, temps: &[f64], lo: usize, hi: usize) -> f64 {
        let mut flow = 0.0;
        for i in lo..hi {
            let row = &g[i * n..(i + 1) * n];
            for (j, (&gij, &tj)) in row.iter().zip(temps).enumerate() {
                if j >= lo && j < hi {
                    continue;
                }
                // Off-diagonal Laplacian entries are −g_ij.
                flow += -gij * (temps[i] - tj);
            }
        }
        flow
    }

    /// Verifies the solve that just ran against the per-core energy
    /// balance and the pairwise flow antisymmetry. Mirrors the calling
    /// convention of the node-level thermal watch.
    pub(crate) fn check(
        &mut self,
        model: &ThermalModel,
        watts: &[f64],
        dt: f64,
        settled: bool,
        now: u64,
        sink: &mut Sink,
    ) {
        let net = model.network();
        let n = net.node_count();
        let temps = model.node_temperatures();
        let g = net.conductance();
        let c = net.capacitance();
        let amb = net.ambient_power();

        for core in 0..self.cores {
            let lo = core * self.blocks;
            let hi = lo + self.blocks;
            let injected: f64 =
                (lo..hi).map(|i| watts.get(i).copied().unwrap_or(0.0) + amb[i]).sum();
            let stored: f64 = if settled {
                0.0
            } else {
                (lo..hi).map(|i| c[i] / dt * (temps[i] - self.prev[i])).sum()
            };
            let flow = Self::outflow(g, n, temps, lo, hi);
            let residual = injected - stored - flow;
            let scale = injected.abs() + stored.abs() + flow.abs() + 1.0;
            if residual.abs() > BALANCE_RTOL * scale {
                sink.report(
                    ViolationKind::CrossCoreEnergy,
                    now,
                    format!(
                        "core {core} energy balance broken: {injected:.6} W injected, \
                         {stored:.6} W stored, {flow:.6} W flowed out \
                         (residual {residual:.3e}, tolerance {:.3e})",
                        BALANCE_RTOL * scale
                    ),
                );
            }
        }

        // Pairwise lateral flow must be antisymmetric: the A→B flow from
        // A's rows is the exact negation of the B→A flow from B's rows.
        for a in 0..self.cores {
            for b in (a + 1)..self.cores {
                let fwd = self.pair_flow(g, n, temps, a, b);
                let rev = self.pair_flow(g, n, temps, b, a);
                let scale = fwd.abs() + rev.abs() + 1.0;
                if (fwd + rev).abs() > SYMMETRY_RTOL * scale {
                    sink.report(
                        ViolationKind::CrossCoreEnergy,
                        now,
                        format!(
                            "lateral coupling is not antisymmetric: flow {a}→{b} is \
                             {fwd:e} W but {b}→{a} is {rev:e} W"
                        ),
                    );
                }
            }
        }

        self.prev.copy_from_slice(temps);
    }

    /// Heat flow from core `a` into core `b`, using core `a`'s rows.
    fn pair_flow(&self, g: &[f64], n: usize, temps: &[f64], a: usize, b: usize) -> f64 {
        let (alo, blo) = (a * self.blocks, b * self.blocks);
        let mut flow = 0.0;
        for i in alo..alo + self.blocks {
            let row = &g[i * n..(i + 1) * n];
            for j in blo..blo + self.blocks {
                flow += -row[j] * (temps[i] - temps[j]);
            }
        }
        flow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::{ev6, multicore, PackageConfig};

    fn die(cores: usize) -> (ThermalModel, usize) {
        let base = ev6::baseline();
        let blocks = base.blocks().len();
        let plan = multicore::replicate(&base, cores);
        (ThermalModel::new(&plan, PackageConfig::default()), blocks)
    }

    #[test]
    fn honest_steps_balance_per_core() {
        let (mut m, blocks) = die(3);
        let mut sink = Sink::default();
        let mut watch = CrossCoreWatch::new(3, blocks, &m, &mut sink);
        // Asymmetric load: core 0 hot, core 2 idle — real lateral flow.
        let mut watts = vec![0.1; m.block_count()];
        for w in watts.iter_mut().take(blocks) {
            *w = 3.0;
        }
        for step in 0..6 {
            m.step(&watts, 2.5e-6);
            watch.check(&m, &watts, 2.5e-6, false, step, &mut sink);
        }
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn steady_state_balances_per_core() {
        let (mut m, blocks) = die(2);
        let mut sink = Sink::default();
        let mut watch = CrossCoreWatch::new(2, blocks, &m, &mut sink);
        let mut watts = vec![0.5; m.block_count()];
        for w in watts.iter_mut().take(blocks) {
            *w = 2.5;
        }
        m.settle(&watts);
        watch.check(&m, &watts, 1.0, true, 0, &mut sink);
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }

    #[test]
    fn misattributed_power_breaks_a_core_balance() {
        let (mut m, blocks) = die(2);
        let mut sink = Sink::default();
        let mut watch = CrossCoreWatch::new(2, blocks, &m, &mut sink);
        let watts = vec![1.0; m.block_count()];
        m.step(&watts, 2.5e-6);
        // Claim core 1's power went to core 0: per-core balances must
        // break even though the *total* (package-level) balance holds.
        let mut wrong = watts.clone();
        for i in 0..blocks {
            wrong[i] += wrong[blocks + i];
            wrong[blocks + i] = 0.0;
        }
        watch.check(&m, &wrong, 2.5e-6, false, 0, &mut sink);
        assert!(
            sink.violations.iter().any(|v| v.kind == ViolationKind::CrossCoreEnergy),
            "misattributed power must break the per-core balance"
        );
    }

    #[test]
    fn tampered_cross_core_temperature_is_flagged() {
        let (mut m, blocks) = die(2);
        let mut sink = Sink::default();
        let mut watch = CrossCoreWatch::new(2, blocks, &m, &mut sink);
        let watts = vec![1.0; m.block_count()];
        m.step(&watts, 2.5e-6);
        let mut temps = m.node_temperatures().to_vec();
        temps[blocks] += 0.25; // first block of core 1
        m.restore_node_temperatures(&temps).expect("same node count");
        watch.check(&m, &watts, 2.5e-6, false, 0, &mut sink);
        assert!(sink.total > 0, "tampered neighbor temperature must be flagged");
    }

    #[test]
    fn single_core_die_trivially_passes() {
        let (mut m, blocks) = die(1);
        let mut sink = Sink::default();
        let mut watch = CrossCoreWatch::new(1, blocks, &m, &mut sink);
        let watts = vec![1.5; m.block_count()];
        m.step(&watts, 2.5e-6);
        watch.check(&m, &watts, 2.5e-6, false, 0, &mut sink);
        assert_eq!(sink.total, 0, "violations: {:?}", sink.violations);
    }
}

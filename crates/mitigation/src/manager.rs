//! The thermal manager: applies techniques at each sensor sample.

use crate::{MitigationConfig, Sensors};
use powerbalance_isa::ExecDomain;
use powerbalance_uarch::{Core, IqActivity, UnitKind};
use serde::{Deserialize, Serialize};

/// The register-file shutdown threshold sits this many kelvin below the
/// critical temperature so writes can continue into a cooling copy (the
/// paper's first staleness solution, §2.3). Public so external invariant
/// checkers can mirror the manager's exact transition thresholds.
pub const RF_GUARD: f64 = 0.2;

/// Event counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MitigationStats {
    /// Issue-queue head/tail toggles (both domains).
    pub toggles: u64,
    /// Integer-queue toggles only.
    pub int_toggles: u64,
    /// Functional-unit turnoff events.
    pub alu_turnoffs: u64,
    /// Register-file copy turnoff events.
    pub rf_turnoffs: u64,
    /// Temporal (whole-core) stall events.
    pub freezes: u64,
}

/// Serializable dynamic state of a [`ThermalManager`].
///
/// The configuration and sensor map are rebuilt from the simulation config
/// at construction time, so only the event counters and any in-progress
/// temporal stall need to be captured for a deterministic resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagerState {
    /// Event counters accumulated so far.
    pub stats: MitigationStats,
    /// End cycle of an in-progress temporal stall, if any.
    pub frozen_until: Option<u64>,
}

/// Applies the configured techniques to a [`Core`] on every thermal sample.
///
/// Call [`on_sample`](ThermalManager::on_sample) with the current block
/// temperatures (indexed per the floorplan the [`Sensors`] were resolved
/// against) after each thermal-model step. The manager flips issue-queue
/// modes, disables/re-enables units and register-file copies, and freezes
/// the core for the cooling time when overheating exceeds what the enabled
/// spatial techniques can absorb.
///
/// # Examples
///
/// ```
/// use powerbalance_mitigation::{MitigationConfig, Sensors, ThermalManager};
/// use powerbalance_thermal::ev6;
/// use powerbalance_uarch::{Core, CoreConfig};
///
/// let plan = ev6::alu_constrained();
/// let sensors = Sensors::new(&plan).expect("ev6 names");
/// let mut manager = ThermalManager::new(MitigationConfig::alu_turnoff_only(), sensors);
/// let mut core = Core::new(CoreConfig::default()).expect("valid config");
/// let cool = vec![340.0; plan.blocks().len()];
/// let idle = powerbalance_uarch::IqActivity::default();
/// manager.on_sample(&mut core, &cool, 0, &idle, &idle);
/// assert!(!core.is_frozen());
/// ```
#[derive(Debug)]
pub struct ThermalManager {
    cfg: MitigationConfig,
    sensors: Sensors,
    stats: MitigationStats,
    frozen_until: Option<u64>,
}

impl ThermalManager {
    /// Creates a manager.
    ///
    /// # Panics
    ///
    /// Panics if the thresholds are invalid.
    #[must_use]
    pub fn new(cfg: MitigationConfig, sensors: Sensors) -> Self {
        cfg.thresholds.validate().expect("invalid thresholds");
        ThermalManager { cfg, sensors, stats: MitigationStats::default(), frozen_until: None }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    /// Event counters so far.
    #[must_use]
    pub fn stats(&self) -> &MitigationStats {
        &self.stats
    }

    /// Captures the manager's dynamic state.
    #[must_use]
    pub fn snapshot(&self) -> ManagerState {
        ManagerState { stats: self.stats, frozen_until: self.frozen_until }
    }

    /// Restores dynamic state captured by [`snapshot`](Self::snapshot).
    ///
    /// The configuration and sensors are untouched: a snapshot may be
    /// restored into a manager built with a *different* mitigation config
    /// (that is what lets warm-start campaigns share one warmup across
    /// technique variants).
    pub fn restore(&mut self, state: &ManagerState) {
        self.stats = state.stats;
        self.frozen_until = state.frozen_until;
    }

    /// Applies the techniques given the temperatures at cycle `now`.
    ///
    /// `temps` must be indexed like the floorplan used to build the
    /// [`Sensors`]. `int_iq`/`fp_iq` are the activity counters of the window
    /// that just ended; the toggling controller uses them to locate the
    /// compaction-active queue half (the tail region in the paper's
    /// full-queue regime).
    pub fn on_sample(
        &mut self,
        core: &mut Core,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) {
        let th = self.cfg.thresholds;

        // 1. Handle an ongoing temporal stall.
        if let Some(until) = self.frozen_until {
            if now < until {
                self.reenable_cooled(core, temps);
                return;
            }
            self.frozen_until = None;
            core.set_frozen(false);
        }

        // 2. Activity toggling: flip head/tail when the compaction-active
        //    half runs hotter than the quiet half by more than the
        //    threshold. In the paper's full-queue regime the active half is
        //    the tail region; the controller reads the per-half compaction
        //    counts directly, which generalizes the same trigger to
        //    partially-occupied queues. Toggling relocates the occupied
        //    region to the other half either way.
        if self.cfg.activity_toggling {
            for (domain, q, act) in [
                (ExecDomain::Int, self.sensors.int_q, int_iq),
                (ExecDomain::Fp, self.sensors.fp_q, fp_iq),
            ] {
                let moves = [
                    act.compact_moves[0] + act.mux_selects[0],
                    act.compact_moves[1] + act.mux_selects[1],
                ];
                if moves[0] + moves[1] == 0 {
                    continue; // idle queue: nothing to balance
                }
                let active = usize::from(moves[1] > moves[0]);
                let quiet = 1 - active;
                if temps[q[active]] >= th.max_temp - th.toggle_proximity
                    && temps[q[active]] - temps[q[quiet]] > th.toggle_delta
                {
                    let mode = core.iq_mode(domain);
                    core.set_iq_mode(domain, mode.flipped());
                    self.stats.toggles += 1;
                    if domain == ExecDomain::Int {
                        self.stats.int_toggles += 1;
                    }
                }
            }
        }

        // 3. Fine-grain turnoff for functional units.
        if self.cfg.alu_turnoff {
            // Indexed walk over ALUs, FP adders, then the multiplier: a
            // chained iterator would hold `self.sensors` borrowed across the
            // `self.stats` update below, and collecting it would put a heap
            // allocation in the per-sample path.
            let n_int = self.sensors.int_alus.len();
            let n_fp = self.sensors.fp_adders.len();
            for i in 0..n_int + n_fp + 1 {
                let (kind, idx, block) = if i < n_int {
                    (UnitKind::IntAlu, i, self.sensors.int_alus[i])
                } else if i < n_int + n_fp {
                    (UnitKind::FpAdd, i - n_int, self.sensors.fp_adders[i - n_int])
                } else {
                    (UnitKind::FpMul, 0, self.sensors.fp_mul)
                };
                if core.unit_enabled(kind, idx) {
                    if temps[block] >= th.max_temp {
                        core.set_unit_enabled(kind, idx, false);
                        self.stats.alu_turnoffs += 1;
                    }
                } else if temps[block] <= th.max_temp - th.reenable_margin {
                    core.set_unit_enabled(kind, idx, true);
                }
            }
        }

        // 4. Fine-grain turnoff for register-file copies. Staleness is
        //    handled per the configured solution (§2.3): either the
        //    shutdown threshold sits slightly below critical and writes
        //    continue (solution 1, default), or writes are gated during
        //    cooling and the copy is refreshed with a write burst at
        //    re-enable (solution 2).
        if self.cfg.rf_turnoff {
            let guard = if self.cfg.rf_stale_copy { 0.0 } else { RF_GUARD };
            for (copy, &block) in self.sensors.int_reg.iter().enumerate() {
                if core.rf_copy_enabled(copy) {
                    if temps[block] >= th.max_temp - guard {
                        core.set_rf_copy_enabled(copy, false);
                        if self.cfg.rf_stale_copy {
                            core.set_rf_copy_writes_enabled(copy, false);
                        }
                        self.stats.rf_turnoffs += 1;
                    }
                } else if temps[block] <= th.max_temp - th.reenable_margin {
                    core.set_rf_copy_enabled(copy, true);
                    if self.cfg.rf_stale_copy {
                        core.set_rf_copy_writes_enabled(copy, true);
                        core.charge_rf_copy_restore(copy);
                    }
                }
            }
        }

        // 5. Temporal backstop: freeze when overheating exceeds what the
        //    enabled spatial techniques can absorb.
        if self.needs_freeze(core, temps) {
            core.set_frozen(true);
            self.frozen_until = Some(now + th.cooling_cycles);
            self.stats.freezes += 1;
        }
    }

    /// While frozen, cooled units and copies may come back online so the
    /// thaw resumes at full width.
    fn reenable_cooled(&mut self, core: &mut Core, temps: &[f64]) {
        let limit = self.cfg.thresholds.max_temp - self.cfg.thresholds.reenable_margin;
        if self.cfg.alu_turnoff {
            for (i, &b) in self.sensors.int_alus.iter().enumerate() {
                if !core.unit_enabled(UnitKind::IntAlu, i) && temps[b] <= limit {
                    core.set_unit_enabled(UnitKind::IntAlu, i, true);
                }
            }
            for (i, &b) in self.sensors.fp_adders.iter().enumerate() {
                if !core.unit_enabled(UnitKind::FpAdd, i) && temps[b] <= limit {
                    core.set_unit_enabled(UnitKind::FpAdd, i, true);
                }
            }
            if !core.unit_enabled(UnitKind::FpMul, 0) && temps[self.sensors.fp_mul] <= limit {
                core.set_unit_enabled(UnitKind::FpMul, 0, true);
            }
        }
        if self.cfg.rf_turnoff {
            for (copy, &b) in self.sensors.int_reg.iter().enumerate() {
                if !core.rf_copy_enabled(copy) && temps[b] <= limit {
                    core.set_rf_copy_enabled(copy, true);
                    if self.cfg.rf_stale_copy {
                        core.set_rf_copy_writes_enabled(copy, true);
                        core.charge_rf_copy_restore(copy);
                    }
                }
            }
        }
    }

    fn needs_freeze(&self, core: &Core, temps: &[f64]) -> bool {
        let max = self.cfg.thresholds.max_temp;

        // Issue-queue halves cannot be turned off individually: any
        // overheated half forces a stall (§2.1.1), toggling or not.
        for &b in self.sensors.int_q.iter().chain(self.sensors.fp_q.iter()) {
            if temps[b] >= max {
                return true;
            }
        }

        if self.cfg.alu_turnoff {
            // Stall only when an entire unit class is turned off.
            let all_int_off =
                (0..self.sensors.int_alus.len()).all(|i| !core.unit_enabled(UnitKind::IntAlu, i));
            let all_fp_off =
                (0..self.sensors.fp_adders.len()).all(|i| !core.unit_enabled(UnitKind::FpAdd, i));
            if all_int_off || all_fp_off {
                return true;
            }
        } else {
            for (&b, _) in
                self.sensors.int_alus.iter().zip(0..).chain(self.sensors.fp_adders.iter().zip(0..))
            {
                if temps[b] >= max {
                    return true;
                }
            }
            if temps[self.sensors.fp_mul] >= max {
                return true;
            }
        }

        if self.cfg.rf_turnoff {
            if (0..2).all(|c| !core.rf_copy_enabled(c)) {
                return true;
            }
        } else {
            for &b in &self.sensors.int_reg {
                if temps[b] >= max {
                    return true;
                }
            }
        }

        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::ev6;
    use powerbalance_uarch::{CoreConfig, IqMode};

    fn setup(
        cfg: MitigationConfig,
    ) -> (ThermalManager, Core, Vec<f64>, powerbalance_thermal::Floorplan) {
        let plan = ev6::baseline();
        let sensors = Sensors::new(&plan).expect("ev6 names");
        let manager = ThermalManager::new(cfg, sensors);
        let core = Core::new(CoreConfig::default()).expect("valid config");
        let temps = vec![340.0; plan.blocks().len()];
        (manager, core, temps, plan)
    }

    /// Activity with compaction concentrated in the given half, so the
    /// toggling controller sees that half as the active one.
    fn active_half(half: usize) -> IqActivity {
        let mut a = IqActivity::default();
        a.compact_moves[half] = 1000;
        a.mux_selects[half] = 1000;
        a
    }

    /// Convenience: sample with the top half active (the paper's tail-hot
    /// full-queue regime).
    fn sample(m: &mut ThermalManager, core: &mut Core, temps: &[f64], now: u64) {
        let act = active_half(1);
        m.on_sample(core, temps, now, &act, &act);
    }

    #[test]
    fn cool_chip_triggers_nothing() {
        let (mut m, mut core, temps, _) = setup(MitigationConfig::spatial_all());
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(*m.stats(), MitigationStats::default());
        assert!(!core.is_frozen());
    }

    #[test]
    fn toggling_flips_on_tail_head_delta() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::toggling_only());
        let q0 = plan.index_of("IntQ0").expect("block");
        let q1 = plan.index_of("IntQ1").expect("block");
        // Normal mode: tail is the top half (IntQ1). Make it hot and near
        // the thermal limit (toggles engage only within toggle_proximity).
        temps[q1] = 356.5;
        temps[q0] = 355.5;
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(core.iq_mode(ExecDomain::Int), IqMode::Toggled);
        assert_eq!(m.stats().int_toggles, 1);

        // After the toggle the compaction activity physically relocates to
        // the bottom half; once that half runs hot, toggle back.
        temps[q0] = 357.2;
        let act = active_half(0);
        m.on_sample(&mut core, &temps, 1, &act, &act);
        assert_eq!(core.iq_mode(ExecDomain::Int), IqMode::Normal);
        assert_eq!(m.stats().int_toggles, 2);
    }

    #[test]
    fn toggling_respects_threshold() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::toggling_only());
        let q1 = plan.index_of("IntQ1").expect("block");
        temps[q1] = 356.9; // near the limit, but only 0.4 K hotter
        temps[plan.index_of("IntQ0").expect("block")] = 356.5;
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(core.iq_mode(ExecDomain::Int), IqMode::Normal);
        assert_eq!(m.stats().toggles, 0);
    }

    #[test]
    fn alu_turnoff_disables_then_reenables_with_hysteresis() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::alu_turnoff_only());
        let a0 = plan.index_of("IntExec0").expect("block");
        temps[a0] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.unit_enabled(UnitKind::IntAlu, 0));
        assert_eq!(m.stats().alu_turnoffs, 1);
        assert!(!core.is_frozen(), "other ALUs keep the core running");

        // Cooling to just under max is not enough (hysteresis).
        temps[a0] = 357.5;
        sample(&mut m, &mut core, &temps, 1);
        assert!(!core.unit_enabled(UnitKind::IntAlu, 0));

        temps[a0] = 356.9;
        sample(&mut m, &mut core, &temps, 2);
        assert!(core.unit_enabled(UnitKind::IntAlu, 0));
    }

    #[test]
    fn baseline_freezes_on_any_hot_alu() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::baseline());
        temps[plan.index_of("IntExec0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
        assert_eq!(m.stats().freezes, 1);
    }

    #[test]
    fn freeze_expires_after_cooling_time() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::baseline());
        temps[plan.index_of("IntExec0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
        // Still frozen mid-way.
        temps[plan.index_of("IntExec0").expect("block")] = 340.0;
        sample(&mut m, &mut core, &temps, 50_000);
        assert!(core.is_frozen());
        // Expired: thaw.
        sample(&mut m, &mut core, &temps, 105_001);
        assert!(!core.is_frozen());
        assert_eq!(m.stats().freezes, 1);
    }

    #[test]
    fn turnoff_avoids_freeze_until_all_units_hot() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::alu_turnoff_only());
        for i in 0..6 {
            temps[plan.index_of(&format!("IntExec{i}")).expect("block")] = 358.0;
        }
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(m.stats().alu_turnoffs, 6);
        assert!(core.is_frozen(), "all integer ALUs off forces the temporal stall");
    }

    #[test]
    fn rf_turnoff_switches_copies_and_freezes_only_when_both_off() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::rf_turnoff_only());
        let r0 = plan.index_of("IntReg0").expect("block");
        let r1 = plan.index_of("IntReg1").expect("block");
        temps[r0] = 357.9; // above max - RF_GUARD
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.rf_copy_enabled(0));
        assert!(core.rf_copy_enabled(1));
        assert!(!core.is_frozen());

        temps[r1] = 357.9;
        sample(&mut m, &mut core, &temps, 1);
        assert!(!core.rf_copy_enabled(1));
        assert!(core.is_frozen(), "both copies off forces the temporal stall");
        assert_eq!(m.stats().rf_turnoffs, 2);
    }

    #[test]
    fn stale_copy_solution_gates_writes_and_restores_on_reenable() {
        let mut cfg = MitigationConfig::rf_turnoff_only();
        cfg.rf_stale_copy = true;
        let (mut m, mut core, mut temps, plan) = setup(cfg);
        let r0 = plan.index_of("IntReg0").expect("block");
        temps[r0] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.rf_copy_enabled(0));
        assert!(!core.rf_copy_writes_enabled(0), "writes gated while cooling");
        assert!(core.rf_copy_writes_enabled(1));

        temps[r0] = 356.5;
        sample(&mut m, &mut core, &temps, 1);
        assert!(core.rf_copy_enabled(0));
        assert!(core.rf_copy_writes_enabled(0), "writes restored after cooling");
        // The refresh burst was charged to the restored copy.
        let act = core.take_activity();
        assert!(
            act.int_rf_writes[0] >= u64::from(powerbalance_isa::INT_ARCH_REGS),
            "restore burst must be accounted: {:?}",
            act.int_rf_writes
        );
    }

    #[test]
    fn first_solution_keeps_writes_flowing() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::rf_turnoff_only());
        temps[plan.index_of("IntReg0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.rf_copy_enabled(0));
        assert!(core.rf_copy_writes_enabled(0), "solution 1: writes continue");
    }

    #[test]
    fn overheated_issue_queue_half_always_freezes() {
        // Even with toggling: halves cannot be turned off (§2.1.1).
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::toggling_only());
        temps[plan.index_of("IntQ1").expect("block")] = 358.2;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
    }

    #[test]
    fn snapshot_restore_round_trips_mid_freeze() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::baseline());
        temps[plan.index_of("IntExec0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());

        let state = m.snapshot();
        assert_eq!(state.stats.freezes, 1);
        assert!(state.frozen_until.is_some());

        // Serde round trip through the vendored JSON layer is lossless.
        let json = serde::json::to_string(&state);
        let back: ManagerState = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back, state);

        // A fresh manager restored from the snapshot keeps honouring the
        // in-progress stall and thaws at the same cycle as the original.
        let sensors = Sensors::new(&plan).expect("ev6 names");
        let mut fresh = ThermalManager::new(MitigationConfig::baseline(), sensors);
        fresh.restore(&back);
        let mut core2 = Core::new(CoreConfig::default()).expect("valid config");
        core2.set_frozen(true);
        temps[plan.index_of("IntExec0").expect("block")] = 340.0;
        sample(&mut fresh, &mut core2, &temps, 50_000);
        assert!(core2.is_frozen(), "restored stall still in effect");
        sample(&mut fresh, &mut core2, &temps, 105_001);
        assert!(!core2.is_frozen(), "restored stall expires on schedule");
        assert_eq!(fresh.stats().freezes, 1);
    }

    #[test]
    fn units_reenable_while_frozen() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::alu_turnoff_only());
        for i in 0..6 {
            temps[plan.index_of(&format!("IntExec{i}")).expect("block")] = 358.0;
        }
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
        // Mid-freeze cooling brings units back online for the thaw.
        for i in 0..6 {
            temps[plan.index_of(&format!("IntExec{i}")).expect("block")] = 350.0;
        }
        sample(&mut m, &mut core, &temps, 10_000);
        assert!(core.unit_enabled(UnitKind::IntAlu, 0));
        assert!(core.is_frozen(), "freeze lasts the full cooling time");
    }
}

//! The thermal manager: zones, policy, and actuators wired together.
//!
//! The manager is now a thin conductor over the three-layer split
//! (DESIGN.md §12): it resolves [`Zones`] from the sensors, builds the
//! [`ThermalPolicy`](crate::ThermalPolicy) selected by the config, and on
//! every thermal sample asks the policy for [`Actuation`] commands which
//! the executor ([`crate::actuators::apply`]) translates into core
//! mutations and stat updates. Policies never touch the core directly.

use crate::actuators::{self, Actuation};
use crate::policy::{build_policy, CoreView, PolicyState, ThermalPolicy};
use crate::zones::Zones;
use crate::{MitigationConfig, Sensors};
use powerbalance_uarch::{Core, IqActivity};
use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// The register-file shutdown threshold sits this many kelvin below the
/// critical temperature so writes can continue into a cooling copy (the
/// paper's first staleness solution, §2.3). Public so external invariant
/// checkers can mirror the manager's exact transition thresholds.
pub const RF_GUARD: f64 = 0.2;

/// Event counters for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MitigationStats {
    /// Issue-queue head/tail toggles (both domains).
    pub toggles: u64,
    /// Integer-queue toggles only.
    pub int_toggles: u64,
    /// Functional-unit turnoff events.
    pub alu_turnoffs: u64,
    /// Register-file copy turnoff events.
    pub rf_turnoffs: u64,
    /// Temporal (whole-core) stall events.
    pub freezes: u64,
    /// DVFS operating-point transitions.
    pub opp_transitions: u64,
    /// Fetch-gate / clock-throttle duty-level changes.
    pub duty_shifts: u64,
}

// Manual serde so spatial-only runs (where the global counters stay zero)
// serialize exactly as before the global baselines existed — the pinned
// golden artifacts depend on it. The global counters appear on the wire
// only when nonzero, and absent counters deserialize to zero.
impl Serialize for MitigationStats {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("toggles".to_string(), self.toggles.serialize()),
            ("int_toggles".to_string(), self.int_toggles.serialize()),
            ("alu_turnoffs".to_string(), self.alu_turnoffs.serialize()),
            ("rf_turnoffs".to_string(), self.rf_turnoffs.serialize()),
            ("freezes".to_string(), self.freezes.serialize()),
        ];
        if self.opp_transitions != 0 {
            fields.push(("opp_transitions".to_string(), self.opp_transitions.serialize()));
        }
        if self.duty_shifts != 0 {
            fields.push(("duty_shifts".to_string(), self.duty_shifts.serialize()));
        }
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for MitigationStats {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let optional = |key: &str| -> Result<u64, Error> {
            match value.get(key) {
                Some(v) => Deserialize::deserialize(v),
                None => Ok(0),
            }
        };
        Ok(MitigationStats {
            toggles: Deserialize::deserialize(value.field("toggles")?)?,
            int_toggles: Deserialize::deserialize(value.field("int_toggles")?)?,
            alu_turnoffs: Deserialize::deserialize(value.field("alu_turnoffs")?)?,
            rf_turnoffs: Deserialize::deserialize(value.field("rf_turnoffs")?)?,
            freezes: Deserialize::deserialize(value.field("freezes")?)?,
            opp_transitions: optional("opp_transitions")?,
            duty_shifts: optional("duty_shifts")?,
        })
    }
}

/// Serializable dynamic state of a [`ThermalManager`].
///
/// The configuration, zones, and policy object are rebuilt from the
/// simulation config at construction time, so only the event counters,
/// any in-progress temporal stall, and the policy's ladder position need
/// to be captured for a deterministic resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagerState {
    /// Event counters accumulated so far.
    pub stats: MitigationStats,
    /// End cycle of an in-progress temporal stall, if any.
    pub frozen_until: Option<u64>,
    /// Ladder position and in-progress transition of the active policy.
    pub policy: PolicyState,
}

/// Applies the configured techniques to a [`Core`] on every thermal sample.
///
/// Call [`on_sample`](ThermalManager::on_sample) with the current block
/// temperatures (indexed per the floorplan the [`Sensors`] were resolved
/// against) after each thermal-model step. The manager flips issue-queue
/// modes, disables/re-enables units and register-file copies, and freezes
/// the core for the cooling time when overheating exceeds what the enabled
/// spatial techniques can absorb.
///
/// # Examples
///
/// ```
/// use powerbalance_mitigation::{MitigationConfig, Sensors, ThermalManager};
/// use powerbalance_thermal::ev6;
/// use powerbalance_uarch::{Core, CoreConfig};
///
/// let plan = ev6::alu_constrained();
/// let sensors = Sensors::new(&plan).expect("ev6 names");
/// let mut manager = ThermalManager::new(MitigationConfig::alu_turnoff_only(), sensors);
/// let mut core = Core::new(CoreConfig::default()).expect("valid config");
/// let cool = vec![340.0; plan.blocks().len()];
/// let idle = powerbalance_uarch::IqActivity::default();
/// manager.on_sample(&mut core, &cool, 0, &idle, &idle);
/// assert!(!core.is_frozen());
/// ```
#[derive(Debug)]
pub struct ThermalManager {
    cfg: MitigationConfig,
    sensors: Sensors,
    zones: Zones,
    policy: Box<dyn ThermalPolicy>,
    stats: MitigationStats,
    frozen_until: Option<u64>,
    pstate: PolicyState,
    /// Persistent actuation buffer so the per-sample path stays
    /// allocation-free (DESIGN.md §9); the capacity covers the worst-case
    /// command count of any built-in policy with headroom.
    actions: Vec<Actuation>,
}

impl ThermalManager {
    /// Creates a manager with the policy selected by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if the config is invalid (thresholds, ladders, trip tables).
    #[must_use]
    pub fn new(cfg: MitigationConfig, sensors: Sensors) -> Self {
        cfg.validate().expect("invalid mitigation config");
        let zones = Zones::new(&sensors, &cfg);
        let policy = build_policy(&cfg);
        ThermalManager {
            cfg,
            sensors,
            zones,
            policy,
            stats: MitigationStats::default(),
            frozen_until: None,
            pstate: PolicyState::default(),
            actions: Vec::with_capacity(64),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &MitigationConfig {
        &self.cfg
    }

    /// The sensor map the zones were resolved from.
    #[must_use]
    pub fn sensors(&self) -> &Sensors {
        &self.sensors
    }

    /// The resolved thermal zones with their trip tables.
    #[must_use]
    pub fn zones(&self) -> &Zones {
        &self.zones
    }

    /// Event counters so far.
    #[must_use]
    pub fn stats(&self) -> &MitigationStats {
        &self.stats
    }

    /// The active policy's ladder position and in-progress transition.
    #[must_use]
    pub fn policy_state(&self) -> PolicyState {
        self.pstate
    }

    /// The factor by which every block's *dynamic* energy is scaled at the
    /// current operating point (`volt_scale²` under DVFS, exactly 1.0 for
    /// every other policy — callers can use the 1.0 fast path).
    #[must_use]
    pub fn dynamic_power_scale(&self) -> f64 {
        self.policy.dynamic_power_scale(&self.pstate)
    }

    /// Captures the manager's dynamic state.
    #[must_use]
    pub fn snapshot(&self) -> ManagerState {
        ManagerState { stats: self.stats, frozen_until: self.frozen_until, policy: self.pstate }
    }

    /// Restores dynamic state captured by [`snapshot`](Self::snapshot).
    ///
    /// The configuration, zones, and policy object are untouched: a
    /// snapshot may be restored into a manager built with a *different*
    /// mitigation config (that is what lets warm-start campaigns share one
    /// warmup across technique variants). Ladder positions beyond the new
    /// config's ladder are clamped at use.
    pub fn restore(&mut self, state: &ManagerState) {
        self.stats = state.stats;
        self.frozen_until = state.frozen_until;
        self.pstate = state.policy;
    }

    /// Applies the techniques given the temperatures at cycle `now`.
    ///
    /// `temps` must be indexed like the floorplan used to build the
    /// [`Sensors`]. `int_iq`/`fp_iq` are the activity counters of the window
    /// that just ended; the toggling controller uses them to locate the
    /// compaction-active queue half (the tail region in the paper's
    /// full-queue regime).
    pub fn on_sample(
        &mut self,
        core: &mut Core,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) {
        self.decide(core, temps, now, int_iq, fp_iq);
        self.apply_decided(core);
    }

    /// The decision half of [`on_sample`](Self::on_sample): asks the policy
    /// for its commands and buffers them, touching neither the core nor
    /// the manager's own dynamic state.
    ///
    /// The batched campaign engine uses the split to evaluate every
    /// sibling's reaction against one shared core *before* committing any
    /// mutation: siblings whose decisions agree keep sharing the core,
    /// the rest fork. Calling [`apply_decided`](Self::apply_decided) next
    /// completes the sample; calling `decide` again discards the buffer.
    pub fn decide(
        &mut self,
        core: &Core,
        temps: &[f64],
        now: u64,
        int_iq: &IqActivity,
        fp_iq: &IqActivity,
    ) {
        self.actions.clear();
        let view = CoreView { core, int_iq, fp_iq, now, frozen_until: self.frozen_until };
        self.policy.on_sample(&self.zones, temps, &view, &self.pstate, &mut self.actions);
    }

    /// The commands buffered by the last [`decide`](Self::decide), in
    /// emission order.
    #[must_use]
    pub fn decided_actions(&self) -> &[Actuation] {
        &self.actions
    }

    /// The execution half of [`on_sample`](Self::on_sample): applies the
    /// buffered commands to `core` and folds their effects into the
    /// manager's stats, policy state, and freeze deadline.
    pub fn apply_decided(&mut self, core: &mut Core) {
        actuators::apply(
            core,
            &self.actions,
            &mut self.stats,
            &mut self.pstate,
            &mut self.frozen_until,
        );
    }

    /// The dynamic-power scale this manager will report *after* the
    /// buffered commands are applied ([`actuators::project`] of the
    /// decision), without applying anything.
    ///
    /// Two lockstep siblings that emit identical commands still diverge if
    /// their ladders map the commanded level to different voltage scales;
    /// the batch engine folds this value into its partition key.
    #[must_use]
    pub fn projected_power_scale(&self) -> f64 {
        let mut state = self.pstate;
        actuators::project(&self.actions, &mut state);
        self.policy.dynamic_power_scale(&state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_isa::ExecDomain;
    use powerbalance_thermal::ev6;
    use powerbalance_uarch::{CoreConfig, IqMode, UnitKind};

    fn setup(
        cfg: MitigationConfig,
    ) -> (ThermalManager, Core, Vec<f64>, powerbalance_thermal::Floorplan) {
        let plan = ev6::baseline();
        let sensors = Sensors::new(&plan).expect("ev6 names");
        let manager = ThermalManager::new(cfg, sensors);
        let core = Core::new(CoreConfig::default()).expect("valid config");
        let temps = vec![340.0; plan.blocks().len()];
        (manager, core, temps, plan)
    }

    /// Activity with compaction concentrated in the given half, so the
    /// toggling controller sees that half as the active one.
    fn active_half(half: usize) -> IqActivity {
        let mut a = IqActivity::default();
        a.compact_moves[half] = 1000;
        a.mux_selects[half] = 1000;
        a
    }

    /// Convenience: sample with the top half active (the paper's tail-hot
    /// full-queue regime).
    fn sample(m: &mut ThermalManager, core: &mut Core, temps: &[f64], now: u64) {
        let act = active_half(1);
        m.on_sample(core, temps, now, &act, &act);
    }

    #[test]
    fn cool_chip_triggers_nothing() {
        let (mut m, mut core, temps, _) = setup(MitigationConfig::spatial_all());
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(*m.stats(), MitigationStats::default());
        assert!(!core.is_frozen());
    }

    #[test]
    fn toggling_flips_on_tail_head_delta() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::toggling_only());
        let q0 = plan.index_of("IntQ0").expect("block");
        let q1 = plan.index_of("IntQ1").expect("block");
        // Normal mode: tail is the top half (IntQ1). Make it hot and near
        // the thermal limit (toggles engage only within toggle_proximity).
        temps[q1] = 356.5;
        temps[q0] = 355.5;
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(core.iq_mode(ExecDomain::Int), IqMode::Toggled);
        assert_eq!(m.stats().int_toggles, 1);

        // After the toggle the compaction activity physically relocates to
        // the bottom half; once that half runs hot, toggle back.
        temps[q0] = 357.2;
        let act = active_half(0);
        m.on_sample(&mut core, &temps, 1, &act, &act);
        assert_eq!(core.iq_mode(ExecDomain::Int), IqMode::Normal);
        assert_eq!(m.stats().int_toggles, 2);
    }

    #[test]
    fn toggling_respects_threshold() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::toggling_only());
        let q1 = plan.index_of("IntQ1").expect("block");
        temps[q1] = 356.9; // near the limit, but only 0.4 K hotter
        temps[plan.index_of("IntQ0").expect("block")] = 356.5;
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(core.iq_mode(ExecDomain::Int), IqMode::Normal);
        assert_eq!(m.stats().toggles, 0);
    }

    #[test]
    fn alu_turnoff_disables_then_reenables_with_hysteresis() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::alu_turnoff_only());
        let a0 = plan.index_of("IntExec0").expect("block");
        temps[a0] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.unit_enabled(UnitKind::IntAlu, 0));
        assert_eq!(m.stats().alu_turnoffs, 1);
        assert!(!core.is_frozen(), "other ALUs keep the core running");

        // Cooling to just under max is not enough (hysteresis).
        temps[a0] = 357.5;
        sample(&mut m, &mut core, &temps, 1);
        assert!(!core.unit_enabled(UnitKind::IntAlu, 0));

        temps[a0] = 356.9;
        sample(&mut m, &mut core, &temps, 2);
        assert!(core.unit_enabled(UnitKind::IntAlu, 0));
    }

    #[test]
    fn baseline_freezes_on_any_hot_alu() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::baseline());
        temps[plan.index_of("IntExec0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
        assert_eq!(m.stats().freezes, 1);
    }

    #[test]
    fn freeze_expires_after_cooling_time() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::baseline());
        temps[plan.index_of("IntExec0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
        // Still frozen mid-way.
        temps[plan.index_of("IntExec0").expect("block")] = 340.0;
        sample(&mut m, &mut core, &temps, 50_000);
        assert!(core.is_frozen());
        // Expired: thaw.
        sample(&mut m, &mut core, &temps, 105_001);
        assert!(!core.is_frozen());
        assert_eq!(m.stats().freezes, 1);
    }

    #[test]
    fn turnoff_avoids_freeze_until_all_units_hot() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::alu_turnoff_only());
        for i in 0..6 {
            temps[plan.index_of(&format!("IntExec{i}")).expect("block")] = 358.0;
        }
        sample(&mut m, &mut core, &temps, 0);
        assert_eq!(m.stats().alu_turnoffs, 6);
        assert!(core.is_frozen(), "all integer ALUs off forces the temporal stall");
    }

    #[test]
    fn rf_turnoff_switches_copies_and_freezes_only_when_both_off() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::rf_turnoff_only());
        let r0 = plan.index_of("IntReg0").expect("block");
        let r1 = plan.index_of("IntReg1").expect("block");
        temps[r0] = 357.9; // above max - RF_GUARD
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.rf_copy_enabled(0));
        assert!(core.rf_copy_enabled(1));
        assert!(!core.is_frozen());

        temps[r1] = 357.9;
        sample(&mut m, &mut core, &temps, 1);
        assert!(!core.rf_copy_enabled(1));
        assert!(core.is_frozen(), "both copies off forces the temporal stall");
        assert_eq!(m.stats().rf_turnoffs, 2);
    }

    #[test]
    fn stale_copy_solution_gates_writes_and_restores_on_reenable() {
        let mut cfg = MitigationConfig::rf_turnoff_only();
        cfg.rf_stale_copy = true;
        let (mut m, mut core, mut temps, plan) = setup(cfg);
        let r0 = plan.index_of("IntReg0").expect("block");
        temps[r0] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.rf_copy_enabled(0));
        assert!(!core.rf_copy_writes_enabled(0), "writes gated while cooling");
        assert!(core.rf_copy_writes_enabled(1));

        temps[r0] = 356.5;
        sample(&mut m, &mut core, &temps, 1);
        assert!(core.rf_copy_enabled(0));
        assert!(core.rf_copy_writes_enabled(0), "writes restored after cooling");
        // The refresh burst was charged to the restored copy.
        let act = core.take_activity();
        assert!(
            act.int_rf_writes[0] >= u64::from(powerbalance_isa::INT_ARCH_REGS),
            "restore burst must be accounted: {:?}",
            act.int_rf_writes
        );
    }

    #[test]
    fn first_solution_keeps_writes_flowing() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::rf_turnoff_only());
        temps[plan.index_of("IntReg0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(!core.rf_copy_enabled(0));
        assert!(core.rf_copy_writes_enabled(0), "solution 1: writes continue");
    }

    #[test]
    fn overheated_issue_queue_half_always_freezes() {
        // Even with toggling: halves cannot be turned off (§2.1.1).
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::toggling_only());
        temps[plan.index_of("IntQ1").expect("block")] = 358.2;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
    }

    #[test]
    fn snapshot_restore_round_trips_mid_freeze() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::baseline());
        temps[plan.index_of("IntExec0").expect("block")] = 358.0;
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());

        let state = m.snapshot();
        assert_eq!(state.stats.freezes, 1);
        assert!(state.frozen_until.is_some());

        // Serde round trip through the vendored JSON layer is lossless.
        let json = serde::json::to_string(&state);
        let back: ManagerState = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back, state);

        // A fresh manager restored from the snapshot keeps honouring the
        // in-progress stall and thaws at the same cycle as the original.
        let sensors = Sensors::new(&plan).expect("ev6 names");
        let mut fresh = ThermalManager::new(MitigationConfig::baseline(), sensors);
        fresh.restore(&back);
        let mut core2 = Core::new(CoreConfig::default()).expect("valid config");
        core2.set_frozen(true);
        temps[plan.index_of("IntExec0").expect("block")] = 340.0;
        sample(&mut fresh, &mut core2, &temps, 50_000);
        assert!(core2.is_frozen(), "restored stall still in effect");
        sample(&mut fresh, &mut core2, &temps, 105_001);
        assert!(!core2.is_frozen(), "restored stall expires on schedule");
        assert_eq!(fresh.stats().freezes, 1);
    }

    #[test]
    fn snapshot_restore_round_trips_mid_opp_transition() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::dvfs());
        let a0 = plan.index_of("IntExec0").expect("block");
        temps[a0] = 356.6; // above the ladder's passive trip, below critical
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen(), "OPP transition stalls the core");

        // Captured mid-transition: the ladder position and the stall
        // deadline both survive the serde round trip bit-exactly.
        let state = m.snapshot();
        assert_eq!(state.stats.opp_transitions, 1);
        assert_eq!(state.stats.freezes, 0, "a transition stall is not a freeze");
        assert_eq!(state.policy.opp_level, 1);
        assert!(state.policy.stall_until.is_some());
        let json = serde::json::to_string(&state);
        let back: ManagerState = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back, state);

        // A fresh manager restored mid-transition finishes the stall on the
        // original schedule and keeps running at the reduced OPP.
        let sensors = Sensors::new(&plan).expect("ev6 names");
        let mut fresh = ThermalManager::new(MitigationConfig::dvfs(), sensors);
        fresh.restore(&back);
        assert!(fresh.dynamic_power_scale() < 1.0, "restored OPP scales dynamic power");
        let mut core2 = Core::new(CoreConfig::default()).expect("valid config");
        core2.set_frozen(true);
        temps[a0] = 340.0;
        sample(&mut fresh, &mut core2, &temps, 10_000);
        assert!(core2.is_frozen(), "restored transition stall still in effect");
        // Past the restored deadline the ladder relaxes — which is itself
        // a transition, with its own stall.
        sample(&mut fresh, &mut core2, &temps, 50_000);
        assert_eq!(fresh.policy_state().opp_level, 0, "cool temps relax the ladder");
        assert_eq!(fresh.stats().opp_transitions, 2);
        assert!(core2.is_frozen(), "relaxing the OPP stalls for the transition");
        sample(&mut fresh, &mut core2, &temps, 100_000);
        assert!(!core2.is_frozen(), "back at nominal, no further transitions");
        assert_eq!(fresh.dynamic_power_scale(), 1.0);
    }

    #[test]
    fn units_reenable_while_frozen() {
        let (mut m, mut core, mut temps, plan) = setup(MitigationConfig::alu_turnoff_only());
        for i in 0..6 {
            temps[plan.index_of(&format!("IntExec{i}")).expect("block")] = 358.0;
        }
        sample(&mut m, &mut core, &temps, 0);
        assert!(core.is_frozen());
        // Mid-freeze cooling brings units back online for the thaw.
        for i in 0..6 {
            temps[plan.index_of(&format!("IntExec{i}")).expect("block")] = 350.0;
        }
        sample(&mut m, &mut core, &temps, 10_000);
        assert!(core.unit_enabled(UnitKind::IntAlu, 0));
        assert!(core.is_frozen(), "freeze lasts the full cooling time");
    }
}

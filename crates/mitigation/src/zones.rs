//! Thermal zones and trip-point tables (the sensing layer).
//!
//! This module turns the scattered threshold constants of the original
//! manager (`RF_GUARD`, the toggle proximity band, the re-enable margin)
//! into *data*: every monitored block becomes a [`ThermalZone`] carrying an
//! ordered [`TripTable`] whose [`TripPoint`]s pair a trip temperature with
//! a clear (hysteresis) temperature and a severity. The shape follows the
//! `ThermalZone`/`TripPoint`/`CoolingDevice` split of OS thermal
//! frameworks; policies read the tables instead of recomputing thresholds.
//!
//! Two kinds of tables exist:
//!
//! * **Zone tables** are derived from [`Thresholds`] by [`Zones::new`] with
//!   the exact arithmetic the pre-refactor manager used, so the spatial
//!   policy's comparisons stay bit-identical to the original hard-coded
//!   ones.
//! * **Policy tables** ship inside the global-policy parameters
//!   ([`crate::DvfsParams`], [`crate::GateParams`]) and drive the throttle
//!   ladders; these are user-configurable and validated (see
//!   [`TripTable::validate`]).

use crate::{MitigationConfig, Sensors, Thresholds};
use powerbalance_isa::ExecDomain;
use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// Maximum trip points per table (bounded inline storage keeps the config
/// `Copy` and the per-sample path allocation-free, per DESIGN.md §9).
pub const MAX_TRIPS: usize = 4;

/// How urgent a tripped point is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TripSeverity {
    /// Early warning: preventive balancing (toggling, throttle ladder
    /// step-downs) engages here.
    Passive,
    /// The resource is overheating: shut it off / throttle hard.
    Hot,
    /// The thermal limit itself: the temporal freeze backstop fires.
    Critical,
}

/// One trip point: trip at `temp`, clear (with hysteresis) at `clear_temp`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TripPoint {
    /// Severity class of this point.
    pub severity: TripSeverity,
    /// Temperature (K) at or above which the point trips.
    pub temp: f64,
    /// Temperature (K) at or below which the point clears. Must be below
    /// `temp`; the gap is the hysteresis band.
    pub clear_temp: f64,
}

impl TripPoint {
    /// A trip point.
    #[must_use]
    pub const fn new(severity: TripSeverity, temp: f64, clear_temp: f64) -> Self {
        TripPoint { severity, temp, clear_temp }
    }

    /// Validates this point: finite temperatures and `clear_temp < temp`.
    ///
    /// # Errors
    ///
    /// Returns a description of the problem, naming the severity so a
    /// multi-point table error is attributable.
    pub fn validate(&self) -> Result<(), String> {
        if !self.temp.is_finite() || !self.clear_temp.is_finite() {
            return Err(format!("{:?} trip point has non-finite temperatures", self.severity));
        }
        if self.clear_temp >= self.temp {
            return Err(format!(
                "{:?} trip point clears at {} K which is not below its trip temperature {} K \
                 (hysteresis would be inverted)",
                self.severity, self.clear_temp, self.temp
            ));
        }
        Ok(())
    }
}

const FILL: TripPoint = TripPoint::new(TripSeverity::Passive, 0.0, -1.0);

/// An ordered trip-point table (ascending trip temperatures).
///
/// Storage is a bounded inline array so tables stay `Copy` and zone
/// construction never allocates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TripTable {
    points: [TripPoint; MAX_TRIPS],
    len: usize,
}

impl TripTable {
    /// Builds a table from `points` (in ascending trip-temperature order).
    ///
    /// Only the capacity bound is checked here; semantic validity (ordering,
    /// hysteresis direction, non-emptiness) is checked by
    /// [`validate`](Self::validate) so that deserialized configs surface
    /// their problems through the normal config-validation path.
    ///
    /// # Errors
    ///
    /// Returns an error if more than [`MAX_TRIPS`] points are given.
    pub fn from_points(points: &[TripPoint]) -> Result<Self, String> {
        if points.len() > MAX_TRIPS {
            return Err(format!(
                "trip table holds at most {MAX_TRIPS} points, got {}",
                points.len()
            ));
        }
        let mut table = TripTable { points: [FILL; MAX_TRIPS], len: points.len() };
        table.points[..points.len()].copy_from_slice(points);
        Ok(table)
    }

    /// The active trip points, in ascending trip-temperature order.
    #[must_use]
    pub fn points(&self) -> &[TripPoint] {
        &self.points[..self.len]
    }

    /// Validates the table: non-empty, every point valid, temperatures
    /// non-decreasing.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.len == 0 {
            return Err("trip table must contain at least one point".into());
        }
        for p in self.points() {
            p.validate()?;
        }
        for w in self.points().windows(2) {
            if w[1].temp < w[0].temp {
                return Err(format!(
                    "trip points out of order: {} K before {} K",
                    w[0].temp, w[1].temp
                ));
            }
        }
        Ok(())
    }

    /// The highest-temperature point tripped by `temp`, if any.
    #[must_use]
    pub fn highest_tripped(&self, temp: f64) -> Option<&TripPoint> {
        self.points().iter().rev().find(|p| temp >= p.temp)
    }

    /// Whether a point of the given severity is tripped by `temp`.
    #[must_use]
    pub fn tripped(&self, severity: TripSeverity, temp: f64) -> bool {
        self.points().iter().any(|p| p.severity == severity && temp >= p.temp)
    }

    /// Whether `temp` is at or below every non-critical point's clear
    /// temperature (the ladder may relax).
    #[must_use]
    pub fn all_clear(&self, temp: f64) -> bool {
        self.points()
            .iter()
            .filter(|p| p.severity != TripSeverity::Critical)
            .all(|p| temp <= p.clear_temp)
    }
}

impl Serialize for TripTable {
    fn serialize(&self) -> Value {
        Value::Array(self.points().iter().map(Serialize::serialize).collect())
    }
}

impl<'de> Deserialize<'de> for TripTable {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_array()?;
        if items.len() > MAX_TRIPS {
            return Err(Error::custom(format!(
                "trip table holds at most {MAX_TRIPS} points, got {}",
                items.len()
            )));
        }
        let mut points = [FILL; MAX_TRIPS];
        for (slot, item) in points.iter_mut().zip(items) {
            *slot = TripPoint::deserialize(item)?;
        }
        Ok(TripTable { points, len: items.len() })
    }
}

/// What a zone's block is, microarchitecturally. Policies use the role to
/// map a tripped zone back onto the actuator that cools it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ZoneRole {
    /// One half of a compacting issue queue.
    IqHalf {
        /// Which issue queue.
        domain: ExecDomain,
        /// Physical half (0 = bottom, 1 = top).
        half: usize,
    },
    /// An integer ALU.
    IntAlu(usize),
    /// A floating-point adder.
    FpAdder(usize),
    /// The floating-point multiplier.
    FpMul,
    /// An integer register-file copy.
    RfCopy(usize),
}

/// One monitored block with its trip table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalZone {
    /// Microarchitectural role.
    pub role: ZoneRole,
    /// Floorplan block index (indexes the temperature vector).
    pub block: usize,
    /// Trip points, ascending.
    pub trips: TripTable,
}

impl ThermalZone {
    /// This zone's current temperature from the floorplan-indexed vector.
    #[must_use]
    pub fn temp(&self, temps: &[f64]) -> f64 {
        temps[self.block]
    }
}

/// All thermal zones of a core, resolved from the floorplan sensors.
///
/// The layout mirrors [`Sensors`] so policies can address zones
/// structurally; [`Zones::iter`] walks every zone for global policies that
/// only care about the hottest reading.
#[derive(Debug, Clone, PartialEq)]
pub struct Zones {
    /// Integer issue-queue halves (block order matches `Sensors::int_q`).
    pub int_q: [ThermalZone; 2],
    /// FP issue-queue halves.
    pub fp_q: [ThermalZone; 2],
    /// Integer ALUs.
    pub int_alus: Vec<ThermalZone>,
    /// FP adders.
    pub fp_adders: Vec<ThermalZone>,
    /// The FP multiplier.
    pub fp_mul: ThermalZone,
    /// Integer register-file copies.
    pub int_reg: [ThermalZone; 2],
}

impl Zones {
    /// Builds the zone set for `sensors` with trip tables derived from the
    /// config's [`Thresholds`].
    ///
    /// The derived trip temperatures use the *same floating-point
    /// arithmetic* as the pre-refactor manager's inline comparisons
    /// (`max_temp - toggle_proximity`, `max_temp - guard`,
    /// `max_temp - reenable_margin`), which is what keeps the spatial
    /// policy bit-identical to the original implementation.
    #[must_use]
    pub fn new(sensors: &Sensors, cfg: &MitigationConfig) -> Self {
        let th = &cfg.thresholds;
        let iq = |domain, half, block| ThermalZone {
            role: ZoneRole::IqHalf { domain, half },
            block,
            trips: iq_trips(th),
        };
        let unit = |role, block| ThermalZone { role, block, trips: unit_trips(th) };
        // The register-file shutdown threshold depends on the staleness
        // solution: solution 1 (default) holds a guard band below critical
        // so writes can continue into the cooling copy; solution 2 gates
        // writes instead and shuts off at critical itself.
        let guard = if cfg.rf_stale_copy { 0.0 } else { crate::RF_GUARD };
        let rf = |copy, block| ThermalZone {
            role: ZoneRole::RfCopy(copy),
            block,
            trips: rf_trips(th, guard),
        };
        Zones {
            int_q: [
                iq(ExecDomain::Int, 0, sensors.int_q[0]),
                iq(ExecDomain::Int, 1, sensors.int_q[1]),
            ],
            fp_q: [iq(ExecDomain::Fp, 0, sensors.fp_q[0]), iq(ExecDomain::Fp, 1, sensors.fp_q[1])],
            int_alus: sensors
                .int_alus
                .iter()
                .enumerate()
                .map(|(i, &b)| unit(ZoneRole::IntAlu(i), b))
                .collect(),
            fp_adders: sensors
                .fp_adders
                .iter()
                .enumerate()
                .map(|(i, &b)| unit(ZoneRole::FpAdder(i), b))
                .collect(),
            fp_mul: unit(ZoneRole::FpMul, sensors.fp_mul),
            int_reg: [rf(0, sensors.int_reg[0]), rf(1, sensors.int_reg[1])],
        }
    }

    /// Every zone, in a fixed order (int IQ halves, FP IQ halves, integer
    /// ALUs, FP adders, FP multiplier, register-file copies).
    pub fn iter(&self) -> impl Iterator<Item = &ThermalZone> {
        self.int_q
            .iter()
            .chain(self.fp_q.iter())
            .chain(self.int_alus.iter())
            .chain(self.fp_adders.iter())
            .chain(std::iter::once(&self.fp_mul))
            .chain(self.int_reg.iter())
    }

    /// The hottest reading across all zones.
    #[must_use]
    pub fn hottest(&self, temps: &[f64]) -> f64 {
        self.iter().map(|z| z.temp(temps)).fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Issue-queue half table: toggling engages within the proximity band
/// (Passive); an overheated half cannot be turned off, so the critical
/// point is the freeze trigger.
fn iq_trips(th: &Thresholds) -> TripTable {
    TripTable::from_points(&[
        TripPoint::new(
            TripSeverity::Passive,
            th.max_temp - th.toggle_proximity,
            th.max_temp - th.toggle_proximity - th.toggle_delta,
        ),
        TripPoint::new(TripSeverity::Critical, th.max_temp, th.max_temp - th.reenable_margin),
    ])
    .expect("two points fit")
}

/// Functional-unit table: turn off at the limit (Hot), re-enable below the
/// hysteresis margin; the limit is also the freeze trigger when turnoff is
/// not enabled.
fn unit_trips(th: &Thresholds) -> TripTable {
    TripTable::from_points(&[
        TripPoint::new(TripSeverity::Hot, th.max_temp, th.max_temp - th.reenable_margin),
        TripPoint::new(TripSeverity::Critical, th.max_temp, th.max_temp - th.reenable_margin),
    ])
    .expect("two points fit")
}

/// Register-file copy table: shutdown sits `guard` kelvin below critical
/// (the staleness solution 1 write-through band).
fn rf_trips(th: &Thresholds, guard: f64) -> TripTable {
    TripTable::from_points(&[
        TripPoint::new(TripSeverity::Hot, th.max_temp - guard, th.max_temp - th.reenable_margin),
        TripPoint::new(TripSeverity::Critical, th.max_temp, th.max_temp - th.reenable_margin),
    ])
    .expect("two points fit")
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::ev6;

    fn table(points: &[TripPoint]) -> TripTable {
        TripTable::from_points(points).expect("fits")
    }

    #[test]
    fn empty_table_is_rejected_at_validation() {
        let t = table(&[]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn single_trip_table_is_valid() {
        let t = table(&[TripPoint::new(TripSeverity::Hot, 358.0, 357.0)]);
        t.validate().expect("single point is a legitimate table");
    }

    #[test]
    fn inverted_hysteresis_is_rejected_per_severity() {
        // Satellite requirement: clear temperature at or above the trip
        // temperature must be rejected, for every severity level.
        for severity in [TripSeverity::Passive, TripSeverity::Hot, TripSeverity::Critical] {
            let equal = table(&[TripPoint::new(severity, 356.0, 356.0)]);
            assert!(equal.validate().is_err(), "{severity:?}: clear == trip must be rejected");
            let above = table(&[TripPoint::new(severity, 356.0, 357.0)]);
            assert!(above.validate().is_err(), "{severity:?}: clear > trip must be rejected");
            let ok = table(&[TripPoint::new(severity, 356.0, 355.0)]);
            ok.validate().unwrap_or_else(|e| panic!("{severity:?}: valid point rejected: {e}"));
        }
    }

    #[test]
    fn out_of_order_points_are_rejected() {
        let t = table(&[
            TripPoint::new(TripSeverity::Hot, 358.0, 357.0),
            TripPoint::new(TripSeverity::Passive, 356.0, 355.0),
        ]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn too_many_points_rejected_at_construction() {
        let p = TripPoint::new(TripSeverity::Passive, 350.0, 349.0);
        assert!(TripTable::from_points(&[p; MAX_TRIPS + 1]).is_err());
    }

    #[test]
    fn trip_queries() {
        let t = table(&[
            TripPoint::new(TripSeverity::Passive, 356.0, 355.0),
            TripPoint::new(TripSeverity::Critical, 358.0, 357.0),
        ]);
        assert!(t.highest_tripped(354.0).is_none());
        assert_eq!(t.highest_tripped(356.5).expect("tripped").severity, TripSeverity::Passive);
        assert_eq!(t.highest_tripped(358.2).expect("tripped").severity, TripSeverity::Critical);
        assert!(t.tripped(TripSeverity::Critical, 358.0));
        assert!(!t.tripped(TripSeverity::Critical, 357.9));
        assert!(t.all_clear(354.9), "below the passive clear");
        assert!(!t.all_clear(355.5), "inside the hysteresis band");
    }

    #[test]
    fn table_round_trips_through_json() {
        let t = table(&[
            TripPoint::new(TripSeverity::Passive, 356.0, 355.5),
            TripPoint::new(TripSeverity::Hot, 357.8, 357.0),
            TripPoint::new(TripSeverity::Critical, 358.0, 357.0),
        ]);
        let json = serde::json::to_string(&t);
        let back: TripTable = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back, t);
    }

    #[test]
    fn zone_tables_match_the_legacy_threshold_arithmetic() {
        let plan = ev6::baseline();
        let sensors = Sensors::new(&plan).expect("ev6 names");
        let cfg = MitigationConfig::spatial_all();
        let th = cfg.thresholds;
        let zones = Zones::new(&sensors, &cfg);

        // Bit-exact equality with the expressions the manager historically
        // inlined — the spatial policy's comparisons depend on this.
        let passive = zones.int_q[0].trips.points()[0];
        assert_eq!(passive.temp.to_bits(), (th.max_temp - th.toggle_proximity).to_bits());
        let unit_hot = zones.int_alus[3].trips.points()[0];
        assert_eq!(unit_hot.temp.to_bits(), th.max_temp.to_bits());
        assert_eq!(unit_hot.clear_temp.to_bits(), (th.max_temp - th.reenable_margin).to_bits());
        let rf_hot = zones.int_reg[0].trips.points()[0];
        assert_eq!(rf_hot.temp.to_bits(), (th.max_temp - crate::RF_GUARD).to_bits());

        // Solution 2 removes the guard band.
        let mut stale = cfg;
        stale.rf_stale_copy = true;
        let zones2 = Zones::new(&sensors, &stale);
        let rf_hot2 = zones2.int_reg[0].trips.points()[0];
        assert_eq!(rf_hot2.temp.to_bits(), th.max_temp.to_bits());
    }

    #[test]
    fn zones_cover_every_sensor() {
        let plan = ev6::baseline();
        let sensors = Sensors::new(&plan).expect("ev6 names");
        let zones = Zones::new(&sensors, &MitigationConfig::spatial_all());
        assert_eq!(zones.iter().count(), 4 + sensors.int_alus.len() + sensors.fp_adders.len() + 3);
        let mut temps = vec![300.0; plan.blocks().len()];
        temps[sensors.fp_mul] = 359.0;
        assert!((zones.hottest(&temps) - 359.0).abs() < 1e-12);
    }
}

//! On-chip temperature sensor placement.

use powerbalance_thermal::Floorplan;

/// Resolved sensor indices for the back-end resources the techniques watch.
///
/// The paper justifies per-resource-copy sensors by pointing at POWER5's 24
/// on-chip sensors; here a sensor is simply a block index into the thermal
/// model's temperature vector.
///
/// # Examples
///
/// ```
/// use powerbalance_mitigation::Sensors;
/// use powerbalance_thermal::ev6;
///
/// let plan = ev6::baseline();
/// let sensors = Sensors::new(&plan).expect("ev6 names are present");
/// assert_eq!(sensors.int_alus.len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct Sensors {
    /// Integer issue-queue halves `[bottom, top]`.
    pub int_q: [usize; 2],
    /// FP issue-queue halves `[bottom, top]`.
    pub fp_q: [usize; 2],
    /// Integer register-file copies.
    pub int_reg: [usize; 2],
    /// Integer ALUs 0..5 (priority order).
    pub int_alus: Vec<usize>,
    /// FP adders 0..3 (priority order).
    pub fp_adders: Vec<usize>,
    /// FP multiplier.
    pub fp_mul: usize,
}

impl Sensors {
    /// Resolves sensor indices against `plan`.
    ///
    /// # Errors
    ///
    /// Returns the missing block name if the plan lacks one.
    pub fn new(plan: &Floorplan) -> Result<Self, String> {
        let find = |name: &str| {
            plan.index_of(name).ok_or_else(|| format!("floorplan is missing block {name}"))
        };
        Ok(Sensors {
            int_q: [find("IntQ0")?, find("IntQ1")?],
            fp_q: [find("FPQ0")?, find("FPQ1")?],
            int_reg: [find("IntReg0")?, find("IntReg1")?],
            int_alus: (0..6).map(|i| find(&format!("IntExec{i}"))).collect::<Result<_, _>>()?,
            fp_adders: (0..4).map(|i| find(&format!("FPAdd{i}"))).collect::<Result<_, _>>()?,
            fp_mul: find("FPMul")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::ev6;

    #[test]
    fn resolves_all_backend_blocks() {
        let plan = ev6::baseline();
        let s = Sensors::new(&plan).expect("ev6 names");
        let all: Vec<usize> = s
            .int_q
            .iter()
            .chain(s.fp_q.iter())
            .chain(s.int_reg.iter())
            .chain(s.int_alus.iter())
            .chain(s.fp_adders.iter())
            .chain(std::iter::once(&s.fp_mul))
            .copied()
            .collect();
        let unique: std::collections::HashSet<usize> = all.iter().copied().collect();
        assert_eq!(all.len(), unique.len(), "sensors must map to distinct blocks");
        assert!(all.iter().all(|&i| i < plan.blocks().len()));
    }

    #[test]
    fn missing_block_reported_by_name() {
        let plan = Floorplan::from_rows(1e-3, &[(1e-3, vec![("IntQ0", 1.0)])]);
        let err = Sensors::new(&plan).expect_err("incomplete plan");
        assert!(err.contains("IntQ1"), "error should name the missing block: {err}");
    }
}

//! Mitigation configuration.

use crate::zones::{TripPoint, TripSeverity, TripTable};
use powerbalance_uarch::DutyCycle;
use serde::json::{Error, Value};
use serde::{Deserialize, Serialize};

/// Temperature thresholds and timing for the techniques.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Maximum junction temperature, K (paper Table 2: 358 K).
    pub max_temp: f64,
    /// Issue-queue toggle trigger: toggle when the tail half is this many
    /// kelvin hotter than the head half (paper §3: 0.5 K).
    pub toggle_delta: f64,
    /// Hysteresis for re-enabling a turned-off unit or copy: it must cool
    /// to `max_temp - reenable_margin` first.
    pub reenable_margin: f64,
    /// Activity toggling engages only when the hot half is within this many
    /// kelvin of `max_temp`. Far from the threshold a toggle buys nothing
    /// and the wrap-around long wires cost energy, so the controller saves
    /// toggles for when they extend run time ("before either half
    /// overheats", §2.1.1).
    pub toggle_proximity: f64,
    /// Cycles the core stays frozen per temporal stall. The paper stalls
    /// for the 10 ms package cooling time; under thermal time compression
    /// `k` at frequency `f` that is `10 ms * f / k` cycles (105 000 cycles
    /// for the defaults of 4.2 GHz and k = 400).
    pub cooling_cycles: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_temp: 358.0,
            toggle_delta: 0.5,
            reenable_margin: 1.0,
            toggle_proximity: 2.0,
            cooling_cycles: 105_000,
        }
    }
}

impl Thresholds {
    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_temp <= 0.0 || self.max_temp.is_nan() {
            return Err("max_temp must be positive".into());
        }
        if self.toggle_delta <= 0.0 || self.toggle_delta.is_nan() {
            return Err("toggle_delta must be positive".into());
        }
        if self.reenable_margin <= 0.0 || self.reenable_margin.is_nan() {
            return Err("reenable_margin must be positive".into());
        }
        if self.toggle_proximity <= 0.0 || self.toggle_proximity.is_nan() {
            return Err("toggle_proximity must be positive".into());
        }
        if self.cooling_cycles == 0 {
            return Err("cooling_cycles must be positive".into());
        }
        Ok(())
    }
}

/// Maximum operating points in a DVFS ladder (bounded inline storage keeps
/// the config `Copy`).
pub const MAX_OPPS: usize = 6;

/// Maximum duty levels in a gating ladder.
pub const MAX_GATE_LEVELS: usize = 6;

/// One DVFS operating point.
///
/// Frequency reduction is modeled as deterministic clock-duty gating
/// (`duty.fraction()` of nominal frequency); voltage reduction scales
/// every block's *dynamic* energy by `volt_scale²`, giving the classic
/// P_dyn ∝ V²f. Leakage is deliberately left unscaled (DESIGN.md §12).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OppLevel {
    /// Clock duty implementing the point's frequency scale.
    pub duty: DutyCycle,
    /// Supply-voltage scale relative to nominal, in (0, 1].
    pub volt_scale: f64,
}

impl OppLevel {
    /// Nominal operating point: full frequency, nominal voltage.
    #[must_use]
    pub const fn nominal() -> Self {
        OppLevel { duty: DutyCycle::full(), volt_scale: 1.0 }
    }

    /// The dynamic-energy scale factor at this point (`volt_scale²`).
    #[must_use]
    pub fn dynamic_scale(&self) -> f64 {
        self.volt_scale * self.volt_scale
    }
}

/// A discrete DVFS ladder, level 0 = nominal, deeper levels slower/cooler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OppLadder {
    levels: [OppLevel; MAX_OPPS],
    len: usize,
}

impl OppLadder {
    /// Builds a ladder from `levels` (level 0 first).
    ///
    /// # Errors
    ///
    /// Returns an error if more than [`MAX_OPPS`] levels are given.
    pub fn from_levels(levels: &[OppLevel]) -> Result<Self, String> {
        if levels.len() > MAX_OPPS {
            return Err(format!(
                "OPP ladder holds at most {MAX_OPPS} levels, got {}",
                levels.len()
            ));
        }
        let mut ladder = OppLadder { levels: [OppLevel::nominal(); MAX_OPPS], len: levels.len() };
        ladder.levels[..levels.len()].copy_from_slice(levels);
        Ok(ladder)
    }

    /// The active levels, nominal first.
    #[must_use]
    pub fn levels(&self) -> &[OppLevel] {
        &self.levels[..self.len]
    }

    /// Number of levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ladder has no levels (invalid; see [`validate`](Self::validate)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The operating point at `level`, clamped to the deepest level so a
    /// snapshot restored into a shorter ladder stays well-defined.
    #[must_use]
    pub fn level(&self, level: usize) -> OppLevel {
        self.levels[level.min(self.len.saturating_sub(1))]
    }

    /// Validates the ladder: non-empty, level 0 nominal, every duty valid,
    /// voltages in (0, 1], and frequency/voltage non-increasing with depth.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.len == 0 {
            return Err("OPP ladder must contain at least one level".into());
        }
        if self.levels[0] != OppLevel::nominal() {
            return Err(
                "OPP ladder level 0 must be the nominal point (full duty, volt_scale 1)".into()
            );
        }
        for (i, l) in self.levels().iter().enumerate() {
            l.duty.validate().map_err(|e| format!("OPP level {i}: {e}"))?;
            if !(l.volt_scale > 0.0 && l.volt_scale <= 1.0) {
                return Err(format!("OPP level {i}: volt_scale must be in (0, 1]"));
            }
        }
        for (i, w) in self.levels().windows(2).enumerate() {
            if w[1].duty.fraction() > w[0].duty.fraction() || w[1].volt_scale > w[0].volt_scale {
                return Err(format!(
                    "OPP ladder must slow down monotonically (level {} regresses)",
                    i + 1
                ));
            }
        }
        Ok(())
    }
}

impl Serialize for OppLadder {
    fn serialize(&self) -> Value {
        Value::Array(self.levels().iter().map(Serialize::serialize).collect())
    }
}

impl<'de> Deserialize<'de> for OppLadder {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_array()?;
        if items.len() > MAX_OPPS {
            return Err(Error::custom(format!(
                "OPP ladder holds at most {MAX_OPPS} levels, got {}",
                items.len()
            )));
        }
        let mut levels = [OppLevel::nominal(); MAX_OPPS];
        for (slot, item) in levels.iter_mut().zip(items) {
            *slot = OppLevel::deserialize(item)?;
        }
        Ok(OppLadder { levels, len: items.len() })
    }
}

/// A discrete duty-cycle ladder for fetch gating / clock throttling,
/// level 0 = ungated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DutyLadder {
    levels: [DutyCycle; MAX_GATE_LEVELS],
    len: usize,
}

impl DutyLadder {
    /// Builds a ladder from `levels` (ungated first).
    ///
    /// # Errors
    ///
    /// Returns an error if more than [`MAX_GATE_LEVELS`] levels are given.
    pub fn from_levels(levels: &[DutyCycle]) -> Result<Self, String> {
        if levels.len() > MAX_GATE_LEVELS {
            return Err(format!(
                "duty ladder holds at most {MAX_GATE_LEVELS} levels, got {}",
                levels.len()
            ));
        }
        let mut ladder =
            DutyLadder { levels: [DutyCycle::full(); MAX_GATE_LEVELS], len: levels.len() };
        ladder.levels[..levels.len()].copy_from_slice(levels);
        Ok(ladder)
    }

    /// The active levels, ungated first.
    #[must_use]
    pub fn levels(&self) -> &[DutyCycle] {
        &self.levels[..self.len]
    }

    /// Number of levels.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ladder has no levels (invalid; see [`validate`](Self::validate)).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The duty at `level`, clamped to the deepest level.
    #[must_use]
    pub fn level(&self, level: usize) -> DutyCycle {
        self.levels[level.min(self.len.saturating_sub(1))]
    }

    /// Validates the ladder: non-empty, level 0 ungated, every duty valid,
    /// duty fraction non-increasing with depth.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.len == 0 {
            return Err("duty ladder must contain at least one level".into());
        }
        if self.levels[0] != DutyCycle::full() {
            return Err("duty ladder level 0 must be the ungated duty".into());
        }
        for (i, d) in self.levels().iter().enumerate() {
            d.validate().map_err(|e| format!("duty level {i}: {e}"))?;
        }
        for (i, w) in self.levels().windows(2).enumerate() {
            if w[1].fraction() > w[0].fraction() {
                return Err(format!(
                    "duty ladder must gate harder monotonically (level {} regresses)",
                    i + 1
                ));
            }
        }
        Ok(())
    }
}

impl Serialize for DutyLadder {
    fn serialize(&self) -> Value {
        Value::Array(self.levels().iter().map(Serialize::serialize).collect())
    }
}

impl<'de> Deserialize<'de> for DutyLadder {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value.as_array()?;
        if items.len() > MAX_GATE_LEVELS {
            return Err(Error::custom(format!(
                "duty ladder holds at most {MAX_GATE_LEVELS} levels, got {}",
                items.len()
            )));
        }
        let mut levels = [DutyCycle::full(); MAX_GATE_LEVELS];
        for (slot, item) in levels.iter_mut().zip(items) {
            *slot = DutyCycle::deserialize(item)?;
        }
        Ok(DutyLadder { levels, len: items.len() })
    }
}

/// The trip table the global ladders react to: step down when the Passive
/// point trips, freeze when the Critical point trips (same backstop
/// temperature as the spatial techniques, so peak temperature is equalized
/// across the ablation).
fn ladder_trips(th: &Thresholds) -> TripTable {
    TripTable::from_points(&[
        TripPoint::new(
            TripSeverity::Passive,
            th.max_temp - th.toggle_proximity,
            th.max_temp - th.toggle_proximity - th.reenable_margin,
        ),
        TripPoint::new(TripSeverity::Critical, th.max_temp, th.max_temp - th.reenable_margin),
    ])
    .expect("two points fit")
}

/// Parameters for the global DVFS baseline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DvfsParams {
    /// The discrete operating-point ladder, nominal first.
    pub ladder: OppLadder,
    /// Full-stall cycles charged per operating-point transition (the
    /// voltage ramp; ~10 µs at 4.2 GHz for the default).
    pub transition_cycles: u64,
    /// Trip table driving the ladder.
    pub trips: TripTable,
}

impl DvfsParams {
    /// The default ladder and trips for the given thresholds.
    #[must_use]
    pub fn for_thresholds(th: &Thresholds) -> Self {
        let ladder = OppLadder::from_levels(&[
            OppLevel::nominal(),
            OppLevel { duty: DutyCycle::new(7, 8), volt_scale: 0.95 },
            OppLevel { duty: DutyCycle::new(3, 4), volt_scale: 0.9 },
            OppLevel { duty: DutyCycle::new(1, 2), volt_scale: 0.8 },
        ])
        .expect("four levels fit");
        DvfsParams { ladder, transition_cycles: 42_000, trips: ladder_trips(th) }
    }

    /// Validates ladder, transition latency, and trips.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.ladder.validate()?;
        if self.transition_cycles == 0 {
            return Err("DVFS transition_cycles must be positive".into());
        }
        self.trips.validate().map_err(|e| format!("DVFS trip table: {e}"))
    }
}

/// Parameters for the duty-cycle baselines (fetch gating, clock throttling).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GateParams {
    /// The duty ladder, ungated first.
    pub ladder: DutyLadder,
    /// Trip table driving the ladder.
    pub trips: TripTable,
}

impl GateParams {
    /// The default ladder and trips for the given thresholds.
    #[must_use]
    pub fn for_thresholds(th: &Thresholds) -> Self {
        let ladder = DutyLadder::from_levels(&[
            DutyCycle::full(),
            DutyCycle::new(3, 4),
            DutyCycle::new(1, 2),
            DutyCycle::new(1, 4),
        ])
        .expect("four levels fit");
        GateParams { ladder, trips: ladder_trips(th) }
    }

    /// Validates ladder and trips.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.ladder.validate()?;
        self.trips.validate().map_err(|e| format!("gate trip table: {e}"))
    }
}

/// The paper's global responses (§5): chip-wide mechanisms the spatial
/// techniques are compared against.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GlobalPolicy {
    /// No global response; only the configured spatial techniques and the
    /// temporal freeze backstop run.
    None,
    /// Dynamic voltage/frequency scaling over a discrete OPP ladder.
    Dvfs(DvfsParams),
    /// Front-end fetch gating at a duty cycle.
    FetchGate(GateParams),
    /// Global clock throttling at a duty cycle.
    ClockThrottle(GateParams),
}

impl GlobalPolicy {
    /// Validates the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            GlobalPolicy::None => Ok(()),
            GlobalPolicy::Dvfs(p) => p.validate(),
            GlobalPolicy::FetchGate(p) | GlobalPolicy::ClockThrottle(p) => p.validate(),
        }
    }

    /// Short machine-readable name (used by the CLI and ablation tables).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GlobalPolicy::None => "none",
            GlobalPolicy::Dvfs(_) => "dvfs",
            GlobalPolicy::FetchGate(_) => "fetch-gate",
            GlobalPolicy::ClockThrottle(_) => "clock-throttle",
        }
    }
}

/// Which techniques the [`crate::ThermalManager`] applies.
///
/// The temporal stall backstop is always armed; the booleans enable the
/// paper's spatial techniques individually so every configuration in the
/// evaluation (base, toggling, fine-grain turnoff, mapping × turnoff) is
/// expressible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MitigationConfig {
    /// Activity toggling for both issue queues (§2.1.1).
    pub activity_toggling: bool,
    /// Fine-grain turnoff for integer and FP functional units (§2.2).
    pub alu_turnoff: bool,
    /// Fine-grain turnoff for integer register-file copies (§2.3).
    pub rf_turnoff: bool,
    /// Use the paper's *second* staleness solution for cooling register-file
    /// copies: disallow writes while the copy cools and copy the architected
    /// values back in at the end of the cooling interval. When `false`
    /// (default) the first solution applies: the shutdown threshold sits
    /// slightly below critical and writes continue.
    pub rf_stale_copy: bool,
    /// Thresholds and timing.
    pub thresholds: Thresholds,
    /// Optional global response running alongside (or instead of) the
    /// spatial techniques (§5 comparison baselines).
    pub global: GlobalPolicy,
}

// Manual serde so existing campaign JSON (and the pinned golden artifacts)
// stay byte-identical: the `global` field is omitted when it is `None` on
// the wire, and absent `global` deserializes to `None`.
impl Serialize for MitigationConfig {
    fn serialize(&self) -> Value {
        let mut fields = vec![
            ("activity_toggling".to_string(), self.activity_toggling.serialize()),
            ("alu_turnoff".to_string(), self.alu_turnoff.serialize()),
            ("rf_turnoff".to_string(), self.rf_turnoff.serialize()),
            ("rf_stale_copy".to_string(), self.rf_stale_copy.serialize()),
            ("thresholds".to_string(), self.thresholds.serialize()),
        ];
        if self.global != GlobalPolicy::None {
            fields.push(("global".to_string(), self.global.serialize()));
        }
        Value::Object(fields)
    }
}

impl<'de> Deserialize<'de> for MitigationConfig {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(MitigationConfig {
            activity_toggling: Deserialize::deserialize(value.field("activity_toggling")?)?,
            alu_turnoff: Deserialize::deserialize(value.field("alu_turnoff")?)?,
            rf_turnoff: Deserialize::deserialize(value.field("rf_turnoff")?)?,
            rf_stale_copy: Deserialize::deserialize(value.field("rf_stale_copy")?)?,
            thresholds: Deserialize::deserialize(value.field("thresholds")?)?,
            global: match value.get("global") {
                Some(g) => Deserialize::deserialize(g)?,
                None => GlobalPolicy::None,
            },
        })
    }
}

impl MitigationConfig {
    /// Temporal-only baseline: every overheat stalls the whole core.
    #[must_use]
    pub fn baseline() -> Self {
        MitigationConfig {
            activity_toggling: false,
            alu_turnoff: false,
            rf_turnoff: false,
            rf_stale_copy: false,
            thresholds: Thresholds::default(),
            global: GlobalPolicy::None,
        }
    }

    /// All three spatial techniques enabled.
    #[must_use]
    pub fn spatial_all() -> Self {
        MitigationConfig {
            activity_toggling: true,
            alu_turnoff: true,
            rf_turnoff: true,
            rf_stale_copy: false,
            thresholds: Thresholds::default(),
            global: GlobalPolicy::None,
        }
    }

    /// Only activity toggling (the paper's §4.1 configuration).
    #[must_use]
    pub fn toggling_only() -> Self {
        MitigationConfig { activity_toggling: true, ..MitigationConfig::baseline() }
    }

    /// Only ALU fine-grain turnoff (the paper's §4.2 configuration).
    #[must_use]
    pub fn alu_turnoff_only() -> Self {
        MitigationConfig { alu_turnoff: true, ..MitigationConfig::baseline() }
    }

    /// Only register-file copy turnoff (the paper's §4.3 configurations,
    /// combined with a mapping policy chosen on the core).
    #[must_use]
    pub fn rf_turnoff_only() -> Self {
        MitigationConfig { rf_turnoff: true, ..MitigationConfig::baseline() }
    }

    /// Global DVFS baseline (§5): no spatial techniques, a discrete OPP
    /// ladder stepped by temperature.
    #[must_use]
    pub fn dvfs() -> Self {
        let th = Thresholds::default();
        MitigationConfig {
            global: GlobalPolicy::Dvfs(DvfsParams::for_thresholds(&th)),
            ..MitigationConfig::baseline()
        }
    }

    /// Global fetch-gating baseline (§5): duty-cycle the front end.
    #[must_use]
    pub fn fetch_gating() -> Self {
        let th = Thresholds::default();
        MitigationConfig {
            global: GlobalPolicy::FetchGate(GateParams::for_thresholds(&th)),
            ..MitigationConfig::baseline()
        }
    }

    /// Global clock-throttling baseline (§5): duty-cycle the whole core
    /// clock without a voltage change.
    #[must_use]
    pub fn clock_throttle() -> Self {
        let th = Thresholds::default();
        MitigationConfig {
            global: GlobalPolicy::ClockThrottle(GateParams::for_thresholds(&th)),
            ..MitigationConfig::baseline()
        }
    }

    /// The spatial techniques with the DVFS ladder underneath: spatial
    /// balancing absorbs local hot spots, DVFS steps in only when the whole
    /// core trends hot.
    #[must_use]
    pub fn combined() -> Self {
        let th = Thresholds::default();
        MitigationConfig {
            global: GlobalPolicy::Dvfs(DvfsParams::for_thresholds(&th)),
            ..MitigationConfig::spatial_all()
        }
    }

    /// Returns the config with its thermal limit moved to `max_temp`, any
    /// global policy's trip tables and ladder rebuilt for the new
    /// thresholds. Experiments use this to compare policies at one
    /// (possibly non-default) thermal budget.
    #[must_use]
    pub fn with_max_temp(mut self, max_temp: f64) -> Self {
        self.thresholds.max_temp = max_temp;
        self.global = match self.global {
            GlobalPolicy::None => GlobalPolicy::None,
            GlobalPolicy::Dvfs(_) => {
                GlobalPolicy::Dvfs(DvfsParams::for_thresholds(&self.thresholds))
            }
            GlobalPolicy::FetchGate(_) => {
                GlobalPolicy::FetchGate(GateParams::for_thresholds(&self.thresholds))
            }
            GlobalPolicy::ClockThrottle(_) => {
                GlobalPolicy::ClockThrottle(GateParams::for_thresholds(&self.thresholds))
            }
        };
        self
    }

    /// Validates thresholds and, when present, the global policy's ladder
    /// and trip table.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.thresholds.validate()?;
        self.global.validate()
    }
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let t = Thresholds::default();
        assert!((t.max_temp - 358.0).abs() < 1e-12);
        assert!((t.toggle_delta - 0.5).abs() < 1e-12);
        t.validate().expect("defaults valid");
    }

    #[test]
    fn presets_enable_the_right_techniques() {
        assert!(!MitigationConfig::baseline().activity_toggling);
        assert!(MitigationConfig::toggling_only().activity_toggling);
        assert!(!MitigationConfig::toggling_only().alu_turnoff);
        assert!(MitigationConfig::alu_turnoff_only().alu_turnoff);
        assert!(MitigationConfig::rf_turnoff_only().rf_turnoff);
        let all = MitigationConfig::spatial_all();
        assert!(all.activity_toggling && all.alu_turnoff && all.rf_turnoff);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let t = Thresholds { toggle_delta: 0.0, ..Thresholds::default() };
        assert!(t.validate().is_err());
        let t = Thresholds { cooling_cycles: 0, ..Thresholds::default() };
        assert!(t.validate().is_err());
    }

    #[test]
    fn global_presets_validate_and_name_themselves() {
        for (cfg, name) in [
            (MitigationConfig::dvfs(), "dvfs"),
            (MitigationConfig::fetch_gating(), "fetch-gate"),
            (MitigationConfig::clock_throttle(), "clock-throttle"),
            (MitigationConfig::combined(), "dvfs"),
        ] {
            cfg.validate().expect("preset valid");
            assert_eq!(cfg.global.name(), name);
        }
        assert_eq!(MitigationConfig::baseline().global.name(), "none");
    }

    #[test]
    fn ladder_validation_rejects_degenerate_ladders() {
        // Empty ladders.
        assert!(OppLadder::from_levels(&[]).expect("fits").validate().is_err());
        assert!(DutyLadder::from_levels(&[]).expect("fits").validate().is_err());
        // Level 0 must be nominal / ungated.
        let l = OppLadder::from_levels(&[OppLevel { duty: DutyCycle::new(1, 2), volt_scale: 1.0 }])
            .expect("fits");
        assert!(l.validate().is_err());
        let d = DutyLadder::from_levels(&[DutyCycle::new(1, 2)]).expect("fits");
        assert!(d.validate().is_err());
        // Speeding back up deeper in the ladder is rejected.
        let l = OppLadder::from_levels(&[
            OppLevel::nominal(),
            OppLevel { duty: DutyCycle::new(1, 2), volt_scale: 0.8 },
            OppLevel { duty: DutyCycle::new(3, 4), volt_scale: 0.8 },
        ])
        .expect("fits");
        assert!(l.validate().is_err());
    }

    #[test]
    fn config_validation_covers_global_trip_tables() {
        // Satellite requirement: a trip table whose clear temperature is at
        // or above its trip temperature is rejected through
        // MitigationConfig::validate.
        let mut cfg = MitigationConfig::dvfs();
        if let GlobalPolicy::Dvfs(ref mut p) = cfg.global {
            p.trips = TripTable::from_points(&[TripPoint::new(TripSeverity::Hot, 356.0, 356.0)])
                .expect("fits");
        }
        assert!(cfg.validate().is_err());
        let mut cfg = MitigationConfig::fetch_gating();
        if let GlobalPolicy::FetchGate(ref mut p) = cfg.global {
            p.trips = TripTable::from_points(&[]).expect("fits");
        }
        assert!(cfg.validate().is_err(), "empty trip table must be rejected");
        MitigationConfig::spatial_all().validate().expect("spatial presets stay valid");
    }

    #[test]
    fn serde_omits_global_none_and_round_trips_policies() {
        // Wire compatibility: a config without a global policy serializes
        // exactly as it did before the field existed, and old JSON without
        // the field still deserializes.
        let json = serde::json::to_string(&MitigationConfig::spatial_all());
        assert!(!json.contains("global"), "global: None must be omitted: {json}");
        let back: MitigationConfig = serde::json::from_str(&json).expect("deserialize");
        assert_eq!(back, MitigationConfig::spatial_all());

        for cfg in [
            MitigationConfig::dvfs(),
            MitigationConfig::fetch_gating(),
            MitigationConfig::clock_throttle(),
            MitigationConfig::combined(),
        ] {
            let json = serde::json::to_string(&cfg);
            assert!(json.contains("global"));
            let back: MitigationConfig = serde::json::from_str(&json).expect("deserialize");
            assert_eq!(back, cfg);
        }
    }
}

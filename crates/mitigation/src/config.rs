//! Mitigation configuration.

use serde::{Deserialize, Serialize};

/// Temperature thresholds and timing for the techniques.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Thresholds {
    /// Maximum junction temperature, K (paper Table 2: 358 K).
    pub max_temp: f64,
    /// Issue-queue toggle trigger: toggle when the tail half is this many
    /// kelvin hotter than the head half (paper §3: 0.5 K).
    pub toggle_delta: f64,
    /// Hysteresis for re-enabling a turned-off unit or copy: it must cool
    /// to `max_temp - reenable_margin` first.
    pub reenable_margin: f64,
    /// Activity toggling engages only when the hot half is within this many
    /// kelvin of `max_temp`. Far from the threshold a toggle buys nothing
    /// and the wrap-around long wires cost energy, so the controller saves
    /// toggles for when they extend run time ("before either half
    /// overheats", §2.1.1).
    pub toggle_proximity: f64,
    /// Cycles the core stays frozen per temporal stall. The paper stalls
    /// for the 10 ms package cooling time; under thermal time compression
    /// `k` at frequency `f` that is `10 ms * f / k` cycles (105 000 cycles
    /// for the defaults of 4.2 GHz and k = 400).
    pub cooling_cycles: u64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            max_temp: 358.0,
            toggle_delta: 0.5,
            reenable_margin: 1.0,
            toggle_proximity: 2.0,
            cooling_cycles: 105_000,
        }
    }
}

impl Thresholds {
    /// Validates the thresholds.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_temp <= 0.0 || self.max_temp.is_nan() {
            return Err("max_temp must be positive".into());
        }
        if self.toggle_delta <= 0.0 || self.toggle_delta.is_nan() {
            return Err("toggle_delta must be positive".into());
        }
        if self.reenable_margin <= 0.0 || self.reenable_margin.is_nan() {
            return Err("reenable_margin must be positive".into());
        }
        if self.toggle_proximity <= 0.0 || self.toggle_proximity.is_nan() {
            return Err("toggle_proximity must be positive".into());
        }
        if self.cooling_cycles == 0 {
            return Err("cooling_cycles must be positive".into());
        }
        Ok(())
    }
}

/// Which techniques the [`crate::ThermalManager`] applies.
///
/// The temporal stall backstop is always armed; the booleans enable the
/// paper's spatial techniques individually so every configuration in the
/// evaluation (base, toggling, fine-grain turnoff, mapping × turnoff) is
/// expressible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MitigationConfig {
    /// Activity toggling for both issue queues (§2.1.1).
    pub activity_toggling: bool,
    /// Fine-grain turnoff for integer and FP functional units (§2.2).
    pub alu_turnoff: bool,
    /// Fine-grain turnoff for integer register-file copies (§2.3).
    pub rf_turnoff: bool,
    /// Use the paper's *second* staleness solution for cooling register-file
    /// copies: disallow writes while the copy cools and copy the architected
    /// values back in at the end of the cooling interval. When `false`
    /// (default) the first solution applies: the shutdown threshold sits
    /// slightly below critical and writes continue.
    pub rf_stale_copy: bool,
    /// Thresholds and timing.
    pub thresholds: Thresholds,
}

impl MitigationConfig {
    /// Temporal-only baseline: every overheat stalls the whole core.
    #[must_use]
    pub fn baseline() -> Self {
        MitigationConfig {
            activity_toggling: false,
            alu_turnoff: false,
            rf_turnoff: false,
            rf_stale_copy: false,
            thresholds: Thresholds::default(),
        }
    }

    /// All three spatial techniques enabled.
    #[must_use]
    pub fn spatial_all() -> Self {
        MitigationConfig {
            activity_toggling: true,
            alu_turnoff: true,
            rf_turnoff: true,
            rf_stale_copy: false,
            thresholds: Thresholds::default(),
        }
    }

    /// Only activity toggling (the paper's §4.1 configuration).
    #[must_use]
    pub fn toggling_only() -> Self {
        MitigationConfig { activity_toggling: true, ..MitigationConfig::baseline() }
    }

    /// Only ALU fine-grain turnoff (the paper's §4.2 configuration).
    #[must_use]
    pub fn alu_turnoff_only() -> Self {
        MitigationConfig { alu_turnoff: true, ..MitigationConfig::baseline() }
    }

    /// Only register-file copy turnoff (the paper's §4.3 configurations,
    /// combined with a mapping policy chosen on the core).
    #[must_use]
    pub fn rf_turnoff_only() -> Self {
        MitigationConfig { rf_turnoff: true, ..MitigationConfig::baseline() }
    }
}

impl Default for MitigationConfig {
    fn default() -> Self {
        MitigationConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_parameters() {
        let t = Thresholds::default();
        assert!((t.max_temp - 358.0).abs() < 1e-12);
        assert!((t.toggle_delta - 0.5).abs() < 1e-12);
        t.validate().expect("defaults valid");
    }

    #[test]
    fn presets_enable_the_right_techniques() {
        assert!(!MitigationConfig::baseline().activity_toggling);
        assert!(MitigationConfig::toggling_only().activity_toggling);
        assert!(!MitigationConfig::toggling_only().alu_turnoff);
        assert!(MitigationConfig::alu_turnoff_only().alu_turnoff);
        assert!(MitigationConfig::rf_turnoff_only().rf_turnoff);
        let all = MitigationConfig::spatial_all();
        assert!(all.activity_toggling && all.alu_turnoff && all.rf_turnoff);
    }

    #[test]
    fn validation_rejects_nonsense() {
        let t = Thresholds { toggle_delta: 0.0, ..Thresholds::default() };
        assert!(t.validate().is_err());
        let t = Thresholds { cooling_cycles: 0, ..Thresholds::default() };
        assert!(t.validate().is_err());
    }
}

//! Thermal policies: pure deciders between the zone layer and the
//! actuator layer.
//!
//! A [`ThermalPolicy`] looks at the [`Zones`], the current temperatures, a
//! read-only [`CoreView`], and the manager-held [`PolicyState`], and emits
//! [`Actuation`] commands. Policies hold **no mutable state of their own**
//! — everything dynamic lives in [`PolicyState`] (snapshotted with the
//! manager) and is advanced by the executor. That makes every policy a
//! pure function of its inputs, which is what lets the differential
//! checker in `powerbalance-check` mirror them decision for decision.
//!
//! Four policies exist:
//!
//! * [`SpatialPolicy`] — the paper's three spatial techniques plus the
//!   temporal freeze backstop, ported decision-for-decision from the
//!   original monolithic manager (bit-identical, including stats).
//! * [`GlobalLadderPolicy`] — the paper's §5 global responses (DVFS,
//!   fetch gating, clock throttling) stepping a discrete ladder off the
//!   hottest zone.
//! * [`CombinedPolicy`] — spatial techniques with a global ladder
//!   underneath.

use crate::actuators::Actuation;
use crate::zones::{ThermalZone, TripSeverity, Zones};
use crate::{DvfsParams, GateParams, GlobalPolicy, MitigationConfig};
use powerbalance_isa::ExecDomain;
use powerbalance_uarch::{Core, IqActivity, UnitKind};
use serde::{Deserialize, Serialize};

/// Upper bound on functional units per class the policies track on the
/// stack (the EV6-style floorplans have 6 integer ALUs and 4 FP adders).
const MAX_UNITS: usize = 8;

/// Dynamic policy state, owned by the manager and advanced by the
/// actuator executor. Snapshotting this (plus the stats and freeze state)
/// is sufficient for a bit-exact resume of any policy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyState {
    /// Current DVFS ladder level (0 = nominal).
    pub opp_level: usize,
    /// End cycle of an in-progress DVFS transition stall, if any.
    pub stall_until: Option<u64>,
    /// Current duty-ladder level for fetch gating / clock throttling
    /// (0 = ungated).
    pub gate_level: usize,
}

/// Read-only view of the core a policy decides against.
pub struct CoreView<'a> {
    /// The core, pre-sample (policies must not rely on mutating it).
    pub core: &'a Core,
    /// Integer issue-queue activity of the window that just ended.
    pub int_iq: &'a IqActivity,
    /// FP issue-queue activity of the window that just ended.
    pub fp_iq: &'a IqActivity,
    /// Current cycle.
    pub now: u64,
    /// End cycle of an in-progress thermal freeze, if any.
    pub frozen_until: Option<u64>,
}

/// A pluggable thermal policy.
pub trait ThermalPolicy: std::fmt::Debug + Send {
    /// Emits actuations for one thermal sample.
    ///
    /// Must be a pure function of the arguments: same inputs, same
    /// commands, in the same order. The manager's executor applies them.
    fn on_sample(
        &mut self,
        zones: &Zones,
        temps: &[f64],
        view: &CoreView<'_>,
        state: &PolicyState,
        out: &mut Vec<Actuation>,
    );

    /// The factor by which every block's *dynamic* energy is scaled at the
    /// current operating point (`volt_scale²` for DVFS, 1.0 otherwise).
    fn dynamic_power_scale(&self, _state: &PolicyState) -> f64 {
        1.0
    }
}

/// Builds the policy selected by the config.
///
/// `GlobalPolicy::None` yields the pure spatial policy (which is also the
/// temporal-only baseline when no spatial technique is enabled); a global
/// policy without spatial techniques yields the corresponding ladder
/// baseline; both together yield the combined policy.
#[must_use]
pub fn build_policy(cfg: &MitigationConfig) -> Box<dyn ThermalPolicy> {
    let spatial = cfg.activity_toggling || cfg.alu_turnoff || cfg.rf_turnoff;
    match (&cfg.global, spatial) {
        (GlobalPolicy::None, _) => Box::new(SpatialPolicy::new(*cfg)),
        (_, false) => Box::new(GlobalLadderPolicy::new(cfg.global, cfg.thresholds.cooling_cycles)),
        (_, true) => Box::new(CombinedPolicy::new(*cfg)),
    }
}

/// Predicted post-sample enable state, so the freeze decision sees the
/// same world the original manager saw after mutating the core in place.
struct Predicted {
    int_alus: [bool; MAX_UNITS],
    fp_adders: [bool; MAX_UNITS],
    rf: [bool; 2],
}

impl Predicted {
    /// Reads are gated on the technique flags exactly as the original
    /// loop's were: with `alu_turnoff` (or `rf_turnoff`) off the core may
    /// legitimately have fewer units (or copies) than the floorplan has
    /// sensor blocks, and the ungated freeze decision only looks at
    /// temperatures anyway.
    fn from_core(core: &Core, zones: &Zones, cfg: &MitigationConfig) -> Self {
        assert!(zones.int_alus.len() <= MAX_UNITS && zones.fp_adders.len() <= MAX_UNITS);
        let mut p =
            Predicted { int_alus: [true; MAX_UNITS], fp_adders: [true; MAX_UNITS], rf: [true; 2] };
        if cfg.alu_turnoff {
            for i in 0..zones.int_alus.len() {
                p.int_alus[i] = core.unit_enabled(UnitKind::IntAlu, i);
            }
            for i in 0..zones.fp_adders.len() {
                p.fp_adders[i] = core.unit_enabled(UnitKind::FpAdd, i);
            }
        }
        if cfg.rf_turnoff {
            for c in 0..2 {
                p.rf[c] = core.rf_copy_enabled(c);
            }
        }
        p
    }
}

/// The paper's spatial techniques plus the temporal backstop.
///
/// This is the original `ThermalManager` control loop re-expressed over
/// zones and actuations. Every temperature comparison reads a trip point
/// whose value was derived with the exact arithmetic the monolithic code
/// inlined, and actuations are emitted in the original mutation order, so
/// applying them reproduces the pre-refactor behaviour bit for bit.
#[derive(Debug, Clone, Copy)]
pub struct SpatialPolicy {
    cfg: MitigationConfig,
}

impl SpatialPolicy {
    /// A spatial policy for `cfg` (the `global` field is ignored here;
    /// [`CombinedPolicy`] composes it).
    #[must_use]
    pub fn new(cfg: MitigationConfig) -> Self {
        SpatialPolicy { cfg }
    }

    /// Steps 2–4 of the original control loop: toggling, unit turnoff,
    /// register-file copy turnoff. Returns the predicted enable state for
    /// the freeze decision.
    fn decide_techniques(
        &self,
        zones: &Zones,
        temps: &[f64],
        view: &CoreView<'_>,
        out: &mut Vec<Actuation>,
    ) -> Predicted {
        let th = self.cfg.thresholds;
        let mut pred = Predicted::from_core(view.core, zones, &self.cfg);

        // Activity toggling: flip head/tail when the compaction-active
        // half is inside the passive band and hotter than the quiet half
        // by more than the toggle threshold.
        if self.cfg.activity_toggling {
            for (domain, q, act) in [
                (ExecDomain::Int, &zones.int_q, view.int_iq),
                (ExecDomain::Fp, &zones.fp_q, view.fp_iq),
            ] {
                let moves = [
                    act.compact_moves[0] + act.mux_selects[0],
                    act.compact_moves[1] + act.mux_selects[1],
                ];
                if moves[0] + moves[1] == 0 {
                    continue; // idle queue: nothing to balance
                }
                let active = usize::from(moves[1] > moves[0]);
                let quiet = 1 - active;
                let passive = q[active].trips.points()[0];
                if q[active].temp(temps) >= passive.temp
                    && q[active].temp(temps) - q[quiet].temp(temps) > th.toggle_delta
                {
                    out.push(Actuation::ToggleIq { domain });
                }
            }
        }

        // Fine-grain turnoff for functional units, in the original walk
        // order: integer ALUs, FP adders, the multiplier.
        if self.cfg.alu_turnoff {
            let n_int = zones.int_alus.len();
            let n_fp = zones.fp_adders.len();
            // The multiplier's enable state never feeds the freeze
            // decision, so a local suffices for its prediction.
            let mut mul_enabled = view.core.unit_enabled(UnitKind::FpMul, 0);
            for i in 0..n_int + n_fp + 1 {
                let (kind, idx, zone, enabled) = if i < n_int {
                    (UnitKind::IntAlu, i, &zones.int_alus[i], &mut pred.int_alus[i])
                } else if i < n_int + n_fp {
                    let j = i - n_int;
                    (UnitKind::FpAdd, j, &zones.fp_adders[j], &mut pred.fp_adders[j])
                } else {
                    (UnitKind::FpMul, 0, &zones.fp_mul, &mut mul_enabled)
                };
                let hot = zone.trips.points()[0];
                let t = zone.temp(temps);
                if *enabled {
                    if t >= hot.temp {
                        out.push(Actuation::SetUnitEnabled { kind, index: idx, enabled: false });
                        *enabled = false;
                    }
                } else if t <= hot.clear_temp {
                    out.push(Actuation::SetUnitEnabled { kind, index: idx, enabled: true });
                    *enabled = true;
                }
            }
        }

        // Register-file copy turnoff per the configured staleness solution.
        if self.cfg.rf_turnoff {
            for (copy, zone) in zones.int_reg.iter().enumerate() {
                let hot = zone.trips.points()[0];
                let t = zone.temp(temps);
                if pred.rf[copy] {
                    if t >= hot.temp {
                        out.push(Actuation::DisableRfCopy {
                            copy,
                            gate_writes: self.cfg.rf_stale_copy,
                        });
                        pred.rf[copy] = false;
                    }
                } else if t <= hot.clear_temp {
                    out.push(Actuation::EnableRfCopy { copy, restore: self.cfg.rf_stale_copy });
                    pred.rf[copy] = true;
                }
            }
        }

        pred
    }

    /// Step 5: does the predicted post-sample state force a temporal stall?
    fn needs_freeze(&self, zones: &Zones, temps: &[f64], pred: &Predicted) -> bool {
        // Issue-queue halves cannot be turned off individually: any
        // critical half forces a stall, toggling or not.
        for z in zones.int_q.iter().chain(zones.fp_q.iter()) {
            if z.trips.tripped(TripSeverity::Critical, z.temp(temps)) {
                return true;
            }
        }

        if self.cfg.alu_turnoff {
            // Stall only when an entire unit class is turned off.
            let all_int_off = (0..zones.int_alus.len()).all(|i| !pred.int_alus[i]);
            let all_fp_off = (0..zones.fp_adders.len()).all(|i| !pred.fp_adders[i]);
            if all_int_off || all_fp_off {
                return true;
            }
        } else {
            for z in zones.int_alus.iter().chain(zones.fp_adders.iter()) {
                if z.trips.tripped(TripSeverity::Critical, z.temp(temps)) {
                    return true;
                }
            }
            if zones.fp_mul.trips.tripped(TripSeverity::Critical, zones.fp_mul.temp(temps)) {
                return true;
            }
        }

        if self.cfg.rf_turnoff {
            if pred.rf.iter().all(|&on| !on) {
                return true;
            }
        } else {
            for z in &zones.int_reg {
                if z.trips.tripped(TripSeverity::Critical, z.temp(temps)) {
                    return true;
                }
            }
        }

        false
    }

    /// While frozen, cooled units and copies come back online so the thaw
    /// resumes at full width.
    fn reenable_cooled(&self, zones: &Zones, temps: &[f64], core: &Core, out: &mut Vec<Actuation>) {
        let cooled = |z: &ThermalZone| z.temp(temps) <= z.trips.points()[0].clear_temp;
        if self.cfg.alu_turnoff {
            for (i, z) in zones.int_alus.iter().enumerate() {
                if !core.unit_enabled(UnitKind::IntAlu, i) && cooled(z) {
                    out.push(Actuation::SetUnitEnabled {
                        kind: UnitKind::IntAlu,
                        index: i,
                        enabled: true,
                    });
                }
            }
            for (i, z) in zones.fp_adders.iter().enumerate() {
                if !core.unit_enabled(UnitKind::FpAdd, i) && cooled(z) {
                    out.push(Actuation::SetUnitEnabled {
                        kind: UnitKind::FpAdd,
                        index: i,
                        enabled: true,
                    });
                }
            }
            if !core.unit_enabled(UnitKind::FpMul, 0) && cooled(&zones.fp_mul) {
                out.push(Actuation::SetUnitEnabled {
                    kind: UnitKind::FpMul,
                    index: 0,
                    enabled: true,
                });
            }
        }
        if self.cfg.rf_turnoff {
            for (copy, z) in zones.int_reg.iter().enumerate() {
                if !core.rf_copy_enabled(copy) && cooled(z) {
                    out.push(Actuation::EnableRfCopy { copy, restore: self.cfg.rf_stale_copy });
                }
            }
        }
    }
}

impl ThermalPolicy for SpatialPolicy {
    fn on_sample(
        &mut self,
        zones: &Zones,
        temps: &[f64],
        view: &CoreView<'_>,
        _state: &PolicyState,
        out: &mut Vec<Actuation>,
    ) {
        // 1. Handle an ongoing temporal stall.
        if let Some(until) = view.frozen_until {
            if view.now < until {
                self.reenable_cooled(zones, temps, view.core, out);
                return;
            }
            out.push(Actuation::Unfreeze);
        }

        // 2–4. The spatial techniques.
        let pred = self.decide_techniques(zones, temps, view, out);

        // 5. Temporal backstop.
        if self.needs_freeze(zones, temps, &pred) {
            out.push(Actuation::Freeze { until: view.now + self.cfg.thresholds.cooling_cycles });
        }
    }
}

/// Returns `true` when the caller should emit nothing because a freeze or
/// transition stall is still in effect; pushes [`Actuation::Unfreeze`]
/// when one just expired.
fn handle_frozen(view: &CoreView<'_>, state: &PolicyState, out: &mut Vec<Actuation>) -> bool {
    let until = match (view.frozen_until, state.stall_until) {
        (Some(a), Some(b)) => Some(a.max(b)),
        (a, b) => a.or(b),
    };
    if let Some(u) = until {
        if view.now < u {
            return true;
        }
        out.push(Actuation::Unfreeze);
    }
    false
}

/// One ladder step for the DVFS baseline (the critical freeze is handled
/// by the caller): step down when any non-critical point is tripped, step
/// back up once every point has cleared. Each step costs a full
/// transition stall.
fn dvfs_step(
    p: &DvfsParams,
    hottest: f64,
    now: u64,
    state: &PolicyState,
    out: &mut Vec<Actuation>,
) {
    if p.trips.highest_tripped(hottest).is_some() {
        if state.opp_level + 1 < p.ladder.len() {
            let level = state.opp_level + 1;
            out.push(Actuation::SetOpp { level, duty: p.ladder.level(level).duty });
            out.push(Actuation::Stall { until: now + p.transition_cycles });
        }
    } else if p.trips.all_clear(hottest) && state.opp_level > 0 {
        let level = state.opp_level - 1;
        out.push(Actuation::SetOpp { level, duty: p.ladder.level(level).duty });
        out.push(Actuation::Stall { until: now + p.transition_cycles });
    }
}

/// One ladder step for the duty-cycle baselines. Duty changes are
/// instantaneous (no transition stall): gating is a clock-distribution
/// act, not a voltage ramp.
fn gate_step(
    p: &GateParams,
    clock: bool,
    hottest: f64,
    state: &PolicyState,
    out: &mut Vec<Actuation>,
) {
    let push = |level: usize, out: &mut Vec<Actuation>| {
        let duty = p.ladder.level(level);
        out.push(if clock {
            Actuation::SetClockDuty { level, duty }
        } else {
            Actuation::SetFetchDuty { level, duty }
        });
    };
    if p.trips.highest_tripped(hottest).is_some() {
        if state.gate_level + 1 < p.ladder.len() {
            push(state.gate_level + 1, out);
        }
    } else if p.trips.all_clear(hottest) && state.gate_level > 0 {
        push(state.gate_level - 1, out);
    }
}

/// Whether the policy's own trip table has a tripped critical point.
fn critical_tripped(global: &GlobalPolicy, hottest: f64) -> bool {
    match global {
        GlobalPolicy::None => false,
        GlobalPolicy::Dvfs(p) => p.trips.tripped(TripSeverity::Critical, hottest),
        GlobalPolicy::FetchGate(p) | GlobalPolicy::ClockThrottle(p) => {
            p.trips.tripped(TripSeverity::Critical, hottest)
        }
    }
}

/// The §5 global responses: a discrete ladder (OPPs or duty cycles)
/// stepped off the hottest zone, with the same critical-temperature freeze
/// backstop as the spatial techniques so peak temperature is equalized
/// across the comparison.
#[derive(Debug, Clone, Copy)]
pub struct GlobalLadderPolicy {
    global: GlobalPolicy,
    cooling_cycles: u64,
}

impl GlobalLadderPolicy {
    /// A ladder policy for a non-`None` global response.
    ///
    /// # Panics
    ///
    /// Panics if `global` is [`GlobalPolicy::None`].
    #[must_use]
    pub fn new(global: GlobalPolicy, cooling_cycles: u64) -> Self {
        assert!(global != GlobalPolicy::None, "ladder policy needs a global response");
        GlobalLadderPolicy { global, cooling_cycles }
    }
}

impl ThermalPolicy for GlobalLadderPolicy {
    fn on_sample(
        &mut self,
        zones: &Zones,
        temps: &[f64],
        view: &CoreView<'_>,
        state: &PolicyState,
        out: &mut Vec<Actuation>,
    ) {
        if handle_frozen(view, state, out) {
            return;
        }
        let hottest = zones.hottest(temps);
        if critical_tripped(&self.global, hottest) {
            out.push(Actuation::Freeze { until: view.now + self.cooling_cycles });
            return;
        }
        match &self.global {
            GlobalPolicy::None => unreachable!("checked at construction"),
            GlobalPolicy::Dvfs(p) => dvfs_step(p, hottest, view.now, state, out),
            GlobalPolicy::FetchGate(p) => gate_step(p, false, hottest, state, out),
            GlobalPolicy::ClockThrottle(p) => gate_step(p, true, hottest, state, out),
        }
    }

    fn dynamic_power_scale(&self, state: &PolicyState) -> f64 {
        match &self.global {
            GlobalPolicy::Dvfs(p) => p.ladder.level(state.opp_level).dynamic_scale(),
            _ => 1.0,
        }
    }
}

/// Spatial techniques with a global ladder underneath: the spatial layer
/// absorbs local hot spots, the ladder engages only when the whole core
/// trends hot, and a single shared freeze backstop fires when either
/// layer demands it (the ladder step is skipped on a freeze sample — the
/// core is stopped anyway).
#[derive(Debug, Clone, Copy)]
pub struct CombinedPolicy {
    spatial: SpatialPolicy,
    global: GlobalPolicy,
    cooling_cycles: u64,
}

impl CombinedPolicy {
    /// A combined policy from a config with both spatial techniques and a
    /// global response.
    #[must_use]
    pub fn new(cfg: MitigationConfig) -> Self {
        CombinedPolicy {
            spatial: SpatialPolicy::new(cfg),
            global: cfg.global,
            cooling_cycles: cfg.thresholds.cooling_cycles,
        }
    }
}

impl ThermalPolicy for CombinedPolicy {
    fn on_sample(
        &mut self,
        zones: &Zones,
        temps: &[f64],
        view: &CoreView<'_>,
        state: &PolicyState,
        out: &mut Vec<Actuation>,
    ) {
        if handle_frozen(view, state, out) {
            self.spatial.reenable_cooled(zones, temps, view.core, out);
            return;
        }
        let pred = self.spatial.decide_techniques(zones, temps, view, out);
        let hottest = zones.hottest(temps);
        if self.spatial.needs_freeze(zones, temps, &pred) || critical_tripped(&self.global, hottest)
        {
            out.push(Actuation::Freeze { until: view.now + self.cooling_cycles });
            return;
        }
        match &self.global {
            GlobalPolicy::None => {}
            GlobalPolicy::Dvfs(p) => dvfs_step(p, hottest, view.now, state, out),
            GlobalPolicy::FetchGate(p) => gate_step(p, false, hottest, state, out),
            GlobalPolicy::ClockThrottle(p) => gate_step(p, true, hottest, state, out),
        }
    }

    fn dynamic_power_scale(&self, state: &PolicyState) -> f64 {
        match &self.global {
            GlobalPolicy::Dvfs(p) => p.ladder.level(state.opp_level).dynamic_scale(),
            _ => 1.0,
        }
    }
}

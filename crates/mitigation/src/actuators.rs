//! Cooling-device actuators: typed commands and the executor that applies
//! them.
//!
//! Policies never touch microarchitectural state directly. They emit
//! [`Actuation`] commands into a buffer and the manager's executor
//! ([`apply`]) translates each command into the corresponding [`Core`]
//! mutation, updating [`MitigationStats`] and the manager-held
//! [`PolicyState`] at the same decision points the pre-refactor manager
//! used. This keeps policies pure functions of (zones, temperatures, core
//! view, policy state) — which is what lets `powerbalance-check` mirror
//! them differentially — and concentrates every side effect in one place.

use crate::{MitigationStats, PolicyState};
use powerbalance_isa::ExecDomain;
use powerbalance_uarch::{Core, DutyCycle, UnitKind};

/// One typed command from a thermal policy to the core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Actuation {
    /// Flip the named issue queue between conventional and toggled mode.
    ToggleIq {
        /// Which issue queue to toggle.
        domain: ExecDomain,
    },
    /// Enable or disable one functional unit (busy-mark it for select).
    SetUnitEnabled {
        /// Unit class.
        kind: UnitKind,
        /// Index within the class.
        index: usize,
        /// Desired state.
        enabled: bool,
    },
    /// Shut off a register-file copy; optionally gate writes into it
    /// (staleness solution 2).
    DisableRfCopy {
        /// Which copy.
        copy: usize,
        /// Also gate writes (the stale-copy solution).
        gate_writes: bool,
    },
    /// Bring a register-file copy back; optionally charge the catch-up
    /// restore traffic (staleness solution 2).
    EnableRfCopy {
        /// Which copy.
        copy: usize,
        /// Re-enable writes and charge the restore burst.
        restore: bool,
    },
    /// Temporal backstop: freeze the whole core until the given cycle.
    Freeze {
        /// Cycle at which the freeze expires.
        until: u64,
    },
    /// DVFS operating-point transition: pick a new ladder level and apply
    /// its frequency duty to the core clock.
    SetOpp {
        /// New ladder level (0 = nominal).
        level: usize,
        /// Clock duty implementing the level's frequency scale.
        duty: DutyCycle,
    },
    /// Stall the core while a DVFS transition settles (counted separately
    /// from thermal freezes).
    Stall {
        /// Cycle at which the transition completes.
        until: u64,
    },
    /// Set the front-end fetch-gating level.
    SetFetchDuty {
        /// New ladder level (0 = ungated).
        level: usize,
        /// Fetch duty cycle for that level.
        duty: DutyCycle,
    },
    /// Set the global clock-throttle level.
    SetClockDuty {
        /// New ladder level (0 = full speed).
        level: usize,
        /// Clock duty cycle for that level.
        duty: DutyCycle,
    },
    /// Clear an expired freeze or transition stall and resume the core.
    Unfreeze,
}

/// Applies `actions` in emission order.
///
/// Returns nothing; all effects land in `core`, `stats`, `state`, and
/// `frozen_until`. Stats accounting matches the historical manager:
/// a queue toggle counts once (twice nothing — `int_toggles` sub-counts
/// integer-side toggles), only *disables* count as turnoffs, and thermal
/// freezes are counted separately from DVFS transition stalls.
pub fn apply(
    core: &mut Core,
    actions: &[Actuation],
    stats: &mut MitigationStats,
    state: &mut PolicyState,
    frozen_until: &mut Option<u64>,
) {
    for &action in actions {
        match action {
            Actuation::ToggleIq { domain } => {
                let mode = core.iq_mode(domain);
                core.set_iq_mode(domain, mode.flipped());
                stats.toggles += 1;
                if domain == ExecDomain::Int {
                    stats.int_toggles += 1;
                }
            }
            Actuation::SetUnitEnabled { kind, index, enabled } => {
                core.set_unit_enabled(kind, index, enabled);
                if !enabled {
                    stats.alu_turnoffs += 1;
                }
            }
            Actuation::DisableRfCopy { copy, gate_writes } => {
                core.set_rf_copy_enabled(copy, false);
                if gate_writes {
                    core.set_rf_copy_writes_enabled(copy, false);
                }
                stats.rf_turnoffs += 1;
            }
            Actuation::EnableRfCopy { copy, restore } => {
                core.set_rf_copy_enabled(copy, true);
                if restore {
                    core.set_rf_copy_writes_enabled(copy, true);
                    core.charge_rf_copy_restore(copy);
                }
            }
            Actuation::Freeze { until } => {
                core.set_frozen(true);
                *frozen_until = Some(until);
                stats.freezes += 1;
            }
            Actuation::SetOpp { level, duty } => {
                core.set_clock_duty(duty);
                state.opp_level = level;
                stats.opp_transitions += 1;
            }
            Actuation::Stall { until } => {
                core.set_frozen(true);
                state.stall_until = Some(until);
            }
            Actuation::SetFetchDuty { level, duty } => {
                core.set_fetch_duty(duty);
                state.gate_level = level;
                stats.duty_shifts += 1;
            }
            Actuation::SetClockDuty { level, duty } => {
                core.set_clock_duty(duty);
                state.gate_level = level;
                stats.duty_shifts += 1;
            }
            Actuation::Unfreeze => {
                core.set_frozen(false);
                *frozen_until = None;
                state.stall_until = None;
            }
        }
    }
}

/// Projects the [`PolicyState`] effects of `actions` without touching a
/// core, stats, or the freeze deadline — the pure subset of [`apply`].
///
/// The batched campaign engine partitions lockstep siblings by what their
/// next consult will do; two siblings that emit identical commands can
/// still diverge next window if those commands land them on *different
/// ladders* (a `SetOpp` carries a level, not a voltage — the volt scale
/// lives in each config's ladder). Projecting the post-apply state lets
/// the engine compute each sibling's next-window dynamic-power scale
/// before deciding whether to fork. Must mutate `state` exactly as
/// [`apply`] would — pinned by a differential unit test below.
pub fn project(actions: &[Actuation], state: &mut PolicyState) {
    for &action in actions {
        match action {
            Actuation::SetOpp { level, .. } => state.opp_level = level,
            Actuation::Stall { until } => state.stall_until = Some(until),
            Actuation::SetFetchDuty { level, .. } | Actuation::SetClockDuty { level, .. } => {
                state.gate_level = level;
            }
            Actuation::Unfreeze => state.stall_until = None,
            Actuation::ToggleIq { .. }
            | Actuation::SetUnitEnabled { .. }
            | Actuation::DisableRfCopy { .. }
            | Actuation::EnableRfCopy { .. }
            | Actuation::Freeze { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_uarch::{CoreConfig, IqMode};

    fn ctx() -> (Core, MitigationStats, PolicyState, Option<u64>) {
        let core = Core::new(CoreConfig::default()).expect("valid config");
        (core, MitigationStats::default(), PolicyState::default(), None)
    }

    #[test]
    fn toggle_counts_int_side_separately() {
        let (mut core, mut stats, mut state, mut frozen) = ctx();
        apply(
            &mut core,
            &[
                Actuation::ToggleIq { domain: ExecDomain::Int },
                Actuation::ToggleIq { domain: ExecDomain::Fp },
            ],
            &mut stats,
            &mut state,
            &mut frozen,
        );
        assert_eq!(core.iq_mode(ExecDomain::Int), IqMode::Toggled);
        assert_eq!(core.iq_mode(ExecDomain::Fp), IqMode::Toggled);
        assert_eq!(stats.toggles, 2);
        assert_eq!(stats.int_toggles, 1);
    }

    #[test]
    fn only_disables_count_as_turnoffs() {
        let (mut core, mut stats, mut state, mut frozen) = ctx();
        apply(
            &mut core,
            &[
                Actuation::SetUnitEnabled { kind: UnitKind::IntAlu, index: 2, enabled: false },
                Actuation::SetUnitEnabled { kind: UnitKind::IntAlu, index: 2, enabled: true },
                Actuation::DisableRfCopy { copy: 1, gate_writes: false },
                Actuation::EnableRfCopy { copy: 1, restore: false },
            ],
            &mut stats,
            &mut state,
            &mut frozen,
        );
        assert_eq!(stats.alu_turnoffs, 1);
        assert_eq!(stats.rf_turnoffs, 1);
        assert!(core.unit_enabled(UnitKind::IntAlu, 2));
        assert!(core.rf_copy_enabled(1));
    }

    #[test]
    fn freeze_and_stall_are_counted_apart() {
        let (mut core, mut stats, mut state, mut frozen) = ctx();
        apply(&mut core, &[Actuation::Freeze { until: 500 }], &mut stats, &mut state, &mut frozen);
        assert_eq!(frozen, Some(500));
        assert_eq!(stats.freezes, 1);
        apply(&mut core, &[Actuation::Unfreeze], &mut stats, &mut state, &mut frozen);
        assert_eq!(frozen, None);

        apply(
            &mut core,
            &[
                Actuation::SetOpp { level: 1, duty: DutyCycle::new(3, 4) },
                Actuation::Stall { until: 900 },
            ],
            &mut stats,
            &mut state,
            &mut frozen,
        );
        assert_eq!(state.opp_level, 1);
        assert_eq!(state.stall_until, Some(900));
        assert_eq!(core.clock_duty(), DutyCycle::new(3, 4));
        assert_eq!(stats.opp_transitions, 1);
        assert_eq!(stats.freezes, 1, "transition stalls are not thermal freezes");
    }

    #[test]
    fn project_matches_apply_on_policy_state() {
        // Every action kind at least once, in an order that exercises
        // overwrites: project must land on the exact state apply does.
        let actions = [
            Actuation::ToggleIq { domain: ExecDomain::Int },
            Actuation::SetUnitEnabled { kind: UnitKind::IntAlu, index: 1, enabled: false },
            Actuation::DisableRfCopy { copy: 0, gate_writes: true },
            Actuation::EnableRfCopy { copy: 0, restore: true },
            Actuation::Freeze { until: 77 },
            Actuation::SetOpp { level: 2, duty: DutyCycle::new(1, 2) },
            Actuation::Stall { until: 1234 },
            Actuation::SetFetchDuty { level: 3, duty: DutyCycle::new(1, 4) },
            Actuation::SetClockDuty { level: 1, duty: DutyCycle::new(3, 4) },
            Actuation::Unfreeze,
            Actuation::SetOpp { level: 1, duty: DutyCycle::new(3, 4) },
        ];
        let (mut core, mut stats, mut applied, mut frozen) = ctx();
        apply(&mut core, &actions, &mut stats, &mut applied, &mut frozen);
        let mut projected = PolicyState::default();
        project(&actions, &mut projected);
        assert_eq!(projected, applied, "project drifted from apply");
    }

    #[test]
    fn duty_actuations_update_level_and_core() {
        let (mut core, mut stats, mut state, mut frozen) = ctx();
        apply(
            &mut core,
            &[Actuation::SetFetchDuty { level: 2, duty: DutyCycle::new(1, 2) }],
            &mut stats,
            &mut state,
            &mut frozen,
        );
        assert_eq!(core.fetch_duty(), DutyCycle::new(1, 2));
        assert_eq!(state.gate_level, 2);
        assert_eq!(stats.duty_shifts, 1);
    }
}

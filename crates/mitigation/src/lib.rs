//! Power-density mitigation techniques from the MICRO 2005 paper.
//!
//! Three *spatial* techniques exploit utilization asymmetry inside back-end
//! resources, each implemented as part of the [`ThermalManager`]:
//!
//! * **Activity toggling** (§2.1.1): when one issue-queue half runs more
//!   than a threshold (0.5 K) hotter than the other, flip the head/tail
//!   configuration so compaction activity moves to the cooler half.
//! * **Fine-grain turnoff** (§2.2): mark an overheated ALU busy so its
//!   select tree grants nothing; re-enable it once it cools. The processor
//!   keeps running on the remaining units instead of stalling outright.
//! * **Register-file copy turnoff** (§2.3): disable an overheated
//!   register-file copy by busy-marking the ALUs wired to it (combined with
//!   the [`MappingPolicy`] chosen at core construction).
//!
//! The *temporal* backstop (`Pentium 4`-style, §3) freezes the whole core
//! for the package's thermal cooling time whenever a resource overheats
//! beyond what the enabled spatial techniques can absorb — which is also
//! exactly the baseline behaviour when the spatial techniques are disabled.
//!
//! [`MappingPolicy`]: powerbalance_uarch::MappingPolicy
//!
//! # Examples
//!
//! ```
//! use powerbalance_mitigation::{MitigationConfig, Sensors, ThermalManager};
//! use powerbalance_thermal::ev6;
//!
//! let plan = ev6::issue_constrained();
//! let sensors = Sensors::new(&plan).expect("ev6 block names");
//! let manager = ThermalManager::new(MitigationConfig::spatial_all(), sensors);
//! assert_eq!(manager.stats().toggles, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod manager;
mod sensors;

pub use config::{MitigationConfig, Thresholds};
pub use manager::{ManagerState, MitigationStats, ThermalManager, RF_GUARD};
pub use sensors::Sensors;

//! Power-density mitigation techniques from the MICRO 2005 paper.
//!
//! Three *spatial* techniques exploit utilization asymmetry inside back-end
//! resources, each implemented as part of the [`ThermalManager`]:
//!
//! * **Activity toggling** (§2.1.1): when one issue-queue half runs more
//!   than a threshold (0.5 K) hotter than the other, flip the head/tail
//!   configuration so compaction activity moves to the cooler half.
//! * **Fine-grain turnoff** (§2.2): mark an overheated ALU busy so its
//!   select tree grants nothing; re-enable it once it cools. The processor
//!   keeps running on the remaining units instead of stalling outright.
//! * **Register-file copy turnoff** (§2.3): disable an overheated
//!   register-file copy by busy-marking the ALUs wired to it (combined with
//!   the [`MappingPolicy`] chosen at core construction).
//!
//! The *temporal* backstop (`Pentium 4`-style, §3) freezes the whole core
//! for the package's thermal cooling time whenever a resource overheats
//! beyond what the enabled spatial techniques can absorb — which is also
//! exactly the baseline behaviour when the spatial techniques are disabled.
//!
//! The crate is layered (DESIGN.md §12):
//!
//! 1. **Sensing** — [`Sensors`] resolve floorplan blocks, [`Zones`] attach
//!    ordered [`TripTable`]s (trip + clear temperature per severity) to
//!    every monitored block.
//! 2. **Policy** — a [`ThermalPolicy`] decides, purely, what to do each
//!    sample: the spatial techniques ([`SpatialPolicy`]), the paper's §5
//!    global baselines ([`GlobalLadderPolicy`]: DVFS over a discrete
//!    [`OppLadder`], fetch gating, global clock throttling), or both
//!    ([`CombinedPolicy`]).
//! 3. **Actuation** — typed [`Actuation`] commands are applied by the
//!    executor in [`actuators`]; policies never touch core internals.
//!
//! [`MappingPolicy`]: powerbalance_uarch::MappingPolicy
//!
//! # Examples
//!
//! ```
//! use powerbalance_mitigation::{MitigationConfig, Sensors, ThermalManager};
//! use powerbalance_thermal::ev6;
//!
//! let plan = ev6::issue_constrained();
//! let sensors = Sensors::new(&plan).expect("ev6 block names");
//! let manager = ThermalManager::new(MitigationConfig::spatial_all(), sensors);
//! assert_eq!(manager.stats().toggles, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod actuators;
mod config;
mod manager;
mod policy;
mod sensors;
mod zones;

pub use actuators::Actuation;
pub use config::{
    DutyLadder, DvfsParams, GateParams, GlobalPolicy, MitigationConfig, OppLadder, OppLevel,
    Thresholds, MAX_GATE_LEVELS, MAX_OPPS,
};
pub use manager::{ManagerState, MitigationStats, ThermalManager, RF_GUARD};
pub use policy::{
    build_policy, CombinedPolicy, CoreView, GlobalLadderPolicy, PolicyState, SpatialPolicy,
    ThermalPolicy,
};
pub use sensors::Sensors;
pub use zones::{ThermalZone, TripPoint, TripSeverity, TripTable, ZoneRole, Zones, MAX_TRIPS};

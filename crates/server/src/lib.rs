//! `powerbalance-server` — simulation-as-a-service over HTTP.
//!
//! A std-only HTTP/1.1 daemon (no external dependencies, per the
//! workspace's offline vendoring policy) that accepts JSON
//! [`CampaignSpec`](powerbalance_harness::CampaignSpec) submissions, runs
//! them on a bounded worker pool with a process-wide
//! [`WarmStartCache`](powerbalance_harness::WarmStartCache), and serves
//! status, results, cancellation, health, and Prometheus metrics:
//!
//! | Route                         | Meaning                                        |
//! |-------------------------------|------------------------------------------------|
//! | `POST /v1/campaigns`          | submit a campaign (`202` id, `429` queue full); `?fidelity=fast\|exact` overrides every config's fidelity |
//! | `GET /v1/campaigns/<id>`      | status + live per-job progress                 |
//! | `GET /v1/campaigns/<id>/result` | full `CampaignResult` JSON once complete     |
//! | `DELETE /v1/campaigns/<id>`   | cooperative cancellation                       |
//! | `GET /healthz`                | liveness probe (+ journal status when enabled) |
//! | `GET /metrics`                | Prometheus text exposition                     |
//! | `POST /v1/shutdown`           | request graceful shutdown                      |
//! | `POST /v1/nodes`              | register a worker node (distributed fabric)    |
//! | `POST /v1/nodes/<id>/heartbeat` | worker liveness ping                         |
//! | `POST /v1/nodes/<id>/lease?wait=<s>` | long-poll for a shard lease             |
//! | `POST /v1/leases/<id>/result` | deliver a shard outcome                        |
//!
//! `GET /v1/campaigns/<id>/result?wait=<secs>` long-polls: the handler
//! parks on the service's terminal condvar instead of making the client
//! busy-poll `409 Retry-After` loops.
//!
//! The architecture is three layers, each independently testable:
//! [`http`] (wire parsing with hard limits and deadlines), [`service`]
//! (the transport-free job queue + worker pool), and this module's accept
//! loop gluing them together. Backpressure is end-to-end: the submission
//! queue is a bounded `sync_channel`, a full queue turns into `429` +
//! `Retry-After`, and a connection cap sheds load before a handler thread
//! is even spawned.

// `deny` rather than the workspace's usual `forbid` so the one
// audited exception — the libc-free signal shim in `signal.rs` — can
// locally `allow` it.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod metrics;
pub mod service;
pub mod signal;
pub mod worker;

pub use powerbalance_fabric as fabric;

use http::{Limits, RecvError, Request, Response};
use metrics::Endpoint;
use powerbalance_fabric::{Acquire, NodeHello, ShardOutcome};
use powerbalance_harness::CampaignSpec;
use service::{JobService, JobState, ServiceConfig, SubmitError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything needed to start a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address, e.g. `127.0.0.1:8484` (port `0` picks a free one).
    pub addr: String,
    /// Job-service tuning (queue depth, workers, timeouts).
    pub service: ServiceConfig,
    /// Per-request size limits.
    pub limits: Limits,
    /// Wall-clock budget for reading one full request; also the idle
    /// keep-alive timeout.
    pub read_timeout: Duration,
    /// Socket write timeout for responses.
    pub write_timeout: Duration,
    /// Open-connection cap; connections beyond it get an inline `503`.
    pub max_connections: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:8484".to_string(),
            service: ServiceConfig::default(),
            limits: Limits::default(),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_connections: 64,
        }
    }
}

/// The running server. Construct with [`Server::start`].
pub struct Server;

impl Server {
    /// Binds the listener, starts the job service and the accept loop,
    /// and returns a handle for observation and shutdown.
    ///
    /// # Errors
    ///
    /// Returns any error from binding or configuring the listener.
    pub fn start(config: ServerConfig) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        // Nonblocking so the accept loop can poll the shutdown flag —
        // the signal shim cannot interrupt a blocking accept (SA_RESTART).
        listener.set_nonblocking(true)?;

        let service = JobService::start(config.service.clone());
        let shutdown = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));

        let shared = Arc::new(Shared {
            service: Arc::clone(&service),
            shutdown: Arc::clone(&shutdown),
            shutdown_requested: Arc::clone(&shutdown_requested),
            limits: config.limits,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
        });

        let acceptor = {
            let shared = Arc::clone(&shared);
            let max_connections = config.max_connections;
            std::thread::Builder::new()
                .name("powerbalance-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, max_connections))
                .expect("spawning the acceptor thread succeeds")
        };

        Ok(ServerHandle {
            addr,
            service,
            shared,
            shutdown,
            shutdown_requested,
            acceptor: Some(acceptor),
        })
    }
}

/// State shared between the acceptor and every connection handler.
struct Shared {
    service: Arc<JobService>,
    shutdown: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    limits: Limits,
    read_timeout: Duration,
    write_timeout: Duration,
}

/// Handle to a running server.
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<JobService>,
    shared: Arc<Shared>,
    shutdown: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound listen address (useful with port `0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The underlying job service, for in-process observation.
    #[must_use]
    pub fn service(&self) -> &Arc<JobService> {
        &self.service
    }

    /// Asks the server to shut down; the owner of the handle is expected
    /// to notice via [`shutdown_requested`](ServerHandle::shutdown_requested)
    /// and call [`shutdown`](ServerHandle::shutdown). `POST /v1/shutdown`
    /// lands here too.
    pub fn request_shutdown(&self) {
        self.shutdown_requested.store(true, Ordering::Relaxed);
    }

    /// Whether anyone has requested a shutdown.
    #[must_use]
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting connections, refuse new
    /// submissions, let queued and running campaigns finish, then wait
    /// (bounded) for open connections to wind down.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.service.drain();
        // Handlers notice the flag after their current exchange, or when
        // their per-request read deadline expires; wait out the longer.
        let deadline = Instant::now() + self.shared.read_timeout + Duration::from_secs(1);
        while self.service.metrics().connections_open.load(Ordering::Relaxed) > 0
            && Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        // Fast, non-graceful teardown for the early-exit paths: cancel
        // everything rather than wait for campaigns to finish.
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        self.service.abort();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, max_connections: u64) {
    loop {
        if shared.shutdown.load(Ordering::Relaxed) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let metrics = shared.service.metrics();
                metrics.connections_total.fetch_add(1, Ordering::Relaxed);
                if metrics.connections_open.load(Ordering::Relaxed) >= max_connections {
                    metrics.connections_rejected.fetch_add(1, Ordering::Relaxed);
                    shed(stream, shared.write_timeout);
                    continue;
                }
                metrics.connections_open.fetch_add(1, Ordering::Relaxed);
                let handler_shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name("powerbalance-conn".to_string())
                    .spawn(move || {
                        handle_connection(stream, &handler_shared);
                        handler_shared
                            .service
                            .metrics()
                            .connections_open
                            .fetch_sub(1, Ordering::Relaxed);
                    });
                if spawned.is_err() {
                    // Thread spawn failed (resource exhaustion): undo the
                    // gauge; the stream drops and the client sees a reset.
                    shared.service.metrics().connections_open.fetch_sub(1, Ordering::Relaxed);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            // Transient accept errors (per-connection failures like
            // ECONNABORTED) should not kill the server.
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Inline load shedding at the connection cap: one `503` and close,
/// without spawning a handler thread.
fn shed(mut stream: TcpStream, write_timeout: Duration) {
    let _ = stream.set_write_timeout(Some(write_timeout));
    let _ = Response::error(503, "connection limit reached, retry later")
        .with_header("Retry-After", "1")
        .with_close()
        .write_to(&mut stream);
}

fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    if stream.set_write_timeout(Some(shared.write_timeout)).is_err() {
        return;
    }
    let metrics = Arc::clone(shared.service.metrics());
    loop {
        let deadline = Instant::now() + shared.read_timeout;
        let request = http::read_request(&mut stream, &shared.limits, deadline);
        let handle_start = Instant::now();
        let (endpoint, response, done) = match request {
            Ok(request) => {
                let close = request.wants_close() || shared.shutdown.load(Ordering::Relaxed);
                let (endpoint, mut response) = route(shared, &request);
                if close {
                    response = response.with_close();
                }
                (endpoint, response, close)
            }
            // Clean end of a keep-alive session, idle timeout, or a dead
            // socket: nothing to say, just close.
            Err(RecvError::Closed | RecvError::TimedOut { partial: false } | RecvError::Io(_)) => {
                return
            }
            Err(RecvError::TimedOut { partial: true }) => (
                Endpoint::Other,
                Response::error(408, "request not received within the read deadline").with_close(),
                true,
            ),
            Err(RecvError::HeadTooLarge) => (
                Endpoint::Other,
                Response::error(400, "request head exceeds the size limit").with_close(),
                true,
            ),
            Err(RecvError::BodyTooLarge { declared }) => (
                Endpoint::Other,
                // The body was never read, so the connection is not
                // synchronized for another request: close it.
                Response::error(
                    413,
                    &format!("declared body of {declared} bytes exceeds the limit"),
                )
                .with_close(),
                true,
            ),
            Err(RecvError::Malformed(detail)) => (
                Endpoint::Other,
                Response::error(400, &format!("malformed request: {detail}")).with_close(),
                true,
            ),
        };
        let status = response.status;
        let write_ok = response.write_to(&mut stream).is_ok();
        metrics.observe(endpoint, status, handle_start.elapsed());
        if done || !write_ok {
            return;
        }
    }
}

/// Splits `/v1/campaigns/<id>[/result]`-style paths; returns the id and
/// whether the `/result` suffix was present.
fn parse_campaign_path(rest: &str) -> Option<(u64, bool)> {
    let (id_part, result) = match rest.strip_suffix("/result") {
        Some(prefix) => (prefix, true),
        None => (rest, false),
    };
    id_part.parse::<u64>().ok().map(|id| (id, result))
}

fn route(shared: &Shared, request: &Request) -> (Endpoint, Response) {
    let path = request.path.split('?').next().unwrap_or("");
    let method = request.method.as_str();
    match (method, path) {
        ("GET", "/healthz") => {
            // The body stays exactly "ok\n" without a journal so existing
            // probes keep matching; with one, a second line reports it.
            let body = match shared.service.journal_status() {
                Some((depth, replayed)) => {
                    format!("ok\njournal: depth={depth} replayed={replayed}\n")
                }
                None => "ok\n".to_string(),
            };
            (Endpoint::Healthz, Response::text(200, body))
        }
        ("GET", "/metrics") => {
            let text = shared
                .service
                .metrics()
                .render(shared.service.cache_stats(), shared.service.fabric_gauges());
            (Endpoint::Metrics, Response::text(200, text))
        }
        ("POST", "/v1/shutdown") => {
            shared.shutdown_requested.store(true, Ordering::Relaxed);
            (Endpoint::Shutdown, Response::json(202, "{\"shutting_down\":true}"))
        }
        ("POST", "/v1/campaigns") => (Endpoint::Submit, submit(shared, request)),
        ("POST", "/v1/nodes") => (Endpoint::Register, register(shared, request)),
        (_, "/healthz" | "/metrics" | "/v1/shutdown" | "/v1/campaigns" | "/v1/nodes") => {
            (Endpoint::Other, Response::error(405, &format!("method {method} not allowed here")))
        }
        (_, _) if path.starts_with("/v1/nodes/") => {
            let rest = &path["/v1/nodes/".len()..];
            let Some((id_part, action)) = rest.split_once('/') else {
                return (Endpoint::Other, Response::error(404, "no such route"));
            };
            let Ok(node) = id_part.parse::<u64>() else {
                return (Endpoint::Other, Response::error(404, "no such route"));
            };
            match (method, action) {
                ("POST", "heartbeat") => (Endpoint::Heartbeat, heartbeat(shared, node)),
                ("POST", "lease") => (Endpoint::Lease, lease(shared, request, node)),
                (_, "heartbeat" | "lease") => (
                    Endpoint::Other,
                    Response::error(405, &format!("method {method} not allowed here")),
                ),
                _ => (Endpoint::Other, Response::error(404, "no such route")),
            }
        }
        (_, _) if path.starts_with("/v1/leases/") => {
            let rest = &path["/v1/leases/".len()..];
            let Some(id_part) = rest.strip_suffix("/result") else {
                return (Endpoint::Other, Response::error(404, "no such route"));
            };
            let Ok(lease_id) = id_part.parse::<u64>() else {
                return (Endpoint::Other, Response::error(404, "no such route"));
            };
            if method != "POST" {
                return (
                    Endpoint::Other,
                    Response::error(405, &format!("method {method} not allowed here")),
                );
            }
            (Endpoint::ShardResult, shard_result(shared, request, lease_id))
        }
        (_, _) if path.starts_with("/v1/campaigns/") => {
            let rest = &path["/v1/campaigns/".len()..];
            let Some((id, wants_result)) = parse_campaign_path(rest) else {
                return (Endpoint::Other, Response::error(404, "no such route"));
            };
            match (method, wants_result) {
                ("GET", false) => (Endpoint::Status, status(shared, id)),
                ("GET", true) => (Endpoint::Result, result(shared, request, id)),
                ("DELETE", false) => (Endpoint::Cancel, cancel(shared, id)),
                _ => (
                    Endpoint::Other,
                    Response::error(405, &format!("method {method} not allowed here")),
                ),
            }
        }
        _ => (Endpoint::Other, Response::error(404, "no such route")),
    }
}

/// Parses the submit query string for a `fidelity=<name>` parameter.
/// `route` matches on the path with the query stripped, so the raw
/// `request.path` still carries it here. Unrecognized parameters are
/// ignored (consistent with every other route); an unknown fidelity
/// *value* is an error so a typo can't silently run at the wrong cost.
fn fidelity_override(path: &str) -> Result<Option<powerbalance::Fidelity>, String> {
    let Some((_, query)) = path.split_once('?') else {
        return Ok(None);
    };
    let mut fidelity = None;
    for pair in query.split('&').filter(|pair| !pair.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key == "fidelity" {
            fidelity = Some(powerbalance::Fidelity::from_name(value).ok_or_else(|| {
                format!("unknown fidelity '{value}' (expected 'exact' or 'fast')")
            })?);
        }
    }
    Ok(fidelity)
}

fn submit(shared: &Shared, request: &Request) -> Response {
    let metrics = shared.service.metrics();
    let fidelity = match fidelity_override(&request.path) {
        Ok(fidelity) => fidelity,
        Err(detail) => {
            metrics.campaigns_invalid.fetch_add(1, Ordering::Relaxed);
            return Response::error(400, &detail);
        }
    };
    let Ok(text) = std::str::from_utf8(&request.body) else {
        metrics.campaigns_invalid.fetch_add(1, Ordering::Relaxed);
        return Response::error(400, "request body is not valid UTF-8");
    };
    let mut spec: CampaignSpec = match serde::json::from_str(text) {
        Ok(spec) => spec,
        Err(e) => {
            metrics.campaigns_invalid.fetch_add(1, Ordering::Relaxed);
            return Response::error(400, &format!("invalid campaign JSON: {e}"));
        }
    };
    if let Some(fidelity) = fidelity {
        for named in &mut spec.configs {
            named.config.fidelity = fidelity;
        }
    }
    match shared.service.submit(spec) {
        Ok(id) => {
            Response::json(202, format!("{{\"id\":{id},\"status_url\":\"/v1/campaigns/{id}\"}}"))
        }
        Err(SubmitError::Invalid(detail)) => {
            metrics.campaigns_invalid.fetch_add(1, Ordering::Relaxed);
            Response::error(400, &detail)
        }
        Err(SubmitError::QueueFull) => {
            Response::error(429, "submission queue is full, retry later")
                .with_header("Retry-After", retry_after_jitter().to_string())
        }
        Err(SubmitError::Draining) => {
            Response::error(503, "server is shutting down").with_header("Retry-After", "5")
        }
    }
}

fn status(shared: &Shared, id: u64) -> Response {
    match shared.service.status(id) {
        Some(report) => Response::json(200, serde::json::to_string(&report)),
        None => Response::error(404, &format!("no campaign with id {id}")),
    }
}

fn result(shared: &Shared, request: &Request, id: u64) -> Response {
    let wait = match parse_wait(&request.path) {
        Ok(wait) => wait,
        Err(detail) => return Response::error(400, &detail),
    };
    let report = match wait {
        Some(secs) => shared.service.wait_terminal(id, Duration::from_secs(secs)),
        None => shared.service.status(id),
    };
    let Some(report) = report else {
        return Response::error(404, &format!("no campaign with id {id}"));
    };
    match report.state {
        JobState::Completed => match shared.service.result(id) {
            Some(result) => Response::json(200, result.to_json()),
            // A journal tombstone: the previous incarnation completed the
            // campaign, but results are not journaled. Gone, not pending.
            None => Response::error(
                410,
                "campaign completed before a server restart; its result was not retained",
            ),
        },
        JobState::Queued | JobState::Running => {
            Response::error(409, "campaign has not completed yet").with_header("Retry-After", "1")
        }
        JobState::Cancelled => Response::error(409, "campaign was cancelled"),
        JobState::Failed => {
            Response::error(500, report.error.as_deref().unwrap_or("campaign failed"))
        }
    }
}

/// Parses a `wait=<secs>` query parameter (used by the long-poll result
/// and lease routes). Capped at [`MAX_WAIT_SECS`] so a client cannot park
/// a handler thread arbitrarily long; malformed values are an error.
fn parse_wait(path: &str) -> Result<Option<u64>, String> {
    let Some((_, query)) = path.split_once('?') else {
        return Ok(None);
    };
    let mut wait = None;
    for pair in query.split('&').filter(|pair| !pair.is_empty()) {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        if key == "wait" {
            let secs = value
                .parse::<u64>()
                .map_err(|_| format!("invalid wait '{value}' (expected whole seconds)"))?;
            wait = Some(secs.min(MAX_WAIT_SECS));
        }
    }
    Ok(wait)
}

/// Upper bound on `?wait=` long-polls, result and lease alike.
const MAX_WAIT_SECS: u64 = 30;

/// Bounded jitter for `Retry-After` on 429s: a Weyl-style counter hashed
/// through the golden-ratio multiplier, folded to 1–3 seconds. Statefully
/// desynchronizes retry herds without any per-connection RNG.
fn retry_after_jitter() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    1 + (n.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % 3
}

fn register(shared: &Shared, request: &Request) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "request body is not valid UTF-8");
    };
    let hello: NodeHello = match serde::json::from_str(text) {
        Ok(hello) => hello,
        Err(e) => return Response::error(400, &format!("invalid registration JSON: {e}")),
    };
    let id = shared.service.coordinator().register(&hello.name);
    Response::json(201, format!("{{\"id\":{id}}}"))
}

fn heartbeat(shared: &Shared, node: u64) -> Response {
    if shared.service.coordinator().heartbeat(node) {
        Response::json(200, "{\"ok\":true}")
    } else {
        Response::error(404, &format!("no node with id {node}; re-register"))
    }
}

fn lease(shared: &Shared, request: &Request, node: u64) -> Response {
    let wait = match parse_wait(&request.path) {
        Ok(wait) => wait.unwrap_or(0),
        Err(detail) => return Response::error(400, &detail),
    };
    match shared.service.coordinator().acquire(node, Duration::from_secs(wait)) {
        Acquire::Granted(lease) => Response::json(200, serde::json::to_string(&*lease)),
        Acquire::Empty => Response::text(204, ""),
        Acquire::UnknownNode => {
            Response::error(404, &format!("no node with id {node}; re-register"))
        }
    }
}

fn shard_result(shared: &Shared, request: &Request, lease_id: u64) -> Response {
    let Ok(text) = std::str::from_utf8(&request.body) else {
        return Response::error(400, "request body is not valid UTF-8");
    };
    let outcome: ShardOutcome = match serde::json::from_str(text) {
        Ok(outcome) => outcome,
        Err(e) => return Response::error(400, &format!("invalid shard outcome JSON: {e}")),
    };
    let accepted = shared.service.coordinator().complete(lease_id, outcome);
    Response::json(200, format!("{{\"accepted\":{accepted}}}"))
}

fn cancel(shared: &Shared, id: u64) -> Response {
    match shared.service.cancel(id) {
        Some(observed) => Response::json(
            202,
            format!("{{\"id\":{id},\"observed_state\":{}}}", serde::json::to_string(&observed)),
        ),
        None => Response::error(404, &format!("no campaign with id {id}")),
    }
}

//! A minimal, std-only HTTP/1.1 request parser and response writer.
//!
//! This is deliberately not a general HTTP implementation — it supports
//! exactly what the simulation service needs: `Content-Length` bodies
//! (no chunked transfer), keep-alive, `Expect: 100-continue`, and hard
//! limits on head size, body size, and total per-request read time. The
//! read deadline re-arms the socket timeout to the *remaining* budget
//! before every read, so a client dripping one byte per second (slow
//! loris) cannot hold a handler thread past the deadline.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard limits on a single request.
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Maximum bytes of request line + headers.
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits { max_head_bytes: 16 * 1024, max_body_bytes: 1024 * 1024 }
    }
}

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, uppercased as received (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), as received.
    pub path: String,
    /// Headers with lowercased names; last occurrence wins.
    pub headers: HashMap<String, String>,
    /// Request body (empty unless `Content-Length` was given).
    pub body: Vec<u8>,
}

impl Request {
    /// Looks up a header by (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request failed.
#[derive(Debug)]
pub enum RecvError {
    /// The peer closed the connection cleanly before sending anything —
    /// the normal end of a keep-alive session.
    Closed,
    /// The read deadline expired. `partial` is true if some request bytes
    /// had already arrived (worth a `408`); false means an idle keep-alive
    /// connection timed out and should just be dropped.
    TimedOut {
        /// Whether any request bytes arrived before the deadline.
        partial: bool,
    },
    /// The request line + headers exceeded [`Limits::max_head_bytes`].
    HeadTooLarge,
    /// The declared `Content-Length` exceeded [`Limits::max_body_bytes`].
    BodyTooLarge {
        /// The declared length.
        declared: usize,
    },
    /// The bytes on the wire were not a parseable HTTP/1.x request.
    Malformed(String),
    /// Any other I/O error (reset, broken pipe, ...).
    Io(io::Error),
}

fn remaining(deadline: Instant) -> Option<Duration> {
    let now = Instant::now();
    if now >= deadline {
        None
    } else {
        Some(deadline - now)
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Reads one byte with the socket timeout re-armed to the remaining
/// deadline budget. `Ok(None)` means clean EOF.
fn read_byte(
    stream: &mut TcpStream,
    deadline: Instant,
    partial: bool,
) -> Result<Option<u8>, RecvError> {
    let Some(budget) = remaining(deadline) else {
        return Err(RecvError::TimedOut { partial });
    };
    stream.set_read_timeout(Some(budget)).map_err(RecvError::Io)?;
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(&e) => return Err(RecvError::TimedOut { partial }),
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
}

/// Reads exactly `buf.len()` body bytes under the deadline.
fn read_exact_deadline(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
) -> Result<(), RecvError> {
    let mut filled = 0;
    while filled < buf.len() {
        let Some(budget) = remaining(deadline) else {
            return Err(RecvError::TimedOut { partial: true });
        };
        stream.set_read_timeout(Some(budget)).map_err(RecvError::Io)?;
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(RecvError::Malformed(format!(
                    "connection closed {filled}/{} bytes into the body",
                    buf.len()
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) if is_timeout(&e) => return Err(RecvError::TimedOut { partial: true }),
            Err(e) => return Err(RecvError::Io(e)),
        }
    }
    Ok(())
}

/// Reads and parses one request from `stream`, enforcing `limits` and an
/// absolute `deadline` for the whole request (head *and* body).
///
/// Reading byte-at-a-time through a buffered wrapper would lose buffered
/// bytes between keep-alive requests, so the head is read byte-by-byte
/// directly; request heads are tiny (one syscall per byte is noise next to
/// a simulation job, and the loopback tests confirm sub-millisecond
/// parses).
///
/// # Errors
///
/// See [`RecvError`] — every variant maps to a specific close/response
/// decision in the connection handler.
pub fn read_request(
    stream: &mut TcpStream,
    limits: &Limits,
    deadline: Instant,
) -> Result<Request, RecvError> {
    // --- head: read until \r\n\r\n (tolerating bare \n\n) ---
    let mut head = Vec::with_capacity(256);
    loop {
        match read_byte(stream, deadline, !head.is_empty())? {
            None if head.is_empty() => return Err(RecvError::Closed),
            None => {
                return Err(RecvError::Malformed("connection closed mid-header".into()));
            }
            Some(b) => head.push(b),
        }
        if head.len() > limits.max_head_bytes {
            return Err(RecvError::HeadTooLarge);
        }
        if head.ends_with(b"\r\n\r\n") || head.ends_with(b"\n\n") {
            break;
        }
    }

    let head_text = String::from_utf8(head)
        .map_err(|_| RecvError::Malformed("request head is not valid UTF-8".into()))?;
    let mut lines = head_text.split("\r\n").flat_map(|chunk| chunk.split('\n'));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() {
        return Err(RecvError::Malformed(format!("bad request line '{request_line}'")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(RecvError::Malformed(format!("unsupported version '{version}'")));
    }

    let mut headers = HashMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(RecvError::Malformed(format!("bad header line '{line}'")));
        };
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    // --- body ---
    let mut body = Vec::new();
    if let Some(raw) = headers.get("content-length") {
        let declared: usize = raw
            .trim()
            .parse()
            .map_err(|_| RecvError::Malformed(format!("bad Content-Length '{raw}'")))?;
        if declared > limits.max_body_bytes {
            return Err(RecvError::BodyTooLarge { declared });
        }
        if headers.get("expect").is_some_and(|v| v.eq_ignore_ascii_case("100-continue")) {
            let _ = stream.write_all(b"HTTP/1.1 100 Continue\r\n\r\n");
        }
        body.resize(declared, 0);
        read_exact_deadline(stream, &mut body, deadline)?;
    } else if headers.contains_key("transfer-encoding") {
        return Err(RecvError::Malformed("chunked transfer encoding is not supported".into()));
    }

    Ok(Request { method, path, headers, body })
}

/// One response to serialize.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra `name: value` header pairs (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Close the connection after writing this response.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A plain-text response.
    #[must_use]
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A JSON error body `{"error": <message>}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let encoded = serde::json::Value::String(message.to_string());
        Response::json(status, format!("{{\"error\":{encoded}}}"))
    }

    /// Adds one extra header.
    #[must_use]
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Marks the connection for closing after this response.
    #[must_use]
    pub fn with_close(mut self) -> Self {
        self.close = true;
        self
    }

    /// Serializes the response to `stream`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the socket write.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            status_text(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        if self.close {
            head.push_str("Connection: close\r\n");
        }
        head.push_str("\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

/// Reason phrase for the status codes this server emits.
#[must_use]
pub fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(raw: &[u8], limits: &Limits) -> Result<Request, RecvError> {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            s.write_all(&raw).expect("write");
            // Keep the stream open briefly so a parser that wants more
            // bytes times out instead of seeing EOF.
            std::thread::sleep(Duration::from_millis(300));
        });
        let (mut stream, _) = listener.accept().expect("accept");
        let result = read_request(&mut stream, limits, Instant::now() + Duration::from_millis(200));
        writer.join().expect("writer thread");
        result
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = roundtrip(
            b"POST /v1/campaigns HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello",
            &Limits::default(),
        )
        .expect("parses");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/campaigns");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"), "header lookup is case-insensitive");
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn rejects_malformed_and_oversized_requests() {
        assert!(matches!(
            roundtrip(b"NOT-HTTP\r\n\r\n", &Limits::default()),
            Err(RecvError::Malformed(_))
        ));
        assert!(matches!(
            roundtrip(b"GET / FTP/9\r\n\r\n", &Limits::default()),
            Err(RecvError::Malformed(_))
        ));
        let tiny = Limits { max_head_bytes: 8, ..Limits::default() };
        assert!(matches!(
            roundtrip(b"GET /a/very/long/path HTTP/1.1\r\n\r\n", &tiny),
            Err(RecvError::HeadTooLarge)
        ));
        let small_body = Limits { max_body_bytes: 4, ..Limits::default() };
        assert!(matches!(
            roundtrip(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n0123456789", &small_body),
            Err(RecvError::BodyTooLarge { declared: 10 })
        ));
    }

    #[test]
    fn truncated_body_times_out_as_partial() {
        let result = roundtrip(
            b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nonly-a-little",
            &Limits::default(),
        );
        assert!(matches!(result, Err(RecvError::TimedOut { partial: true })));
    }

    #[test]
    fn idle_connection_times_out_without_partial() {
        let result = roundtrip(b"", &Limits::default());
        // The writer half closes after its sleep; depending on timing we
        // observe either the idle timeout or the clean close. Both mean
        // "drop quietly".
        assert!(matches!(result, Err(RecvError::TimedOut { partial: false } | RecvError::Closed)));
    }

    #[test]
    fn response_serializes_with_extra_headers() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let reader = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).expect("connect");
            let mut buf = Vec::new();
            s.read_to_end(&mut buf).expect("read");
            String::from_utf8(buf).expect("utf8")
        });
        let (mut stream, _) = listener.accept().expect("accept");
        Response::json(429, "{}")
            .with_header("Retry-After", "1")
            .with_close()
            .write_to(&mut stream)
            .expect("write");
        drop(stream);
        let text = reader.join().expect("reader thread");
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}

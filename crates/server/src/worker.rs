//! A worker node for the distributed campaign fabric.
//!
//! A worker is a small loop around the blocking [`client::Client`]: it
//! registers with a coordinator (`POST /v1/nodes`), long-polls for shard
//! leases (`POST /v1/nodes/<id>/lease?wait=<s>`), runs each leased
//! sub-spec with the ordinary campaign runner (same batching, same
//! warm-start cache machinery — so results are bit-identical to a local
//! run), and posts a [`ShardOutcome`] back. A separate heartbeat thread
//! keeps the node alive at the coordinator while a shard is executing.
//!
//! Warm-start checkpoints ride the lease protocol: a lease can carry a
//! snapshot (installed into this node's [`WarmStartCache`] before the run)
//! and can ask for the snapshot the run computes, which the completion
//! report carries back — so N nodes pay each distinct warmup once.
//!
//! The same loop runs in-process for tests ([`WorkerNode::start`]) and
//! behind the CLI's `worker --coordinator` verb for real deployments.
//! [`WorkerHandle::kill`] emulates a SIGKILL for crash-path tests: the
//! current shard is abandoned, its result is never posted, and heartbeats
//! stop immediately, leaving lease expiry to the coordinator's sweeper.

use crate::client::Client;
use powerbalance_fabric::{Checkpoint, Lease, NodeHello, ShardOutcome};
use powerbalance_harness::{
    run_campaign_controlled, CampaignControl, CampaignOutcome, RunnerOptions, WarmStartCache,
};
use serde::Deserialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for one worker node.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (the `serve` daemon).
    pub coordinator: SocketAddr,
    /// Node name reported at registration.
    pub name: String,
    /// Worker-pool threads per shard; `None` resolves like the local
    /// runner.
    pub threads: Option<usize>,
    /// Lockstep batching bound inside each shard.
    pub max_batch: usize,
    /// `?wait=` horizon for the lease long-poll.
    pub poll_wait: Duration,
    /// Interval between liveness heartbeats; must be comfortably below
    /// the coordinator's node timeout.
    pub heartbeat_interval: Duration,
}

impl WorkerOptions {
    /// Defaults for a worker talking to `coordinator`.
    #[must_use]
    pub fn new(coordinator: SocketAddr) -> Self {
        WorkerOptions {
            coordinator,
            name: format!("worker-{}", std::process::id()),
            threads: None,
            max_batch: 6,
            poll_wait: Duration::from_secs(5),
            heartbeat_interval: Duration::from_secs(1),
        }
    }
}

#[derive(Deserialize)]
struct RegisterReply {
    id: u64,
}

/// A running worker node; see [`WorkerNode::start`].
pub struct WorkerNode;

/// Handle to a running worker's threads.
pub struct WorkerHandle {
    stop: Arc<AtomicBool>,
    killed: Arc<AtomicBool>,
    current: Arc<Mutex<Option<Arc<CampaignControl>>>>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerNode {
    /// Starts the lease loop and the heartbeat thread.
    #[must_use]
    pub fn start(options: WorkerOptions) -> WorkerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let killed = Arc::new(AtomicBool::new(false));
        let current = Arc::new(Mutex::new(None));
        // Node id shared between the lease loop (which assigns it at
        // registration) and the heartbeat thread. 0 = not registered yet.
        let node_id = Arc::new(std::sync::atomic::AtomicU64::new(0));

        let mut threads = Vec::new();
        {
            let options = options.clone();
            let stop = Arc::clone(&stop);
            let killed = Arc::clone(&killed);
            let current = Arc::clone(&current);
            let node_id = Arc::clone(&node_id);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("{}-lease", options.name))
                    .spawn(move || lease_loop(&options, &stop, &killed, &current, &node_id))
                    .expect("spawning the worker lease thread succeeds"),
            );
        }
        {
            let stop = Arc::clone(&stop);
            let killed = Arc::clone(&killed);
            let node_id = Arc::clone(&node_id);
            let name = format!("{}-heartbeat", options.name);
            threads.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || heartbeat_loop(&options, &stop, &killed, &node_id))
                    .expect("spawning the worker heartbeat thread succeeds"),
            );
        }
        WorkerHandle { stop, killed, current, threads }
    }
}

impl WorkerHandle {
    /// Graceful stop: finish and deliver the current shard (if any), then
    /// exit both threads.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }

    /// Emulates a SIGKILL mid-shard: heartbeats stop instantly, the
    /// current run is abandoned, and its result is never posted — the
    /// coordinator's sweeper must notice and re-lease the shard. Used by
    /// the crash-path tests.
    pub fn kill(mut self) {
        self.killed.store(true, Ordering::Relaxed);
        self.stop.store(true, Ordering::Relaxed);
        if let Some(control) = self.current.lock().expect("no holder panics").as_ref() {
            control.cancel();
        }
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for handle in self.threads.drain(..) {
            let _ = handle.join();
        }
    }
}

fn heartbeat_loop(
    options: &WorkerOptions,
    stop: &AtomicBool,
    killed: &AtomicBool,
    node_id: &std::sync::atomic::AtomicU64,
) {
    let mut client = Client::new(options.coordinator, Duration::from_secs(5));
    while !stop.load(Ordering::Relaxed) && !killed.load(Ordering::Relaxed) {
        let id = node_id.load(Ordering::Relaxed);
        if id != 0 {
            // A 404 means the coordinator restarted; the lease loop will
            // re-register and publish the new id.
            let _ = client.request("POST", &format!("/v1/nodes/{id}/heartbeat"), None);
        }
        std::thread::sleep(options.heartbeat_interval);
    }
}

fn lease_loop(
    options: &WorkerOptions,
    stop: &AtomicBool,
    killed: &AtomicBool,
    current: &Mutex<Option<Arc<CampaignControl>>>,
    node_id: &std::sync::atomic::AtomicU64,
) {
    // Socket timeout must outlast the lease long-poll horizon.
    let mut client = Client::new(options.coordinator, options.poll_wait + Duration::from_secs(10));
    let cache = WarmStartCache::in_memory();
    let mut id = 0u64;
    let wait_secs = options.poll_wait.as_secs().max(1);

    while !stop.load(Ordering::Relaxed) {
        if id == 0 {
            match register(&mut client, &options.name) {
                Some(new_id) => {
                    id = new_id;
                    node_id.store(id, Ordering::Relaxed);
                }
                None => {
                    // Coordinator not reachable (yet); retry gently.
                    std::thread::sleep(Duration::from_millis(200));
                    continue;
                }
            }
        }

        let response =
            match client.request("POST", &format!("/v1/nodes/{id}/lease?wait={wait_secs}"), None) {
                Ok(response) => response,
                Err(_) => {
                    std::thread::sleep(Duration::from_millis(200));
                    continue;
                }
            };
        match response.status {
            200 => {}
            404 => {
                // Coordinator restarted and forgot us: re-register.
                id = 0;
                node_id.store(0, Ordering::Relaxed);
                continue;
            }
            _ => continue, // 204 no work, or a transient error
        }
        let Ok(lease) = serde::json::from_str::<Lease>(&response.text()) else {
            continue;
        };
        run_lease(options, &mut client, &cache, current, killed, lease);
    }
}

fn register(client: &mut Client, name: &str) -> Option<u64> {
    let hello = NodeHello { name: name.to_string() };
    let response =
        client.request("POST", "/v1/nodes", Some(&serde::json::to_string(&hello))).ok()?;
    if response.status != 201 {
        return None;
    }
    serde::json::from_str::<RegisterReply>(&response.text()).ok().map(|reply| reply.id)
}

/// Runs one leased shard and posts the outcome (unless killed mid-run).
fn run_lease(
    options: &WorkerOptions,
    client: &mut Client,
    cache: &WarmStartCache,
    current: &Mutex<Option<Arc<CampaignControl>>>,
    killed: &AtomicBool,
    lease: Lease,
) {
    // Install the shipped warm-start checkpoint before the run so the
    // warmup is a cache hit instead of a recomputation.
    if let Some(Checkpoint { key, snapshot }) = lease.checkpoint {
        cache.insert(&key, snapshot);
    }

    let control = Arc::new(CampaignControl::new());
    *current.lock().expect("no holder panics") = Some(Arc::clone(&control));
    let runner_options = RunnerOptions {
        threads: options.threads,
        progress: false,
        warm_cache: true,
        checkpoint_dir: None,
        resume: false,
        max_batch: options.max_batch,
    };
    // No per-job timeout here: the coordinator's lease deadline is the
    // authority on runaway shards.
    let outcome =
        run_campaign_controlled(&lease.shard.spec, &runner_options, &control, None, Some(cache));
    *current.lock().expect("no holder panics") = None;

    if killed.load(Ordering::Relaxed) {
        return; // emulated SIGKILL: the result dies with us
    }

    let report = match outcome {
        Ok(CampaignOutcome::Completed(result)) => {
            let spec = &lease.shard.spec;
            let checkpoint = if lease.want_checkpoint && spec.warmup_cycles > 0 {
                let key = WarmStartCache::key(
                    &spec.benchmarks[0],
                    spec.seed,
                    spec.warmup_cycles,
                    &spec.configs[0].config,
                );
                cache.lookup(&key).map(|snapshot| Checkpoint { key, snapshot: (*snapshot).clone() })
            } else {
                None
            };
            ShardOutcome::Completed { jobs: result.jobs, checkpoint }
        }
        Ok(CampaignOutcome::Cancelled) => return, // killed raced the flag load above
        Ok(CampaignOutcome::TimedOut { bench, config }) => ShardOutcome::Failed {
            error: format!("job {bench}/{config} exceeded the worker's wall-clock timeout"),
        },
        Err(e) => ShardOutcome::Failed { error: e.to_string() },
    };
    let body = serde::json::to_string(&report);
    let _ = client.request("POST", &format!("/v1/leases/{}/result", lease.lease_id), Some(&body));
}

//! A minimal blocking HTTP/1.1 client for tests and the load generator.
//!
//! One [`Client`] owns one keep-alive connection and reconnects
//! transparently when the server (or a `Connection: close` response)
//! drops it. Only what the load generator needs is implemented:
//! `Content-Length` responses over a single connection.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response.
#[derive(Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: HashMap<String, String>,
    /// Response body.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// The body as UTF-8 (lossy).
    #[must_use]
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Looks up a header by (case-insensitive) name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(String::as_str)
    }
}

/// A single-connection keep-alive HTTP client.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
    stream: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` with a per-operation timeout.
    #[must_use]
    pub fn new(addr: SocketAddr, timeout: Duration) -> Self {
        Client { addr, timeout, stream: None }
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// Sends one request and reads the response, reconnecting once if the
    /// kept-alive connection turns out to be dead.
    ///
    /// # Errors
    ///
    /// Returns any connect/read/write error after the reconnect attempt.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        match self.request_once(method, path, body) {
            Ok(response) => Ok(response),
            Err(_) => {
                // The server may have closed the idle connection between
                // requests; retry exactly once on a fresh one.
                self.stream = None;
                self.request_once(method, path, body)
            }
        }
    }

    fn request_once(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<ClientResponse> {
        let stream = self.connect()?;
        let body_bytes = body.map(str::as_bytes).unwrap_or_default();
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: powerbalance\r\nContent-Length: {}\r\n\
             Content-Type: application/json\r\n\r\n",
            body_bytes.len()
        );
        stream.write_all(head.as_bytes())?;
        stream.write_all(body_bytes)?;
        stream.flush()?;

        let response = read_response(stream)?;
        if response.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close")) {
            self.stream = None;
        }
        Ok(response)
    }
}

fn read_response(stream: &mut TcpStream) -> io::Result<ClientResponse> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before a response arrived",
                ))
            }
            Ok(_) => head.push(byte[0]),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "response head too large"));
        }
    }

    let head_text = String::from_utf8(head)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "response head is not UTF-8"))?;
    let mut lines = head_text.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 =
        status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad status line '{status_line}'"))
        })?;
    // An interim 100 Continue is followed by the real response.
    if status == 100 {
        return read_response(stream);
    }
    let mut headers = HashMap::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
        }
    }
    let length: usize = headers.get("content-length").and_then(|v| v.parse().ok()).unwrap_or(0);
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body)?;
    Ok(ClientResponse { status, headers, body })
}

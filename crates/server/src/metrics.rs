//! Service metrics: counters, gauges, and per-endpoint latency histograms,
//! rendered in the Prometheus text exposition format.
//!
//! Everything on the hot path is a plain atomic; the only lock is around
//! the per-(endpoint, status) response table, touched once per response.
//! The counters are designed to *reconcile*: at quiescence,
//!
//! ```text
//! campaigns_submitted_total ==
//!     completed + failed + cancelled + rejected (+ queued + running)
//! ```
//!
//! which the integration suite asserts after draining a loaded server.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Upper bounds (seconds) of the latency histogram buckets; an implicit
/// `+Inf` bucket follows. Sub-millisecond buckets matter: loopback
/// status/metrics requests routinely finish in tens of microseconds.
pub const LATENCY_BUCKETS: [f64; 8] = [0.0005, 0.001, 0.005, 0.01, 0.05, 0.25, 1.0, 5.0];

/// The route classes the server tracks separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /v1/campaigns`
    Submit,
    /// `GET /v1/campaigns/<id>`
    Status,
    /// `GET /v1/campaigns/<id>/result`
    Result,
    /// `DELETE /v1/campaigns/<id>`
    Cancel,
    /// `GET /healthz`
    Healthz,
    /// `GET /metrics`
    Metrics,
    /// `POST /v1/shutdown`
    Shutdown,
    /// `POST /v1/nodes` (worker registration)
    Register,
    /// `POST /v1/nodes/<id>/heartbeat`
    Heartbeat,
    /// `POST /v1/nodes/<id>/lease`
    Lease,
    /// `POST /v1/leases/<id>/result`
    ShardResult,
    /// Anything else (unknown routes, protocol errors).
    Other,
}

impl Endpoint {
    /// Every endpoint, in render order.
    pub const ALL: [Endpoint; 12] = [
        Endpoint::Submit,
        Endpoint::Status,
        Endpoint::Result,
        Endpoint::Cancel,
        Endpoint::Healthz,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Register,
        Endpoint::Heartbeat,
        Endpoint::Lease,
        Endpoint::ShardResult,
        Endpoint::Other,
    ];

    /// The label value used in the Prometheus output.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Endpoint::Submit => "submit",
            Endpoint::Status => "status",
            Endpoint::Result => "result",
            Endpoint::Cancel => "cancel",
            Endpoint::Healthz => "healthz",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Register => "register",
            Endpoint::Heartbeat => "heartbeat",
            Endpoint::Lease => "lease",
            Endpoint::ShardResult => "shard_result",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        Endpoint::ALL.iter().position(|e| *e == self).expect("endpoint is in ALL")
    }
}

/// A fixed-bucket latency histogram (Prometheus `histogram` semantics:
/// cumulative buckets, a sum, and a count).
#[derive(Debug, Default)]
pub struct Histogram {
    /// Non-cumulative per-bucket counts; the last slot is `+Inf`.
    buckets: [AtomicU64; LATENCY_BUCKETS.len() + 1],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, elapsed: Duration) {
        let secs = elapsed.as_secs_f64();
        let slot = LATENCY_BUCKETS.iter().position(|b| secs <= *b).unwrap_or(LATENCY_BUCKETS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn render(&self, name: &str, endpoint: &str, out: &mut String) {
        let mut cumulative = 0u64;
        for (i, bound) in LATENCY_BUCKETS.iter().enumerate() {
            cumulative += self.buckets[i].load(Ordering::Relaxed);
            let _ = writeln!(
                out,
                "{name}_bucket{{endpoint=\"{endpoint}\",le=\"{bound}\"}} {cumulative}"
            );
        }
        cumulative += self.buckets[LATENCY_BUCKETS.len()].load(Ordering::Relaxed);
        let _ = writeln!(out, "{name}_bucket{{endpoint=\"{endpoint}\",le=\"+Inf\"}} {cumulative}");
        let sum = self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9;
        let _ = writeln!(out, "{name}_sum{{endpoint=\"{endpoint}\"}} {sum}");
        let _ = writeln!(out, "{name}_count{{endpoint=\"{endpoint}\"}} {cumulative}");
    }
}

/// Point-in-time distributed-fabric gauges, gathered by the service right
/// before rendering (coordinator lease/node state plus journal state).
/// Plain data so the metrics module stays dependency-free.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricGauges {
    /// Worker nodes ever registered with this coordinator incarnation.
    pub workers_registered: u64,
    /// Worker nodes with a fresh heartbeat.
    pub workers_alive: u64,
    /// Shard leases currently outstanding.
    pub leases_outstanding: u64,
    /// Shards queued and not yet leased.
    pub pending_shards: u64,
    /// Shards re-queued after a lease expired or failed (counter).
    pub shards_retried: u64,
    /// Submitted-but-not-terminal campaigns in the journal (gauge); 0
    /// when no journal is configured.
    pub journal_depth: u64,
    /// Campaigns re-queued from the journal at startup (counter).
    pub journal_replayed: u64,
}

/// All counters and histograms for one server instance.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Well-formed campaign submissions (accepted *or* rejected for a full
    /// queue; malformed/invalid ones count under
    /// [`campaigns_invalid`](Metrics::campaigns_invalid) instead).
    pub campaigns_submitted: AtomicU64,
    /// Well-formed submissions whose configs all run at `Exact` fidelity.
    /// Together with [`campaigns_submitted_fast`] this partitions
    /// [`campaigns_submitted`]: `submitted == exact + fast` always holds.
    ///
    /// [`campaigns_submitted_fast`]: Metrics::campaigns_submitted_fast
    /// [`campaigns_submitted`]: Metrics::campaigns_submitted
    pub campaigns_submitted_exact: AtomicU64,
    /// Well-formed submissions containing at least one `Fast`-fidelity
    /// config (interval engine).
    pub campaigns_submitted_fast: AtomicU64,
    /// Submissions turned away with `429` because the queue was full.
    pub campaigns_rejected: AtomicU64,
    /// Submissions rejected for malformed JSON or an invalid spec (`400`).
    pub campaigns_invalid: AtomicU64,
    /// Campaigns that ran to completion.
    pub campaigns_completed: AtomicU64,
    /// Campaigns that failed (including per-job timeouts).
    pub campaigns_failed: AtomicU64,
    /// Campaigns cancelled via `DELETE` before or during execution.
    pub campaigns_cancelled: AtomicU64,
    /// Campaigns re-queued from the crash journal at startup. Replayed
    /// campaigns also count under [`campaigns_submitted`], so the
    /// reconciliation invariant is unchanged.
    ///
    /// [`campaigns_submitted`]: Metrics::campaigns_submitted
    pub campaigns_replayed: AtomicU64,
    /// Jobs currently sitting in the bounded queue (gauge).
    pub queue_depth: AtomicU64,
    /// Campaigns currently executing on the worker pool (gauge).
    pub jobs_inflight: AtomicU64,
    /// Currently open client connections (gauge).
    pub connections_open: AtomicU64,
    /// Connections accepted since startup.
    pub connections_total: AtomicU64,
    /// Connections turned away because the connection cap was reached.
    pub connections_rejected: AtomicU64,
    responses: Mutex<BTreeMap<(&'static str, u16), u64>>,
    latency: [Histogram; Endpoint::ALL.len()],
}

impl Metrics {
    /// Fresh, all-zero metrics.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Records one finished HTTP exchange: its response status and the
    /// handling latency (request fully parsed → response written).
    pub fn observe(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        self.latency[endpoint.index()].observe(elapsed);
        *self
            .responses
            .lock()
            .expect("no holder panics")
            .entry((endpoint.as_str(), status))
            .or_insert(0) += 1;
    }

    /// The latency histogram for one endpoint (used by tests).
    #[must_use]
    pub fn latency(&self, endpoint: Endpoint) -> &Histogram {
        &self.latency[endpoint.index()]
    }

    /// Renders everything in Prometheus text exposition format.
    /// `warm_cache` is the shared [`WarmStartCache`]'s `(computed, loaded,
    /// hits)` triple; `fabric` is the coordinator/journal gauge snapshot.
    ///
    /// [`WarmStartCache`]: powerbalance_harness::WarmStartCache
    #[must_use]
    pub fn render(&self, warm_cache: (u64, u64, u64), fabric: FabricGauges) -> String {
        let mut out = String::with_capacity(4096);
        let counter = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {v}");
        };
        let gauge = |out: &mut String, name: &str, help: &str, v: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} gauge");
            let _ = writeln!(out, "{name} {v}");
        };
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);

        counter(
            &mut out,
            "powerbalance_campaigns_submitted_total",
            "Well-formed campaign submissions (accepted + queue-full rejections).",
            load(&self.campaigns_submitted),
        );
        counter(
            &mut out,
            "powerbalance_campaigns_submitted_exact_total",
            "Well-formed submissions whose configs all use Exact fidelity.",
            load(&self.campaigns_submitted_exact),
        );
        counter(
            &mut out,
            "powerbalance_campaigns_submitted_fast_total",
            "Well-formed submissions with at least one Fast-fidelity config.",
            load(&self.campaigns_submitted_fast),
        );
        counter(
            &mut out,
            "powerbalance_campaigns_rejected_total",
            "Submissions rejected with 429 because the bounded queue was full.",
            load(&self.campaigns_rejected),
        );
        counter(
            &mut out,
            "powerbalance_campaigns_invalid_total",
            "Submissions rejected for malformed JSON or an invalid spec.",
            load(&self.campaigns_invalid),
        );
        counter(
            &mut out,
            "powerbalance_campaigns_completed_total",
            "Campaigns that ran every job to completion.",
            load(&self.campaigns_completed),
        );
        counter(
            &mut out,
            "powerbalance_campaigns_failed_total",
            "Campaigns that failed, including per-job wall-clock timeouts.",
            load(&self.campaigns_failed),
        );
        counter(
            &mut out,
            "powerbalance_campaigns_cancelled_total",
            "Campaigns cancelled before or during execution.",
            load(&self.campaigns_cancelled),
        );
        gauge(
            &mut out,
            "powerbalance_queue_depth",
            "Campaigns waiting in the bounded queue.",
            load(&self.queue_depth),
        );
        gauge(
            &mut out,
            "powerbalance_jobs_inflight",
            "Campaigns currently executing on the worker pool.",
            load(&self.jobs_inflight),
        );
        gauge(
            &mut out,
            "powerbalance_connections_open",
            "Currently open client connections.",
            load(&self.connections_open),
        );
        counter(
            &mut out,
            "powerbalance_connections_total",
            "Client connections accepted since startup.",
            load(&self.connections_total),
        );
        counter(
            &mut out,
            "powerbalance_connections_rejected_total",
            "Connections turned away at the connection cap.",
            load(&self.connections_rejected),
        );
        counter(
            &mut out,
            "powerbalance_warm_cache_computed_total",
            "Warmup snapshots computed by the shared warm-start cache.",
            warm_cache.0,
        );
        counter(
            &mut out,
            "powerbalance_warm_cache_loaded_total",
            "Warmup snapshots loaded from the checkpoint directory.",
            warm_cache.1,
        );
        counter(
            &mut out,
            "powerbalance_warm_cache_hits_total",
            "Warmup snapshot cache hits.",
            warm_cache.2,
        );
        counter(
            &mut out,
            "powerbalance_campaigns_replayed_total",
            "Campaigns re-queued from the crash journal at startup.",
            load(&self.campaigns_replayed),
        );
        gauge(
            &mut out,
            "powerbalance_fabric_workers_registered",
            "Worker nodes registered with this coordinator incarnation.",
            fabric.workers_registered,
        );
        gauge(
            &mut out,
            "powerbalance_fabric_workers_alive",
            "Worker nodes with a fresh heartbeat.",
            fabric.workers_alive,
        );
        gauge(
            &mut out,
            "powerbalance_fabric_leases_outstanding",
            "Shard leases currently held by worker nodes.",
            fabric.leases_outstanding,
        );
        gauge(
            &mut out,
            "powerbalance_fabric_pending_shards",
            "Shards queued at the coordinator and not yet leased.",
            fabric.pending_shards,
        );
        counter(
            &mut out,
            "powerbalance_fabric_shards_retried_total",
            "Shards re-queued after a lease expired or a worker failed.",
            fabric.shards_retried,
        );
        gauge(
            &mut out,
            "powerbalance_journal_depth",
            "Submitted-but-not-terminal campaigns recorded in the journal.",
            fabric.journal_depth,
        );

        let _ = writeln!(
            &mut out,
            "# HELP powerbalance_http_responses_total HTTP responses by endpoint and status."
        );
        let _ = writeln!(&mut out, "# TYPE powerbalance_http_responses_total counter");
        for ((endpoint, status), count) in self.responses.lock().expect("no holder panics").iter() {
            let _ = writeln!(
                &mut out,
                "powerbalance_http_responses_total{{endpoint=\"{endpoint}\",status=\"{status}\"}} {count}"
            );
        }

        let _ = writeln!(
            &mut out,
            "# HELP powerbalance_http_request_duration_seconds Request handling latency by endpoint."
        );
        let _ = writeln!(&mut out, "# TYPE powerbalance_http_request_duration_seconds histogram");
        for endpoint in Endpoint::ALL {
            let histogram = &self.latency[endpoint.index()];
            if histogram.count() > 0 {
                histogram.render(
                    "powerbalance_http_request_duration_seconds",
                    endpoint.as_str(),
                    &mut out,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_cumulative() {
        let h = Histogram::default();
        h.observe(Duration::from_micros(100)); // <= 0.0005
        h.observe(Duration::from_millis(3)); // <= 0.005
        h.observe(Duration::from_secs(10)); // +Inf
        assert_eq!(h.count(), 3);
        let mut out = String::new();
        h.render("m", "submit", &mut out);
        assert!(out.contains("m_bucket{endpoint=\"submit\",le=\"0.0005\"} 1"));
        assert!(out.contains("m_bucket{endpoint=\"submit\",le=\"0.005\"} 2"));
        assert!(out.contains("m_bucket{endpoint=\"submit\",le=\"+Inf\"} 3"));
        assert!(out.contains("m_count{endpoint=\"submit\"} 3"));
    }

    #[test]
    fn render_reports_counters_and_statuses() {
        let m = Metrics::new();
        m.campaigns_submitted.fetch_add(3, Ordering::Relaxed);
        m.campaigns_completed.fetch_add(2, Ordering::Relaxed);
        m.campaigns_rejected.fetch_add(1, Ordering::Relaxed);
        m.observe(Endpoint::Submit, 202, Duration::from_micros(250));
        m.observe(Endpoint::Submit, 429, Duration::from_micros(80));
        m.campaigns_replayed.fetch_add(1, Ordering::Relaxed);
        let text = m.render(
            (4, 0, 9),
            FabricGauges { workers_alive: 2, journal_depth: 5, ..FabricGauges::default() },
        );
        assert!(text.contains("powerbalance_campaigns_submitted_total 3"));
        assert!(text.contains("powerbalance_campaigns_completed_total 2"));
        assert!(text.contains("powerbalance_campaigns_rejected_total 1"));
        assert!(text.contains("powerbalance_warm_cache_computed_total 4"));
        assert!(text.contains("powerbalance_warm_cache_hits_total 9"));
        assert!(text
            .contains("powerbalance_http_responses_total{endpoint=\"submit\",status=\"202\"} 1"));
        assert!(text
            .contains("powerbalance_http_responses_total{endpoint=\"submit\",status=\"429\"} 1"));
        assert!(text
            .contains("powerbalance_http_request_duration_seconds_count{endpoint=\"submit\"} 2"));
        assert!(text.contains("powerbalance_campaigns_replayed_total 1"));
        assert!(text.contains("powerbalance_fabric_workers_alive 2"));
        assert!(text.contains("powerbalance_journal_depth 5"));
    }
}

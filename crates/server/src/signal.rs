//! A libc-free Unix signal shim.
//!
//! The offline build policy forbids the `libc` crate, but `std` already
//! links the platform C library, so declaring `signal(2)` directly is
//! enough to catch SIGINT/SIGTERM and flip an `AtomicBool` the accept
//! loop polls. On non-Unix targets [`install`] is a no-op and shutdown is
//! driven purely through [`crate::ServerHandle::request_shutdown`].

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has arrived since [`install`].
#[must_use]
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Test/embedding hook: raise the flag as if a signal had arrived.
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)`: std links libc on every Unix target, so the symbol
        // is always present; no crate dependency needed.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work here: a relaxed atomic store.
        super::TRIGGERED.store(true, std::sync::atomic::Ordering::Relaxed);
    }

    pub fn install() {
        // SAFETY: `signal` is the documented libc entry point; the handler
        // does nothing but store to a static atomic, which is
        // async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Installs SIGINT/SIGTERM handlers that set the [`triggered`] flag
/// (no-op off Unix). Because the glibc `signal()` wrapper sets
/// `SA_RESTART`, blocking accepts are *not* interrupted — the server's
/// accept loop is nonblocking and polls [`triggered`] instead.
pub fn install() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_raises_the_flag() {
        install();
        trigger();
        assert!(triggered());
    }
}

//! The transport-independent job service: a bounded queue of campaign
//! submissions drained by a fixed worker pool, with per-job status
//! tracking, cooperative cancellation, and a shared warm-start cache.
//!
//! The HTTP layer is a thin adapter over this; tests and the
//! `serve_and_query` example drive it directly, with no sockets involved.

use crate::metrics::{FabricGauges, Metrics};
use powerbalance_fabric::{Coordinator, Event, FabricConfig, FabricOutcome, Journal, TerminalKind};
use powerbalance_harness::{
    run_campaign_controlled, CampaignControl, CampaignOutcome, CampaignResult, CampaignSpec,
    JobProgress, RunnerOptions, WarmStartCache,
};
use serde::Serialize;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning knobs for a [`JobService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Capacity of the bounded submission queue; a submission arriving
    /// while the queue holds this many waiting campaigns is rejected
    /// (HTTP `429`).
    pub queue_depth: usize,
    /// Campaigns executed concurrently (each on its own worker thread).
    pub workers: usize,
    /// Worker-pool threads *within* each campaign; `None` resolves via
    /// [`powerbalance_harness::resolve_threads`].
    pub campaign_threads: Option<usize>,
    /// Wall-clock budget per (benchmark × config) job; a job exceeding it
    /// fails its whole campaign. `None` disables the timeout.
    pub job_timeout: Option<Duration>,
    /// Admission cap on `spec.job_count()` — a cheap guard against a
    /// single request occupying a worker for hours.
    pub max_jobs_per_campaign: usize,
    /// Admission cap on per-job simulated cycles (budget + warmup).
    pub max_cycles_per_job: u64,
    /// Upper bound on lockstep batching inside each campaign (see
    /// [`RunnerOptions::max_batch`]); `1` disables batching.
    pub max_batch: usize,
    /// Directory for the crash-safe campaign journal. `None` (the
    /// default) keeps the PR-5 in-memory behavior; `Some` makes every
    /// submission durable and replays unfinished campaigns on restart.
    pub journal_dir: Option<PathBuf>,
    /// Lease/heartbeat tuning for the distributed fabric coordinator.
    pub fabric: FabricConfig,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_depth: 16,
            workers: 2,
            campaign_threads: None,
            job_timeout: Some(Duration::from_secs(600)),
            max_jobs_per_campaign: 256,
            max_cycles_per_job: 100_000_000,
            max_batch: 6,
            journal_dir: None,
            fabric: FabricConfig::default(),
        }
    }
}

/// Lifecycle of one submitted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum JobState {
    /// Accepted, waiting in the bounded queue.
    Queued,
    /// Executing on a worker.
    Running,
    /// Every job finished; the result is available.
    Completed,
    /// The campaign failed (currently only per-job timeouts).
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// Whether the state is final.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Completed | JobState::Failed | JobState::Cancelled)
    }
}

/// A point-in-time status snapshot for one submission, as returned by
/// `GET /v1/campaigns/<id>`.
#[derive(Debug, Clone, Serialize)]
pub struct StatusReport {
    /// The submission id.
    pub id: u64,
    /// Campaign name from the spec.
    pub name: String,
    /// Current lifecycle state.
    pub state: JobState,
    /// Failure detail when `state` is `Failed`.
    pub error: Option<String>,
    /// Total (benchmark × config) jobs in the campaign.
    pub total_jobs: usize,
    /// Jobs finished so far (live while `Running`).
    pub completed_jobs: usize,
    /// Per-job summaries of the finished jobs, in completion order.
    pub finished: Vec<JobProgress>,
}

/// Why a submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The spec failed validation or an admission limit.
    Invalid(String),
    /// The bounded queue is full; retry later.
    QueueFull,
    /// The service is draining for shutdown and takes no new work.
    Draining,
}

struct JobRecord {
    spec: Arc<CampaignSpec>,
    state: JobState,
    error: Option<String>,
    result: Option<Arc<CampaignResult>>,
    control: Arc<CampaignControl>,
}

/// Builds the status snapshot for one record (shared by the instant and
/// long-poll status paths).
fn report(id: u64, record: &JobRecord) -> StatusReport {
    let (completed_jobs, total_jobs) = record.control.progress();
    StatusReport {
        id,
        name: record.spec.name.clone(),
        state: record.state,
        error: record.error.clone(),
        total_jobs,
        completed_jobs,
        finished: record.control.finished_jobs(),
    }
}

/// The job service: owns the queue, the worker pool, the job table, the
/// shared warm-start cache, and the metrics registry.
pub struct JobService {
    config: ServiceConfig,
    jobs: Mutex<HashMap<u64, JobRecord>>,
    /// Signalled whenever any campaign reaches a terminal state; paired
    /// with the `jobs` mutex for long-poll result delivery.
    terminal: Condvar,
    next_id: AtomicU64,
    sender: Mutex<Option<SyncSender<u64>>>,
    draining: AtomicBool,
    metrics: Arc<Metrics>,
    cache: Arc<WarmStartCache>,
    journal: Option<Journal>,
    coordinator: Arc<Coordinator>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl JobService {
    /// Starts the worker pool and returns the service.
    ///
    /// # Panics
    ///
    /// Panics if [`ServiceConfig::journal_dir`] is set and the journal
    /// cannot be opened; use [`try_start`](JobService::try_start) to
    /// handle that case.
    #[must_use]
    pub fn start(config: ServiceConfig) -> Arc<JobService> {
        JobService::try_start(config).expect("journal directory is usable")
    }

    /// Starts the worker pool, opening and replaying the crash journal
    /// when [`ServiceConfig::journal_dir`] is set: terminal campaigns
    /// from the previous incarnation come back as tombstone records
    /// (state preserved, result gone), and submitted-but-unfinished ones
    /// are re-queued under their original ids — no client resubmission.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from opening the journal directory.
    pub fn try_start(config: ServiceConfig) -> std::io::Result<Arc<JobService>> {
        let (journal, recovery) = match &config.journal_dir {
            Some(dir) => {
                let (journal, recovery) = Journal::open(dir)?;
                (Some(journal), Some(recovery))
            }
            None => (None, None),
        };
        let fabric = config.fabric.clone();
        let (sender, receiver) = std::sync::mpsc::sync_channel::<u64>(config.queue_depth.max(1));
        let receiver = Arc::new(Mutex::new(receiver));
        let service = Arc::new(JobService {
            config,
            jobs: Mutex::new(HashMap::new()),
            terminal: Condvar::new(),
            next_id: AtomicU64::new(1),
            sender: Mutex::new(Some(sender)),
            draining: AtomicBool::new(false),
            metrics: Arc::new(Metrics::new()),
            cache: Arc::new(WarmStartCache::in_memory()),
            journal,
            coordinator: Arc::new(Coordinator::new(fabric)),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        if let Some(recovery) = recovery {
            if let Some(handle) = service.recover(recovery) {
                handles.push(handle);
            }
        }
        for worker in 0..service.config.workers.max(1) {
            let service = Arc::clone(&service);
            let receiver = Arc::clone(&receiver);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("powerbalance-worker-{worker}"))
                    .spawn(move || service.worker_loop(&receiver))
                    .expect("spawning a worker thread succeeds"),
            );
        }
        *service.workers.lock().expect("no holder panics") = handles;
        Ok(service)
    }

    /// Installs the journal's recovery state: tombstones for terminal
    /// campaigns, queued records for pending ones, and a replayer thread
    /// that feeds the pending ids into the bounded queue (a blocking
    /// sender, so recovery depth can exceed the queue capacity without
    /// deadlocking startup).
    fn recover(&self, recovery: powerbalance_fabric::Recovery) -> Option<JoinHandle<()>> {
        self.next_id.store(recovery.max_id + 1, Ordering::Relaxed);
        let mut jobs = self.jobs.lock().expect("no holder panics");
        for (id, kind, spec) in recovery.terminal {
            let spec = spec.unwrap_or_else(|| CampaignSpec::new("(recovered)"));
            let (state, error) = match kind {
                TerminalKind::Completed => (JobState::Completed, None),
                TerminalKind::Failed(error) => (JobState::Failed, Some(error)),
                TerminalKind::Cancelled => (JobState::Cancelled, None),
            };
            let record = JobRecord {
                spec: Arc::new(spec),
                state,
                error,
                result: None,
                control: Arc::new(CampaignControl::new()),
            };
            jobs.insert(id, record);
        }
        let mut pending_ids = Vec::with_capacity(recovery.pending.len());
        for (id, spec) in recovery.pending {
            let is_fast = spec
                .configs
                .iter()
                .any(|named| named.config.fidelity == powerbalance::Fidelity::Fast);
            let record = JobRecord {
                spec: Arc::new(spec),
                state: JobState::Queued,
                error: None,
                result: None,
                control: Arc::new(CampaignControl::new()),
            };
            record.control.set_total(record.spec.job_count());
            jobs.insert(id, record);
            pending_ids.push(id);
            // Replayed campaigns count as submitted so the reconciliation
            // invariant keeps holding across a restart.
            self.metrics.campaigns_submitted.fetch_add(1, Ordering::Relaxed);
            let per_fidelity = if is_fast {
                &self.metrics.campaigns_submitted_fast
            } else {
                &self.metrics.campaigns_submitted_exact
            };
            per_fidelity.fetch_add(1, Ordering::Relaxed);
            self.metrics.campaigns_replayed.fetch_add(1, Ordering::Relaxed);
            self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
        drop(jobs);
        if pending_ids.is_empty() {
            return None;
        }
        let sender =
            self.sender.lock().expect("no holder panics").clone().expect("sender exists at start");
        Some(
            std::thread::Builder::new()
                .name("powerbalance-replayer".into())
                .spawn(move || {
                    for id in pending_ids {
                        // Blocking send: recovered depth may exceed the
                        // queue bound. A disconnect means drain() ran
                        // before replay finished; the rest stays journaled
                        // for the next incarnation.
                        if sender.send(id).is_err() {
                            return;
                        }
                    }
                })
                .expect("spawning the replayer thread succeeds"),
        )
    }

    /// The distributed-fabric coordinator (worker registration, leases).
    #[must_use]
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coordinator
    }

    /// `(journal depth, campaigns replayed at startup)`, or `None` when
    /// no journal is configured.
    #[must_use]
    pub fn journal_status(&self) -> Option<(u64, u64)> {
        self.journal.as_ref().map(|journal| {
            (journal.depth(), self.metrics.campaigns_replayed.load(Ordering::Relaxed))
        })
    }

    /// Point-in-time fabric + journal gauges for `/metrics`.
    #[must_use]
    pub fn fabric_gauges(&self) -> FabricGauges {
        let stats = self.coordinator.stats();
        let (journal_depth, journal_replayed) = self.journal_status().unwrap_or((0, 0));
        FabricGauges {
            workers_registered: stats.workers_registered,
            workers_alive: stats.workers_alive,
            leases_outstanding: stats.leases_outstanding,
            pending_shards: stats.pending_shards,
            shards_retried: stats.shards_retried,
            journal_depth,
            journal_replayed,
        }
    }

    /// Appends `event` to the journal, if one is configured. Journal
    /// write failures must not take down a running campaign: they are
    /// reported on stderr and the in-memory state stays authoritative.
    fn journal_append(&self, event: Event) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append(event) {
                eprintln!("powerbalance-serve: journal append failed: {e}");
            }
        }
    }

    /// The service's metrics registry.
    #[must_use]
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.metrics
    }

    /// `(computed, loaded, hits)` from the shared warm-start cache.
    #[must_use]
    pub fn cache_stats(&self) -> (u64, u64, u64) {
        self.cache.stats()
    }

    /// Whether the service has started draining (no new submissions).
    #[must_use]
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    /// Validates and enqueues a campaign. On success the campaign is
    /// `Queued` and will eventually reach a terminal state.
    ///
    /// Counter semantics: every *well-formed* submission increments
    /// `campaigns_submitted`, including ones bounced by a full queue
    /// (those also increment `campaigns_rejected`); invalid specs count
    /// only under `campaigns_invalid`. That makes the reconciliation
    /// `submitted = completed + failed + cancelled + rejected` hold at
    /// quiescence. Each such submission also increments exactly one of
    /// the per-fidelity counters (`campaigns_submitted_fast` when any
    /// config uses the interval engine, `campaigns_submitted_exact`
    /// otherwise), so `submitted = exact + fast` holds too.
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] for validation/admission failures,
    /// [`SubmitError::QueueFull`] under backpressure, and
    /// [`SubmitError::Draining`] during shutdown.
    pub fn submit(&self, spec: CampaignSpec) -> Result<u64, SubmitError> {
        if self.is_draining() {
            return Err(SubmitError::Draining);
        }
        spec.validate().map_err(|e| SubmitError::Invalid(e.to_string()))?;
        if spec.job_count() > self.config.max_jobs_per_campaign {
            return Err(SubmitError::Invalid(format!(
                "campaign has {} jobs; this server accepts at most {}",
                spec.job_count(),
                self.config.max_jobs_per_campaign
            )));
        }
        let worst_cycles = (0..spec.configs.len())
            .map(|ci| spec.cycles_for(ci))
            .max()
            .unwrap_or(0)
            .saturating_add(spec.warmup_cycles);
        if worst_cycles > self.config.max_cycles_per_job {
            return Err(SubmitError::Invalid(format!(
                "a job would simulate {worst_cycles} cycles (budget + warmup); \
                 this server accepts at most {}",
                self.config.max_cycles_per_job
            )));
        }

        // Classify before `spec` moves into the record: the per-fidelity
        // counter must move in lockstep with `campaigns_submitted` on
        // both the accepted and queue-full outcomes below.
        let is_fast =
            spec.configs.iter().any(|named| named.config.fidelity == powerbalance::Fidelity::Fast);
        let note_submitted = || {
            self.metrics.campaigns_submitted.fetch_add(1, Ordering::Relaxed);
            let per_fidelity = if is_fast {
                &self.metrics.campaigns_submitted_fast
            } else {
                &self.metrics.campaigns_submitted_exact
            };
            per_fidelity.fetch_add(1, Ordering::Relaxed);
        };

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let spec_arc = Arc::new(spec);
        let record = JobRecord {
            spec: Arc::clone(&spec_arc),
            state: JobState::Queued,
            error: None,
            result: None,
            control: Arc::new(CampaignControl::new()),
        };
        record.control.set_total(record.spec.job_count());
        self.jobs.lock().expect("no holder panics").insert(id, record);

        let sender = self.sender.lock().expect("no holder panics").clone();
        let Some(sender) = sender else {
            self.jobs.lock().expect("no holder panics").remove(&id);
            return Err(SubmitError::Draining);
        };
        match sender.try_send(id) {
            Ok(()) => {
                note_submitted();
                self.metrics.queue_depth.fetch_add(1, Ordering::Relaxed);
                // Journal after the id is committed to the queue: a
                // rejected submission must leave no durable trace. The
                // worker may race ahead and journal `Started` first;
                // replay is order-insensitive, so that is harmless.
                self.journal_append(Event::Submitted { id, spec: (*spec_arc).clone() });
                Ok(id)
            }
            Err(TrySendError::Full(_)) => {
                self.jobs.lock().expect("no holder panics").remove(&id);
                note_submitted();
                self.metrics.campaigns_rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(TrySendError::Disconnected(_)) => {
                self.jobs.lock().expect("no holder panics").remove(&id);
                Err(SubmitError::Draining)
            }
        }
    }

    /// The status snapshot for `id`, or `None` for an unknown id.
    #[must_use]
    pub fn status(&self, id: u64) -> Option<StatusReport> {
        let jobs = self.jobs.lock().expect("no holder panics");
        jobs.get(&id).map(|record| report(id, record))
    }

    /// Like [`status`](JobService::status), but blocks up to `wait` for
    /// the campaign to reach a terminal state — the long-poll primitive
    /// behind `GET /v1/campaigns/<id>/result?wait=<secs>`. Returns the
    /// freshest snapshot either way; `None` only for unknown ids.
    #[must_use]
    pub fn wait_terminal(&self, id: u64, wait: Duration) -> Option<StatusReport> {
        let deadline = Instant::now() + wait;
        let mut jobs = self.jobs.lock().expect("no holder panics");
        loop {
            let snapshot = jobs.get(&id).map(|record| (record.state, report(id, record)))?;
            let (state, status) = snapshot;
            if state.is_terminal() {
                return Some(status);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Some(status);
            }
            // Re-wake at least every 100ms as insurance against a missed
            // notification; the condvar carries the fast path.
            let park = remaining.min(Duration::from_millis(100));
            let (next, _) = self.terminal.wait_timeout(jobs, park).expect("no holder panics");
            jobs = next;
        }
    }

    /// The full result for `id` once `Completed`. `None` for unknown ids
    /// *and* for campaigns not (yet) completed — callers distinguish via
    /// [`status`](JobService::status).
    #[must_use]
    pub fn result(&self, id: u64) -> Option<Arc<CampaignResult>> {
        self.jobs.lock().expect("no holder panics").get(&id).and_then(|r| r.result.clone())
    }

    /// Requests cancellation of `id`. Returns the state the campaign was
    /// in when the request landed, or `None` for an unknown id. A
    /// `Queued` campaign is cancelled immediately; a `Running` one stops
    /// cooperatively at its next sampling-window boundary; terminal
    /// states are unaffected.
    #[must_use]
    pub fn cancel(&self, id: u64) -> Option<JobState> {
        let mut jobs = self.jobs.lock().expect("no holder panics");
        let record = jobs.get_mut(&id)?;
        let observed = record.state;
        match observed {
            JobState::Queued => {
                // The queue still holds the id; the worker that drains it
                // skips non-Queued records.
                record.state = JobState::Cancelled;
                record.control.cancel();
                self.metrics.campaigns_cancelled.fetch_add(1, Ordering::Relaxed);
                drop(jobs);
                self.journal_append(Event::Cancelled { id });
                self.terminal.notify_all();
                return Some(observed);
            }
            JobState::Running => {
                // The owning worker observes the flag at the next window
                // boundary and finalizes state + counters itself.
                record.control.cancel();
            }
            JobState::Completed | JobState::Failed | JobState::Cancelled => {}
        }
        Some(observed)
    }

    /// Stops accepting submissions, lets every queued and running
    /// campaign finish, and joins the workers. Idempotent.
    pub fn drain(&self) {
        self.draining.store(true, Ordering::Relaxed);
        // Dropping the sender disconnects the channel once the queue is
        // empty, which ends the worker loops.
        drop(self.sender.lock().expect("no holder panics").take());
        let handles = std::mem::take(&mut *self.workers.lock().expect("no holder panics"));
        for handle in handles {
            let _ = handle.join();
        }
        // Only after the last in-flight campaign finished: a distributed
        // campaign still needs the coordinator to collect its shards.
        self.coordinator.shutdown();
    }

    /// Like [`drain`](JobService::drain), but first cancels everything
    /// still queued or running — the fast path for `Drop`/ctrl-c-twice.
    pub fn abort(&self) {
        self.draining.store(true, Ordering::Relaxed);
        {
            let jobs = self.jobs.lock().expect("no holder panics");
            for record in jobs.values() {
                if !record.state.is_terminal() {
                    record.control.cancel();
                }
            }
        }
        self.drain();
    }

    fn worker_loop(&self, receiver: &Arc<Mutex<Receiver<u64>>>) {
        loop {
            // Hold the receiver lock only for the blocking recv; workers
            // take turns pulling ids.
            let next = receiver.lock().expect("no holder panics").recv();
            let Ok(id) = next else {
                return; // channel disconnected: drain() dropped the sender
            };
            self.metrics.queue_depth.fetch_sub(1, Ordering::Relaxed);
            self.run_job(id);
        }
    }

    fn run_job(&self, id: u64) {
        let (spec, control) = {
            let mut jobs = self.jobs.lock().expect("no holder panics");
            let Some(record) = jobs.get_mut(&id) else { return };
            if record.state != JobState::Queued {
                return; // cancelled while waiting in the queue
            }
            record.state = JobState::Running;
            (Arc::clone(&record.spec), Arc::clone(&record.control))
        };
        self.metrics.jobs_inflight.fetch_add(1, Ordering::Relaxed);
        self.journal_append(Event::Started { id });

        let outcome = self.execute_campaign(&spec, &control);

        self.metrics.jobs_inflight.fetch_sub(1, Ordering::Relaxed);
        let mut jobs = self.jobs.lock().expect("no holder panics");
        let Some(record) = jobs.get_mut(&id) else { return };
        let event = match outcome {
            Ok(CampaignOutcome::Completed(result)) => {
                record.state = JobState::Completed;
                record.result = Some(Arc::new(result));
                self.metrics.campaigns_completed.fetch_add(1, Ordering::Relaxed);
                Event::Completed { id }
            }
            Ok(CampaignOutcome::Cancelled) => {
                record.state = JobState::Cancelled;
                self.metrics.campaigns_cancelled.fetch_add(1, Ordering::Relaxed);
                Event::Cancelled { id }
            }
            Ok(CampaignOutcome::TimedOut { bench, config }) => {
                let error = format!("job {bench}/{config} exceeded the per-job wall-clock timeout");
                record.state = JobState::Failed;
                record.error = Some(error.clone());
                self.metrics.campaigns_failed.fetch_add(1, Ordering::Relaxed);
                Event::Failed { id, error }
            }
            // Validation already passed at submit; a failure here is a
            // shard exhausting its retries or a harness bug, and either
            // way must not wedge the record in `Running`.
            Err(error) => {
                record.state = JobState::Failed;
                record.error = Some(error.clone());
                self.metrics.campaigns_failed.fetch_add(1, Ordering::Relaxed);
                Event::Failed { id, error }
            }
        };
        drop(jobs);
        self.journal_append(event);
        self.terminal.notify_all();
    }

    /// Runs one campaign, preferring the distributed fabric when live
    /// worker nodes are registered and falling back to the local pool
    /// when there are none (or they all vanish before finishing — the
    /// progress log is reset so jobs are not double-counted).
    fn execute_campaign(
        &self,
        spec: &Arc<CampaignSpec>,
        control: &Arc<CampaignControl>,
    ) -> Result<CampaignOutcome, String> {
        if self.coordinator.live_workers() > 0 {
            match self.coordinator.execute(spec, control, self.config.max_batch) {
                FabricOutcome::Completed(result) => return Ok(CampaignOutcome::Completed(*result)),
                FabricOutcome::Cancelled => return Ok(CampaignOutcome::Cancelled),
                FabricOutcome::Failed(error) => return Err(error),
                FabricOutcome::NoWorkers => control.reset_progress(),
            }
        }
        let options = RunnerOptions {
            threads: self.config.campaign_threads,
            progress: false,
            warm_cache: true,
            checkpoint_dir: None,
            resume: false,
            max_batch: self.config.max_batch,
        };
        run_campaign_controlled(spec, &options, control, self.config.job_timeout, Some(&self.cache))
            .map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::experiments;

    fn tiny_spec(name: &str) -> CampaignSpec {
        CampaignSpec::new(name)
            .config("base", experiments::issue_queue(false))
            .benchmark("gzip")
            .cycles(20_000)
    }

    fn wait_terminal(service: &JobService, id: u64) -> StatusReport {
        for _ in 0..4_000 {
            let status = service.status(id).expect("known id");
            if status.state.is_terminal() {
                return status;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("campaign {id} did not reach a terminal state");
    }

    #[test]
    fn submit_runs_to_completion_with_result() {
        let service = JobService::start(ServiceConfig::default());
        let id = service.submit(tiny_spec("svc-complete")).expect("accepted");
        let status = wait_terminal(&service, id);
        assert_eq!(status.state, JobState::Completed);
        assert_eq!(status.completed_jobs, 1);
        assert_eq!(status.total_jobs, 1);
        assert_eq!(status.finished.len(), 1);
        assert_eq!(status.finished[0].bench, "gzip");
        let result = service.result(id).expect("result available");
        assert_eq!(result.jobs.len(), 1);
        assert!(result.jobs[0].result.ipc > 0.0);
        service.drain();
        assert_eq!(service.metrics().campaigns_completed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn policy_campaigns_round_trip_the_wire_and_run() {
        use powerbalance::experiments::PolicyKind;
        use powerbalance::FloorplanKind;

        let mut cfg = experiments::policy(PolicyKind::Dvfs, FloorplanKind::IssueConstrained);
        // Pull the limit below eon's transient peak so the ladder engages
        // within a test-sized cycle budget.
        cfg.mitigation = cfg.mitigation.with_max_temp(340.0);
        let spec = CampaignSpec::new("svc-dvfs")
            .config("dvfs", cfg)
            .benchmark("eon")
            .cycles(60_000)
            .seed(5);
        // An HTTP submission arrives as spec JSON; force that wire path so
        // a serde gap in the policy layer can't hide behind in-process use.
        let wired: CampaignSpec =
            serde::json::from_str(&serde::json::to_string(&spec)).expect("spec round-trips");
        assert_eq!(wired, spec);

        let service = JobService::start(ServiceConfig::default());
        let id = service.submit(wired).expect("accepted");
        assert_eq!(wait_terminal(&service, id).state, JobState::Completed);
        let result = service.result(id).expect("result available");
        let r = &result.jobs[0].result;
        assert!(r.opp_transitions > 0, "the DVFS ladder must engage");
        // The result artifact keeps the policy counters through its own
        // wire trip too.
        let back: CampaignResult =
            serde::json::from_str(&result.to_json()).expect("result round-trips");
        assert_eq!(back, *result);
        service.drain();
    }

    #[test]
    fn invalid_specs_are_rejected_at_admission() {
        let service = JobService::start(ServiceConfig::default());
        assert!(matches!(
            service.submit(CampaignSpec::new("no-configs").benchmark("gzip")),
            Err(SubmitError::Invalid(_))
        ));
        let huge = tiny_spec("huge").cycles(u64::MAX);
        assert!(matches!(service.submit(huge), Err(SubmitError::Invalid(_))));
        let wide = CampaignSpec::new("wide")
            .config("base", experiments::issue_queue(false))
            .all_benchmarks()
            .cycles(1_000);
        let narrow = JobService::start(ServiceConfig {
            max_jobs_per_campaign: 4,
            ..ServiceConfig::default()
        });
        assert!(matches!(narrow.submit(wide), Err(SubmitError::Invalid(_))));
        assert!(service.status(999).is_none());
        service.drain();
        narrow.drain();
    }

    #[test]
    fn queued_campaign_cancels_immediately() {
        // One worker, and a first campaign big enough that the second is
        // still queued when we cancel it.
        let service = JobService::start(ServiceConfig {
            workers: 1,
            campaign_threads: Some(1),
            ..ServiceConfig::default()
        });
        let blocker = service.submit(tiny_spec("blocker").cycles(300_000)).expect("accepted");
        let queued = service.submit(tiny_spec("queued")).expect("accepted");
        let observed = service.cancel(queued).expect("known id");
        // Cancellation raced the worker: the campaign was either still
        // queued (cancelled instantly) or had just started (cancelled at
        // the next window). Both must end Cancelled.
        assert!(matches!(observed, JobState::Queued | JobState::Running));
        assert_eq!(wait_terminal(&service, queued).state, JobState::Cancelled);
        assert_eq!(wait_terminal(&service, blocker).state, JobState::Completed);
        assert!(service.result(queued).is_none());
        service.drain();
        let m = service.metrics();
        assert_eq!(m.campaigns_submitted.load(Ordering::Relaxed), 2);
        assert_eq!(m.campaigns_completed.load(Ordering::Relaxed), 1);
        assert_eq!(m.campaigns_cancelled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn full_queue_rejects_and_draining_refuses() {
        let service = JobService::start(ServiceConfig {
            queue_depth: 1,
            workers: 1,
            campaign_threads: Some(1),
            ..ServiceConfig::default()
        });
        // Fill the single worker and the single queue slot with slow
        // campaigns, then overflow.
        let a = service.submit(tiny_spec("a").cycles(300_000)).expect("accepted");
        let mut rejected = 0;
        let mut accepted = vec![a];
        for i in 0..20 {
            match service.submit(tiny_spec(&format!("b{i}")).cycles(300_000)) {
                Ok(id) => accepted.push(id),
                Err(SubmitError::QueueFull) => rejected += 1,
                Err(other) => panic!("unexpected rejection: {other:?}"),
            }
        }
        assert!(rejected > 0, "overflow must hit the bounded queue");
        let m = service.metrics();
        assert_eq!(m.campaigns_submitted.load(Ordering::Relaxed), 1 + 20);
        assert_eq!(m.campaigns_rejected.load(Ordering::Relaxed), rejected);
        // Rejected ids leave no record behind.
        service.drain();
        for id in &accepted {
            assert!(service.status(*id).expect("known id").state.is_terminal());
        }
        assert!(matches!(service.submit(tiny_spec("late")), Err(SubmitError::Draining)));
        // Reconciliation at quiescence.
        let done = m.campaigns_completed.load(Ordering::Relaxed)
            + m.campaigns_failed.load(Ordering::Relaxed)
            + m.campaigns_cancelled.load(Ordering::Relaxed)
            + m.campaigns_rejected.load(Ordering::Relaxed);
        assert_eq!(m.campaigns_submitted.load(Ordering::Relaxed), done);
    }

    #[test]
    fn job_timeout_fails_the_campaign() {
        let service = JobService::start(ServiceConfig {
            job_timeout: Some(Duration::ZERO),
            ..ServiceConfig::default()
        });
        let id = service.submit(tiny_spec("doomed")).expect("accepted");
        let status = wait_terminal(&service, id);
        assert_eq!(status.state, JobState::Failed);
        assert!(status.error.expect("has error").contains("timeout"));
        service.drain();
        assert_eq!(service.metrics().campaigns_failed.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn warm_cache_is_shared_across_submissions() {
        let service = JobService::start(ServiceConfig { workers: 1, ..ServiceConfig::default() });
        let spec = |name: &str| tiny_spec(name).cycles(10_000).warmup(20_000);
        let first = service.submit(spec("warm-1")).expect("accepted");
        let second = service.submit(spec("warm-2")).expect("accepted");
        assert_eq!(wait_terminal(&service, first).state, JobState::Completed);
        assert_eq!(wait_terminal(&service, second).state, JobState::Completed);
        let (computed, _, hits) = service.cache_stats();
        assert_eq!(computed, 1, "second submission reuses the first warmup");
        assert_eq!(hits, 1);
        service.drain();
    }

    #[test]
    fn abort_cancels_queued_work() {
        let service = JobService::start(ServiceConfig {
            workers: 1,
            campaign_threads: Some(1),
            ..ServiceConfig::default()
        });
        let ids: Vec<u64> = (0..4)
            .map(|i| {
                service.submit(tiny_spec(&format!("abort-{i}")).cycles(300_000)).expect("fits")
            })
            .collect();
        service.abort();
        for id in ids {
            let status = service.status(id).expect("known id");
            assert!(status.state.is_terminal(), "job {id} left in {:?} after abort", status.state);
            assert_ne!(status.state, JobState::Failed);
        }
    }
}

//! Activity-to-power conversion.

use crate::EnergyTables;
use powerbalance_thermal::Floorplan;
use powerbalance_uarch::{ActivitySample, IqActivity};

/// Block indices the power model needs to resolve once at construction.
#[derive(Debug, Clone, Copy)]
struct BlockIndices {
    icache: usize,
    dcache: usize,
    bpred: usize,
    itb: usize,
    dtb: usize,
    ldstq: usize,
    int_map: usize,
    int_q: [usize; 2],
    int_reg: [usize; 2],
    int_exec: [usize; 6],
    fp_map: usize,
    fp_q: [usize; 2],
    fp_reg: usize,
    fp_mul: usize,
    fp_add: [usize; 4],
}

/// Converts per-window [`ActivitySample`]s into per-block average power.
///
/// Construction binds the model to a [`Floorplan`] (it must contain the
/// EV6-like block names from [`powerbalance_thermal::ev6::BLOCK_NAMES`]);
/// the returned power vectors are indexed identically to
/// [`Floorplan::blocks`], ready to feed into
/// [`powerbalance_thermal::ThermalModel::step`].
///
/// Unified-L2 accesses are counted by the core but charged to no block:
/// like the EV6 the paper models, the L2 is outside the hot die area.
///
/// # Statelessness
///
/// After construction the model is *pure*: [`block_power`] depends only on
/// the sample passed in, never on prior calls. The snapshot/restore layer
/// in `powerbalance` relies on this — a simulator snapshot records no power
/// state because there is none; the model is rebuilt from configuration.
/// The `purity_contract` unit test pins the property.
///
/// [`block_power`]: PowerModel::block_power
#[derive(Debug, Clone)]
pub struct PowerModel {
    tables: EnergyTables,
    frequency_hz: f64,
    idx: BlockIndices,
    /// Leakage power per block, W (precomputed from area).
    leakage: Vec<f64>,
    block_count: usize,
}

impl PowerModel {
    /// Builds a power model bound to `plan`.
    ///
    /// # Errors
    ///
    /// Returns an error if the tables are invalid, the frequency is not
    /// positive, or the plan is missing a required block name.
    pub fn new(plan: &Floorplan, tables: EnergyTables, frequency_hz: f64) -> Result<Self, String> {
        tables.validate()?;
        if frequency_hz <= 0.0 || frequency_hz.is_nan() {
            return Err(format!("frequency must be positive, got {frequency_hz}"));
        }
        let find = |name: &str| {
            plan.index_of(name).ok_or_else(|| format!("floorplan is missing block {name}"))
        };
        let arr2 = |prefix: &str| -> Result<[usize; 2], String> {
            Ok([find(&format!("{prefix}0"))?, find(&format!("{prefix}1"))?])
        };
        let idx = BlockIndices {
            icache: find("Icache")?,
            dcache: find("Dcache")?,
            bpred: find("Bpred")?,
            itb: find("ITB")?,
            dtb: find("DTB")?,
            ldstq: find("LdStQ")?,
            int_map: find("IntMap")?,
            int_q: arr2("IntQ")?,
            int_reg: arr2("IntReg")?,
            int_exec: [
                find("IntExec0")?,
                find("IntExec1")?,
                find("IntExec2")?,
                find("IntExec3")?,
                find("IntExec4")?,
                find("IntExec5")?,
            ],
            fp_map: find("FPMap")?,
            fp_q: arr2("FPQ")?,
            fp_reg: find("FPReg")?,
            fp_mul: find("FPMul")?,
            fp_add: [find("FPAdd0")?, find("FPAdd1")?, find("FPAdd2")?, find("FPAdd3")?],
        };
        let leakage = plan.blocks().iter().map(|b| b.area() * tables.leakage_per_area).collect();
        Ok(PowerModel { tables, frequency_hz, idx, leakage, block_count: plan.blocks().len() })
    }

    /// The energy tables in use.
    #[must_use]
    pub fn tables(&self) -> &EnergyTables {
        &self.tables
    }

    /// Clock frequency the energies are averaged over, Hz.
    #[must_use]
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Issue-queue energy for one queue over a window: per-half dynamic
    /// energies `[half0, half1]` in joules.
    fn queue_energy(&self, iq: &IqActivity) -> [f64; 2] {
        let t = &self.tables;
        let mut halves = [0.0f64; 2];
        for (h, half) in halves.iter_mut().enumerate() {
            *half += iq.compact_moves[h] as f64 * t.compact_entry;
            *half += iq.mux_selects[h] as f64 * t.compact_mux;
            *half += iq.counter_entries[h] as f64 * (t.counter_stage1 + t.counter_stage2);
        }
        // Globally distributed components: the paper spreads tag broadcast,
        // match, select, payload RAM, and gating control evenly over both
        // halves (§3.1). The long wrap-around compaction wires likewise run
        // the full length of the queue, so their dissipation is spread over
        // both halves.
        let long_total = (iq.long_moves[0] + iq.long_moves[1]) as f64 * t.long_compaction;
        let global = iq.broadcasts as f64 * t.tag_broadcast
            + iq.payload_accesses as f64 * t.payload_ram
            + iq.selects as f64 * t.select_access
            + iq.gating_cycles as f64 * t.clock_gating
            + long_total;
        halves[0] += global / 2.0;
        halves[1] += global / 2.0;
        halves
    }

    /// Average per-block power (watts) over the window `sample` covers.
    ///
    /// Returns one entry per floorplan block. Windows with zero cycles
    /// yield pure leakage.
    ///
    /// Allocates the result vector; the per-window sampling loop should
    /// use [`block_power_into`](Self::block_power_into) with a persistent
    /// buffer instead.
    ///
    /// # Panics
    ///
    /// Never panics for samples produced by `powerbalance-uarch`.
    #[must_use]
    pub fn block_power(&self, sample: &ActivitySample) -> Vec<f64> {
        let mut out = vec![0.0f64; self.block_count];
        self.block_power_into(sample, &mut out);
        out
    }

    /// Allocation-free [`block_power`](Self::block_power): writes the
    /// per-block watts into `out`, overwriting its contents.
    ///
    /// The accumulation order matches `block_power` exactly (it is the same
    /// code), so the two produce bit-identical vectors.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have one entry per floorplan block.
    pub fn block_power_into(&self, sample: &ActivitySample, out: &mut [f64]) {
        assert_eq!(out.len(), self.block_count, "one output entry per block");
        // `out` doubles as the energy accumulator until the final
        // energy-to-power conversion.
        out.fill(0.0);
        self.accumulate_energy(sample, out);

        // Convert window energy to average power and add leakage.
        let seconds = sample.cycles as f64 / self.frequency_hz;
        if seconds > 0.0 {
            for (e, &leak) in out.iter_mut().zip(&self.leakage) {
                *e = leak + *e / seconds;
            }
        } else {
            out.copy_from_slice(&self.leakage);
        }
    }

    /// [`block_power_into`](Self::block_power_into) with the *dynamic*
    /// energy scaled by `dynamic_scale` before the power conversion.
    ///
    /// This is the DVFS hook: at a reduced operating point each switching
    /// event dissipates `V²`-scaled energy, so the manager passes
    /// `volt_scale²` here while the frequency reduction itself is modeled
    /// as duty-cycle gating in the core (fewer events per window). Leakage
    /// is deliberately left unscaled — the model follows the paper's
    /// dynamic-power framing (see DESIGN.md §12).
    ///
    /// The model stays stateless: the scale is an explicit argument, never
    /// stored, so the purity contract is unaffected. At `dynamic_scale ==
    /// 1.0` callers should prefer `block_power_into`, which this function
    /// matches bit-for-bit in that case.
    ///
    /// # Panics
    ///
    /// Panics if `out` does not have one entry per floorplan block.
    pub fn block_power_scaled_into(
        &self,
        sample: &ActivitySample,
        dynamic_scale: f64,
        out: &mut [f64],
    ) {
        assert_eq!(out.len(), self.block_count, "one output entry per block");
        out.fill(0.0);
        self.accumulate_energy(sample, out);

        let seconds = sample.cycles as f64 / self.frequency_hz;
        if seconds > 0.0 {
            for (e, &leak) in out.iter_mut().zip(&self.leakage) {
                *e = leak + (*e * dynamic_scale) / seconds;
            }
        } else {
            out.copy_from_slice(&self.leakage);
        }
    }

    /// Batched power accounting: converts one activity window per lane
    /// into that lane's per-block watts, writing `outs[lane]`.
    ///
    /// The batched campaign engine collects every lockstep sibling's
    /// window activity and its dynamic-power scale, then accounts the
    /// whole batch in one call. Each lane runs the scalar conversion —
    /// [`block_power_into`](Self::block_power_into) at scale 1.0, the
    /// scaled variant otherwise — so lane `i` of the output is
    /// bit-identical to the corresponding scalar call; the batching wins
    /// locality (one pass over the energy tables per window) without
    /// touching the purity contract.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` and `outs` differ in length or any output slice
    /// is not one entry per block.
    pub fn block_power_many_into(&self, lanes: &[(ActivitySample, f64)], outs: &mut [&mut [f64]]) {
        assert_eq!(lanes.len(), outs.len(), "one output slice per lane");
        for ((sample, scale), out) in lanes.iter().zip(outs.iter_mut()) {
            if *scale == 1.0 {
                self.block_power_into(sample, out);
            } else {
                self.block_power_scaled_into(sample, *scale, out);
            }
        }
    }

    /// Accumulates the window's dynamic energy per block into `energy`
    /// (which the caller has zeroed). Shared verbatim by the scaled and
    /// unscaled power conversions so their accumulation order is identical.
    fn accumulate_energy(&self, sample: &ActivitySample, energy: &mut [f64]) {
        let t = &self.tables;

        let int_q = self.queue_energy(&sample.int_iq);
        let fp_q = self.queue_energy(&sample.fp_iq);
        for h in 0..2 {
            energy[self.idx.int_q[h]] += int_q[h];
            energy[self.idx.fp_q[h]] += fp_q[h];
        }

        for (i, &ops) in sample.int_alu_ops.iter().enumerate() {
            energy[self.idx.int_exec[i]] += ops as f64 * t.int_alu_op;
        }
        for (i, &ops) in sample.fp_add_ops.iter().enumerate() {
            energy[self.idx.fp_add[i]] += ops as f64 * t.fp_add_op;
        }
        energy[self.idx.fp_mul] += sample.fp_mul_ops as f64 * t.fp_mul_op;

        for c in 0..2 {
            energy[self.idx.int_reg[c]] += sample.int_rf_reads[c] as f64 * t.int_rf_read
                + sample.int_rf_writes[c] as f64 * t.int_rf_write;
        }
        energy[self.idx.fp_reg] +=
            sample.fp_rf_reads as f64 * t.fp_rf_read + sample.fp_rf_writes as f64 * t.fp_rf_write;

        energy[self.idx.icache] += sample.icache_accesses as f64 * t.icache_access;
        energy[self.idx.itb] += sample.icache_accesses as f64 * t.tlb_access;
        energy[self.idx.dcache] += sample.dcache_accesses as f64 * t.dcache_access;
        energy[self.idx.dtb] += sample.dcache_accesses as f64 * t.tlb_access;
        energy[self.idx.bpred] += sample.bpred_lookups as f64 * t.bpred_access;
        energy[self.idx.ldstq] += sample.lsq_ops as f64 * t.lsq_op;

        // Rename and active-list energy split across the two map blocks.
        let map_energy = sample.rename_ops as f64 * t.rename_op + sample.rob_ops as f64 * t.rob_op;
        energy[self.idx.int_map] += map_energy * 0.5;
        energy[self.idx.fp_map] += map_energy * 0.5;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance_thermal::ev6;

    fn model() -> (powerbalance_thermal::Floorplan, PowerModel) {
        let plan = ev6::baseline();
        let m = PowerModel::new(&plan, EnergyTables::default(), 4.2e9).expect("ev6 names");
        (plan, m)
    }

    fn sample(cycles: u64) -> ActivitySample {
        ActivitySample { cycles, ..Default::default() }
    }

    #[test]
    fn idle_sample_is_pure_leakage() {
        let (plan, m) = model();
        let watts = m.block_power(&sample(1000));
        for (b, &w) in plan.blocks().iter().zip(&watts) {
            let expected = b.area() * m.tables().leakage_per_area;
            assert!((w - expected).abs() < 1e-12, "{}: {w} vs {expected}", b.name);
        }
    }

    #[test]
    fn alu_activity_heats_the_right_unit() {
        let (plan, m) = model();
        let mut s = sample(10_000);
        s.int_alu_ops[3] = 10_000;
        let watts = m.block_power(&s);
        let i3 = plan.index_of("IntExec3").expect("block");
        let i0 = plan.index_of("IntExec0").expect("block");
        // 1 op/cycle at 0.30 nJ and 4.2 GHz = 1.26 W of dynamic power.
        assert!((watts[i3] - watts[i0] - 1.26).abs() < 0.01, "{}", watts[i3] - watts[i0]);
    }

    #[test]
    fn queue_half_attribution_is_separate() {
        let (plan, m) = model();
        let mut s = sample(10_000);
        s.int_iq.compact_moves[1] = 200_000;
        s.int_iq.mux_selects[1] = 200_000;
        let watts = m.block_power(&s);
        let q0 = watts[plan.index_of("IntQ0").expect("block")];
        let q1 = watts[plan.index_of("IntQ1").expect("block")];
        assert!(q1 > q0 + 1.0, "tail-half compaction must heat IntQ1: {q0} vs {q1}");
        // 200k moves over 10k cycles at (0.0123 + 0.0023) nJ = ~1.23 W.
        assert!((q1 - q0 - 1.226).abs() < 0.02);
    }

    #[test]
    fn distributed_queue_power_is_split_evenly() {
        let (plan, m) = model();
        let mut s = sample(10_000);
        s.int_iq.broadcasts = 30_000;
        s.int_iq.payload_accesses = 60_000;
        s.int_iq.selects = 30_000;
        let watts = m.block_power(&s);
        let q0 = watts[plan.index_of("IntQ0").expect("block")];
        let q1 = watts[plan.index_of("IntQ1").expect("block")];
        // Same leakage (equal areas) + same share of globals.
        assert!((q0 - q1).abs() < 1e-9);
        assert!(q0 > 1.0, "broadcast/payload traffic is significant power");
    }

    #[test]
    fn long_wrap_energy_is_distributed_across_both_halves() {
        // The wrap wires span the whole queue; their dissipation must not
        // land on one half (that would penalize the toggled mode's cool
        // half and invert the technique's benefit).
        let (plan, m) = model();
        let mut s = sample(10_000);
        s.int_iq.long_moves[1] = 100_000;
        let watts = m.block_power(&s);
        let q0 = watts[plan.index_of("IntQ0").expect("block")];
        let q1 = watts[plan.index_of("IntQ1").expect("block")];
        assert!((q0 - q1).abs() < 1e-9, "wrap energy must split evenly: {q0} vs {q1}");
        // 10 wraps/cycle at 0.0687 nJ and 4.2 GHz = 2.886 W total.
        let leak0 = plan.blocks()[plan.index_of("IntQ0").expect("block")].area()
            * m.tables().leakage_per_area;
        assert!(((q0 - leak0) - 2.886 / 2.0).abs() < 0.01, "{}", q0 - leak0);
    }

    #[test]
    fn regfile_reads_charge_the_right_copy() {
        let (plan, m) = model();
        let mut s = sample(10_000);
        s.int_rf_reads[0] = 20_000;
        s.int_rf_writes[0] = 10_000;
        let watts = m.block_power(&s);
        let r0 = watts[plan.index_of("IntReg0").expect("block")];
        let r1 = watts[plan.index_of("IntReg1").expect("block")];
        assert!(r0 > r1 + 1.0, "copy 0 must be hotter: {r0} vs {r1}");
    }

    #[test]
    fn longer_window_same_rate_same_power() {
        let (_, m) = model();
        let mut a = sample(10_000);
        a.int_alu_ops[0] = 5_000;
        let mut b = sample(100_000);
        b.int_alu_ops[0] = 50_000;
        let pa = m.block_power(&a);
        let pb = m.block_power(&b);
        for (x, y) in pa.iter().zip(&pb) {
            assert!((x - y).abs() < 1e-9, "power is a rate: {x} vs {y}");
        }
    }

    #[test]
    fn purity_contract() {
        // The snapshot/restore layer stores no power-model state, so the
        // model must be a pure function of the sample: identical samples
        // give bit-identical vectors regardless of what was computed in
        // between, and a clone behaves like the original.
        let (_, m) = model();
        let mut busy = sample(10_000);
        busy.int_alu_ops = [9_000, 7_000, 5_000, 3_000, 1_000, 500];
        busy.int_iq.compact_moves = [40_000, 80_000];
        busy.int_rf_reads = [15_000, 12_000];
        busy.bpred_lookups = 9_500;

        let first = m.block_power(&busy);
        // Interleave unrelated work, including a degenerate zero-cycle
        // sample, then re-evaluate.
        let _ = m.block_power(&sample(0));
        let _ = m.block_power(&sample(1_000_000));
        let again = m.block_power(&busy);
        assert_eq!(first, again, "block_power must not depend on call history");

        let cloned = m.clone();
        assert_eq!(cloned.block_power(&busy), first, "clones are indistinguishable");
    }

    #[test]
    fn unit_dynamic_scale_matches_unscaled_bitwise() {
        let (_, m) = model();
        let mut s = sample(10_000);
        s.int_alu_ops = [9_000, 7_000, 5_000, 3_000, 1_000, 500];
        s.int_iq.compact_moves = [40_000, 80_000];
        s.int_rf_reads = [15_000, 12_000];
        let mut plain = vec![0.0; m.block_count];
        let mut scaled = vec![0.0; m.block_count];
        m.block_power_into(&s, &mut plain);
        m.block_power_scaled_into(&s, 1.0, &mut scaled);
        assert_eq!(plain, scaled, "scale 1.0 must be bit-identical");
    }

    #[test]
    fn dynamic_scale_shrinks_dynamic_power_only() {
        let (plan, m) = model();
        let mut s = sample(10_000);
        s.int_alu_ops[0] = 10_000;
        let mut full = vec![0.0; m.block_count];
        let mut low = vec![0.0; m.block_count];
        m.block_power_into(&s, &mut full);
        // volt_scale 0.8 → dynamic energy scale 0.64 (V² scaling).
        m.block_power_scaled_into(&s, 0.64, &mut low);
        let b = plan.index_of("IntExec0").expect("block");
        let leak = plan.blocks()[b].area() * m.tables().leakage_per_area;
        let dyn_full = full[b] - leak;
        let dyn_low = low[b] - leak;
        assert!((dyn_low - dyn_full * 0.64).abs() < 1e-9, "{dyn_low} vs {}", dyn_full * 0.64);
        // A block with no activity stays at pure leakage either way.
        let idle = plan.index_of("FPMul").expect("block");
        assert!((full[idle] - low[idle]).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_window_is_leakage_at_any_scale() {
        let (_, m) = model();
        let mut out = vec![0.0; m.block_count];
        m.block_power_scaled_into(&sample(0), 0.5, &mut out);
        assert_eq!(out, m.block_power(&sample(0)));
    }

    #[test]
    fn missing_block_is_an_error() {
        let plan =
            powerbalance_thermal::Floorplan::from_rows(1e-3, &[(1e-3, vec![("Icache", 1.0)])]);
        assert!(PowerModel::new(&plan, EnergyTables::default(), 4.2e9).is_err());
    }

    #[test]
    fn bad_frequency_is_an_error() {
        let plan = ev6::baseline();
        assert!(PowerModel::new(&plan, EnergyTables::default(), 0.0).is_err());
    }
}

//! Per-event energy tables.

use serde::{Deserialize, Serialize};

/// Joules per nanojoule.
const NJ: f64 = 1e-9;

/// Per-event energies, in joules.
///
/// The issue-queue entries reproduce the paper's Table 3 exactly (values
/// quoted there in nJ). The remaining entries are Wattch-class per-access
/// energies for a 90 nm, 4.2 GHz part, chosen so that relative block power
/// matches the usual superscalar breakdown (issue queue, register files,
/// and ALUs dominate the back end — the paper's premise).
///
/// # Examples
///
/// ```
/// use powerbalance_power::EnergyTables;
///
/// let t = EnergyTables::default();
/// // Table 3: compaction data wires cost 0.0123 nJ per moved entry.
/// assert!((t.compact_entry - 0.0123e-9).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyTables {
    // --- Issue queue (paper Table 3) ---
    /// Compact (entry-to-entry) wires, per moved entry.
    pub compact_entry: f64,
    /// Compact mux-select wires, per moved entry.
    pub compact_mux: f64,
    /// Long (wrap-around) compaction wires, per wrapping entry.
    pub long_compaction: f64,
    /// Invalids-counter stage 1, per entry on compacting cycles.
    pub counter_stage1: f64,
    /// Invalids-counter stage 2, per entry on compacting cycles.
    pub counter_stage2: f64,
    /// Clock-gating control logic, per cycle for the whole queue.
    pub clock_gating: f64,
    /// Tag broadcast + match, per broadcast.
    pub tag_broadcast: f64,
    /// Payload-RAM access, per instruction (insert write or issue read).
    pub payload_ram: f64,
    /// Select-tree access, per issued instruction.
    pub select_access: f64,
    // --- Functional units ---
    /// Integer ALU operation.
    pub int_alu_op: f64,
    /// FP adder operation.
    pub fp_add_op: f64,
    /// FP multiplier operation.
    pub fp_mul_op: f64,
    // --- Register files ---
    /// Integer register-file read, per port access.
    pub int_rf_read: f64,
    /// Integer register-file write, per copy written.
    pub int_rf_write: f64,
    /// FP register-file read.
    pub fp_rf_read: f64,
    /// FP register-file write.
    pub fp_rf_write: f64,
    // --- Front end and memory ---
    /// L1 instruction-cache access.
    pub icache_access: f64,
    /// L1 data-cache access.
    pub dcache_access: f64,
    /// Branch-predictor lookup/update.
    pub bpred_access: f64,
    /// Rename/map-table operation.
    pub rename_op: f64,
    /// Active-list operation (allocate or retire).
    pub rob_op: f64,
    /// Load/store-queue operation.
    pub lsq_op: f64,
    /// TLB access (charged alongside each cache access).
    pub tlb_access: f64,
    // --- Static ---
    /// Leakage power density, W/m², applied to every block's area.
    pub leakage_per_area: f64,
}

impl Default for EnergyTables {
    fn default() -> Self {
        EnergyTables {
            compact_entry: 0.0123 * NJ,
            compact_mux: 0.0023 * NJ,
            long_compaction: 0.0687 * NJ,
            counter_stage1: 0.0011 * NJ,
            counter_stage2: 0.0021 * NJ,
            clock_gating: 0.0015 * NJ,
            tag_broadcast: 0.0450 * NJ,
            payload_ram: 0.0675 * NJ,
            select_access: 0.0051 * NJ,
            int_alu_op: 0.30 * NJ,
            fp_add_op: 0.62 * NJ,
            fp_mul_op: 0.65 * NJ,
            int_rf_read: 0.10 * NJ,
            int_rf_write: 0.14 * NJ,
            fp_rf_read: 0.12 * NJ,
            fp_rf_write: 0.16 * NJ,
            icache_access: 0.30 * NJ,
            dcache_access: 0.35 * NJ,
            bpred_access: 0.08 * NJ,
            rename_op: 0.10 * NJ,
            rob_op: 0.10 * NJ,
            lsq_op: 0.15 * NJ,
            tlb_access: 0.03 * NJ,
            leakage_per_area: 3.0e5,
        }
    }
}

impl EnergyTables {
    /// Checks that every energy is non-negative and finite.
    ///
    /// # Errors
    ///
    /// Returns the name of the first invalid entry.
    pub fn validate(&self) -> Result<(), String> {
        let entries = [
            ("compact_entry", self.compact_entry),
            ("compact_mux", self.compact_mux),
            ("long_compaction", self.long_compaction),
            ("counter_stage1", self.counter_stage1),
            ("counter_stage2", self.counter_stage2),
            ("clock_gating", self.clock_gating),
            ("tag_broadcast", self.tag_broadcast),
            ("payload_ram", self.payload_ram),
            ("select_access", self.select_access),
            ("int_alu_op", self.int_alu_op),
            ("fp_add_op", self.fp_add_op),
            ("fp_mul_op", self.fp_mul_op),
            ("int_rf_read", self.int_rf_read),
            ("int_rf_write", self.int_rf_write),
            ("fp_rf_read", self.fp_rf_read),
            ("fp_rf_write", self.fp_rf_write),
            ("icache_access", self.icache_access),
            ("dcache_access", self.dcache_access),
            ("bpred_access", self.bpred_access),
            ("rename_op", self.rename_op),
            ("rob_op", self.rob_op),
            ("lsq_op", self.lsq_op),
            ("tlb_access", self.tlb_access),
            ("leakage_per_area", self.leakage_per_area),
        ];
        for (name, v) in entries {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and non-negative, got {v}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_values_are_pinned() {
        // Guard against accidental edits: these are the paper's numbers.
        let t = EnergyTables::default();
        assert!((t.compact_entry - 0.0123e-9).abs() < 1e-16);
        assert!((t.compact_mux - 0.0023e-9).abs() < 1e-16);
        assert!((t.long_compaction - 0.0687e-9).abs() < 1e-16);
        assert!((t.counter_stage1 - 0.0011e-9).abs() < 1e-16);
        assert!((t.counter_stage2 - 0.0021e-9).abs() < 1e-16);
        assert!((t.clock_gating - 0.0015e-9).abs() < 1e-16);
        assert!((t.tag_broadcast - 0.0450e-9).abs() < 1e-16);
        assert!((t.payload_ram - 0.0675e-9).abs() < 1e-16);
        assert!((t.select_access - 0.0051e-9).abs() < 1e-16);
    }

    #[test]
    fn long_compaction_is_most_expensive_queue_event() {
        // The paper notes the wrap wires put activity toggling at a
        // power-density disadvantage when used; the table reflects that.
        let t = EnergyTables::default();
        assert!(t.long_compaction > t.compact_entry);
        assert!(t.long_compaction > t.tag_broadcast);
    }

    #[test]
    fn default_validates() {
        EnergyTables::default().validate().expect("defaults valid");
    }

    #[test]
    fn negative_energy_rejected() {
        let t = EnergyTables { int_alu_op: -1.0, ..EnergyTables::default() };
        assert!(t.validate().is_err());
    }
}

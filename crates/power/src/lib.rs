//! Event-based energy accounting for the `powerbalance` simulator.
//!
//! This crate plays the role Wattch played in the MICRO 2005 paper: it
//! converts microarchitectural activity into per-block power. The issue
//! queue's per-event energies are the paper's own Table 3 values
//! ([`EnergyTables`]); the remaining blocks use Wattch-class per-access
//! energies for a 90 nm part. Aggressive clock gating is implicit: blocks
//! dissipate dynamic energy only for the events the core actually performed
//! (the activity counters are event counts, not cycle counts), plus an
//! area-proportional leakage floor.
//!
//! The key fidelity requirement, inherited from the paper's §3.1, is
//! *intra-resource* resolution: issue-queue energy is attributed to the
//! physical queue half whose entries moved, register-file energy to the
//! copy whose ports were read, ALU energy to the individual unit — because
//! the whole point is the asymmetry between copies that aggregated models
//! hide.
//!
//! # Examples
//!
//! ```
//! use powerbalance_power::{EnergyTables, PowerModel};
//! use powerbalance_thermal::ev6;
//! use powerbalance_uarch::ActivitySample;
//!
//! let plan = ev6::baseline();
//! let model = PowerModel::new(&plan, EnergyTables::default(), 4.2e9).expect("ev6 block names");
//! let mut sample = ActivitySample { cycles: 10_000, ..Default::default() };
//! sample.int_alu_ops[0] = 9_000; // ALU0 nearly saturated
//! let watts = model.block_power(&sample);
//! let alu0 = watts[plan.index_of("IntExec0").unwrap()];
//! let alu5 = watts[plan.index_of("IntExec5").unwrap()];
//! assert!(alu0 > alu5, "power follows activity");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod model;
mod tables;

pub use model::PowerModel;
pub use tables::EnergyTables;

//! Simulator throughput: simulated cycles per wall-clock second for a
//! compute-bound and a memory-bound workload, and the cost of the full
//! sense/react sampling loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use powerbalance::{experiments, Simulator};
use powerbalance_uarch::{Core, CoreConfig};
use powerbalance_workloads::spec2000;

fn core_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_only");
    for bench in ["eon", "mcf"] {
        group.throughput(Throughput::Elements(100_000));
        group.bench_function(bench, |b| {
            b.iter_batched(
                || {
                    let core = Core::new(CoreConfig::default()).expect("valid config");
                    let trace = spec2000::by_name(bench).expect("profile").trace(1);
                    (core, trace)
                },
                |(mut core, mut trace)| {
                    core.run(&mut trace, 100_000);
                    core.stats().committed
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn full_stack(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_stack");
    group.throughput(Throughput::Elements(100_000));
    group.bench_function("issue_queue_experiment_eon", |b| {
        b.iter_batched(
            || {
                let sim = Simulator::new(experiments::issue_queue(true)).expect("valid config");
                let trace = spec2000::by_name("eon").expect("profile").trace(1);
                (sim, trace)
            },
            |(mut sim, mut trace)| sim.run(&mut trace, 100_000).committed,
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, core_only, full_stack);
criterion_main!(benches);

//! Select-path microbenchmarks: the priority-ordered ready scan that models
//! the serialized select trees, under static and round-robin unit ordering.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powerbalance_uarch::{
    EntryState, FuPool, IqActivity, IqEntry, IssueQueue, MappingPolicy, RegFileWiring,
};

fn ready_entry(rob_id: u32, is_mem: bool) -> IqEntry {
    IqEntry {
        rob_id,
        state: EntryState::Waiting,
        src1_ready: true,
        src2_ready: true,
        src1_tag: None,
        src2_tag: None,
        is_mem,
        needs_fp_mul: false,
    }
}

fn select_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_scan");
    for ready_count in [2usize, 8, 31] {
        group.bench_with_input(BenchmarkId::from_parameter(ready_count), &ready_count, |b, &n| {
            let mut iq = IssueQueue::new(32);
            let mut act = IqActivity::default();
            for i in 0..n {
                assert!(iq.insert(ready_entry(i as u32, i % 3 == 0), &mut act));
            }
            let pool = FuPool::new(6, 4);
            let wiring = RegFileWiring::new(MappingPolicy::Balanced, 6, 2);
            b.iter(|| {
                // The serialized tree walk: units in priority order pick
                // ready entries in age order, respecting cache ports.
                let units: Vec<usize> =
                    pool.int_units_in_order(0).filter(|&u| wiring.alu_usable(u)).collect();
                let mut picked = 0usize;
                let mut mem = 0usize;
                for pos in iq.ready_positions() {
                    if picked == units.len() {
                        break;
                    }
                    let e = iq.entry(pos).expect("ready position occupied");
                    if e.is_mem && mem == 2 {
                        continue;
                    }
                    if e.is_mem {
                        mem += 1;
                    }
                    picked += 1;
                }
                picked
            });
        });
    }
    group.finish();
}

fn unit_ordering(c: &mut Criterion) {
    let pool = FuPool::new(6, 4);
    c.bench_function("unit_order_static", |b| {
        b.iter(|| pool.int_units_in_order(0).collect::<Vec<_>>())
    });
    c.bench_function("unit_order_rotated", |b| {
        let mut rot = 0usize;
        b.iter(|| {
            rot = rot.wrapping_add(1);
            pool.int_units_in_order(rot % 6).collect::<Vec<_>>()
        })
    });
}

criterion_group!(benches, select_scan, unit_ordering);
criterion_main!(benches);

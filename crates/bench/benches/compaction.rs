//! Compacting-issue-queue microbenchmarks: per-tick cost of the compaction
//! walk at different occupancies and in both head/tail modes (the toggled
//! mode adds wrap handling), plus the cost of a tag broadcast.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use powerbalance_uarch::{EntryState, IqActivity, IqEntry, IqMode, IssueQueue};

fn entry(rob_id: u32) -> IqEntry {
    IqEntry {
        rob_id,
        state: EntryState::Waiting,
        src1_ready: true,
        src2_ready: true,
        src1_tag: None,
        src2_tag: None,
        is_mem: false,
        needs_fp_mul: false,
    }
}

/// Builds a queue at the given occupancy with a churn-ready state.
fn queue_at(occupancy: usize, mode: IqMode) -> IssueQueue {
    let mut iq = IssueQueue::new(32);
    iq.set_mode(mode);
    let mut act = IqActivity::default();
    for i in 0..occupancy {
        assert!(iq.insert(entry(i as u32), &mut act));
    }
    iq
}

fn compaction_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction_tick");
    for mode in [IqMode::Normal, IqMode::Toggled] {
        for occ in [8usize, 20, 31] {
            group.bench_with_input(BenchmarkId::new(format!("{mode:?}"), occ), &occ, |b, &occ| {
                b.iter_batched(
                    || queue_at(occ, mode),
                    |mut iq| {
                        // Issue the head, then churn three ticks of
                        // aging + compaction (the steady-state pattern).
                        let mut act = IqActivity::default();
                        let head = iq.ready_positions().next().expect("occupied");
                        iq.mark_issued(head, &mut act);
                        for _ in 0..3 {
                            iq.tick(6, &mut act);
                        }
                        act.total_moves()
                    },
                    criterion::BatchSize::SmallInput,
                );
            });
        }
    }
    group.finish();
}

fn broadcast(c: &mut Criterion) {
    c.bench_function("tag_broadcast_full_queue", |b| {
        b.iter_batched(
            || {
                let mut iq = IssueQueue::new(32);
                let mut act = IqActivity::default();
                for i in 0..31 {
                    let mut e = entry(i);
                    e.src1_ready = false;
                    e.src1_tag = Some(500 + i);
                    assert!(iq.insert(e, &mut act));
                }
                iq
            },
            |mut iq| {
                let mut act = IqActivity::default();
                iq.broadcast(515, &mut act);
                act.broadcasts
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

criterion_group!(benches, compaction_tick, broadcast);
criterion_main!(benches);

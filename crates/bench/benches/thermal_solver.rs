//! Thermal-solver ablation: the backward-Euler step used by the simulator
//! (unconditionally stable, one linear solve per sampling window) versus a
//! forward-Euler sub-stepping integrator (stable only with tiny steps), and
//! the direct steady-state solve.

use criterion::{criterion_group, criterion_main, Criterion};
use powerbalance_thermal::{ev6, PackageConfig, ThermalModel};

/// A deliberately naive explicit integrator for comparison: forward Euler
/// with sub-steps small enough to stay stable on the stiff network.
fn forward_euler_step(model_temps: &mut [f64], watts: &[f64], dt: f64, plan_model: &ThermalModel) {
    let net = plan_model.network();
    let n = net.node_count();
    let g = net.conductance();
    let cap = net.capacitance();
    let ambient = net.ambient_power();
    // Stability bound: dt_sub < min(C_i / G_ii).
    let mut dt_max = f64::MAX;
    for i in 0..n {
        dt_max = dt_max.min(cap[i] / g[i * n + i]);
    }
    let steps = (dt / (0.5 * dt_max)).ceil().max(1.0) as usize;
    let h = dt / steps as f64;
    let mut temps = model_temps.to_vec();
    let mut next = temps.clone();
    for _ in 0..steps {
        for i in 0..n {
            let mut flow = ambient[i];
            if i < watts.len() {
                flow += watts[i];
            }
            for j in 0..n {
                flow -= g[i * n + j] * temps[j];
            }
            next[i] = temps[i] + h * flow / cap[i];
        }
        std::mem::swap(&mut temps, &mut next);
    }
    model_temps.copy_from_slice(&temps);
}

fn solver_comparison(c: &mut Criterion) {
    let plan = ev6::baseline();
    let pkg = PackageConfig::default();
    let watts = vec![0.8f64; plan.blocks().len()];
    let dt = 2.4e-6; // one 10k-cycle sampling window at 4.2 GHz

    c.bench_function("backward_euler_step", |b| {
        let mut model = ThermalModel::new(&plan, pkg);
        b.iter(|| {
            model.step(&watts, dt);
            model.temperature(0)
        });
    });

    c.bench_function("forward_euler_substeps", |b| {
        let model = ThermalModel::new(&plan, pkg);
        let n = model.network().node_count();
        let mut temps = vec![model.network().ambient(); n];
        b.iter(|| {
            forward_euler_step(&mut temps, &watts, dt, &model);
            temps[0]
        });
    });

    c.bench_function("steady_state_settle", |b| {
        let mut model = ThermalModel::new(&plan, pkg);
        b.iter(|| {
            model.settle(&watts);
            model.temperature(0)
        });
    });
}

/// Accuracy cross-check run once under the bench harness: both integrators
/// must agree on the transient to within a few millikelvin.
fn integrator_agreement(c: &mut Criterion) {
    c.bench_function("integrator_agreement_check", |b| {
        let plan = ev6::baseline();
        let pkg = PackageConfig::default();
        let watts = vec![0.8f64; plan.blocks().len()];
        let dt = 2.4e-6;
        b.iter(|| {
            let mut implicit = ThermalModel::new(&plan, pkg);
            let explicit_model = ThermalModel::new(&plan, pkg);
            let n = explicit_model.network().node_count();
            let mut explicit = vec![explicit_model.network().ambient(); n];
            for _ in 0..50 {
                implicit.step(&watts, dt);
                forward_euler_step(&mut explicit, &watts, dt, &explicit_model);
            }
            let diff = (implicit.temperature(0) - explicit[0]).abs();
            assert!(diff < 0.05, "integrators diverged by {diff} K");
            diff
        });
    });
}

criterion_group!(benches, solver_comparison, integrator_agreement);
criterion_main!(benches);

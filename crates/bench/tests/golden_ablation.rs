//! Golden-artifact tests for the thermal-policy ablation output.
//!
//! One pinned `--json`-shaped campaign artifact per policy family, so a
//! change in any policy's cycle-level behaviour — or in the artifact
//! schema — surfaces as a reviewable diff on exactly the families it
//! touches. Spatial families double as a bit-identity guard: their
//! goldens were produced by the pre-policy-layer code path and must never
//! need regeneration for a pure refactor.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p powerbalance-bench --test golden_ablation
//! ```

use powerbalance::experiments::{self, PolicyKind};
use powerbalance::FloorplanKind;
use powerbalance_harness::{run_campaign, CampaignSpec, RunnerOptions};
use serde::json::Value;
use std::path::PathBuf;

fn golden_path(kind: PolicyKind) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join(format!("tests/golden/ablation-{}.json", kind.name()))
}

/// Rewrites every host-varying field to a fixed value, recursively (same
/// normalization as the harness golden test).
fn normalize(value: &mut Value) {
    match value {
        Value::Object(fields) => {
            for (key, field) in fields.iter_mut() {
                match key.as_str() {
                    "wall_nanos" => *field = Value::U64(0),
                    "sim_cycles_per_sec" => *field = Value::F64(0.0),
                    "threads" => *field = Value::U64(1),
                    _ => normalize(field),
                }
            }
        }
        Value::Array(items) => {
            for item in items.iter_mut() {
                normalize(item);
            }
        }
        _ => {}
    }
}

#[test]
fn ablation_json_matches_the_committed_golden_artifact_per_policy() {
    let update = std::env::var_os("UPDATE_GOLDEN").is_some();
    let mut drifted = Vec::new();
    for kind in PolicyKind::ALL {
        // The smoke sweep's shape at a test-sized budget: eon on the
        // issue-constrained floorplan, limit pulled down so every policy
        // reacts within the window.
        let mut cfg = experiments::policy(kind, FloorplanKind::IssueConstrained);
        cfg.mitigation = cfg.mitigation.with_max_temp(340.0);
        let spec = CampaignSpec::new(format!("golden-ablation-{}", kind.name()))
            .config(kind.name(), cfg)
            .benchmark("eon")
            .cycles(60_000)
            .seed(5);
        let result = run_campaign(&spec, &RunnerOptions { threads: Some(1), ..Default::default() })
            .expect("campaign runs");

        let mut value = Value::parse(&result.to_json()).expect("artifact parses");
        normalize(&mut value);
        let mut rendered = String::new();
        value.write_pretty(&mut rendered, 0);
        rendered.push('\n');

        let path = golden_path(kind);
        if update {
            std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden file {} ({e}); run with UPDATE_GOLDEN=1 to create it",
                path.display()
            )
        });
        if rendered != golden {
            drifted.push(kind.name());
        }
    }
    assert!(
        drifted.is_empty(),
        "ablation artifacts drifted for policies {drifted:?}; if the change is \
         intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

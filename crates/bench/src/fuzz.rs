//! Seed-derived random-but-valid test cases for the config/trace fuzzer.
//!
//! Lives in the library (rather than the `fuzz` binary) so the coverage
//! tests can pin distribution properties of the generator — e.g. that the
//! `max_temp` bias actually makes mitigation fire within the fuzzer's
//! default cycle budget.

use powerbalance::experiments::PolicyKind;
use powerbalance::{
    DutyLadder, DvfsParams, Fidelity, FloorplanKind, GateParams, GlobalPolicy, MappingPolicy,
    OppLadder, SchedulerKind, SelectPolicy, SimConfig,
};
use powerbalance_workloads::{spec2000, Xoshiro256};

/// The fuzz binary's default per-seed cycle budget; the coverage test
/// below uses the same number so it measures what the fuzzer actually
/// exercises.
pub const DEFAULT_CYCLES: u64 = 40_000;

/// Derives the whole test case for one seed: a configuration, a workload
/// name, and a trace seed. Every choice is constrained so the result
/// always passes `SimConfig::validate`:
///
/// * `alu_turnoff` pins the full 6-ALU/4-adder geometry (the manager's
///   per-unit walk assumes it);
/// * `rf_turnoff` pins two register-file copies for the same reason;
/// * otherwise copies are drawn from the divisors of the ALU count.
// The config is deliberately built by mutating a default field-by-field:
// each draw must happen in a fixed order for seed stability, which a
// struct-literal initializer would obscure.
#[allow(clippy::field_reassign_with_default)]
#[must_use]
pub fn derive_case(seed: u64) -> (SimConfig, String, u64) {
    let mut rng = Xoshiro256::new(seed);
    let mut cfg = SimConfig::default();

    cfg.floorplan = *pick(
        &mut rng,
        &[
            FloorplanKind::Baseline,
            FloorplanKind::IssueConstrained,
            FloorplanKind::AluConstrained,
            FloorplanKind::RegfileConstrained,
        ],
    );
    cfg.core.iq_size = *pick(&mut rng, &[8, 16, 32, 64]);
    cfg.core.replay_window = *pick(&mut rng, &[1, 2, 3]);
    cfg.core.mapping = *pick(
        &mut rng,
        &[MappingPolicy::Balanced, MappingPolicy::Priority, MappingPolicy::CompletelyBalanced],
    );
    cfg.core.select_policy = *pick(&mut rng, &[SelectPolicy::Static, SelectPolicy::RoundRobin]);

    cfg.mitigation.activity_toggling = rng.chance(0.5);
    cfg.mitigation.alu_turnoff = rng.chance(0.5);
    cfg.mitigation.rf_turnoff = rng.chance(0.5);
    cfg.mitigation.rf_stale_copy = cfg.mitigation.rf_turnoff && rng.chance(0.5);

    if cfg.mitigation.alu_turnoff {
        cfg.core.int_alus = 6;
        cfg.core.fp_adders = 4;
    } else {
        cfg.core.int_alus = *pick(&mut rng, &[2, 4, 6]);
        cfg.core.fp_adders = *pick(&mut rng, &[2, 4]);
    }
    if cfg.mitigation.rf_turnoff {
        cfg.core.int_rf_copies = 2;
    } else {
        // The activity counters cap copies at 2; every drawn ALU count is
        // even, so both choices divide it.
        cfg.core.int_rf_copies = *pick(&mut rng, &[1, 2]);
    }

    // Most runs get a limit far below the paper's 358 K — down near the
    // 318 K ambient — so that short runs still provoke mitigation storms
    // (toggles, turnoffs, freezes, thaws). The rest keep the default and
    // exercise the always-cool paths.
    if rng.chance(0.75) {
        cfg.mitigation.thresholds.max_temp = 322.0 + rng.next_f64() * 26.0;
    }
    // Widen the toggle window and sometimes drop the hysteresis so that
    // 40 k-cycle runs actually reach the toggling decision, not just the
    // freeze backstop.
    cfg.mitigation.thresholds.toggle_proximity = *pick(&mut rng, &[2.0, 6.0, 15.0]);
    cfg.mitigation.thresholds.toggle_delta = *pick(&mut rng, &[0.1, 0.5]);
    cfg.sample_interval = *pick(&mut rng, &[2_000, 5_000, 10_000]);
    cfg.warm_start = rng.chance(0.8);

    let bench = pick(&mut rng, &spec2000::ALL).to_string();
    let trace_seed = rng.next_u64() >> 32;

    // Policy-layer draws sit after every pre-existing draw so old seeds
    // keep deriving the exact case they always did (plus a policy).
    cfg.mitigation.global = draw_global_policy(&mut rng, &cfg);

    // Fidelity draw sits last for the same seed-stability reason. A third
    // of the cases run the interval engine, with a macro window derived
    // from the drawn sampling cadence (so it always divides evenly) and a
    // warmup prefix short enough that the default budget leaves room for
    // extrapolated macro windows.
    if rng.chance(1.0 / 3.0) {
        cfg.fidelity = Fidelity::Fast;
        cfg.fast_window = cfg.sample_interval * *pick(&mut rng, &[4, 10, 20]);
        cfg.fast_warmup = *pick(&mut rng, &[0, 10_000, 25_000]);
    }

    (cfg, bench, trace_seed)
}

/// Draws a global thermal policy whose ladder trip tables are derived from
/// the config's (possibly biased-low) `max_temp`, so short fuzz runs reach
/// ladder decisions. Half the cases stay spatial/temporal-only; the rest
/// split across DVFS, fetch gating, and clock throttling, sometimes with
/// the ladder truncated to exercise the clamp-at-deepest-level path.
fn draw_global_policy(rng: &mut Xoshiro256, cfg: &SimConfig) -> GlobalPolicy {
    let th = &cfg.mitigation.thresholds;
    let choice = rng.below(6);
    let mut global = match choice {
        0 => GlobalPolicy::Dvfs(DvfsParams::for_thresholds(th)),
        1 => GlobalPolicy::FetchGate(GateParams::for_thresholds(th)),
        2 => GlobalPolicy::ClockThrottle(GateParams::for_thresholds(th)),
        _ => return GlobalPolicy::None,
    };
    // Occasionally shorten the ladder: a two-level ladder hits its deepest
    // state almost immediately, which stresses hold-and-relax hysteresis.
    if rng.chance(0.3) {
        match &mut global {
            GlobalPolicy::Dvfs(p) => {
                let short: Vec<_> = p.ladder.levels().iter().copied().take(2).collect();
                p.ladder = OppLadder::from_levels(&short)
                    .expect("truncated ladder keeps its nominal level 0");
            }
            GlobalPolicy::FetchGate(p) | GlobalPolicy::ClockThrottle(p) => {
                let short: Vec<_> = p.ladder.levels().iter().copied().take(2).collect();
                p.ladder = DutyLadder::from_levels(&short)
                    .expect("truncated ladder keeps its full-duty level 0");
            }
            GlobalPolicy::None => unreachable!(),
        }
    }
    global
}

fn pick<'a, T>(rng: &mut Xoshiro256, options: &'a [T]) -> &'a T {
    &options[rng.below(options.len() as u64) as usize]
}

/// Salt separating the batch-sibling RNG stream from `derive_case`'s, so
/// adding batched draws never perturbs what existing seeds derive.
const BATCH_SALT: u64 = 0xBA7C4ED0_C0FFEE42;

/// Whether this seed additionally cross-checks batched lockstep execution
/// against sequential scalar runs (one seed in four).
#[must_use]
pub fn draws_batch(seed: u64) -> bool {
    seed % 4 == 3
}

/// Derives the lockstep sibling configs for a batch-drawing seed: a random
/// width K in 2..=6, each sibling the base case with a random policy
/// family's mitigation substituted. The siblings share every non-mitigation
/// field — exactly the harness's batch-eligibility rule — with the core
/// geometry pinned to the full 6-ALU/4-adder/2-copy machine the turnoff
/// families' per-unit walks assume. The base case's (possibly biased-low)
/// thresholds are kept, and global-policy ladders are rebuilt from them, so
/// short budgets still reach trip decisions.
#[must_use]
pub fn derive_batch_siblings(seed: u64, base: &SimConfig) -> Vec<SimConfig> {
    let mut rng = Xoshiro256::new(seed ^ BATCH_SALT);
    let k = 2 + rng.below(5) as usize;
    let mut shared = base.clone();
    shared.core.int_alus = 6;
    shared.core.fp_adders = 4;
    shared.core.int_rf_copies = 2;
    (0..k)
        .map(|_| {
            let kind = *pick(&mut rng, &PolicyKind::ALL);
            let mut mitigation = kind.mitigation();
            mitigation.thresholds = base.mitigation.thresholds;
            mitigation.global = match mitigation.global {
                GlobalPolicy::Dvfs(_) => {
                    GlobalPolicy::Dvfs(DvfsParams::for_thresholds(&mitigation.thresholds))
                }
                GlobalPolicy::FetchGate(_) => {
                    GlobalPolicy::FetchGate(GateParams::for_thresholds(&mitigation.thresholds))
                }
                GlobalPolicy::ClockThrottle(_) => {
                    GlobalPolicy::ClockThrottle(GateParams::for_thresholds(&mitigation.thresholds))
                }
                GlobalPolicy::None => GlobalPolicy::None,
            };
            SimConfig { mitigation, ..shared.clone() }
        })
        .collect()
}

/// Salt separating the multi-core RNG stream from `derive_case`'s and the
/// batch stream's, so adding multi-core draws never perturbs what existing
/// seeds derive.
const MULTICORE_SALT: u64 = 0x0000_D1E5_A1AD_CAFE;

/// Whether this seed additionally runs the seed's case through the
/// multi-core engine (one seed in four, disjoint from the batch-drawing
/// seeds so no seed pays for both cross-checks).
#[must_use]
pub fn draws_multicore(seed: u64) -> bool {
    seed % 4 == 1
}

/// The multi-core shape a multicore-drawing seed runs: a die size and a
/// scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiCoreCase {
    /// Cores on the die (1..=4; 1-core draws bitwise cross-check against
    /// the scalar engine, larger dies run with invariants armed).
    pub cores: usize,
    /// The placement policy.
    pub scheduler: SchedulerKind,
}

/// Derives the multi-core shape for a multicore-drawing seed.
#[must_use]
pub fn derive_multicore_case(seed: u64) -> MultiCoreCase {
    let mut rng = Xoshiro256::new(seed ^ MULTICORE_SALT);
    let cores = 1 + rng.below(4) as usize;
    let scheduler = *pick(&mut rng, &SchedulerKind::ALL);
    MultiCoreCase { cores, scheduler }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerbalance::Simulator;

    #[test]
    fn derivation_is_deterministic_and_valid() {
        for seed in 0..50 {
            let (a, bench_a, trace_a) = derive_case(seed);
            let (b, bench_b, trace_b) = derive_case(seed);
            assert_eq!(a, b, "seed {seed} must derive one config");
            assert_eq!(bench_a, bench_b);
            assert_eq!(trace_a, trace_b);
            a.validate().unwrap_or_else(|e| panic!("seed {seed} derived an invalid config: {e}"));
        }
    }

    #[test]
    fn batch_siblings_are_valid_and_batch_eligible() {
        use powerbalance::batch_key;
        use serde::json;
        let mut widths = std::collections::HashSet::new();
        for seed in (0..200u64).filter(|s| draws_batch(*s)) {
            let (base, _, _) = derive_case(seed);
            let siblings = derive_batch_siblings(seed, &base);
            assert!((2..=6).contains(&siblings.len()), "seed {seed}: width out of range");
            widths.insert(siblings.len());
            let key = json::to_string(&batch_key(&siblings[0]));
            for (i, cfg) in siblings.iter().enumerate() {
                cfg.validate().unwrap_or_else(|e| panic!("seed {seed} sibling {i} invalid: {e}"));
                assert_eq!(
                    json::to_string(&batch_key(cfg)),
                    key,
                    "seed {seed} sibling {i} is not batch-eligible with sibling 0"
                );
            }
        }
        assert!(widths.len() > 1, "batch widths must vary across the first 200 seeds");
    }

    #[test]
    fn multicore_draws_cover_every_die_size_and_scheduler() {
        // Deterministic, disjoint from batch draws, and the first 200
        // seeds must reach every die size and every scheduler kind so the
        // multi-core cross-check isn't vacuously narrow.
        let mut sizes = std::collections::HashSet::new();
        let mut kinds = std::collections::HashSet::new();
        for seed in (0..200u64).filter(|s| draws_multicore(*s)) {
            assert!(!draws_batch(seed), "a seed must never pay for both cross-checks");
            let a = derive_multicore_case(seed);
            assert_eq!(a, derive_multicore_case(seed), "seed {seed} must derive one case");
            assert!((1..=4).contains(&a.cores), "seed {seed}: die size out of range");
            sizes.insert(a.cores);
            kinds.insert(a.scheduler.name());
        }
        assert_eq!(sizes.len(), 4, "die sizes 1..=4 must all appear: {sizes:?}");
        assert_eq!(kinds.len(), SchedulerKind::ALL.len(), "all schedulers must appear: {kinds:?}");
    }

    /// The PR-4 coverage note: with `max_temp` biased into the 322–348 K
    /// band, the fuzzer's default 40 k-cycle budget must actually reach
    /// mitigation decisions — at least one of the first 200 seeds has to
    /// trigger a toggle event, not just freezes. Only seeds whose derived
    /// config can toggle at all (toggling enabled + biased limit) are
    /// simulated, and the scan stops at the first hit, so the test stays
    /// fast while pinning the distribution property.
    #[test]
    fn generator_covers_both_fidelities_with_valid_windows() {
        let mut seen = [false; 2];
        for seed in 0..200 {
            let (cfg, _, _) = derive_case(seed);
            cfg.validate().unwrap_or_else(|e| panic!("seed {seed} derived an invalid config: {e}"));
            match cfg.fidelity {
                Fidelity::Exact => seen[0] = true,
                Fidelity::Fast => {
                    seen[1] = true;
                    assert!(
                        cfg.fast_window.is_multiple_of(cfg.sample_interval),
                        "seed {seed}: the macro window must hold whole sampling intervals"
                    );
                }
            }
        }
        assert_eq!(seen, [true; 2], "[exact, fast] coverage in the first 200 seeds");
    }

    #[test]
    fn generator_covers_every_global_policy_family() {
        // The widened config space must actually reach all four policy
        // families early, and every drawn ladder/trip table must validate
        // (the fuzzer asserts this per seed; pin it for the first 200).
        let mut seen = [false; 4];
        for seed in 0..200 {
            let (cfg, _, _) = derive_case(seed);
            cfg.validate().unwrap_or_else(|e| panic!("seed {seed} derived an invalid config: {e}"));
            let idx = match cfg.mitigation.global {
                powerbalance::GlobalPolicy::None => 0,
                powerbalance::GlobalPolicy::Dvfs(_) => 1,
                powerbalance::GlobalPolicy::FetchGate(_) => 2,
                powerbalance::GlobalPolicy::ClockThrottle(_) => 3,
            };
            seen[idx] = true;
        }
        assert_eq!(seen, [true; 4], "[none, dvfs, fetch-gate, clock-throttle] coverage");
    }

    #[test]
    fn biased_max_temp_makes_early_ladders_step() {
        // Counterpart of the toggling coverage test below for the policy
        // layer: among the first 200 seeds, at least one biased-hot config
        // with a global ladder must record a ladder movement within the
        // fuzzer's default budget.
        for seed in 0..200 {
            let (cfg, bench, trace_seed) = derive_case(seed);
            if cfg.mitigation.global == powerbalance::GlobalPolicy::None
                || cfg.mitigation.thresholds.max_temp >= 350.0
            {
                continue;
            }
            let mut sim = Simulator::new(cfg).expect("derived configs are valid");
            let profile = spec2000::by_name(&bench).expect("derived benches exist");
            let result = sim.run(&mut profile.trace(trace_seed), DEFAULT_CYCLES);
            if result.opp_transitions > 0 || result.duty_shifts > 0 {
                return; // coverage confirmed
            }
        }
        panic!(
            "no early seed stepped a global ladder; the fuzzer is not reaching the policy layer"
        );
    }

    #[test]
    fn degenerate_policy_tables_are_rejected() {
        use powerbalance::{
            DutyLadder, GlobalPolicy, OppLadder, OppLevel, TripPoint, TripSeverity, TripTable,
        };
        use powerbalance_uarch::DutyCycle;

        // Empty tables and ladders never validate.
        assert!(TripTable::from_points(&[]).expect("fits").validate().is_err());
        assert!(OppLadder::from_levels(&[]).expect("fits").validate().is_err());
        assert!(DutyLadder::from_levels(&[]).expect("fits").validate().is_err());

        // Inverted hysteresis (clear at or above trip) is rejected.
        let inverted = TripPoint::new(TripSeverity::Passive, 350.0, 350.0);
        assert!(TripTable::from_points(&[inverted]).expect("fits").validate().is_err());

        // A single-trip table is fine as long as its hysteresis is sane —
        // the generator's truncation path relies on this.
        let single = TripPoint::new(TripSeverity::Critical, 358.0, 357.0);
        assert!(TripTable::from_points(&[single]).expect("fits").validate().is_ok());

        // A ladder whose level 0 is not nominal is rejected wholesale when
        // wrapped in a policy, so a bad draw could never slip into a case.
        let bad =
            OppLadder::from_levels(&[OppLevel { duty: DutyCycle::new(3, 4), volt_scale: 0.9 }])
                .expect("fits");
        let policy = GlobalPolicy::Dvfs(powerbalance::DvfsParams {
            ladder: bad,
            ..powerbalance::DvfsParams::for_thresholds(&powerbalance::Thresholds::default())
        });
        assert!(policy.validate().is_err());
    }

    #[test]
    fn biased_max_temp_makes_early_seeds_toggle() {
        let mut candidates = 0;
        for seed in 0..200 {
            let (cfg, bench, trace_seed) = derive_case(seed);
            if !cfg.mitigation.activity_toggling || cfg.mitigation.thresholds.max_temp >= 350.0 {
                continue;
            }
            candidates += 1;
            let mut sim = Simulator::new(cfg).expect("derived configs are valid");
            let profile = spec2000::by_name(&bench).expect("derived benches exist");
            let result = sim.run(&mut profile.trace(trace_seed), DEFAULT_CYCLES);
            if result.toggles > 0 {
                return; // coverage confirmed
            }
        }
        panic!(
            "none of the first 200 seeds toggled ({candidates} had toggling enabled with a \
             biased max_temp); the fuzzer is not reaching the toggling decision"
        );
    }
}

//! fuzz — deterministic config/trace fuzzer for the checked simulator.
//!
//! Each seed derives a random-but-valid [`SimConfig`] (floorplan, queue
//! geometry, mitigation techniques, thresholds, sampling cadence) and a
//! random workload/trace seed, then runs a short simulation with the
//! `check` feature's differential oracle and invariant suite armed. Any
//! violation — or a panic anywhere in the stack — fails the seed. Failing
//! cases are shrunk by halving the cycle budget while the failure
//! reproduces, then written to a self-contained JSON artifact
//! (`fuzz-seed-<seed>.json`) that `--replay` re-executes exactly.
//!
//! Everything is keyed off the seed: the same seed always produces the
//! same configuration, trace, and verdict, so a failing seed from CI is
//! reproducible locally with `--start-seed <seed> --seeds 1`.
//!
//! Seeds that draw `Fidelity::Fast` additionally cross-check the interval
//! engine against a ground-truth `Exact` run of the same case: the hottest
//! block's final temperature must agree within [`FAST_FINAL_EPS`], so an
//! accuracy regression anywhere in the random config space fails the seed
//! like any other violation.
//!
//! One seed in four additionally draws *batched lockstep execution*: a
//! random width K in 2..=6 of random policy families over the seed's base
//! case, run as one [`BatchSimulator`] and cross-checked bitwise against K
//! sequential scalar runs. Any drift — a temperature bit, an event count —
//! fails the seed.
//!
//! A disjoint one-in-four of the seeds instead draws the *multi-core
//! engine*: a die of 1–4 cores under a random scheduler runs the seed's
//! case with the full checker armed per lane — including the cross-core
//! energy-balance and lateral-symmetry invariants on multi-core dies —
//! and 1-core draws are additionally cross-checked bitwise against the
//! scalar simulator.

use powerbalance::{
    BatchSimulator, Fidelity, MultiCoreSimulator, SchedulerKind, SimConfig, Simulator, Task,
    TaskSet, TraceCursor,
};
use powerbalance_bench::fuzz::{
    derive_batch_siblings, derive_case, derive_multicore_case, draws_batch, draws_multicore,
};
use powerbalance_workloads::spec2000;
use serde::{json, Deserialize, Serialize};
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

const ABOUT: &str = "\
fuzz — differential-oracle fuzzer for random configs and traces

Runs short checked simulations over seed-derived random configurations.
Exit status: 0 all seeds clean, 1 violations found, 2 usage error.

OPTIONS:
  --seeds <n>         number of seeds to run                [200]
  --start-seed <n>    first seed (seeds are consecutive)    [0]
  --cycles <n>        cycle budget per seed                 [40000]
  --artifact-dir <p>  where failing-case JSON files go      [.]
  --replay <path>     re-run one failing-case artifact and exit
  --help              show this help";

/// Floor below which shrinking stops: shorter runs rarely reach the first
/// thermal sample, so the case would stop exercising anything.
const MIN_CYCLES: u64 = 2_000;

/// Pinned Fast-vs-Exact tolerance (kelvin) on the hottest block's final
/// temperature. Looser than the accuracy-contract suite's design-point
/// bound: fuzz cases run short budgets with aggressively biased trip
/// limits, where a single mitigation event near the end of the run moves
/// the final sample by several kelvin.
const FAST_FINAL_EPS: f64 = 20.0;

/// Self-contained reproduction recipe for one failing seed.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FailingCase {
    schema: String,
    /// Fuzzer seed the case was derived from.
    seed: u64,
    /// Workload profile name.
    bench: String,
    /// Seed for the workload's trace generator.
    trace_seed: u64,
    /// Shrunk cycle budget that still reproduces the failure.
    cycles: u64,
    /// The full derived configuration.
    config: SimConfig,
    /// What went wrong (violation strings or a panic message).
    failure: Vec<String>,
}

struct Args {
    seeds: u64,
    start_seed: u64,
    cycles: u64,
    artifact_dir: PathBuf,
    replay: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 200,
        start_seed: 0,
        cycles: 40_000,
        artifact_dir: PathBuf::from("."),
        replay: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n\n{ABOUT}");
        std::process::exit(2);
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--seeds" => {
                args.seeds =
                    value("--seeds").parse().unwrap_or_else(|e| fail(&format!("--seeds: {e}")));
            }
            "--start-seed" => {
                args.start_seed = value("--start-seed")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--start-seed: {e}")));
            }
            "--cycles" => {
                args.cycles =
                    value("--cycles").parse().unwrap_or_else(|e| fail(&format!("--cycles: {e}")));
            }
            "--artifact-dir" => args.artifact_dir = PathBuf::from(value("--artifact-dir")),
            "--replay" => args.replay = Some(PathBuf::from(value("--replay"))),
            "--help" | "-h" => {
                println!("{ABOUT}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if args.cycles == 0 {
        fail("--cycles must be positive");
    }
    args
}

/// One checked run, plus the Fast-vs-Exact cross-check when the derived
/// config uses the interval engine and the batched-vs-scalar cross-check
/// when the seed draws batched execution. `Ok` means clean; `Err` carries
/// the violation strings (capped) or the panic message.
fn run_case(
    seed: u64,
    config: &SimConfig,
    bench: &str,
    trace_seed: u64,
    cycles: u64,
) -> Result<(), Vec<String>> {
    let outcome = panic::catch_unwind(AssertUnwindSafe(|| -> Result<Vec<String>, String> {
        let mut sim = Simulator::new(config.clone()).map_err(|e| e.to_string())?;
        sim.enable_checking().map_err(|e| e.to_string())?;
        let profile = spec2000::by_name(bench).ok_or_else(|| format!("unknown bench {bench}"))?;
        let result = sim.run(&mut profile.trace(trace_seed), cycles);
        let mut failures: Vec<String> =
            sim.finish_checking().iter().take(8).map(|v| v.to_string()).collect();
        if config.fidelity == Fidelity::Fast && failures.is_empty() {
            let exact_cfg = SimConfig { fidelity: Fidelity::Exact, ..config.clone() };
            let mut exact_sim = Simulator::new(exact_cfg).map_err(|e| e.to_string())?;
            let exact = exact_sim.run(&mut profile.trace(trace_seed), cycles);
            let (f, e) = (result.hottest().last, exact.hottest().last);
            if (f - e).abs() > FAST_FINAL_EPS {
                failures.push(format!(
                    "fast-vs-exact final temp diverged: fast {f:.3} K, exact {e:.3} K \
                     (|Δ| > {FAST_FINAL_EPS} K)"
                ));
            }
        }
        if draws_batch(seed) && failures.is_empty() {
            failures.extend(batch_cross_check(seed, config, bench, trace_seed, cycles));
        }
        if draws_multicore(seed) && failures.is_empty() {
            failures.extend(multicore_cross_check(seed, config, bench, trace_seed, cycles));
        }
        Ok(failures)
    }));
    match outcome {
        Ok(Ok(failures)) if failures.is_empty() => Ok(()),
        Ok(Ok(failures)) => Err(failures),
        Ok(Err(build)) => Err(vec![format!("setup failed: {build}")]),
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("non-string panic payload");
            Err(vec![format!("panic: {msg}")])
        }
    }
}

/// Runs the seed's derived lockstep siblings as one batch and bitwise
/// cross-checks every sibling against its own sequential scalar run.
/// Returns the mismatch descriptions (empty when clean).
fn batch_cross_check(
    seed: u64,
    base: &SimConfig,
    bench: &str,
    trace_seed: u64,
    cycles: u64,
) -> Vec<String> {
    let profile = match spec2000::by_name(bench) {
        Some(p) => p,
        None => return vec![format!("unknown bench {bench}")],
    };
    let configs = derive_batch_siblings(seed, base);
    // Exact siblings ring-share generated ops through a cursor; Fast
    // siblings take the generator directly so macro-interval skips stay
    // O(1) instead of drawing ops.
    let batched = match base.fidelity {
        Fidelity::Exact => {
            BatchSimulator::new(configs.clone(), TraceCursor::new(profile.trace(trace_seed)))
                .map(|mut b| b.run(cycles))
        }
        Fidelity::Fast => BatchSimulator::new(configs.clone(), profile.trace(trace_seed))
            .map(|mut b| b.run(cycles)),
    };
    let batched = match batched {
        Ok(results) => results,
        Err(e) => return vec![format!("batch setup failed (K={}): {e}", configs.len())],
    };
    let mut failures = Vec::new();
    for (i, (config, batch_result)) in configs.iter().zip(&batched).enumerate() {
        let scalar = match Simulator::new(config.clone()) {
            Ok(mut sim) => sim.run(&mut profile.trace(trace_seed), cycles),
            Err(e) => {
                failures.push(format!("batch sibling {i} scalar setup failed: {e}"));
                continue;
            }
        };
        if *batch_result != scalar {
            failures.push(format!(
                "batched execution diverged from scalar on sibling {i}/{} \
                 (batch committed {} vs scalar {}, hottest {:.3} K vs {:.3} K)",
                configs.len(),
                batch_result.committed,
                scalar.committed,
                batch_result.hottest().last,
                scalar.hottest().last,
            ));
        }
    }
    failures
}

/// Runs the seed's case through the multi-core engine with the checker
/// armed on every lane (cross-core energy invariants included on dies of
/// two or more cores). 1-core draws under a placing scheduler are also
/// cross-checked bitwise against the scalar simulator. Returns the
/// failure descriptions (empty when clean).
fn multicore_cross_check(
    seed: u64,
    base: &SimConfig,
    bench: &str,
    trace_seed: u64,
    cycles: u64,
) -> Vec<String> {
    let shape = derive_multicore_case(seed);
    let profile = match spec2000::by_name(bench) {
        Some(p) => p,
        None => return vec![format!("unknown bench {bench}")],
    };
    let config = SimConfig { cores: shape.cores, scheduler: shape.scheduler, ..base.clone() };
    let mut sim = match MultiCoreSimulator::new(config) {
        Ok(sim) => sim,
        Err(e) => return vec![format!("multicore setup failed ({shape:?}): {e}")],
    };
    if let Err(e) = sim.enable_checking() {
        return vec![format!("multicore checking setup failed ({shape:?}): {e}")];
    }
    // One unbounded job per core; each lane gets its own trace stream.
    let mut tasks = TaskSet::new(
        (0..shape.cores)
            .map(|c| Task::unbounded(c as u64, profile.trace(trace_seed.wrapping_add(c as u64)))),
    );
    let result = sim.run(&mut tasks, cycles);
    let mut failures: Vec<String> = sim
        .finish_checking()
        .iter()
        .take(8)
        .map(|v| format!("multicore ({shape:?}): {v}"))
        .collect();
    // A threshold scheduler may legitimately defer the only segment and
    // idle-cool, so the bitwise contract covers the placing schedulers.
    if shape.cores == 1 && shape.scheduler != SchedulerKind::Threshold && failures.is_empty() {
        let scalar = match Simulator::new(base.clone()) {
            Ok(mut sim) => sim.run(&mut profile.trace(trace_seed), cycles),
            Err(e) => return vec![format!("multicore scalar reference setup failed: {e}")],
        };
        if result.cores[0] != scalar {
            failures.push(format!(
                "1-core multicore run diverged from scalar under {:?} \
                 (multi committed {} vs scalar {}, hottest {:.3} K vs {:.3} K)",
                shape.scheduler,
                result.cores[0].committed,
                scalar.committed,
                result.cores[0].hottest().last,
                scalar.hottest().last,
            ));
        }
    }
    failures
}

/// Greedy shrink: halve the cycle budget while the failure reproduces.
fn shrink(seed: u64, config: &SimConfig, bench: &str, trace_seed: u64, mut cycles: u64) -> u64 {
    while cycles / 2 >= MIN_CYCLES {
        if run_case(seed, config, bench, trace_seed, cycles / 2).is_err() {
            cycles /= 2;
        } else {
            break;
        }
    }
    cycles
}

fn replay(path: &PathBuf) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: reading {}: {e}", path.display());
        std::process::exit(2);
    });
    let case: FailingCase = json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: parsing {}: {e}", path.display());
        std::process::exit(2);
    });
    eprintln!(
        "replaying seed {} ({} on {:?}, {} cycles)...",
        case.seed, case.bench, case.config.floorplan, case.cycles
    );
    match run_case(case.seed, &case.config, &case.bench, case.trace_seed, case.cycles) {
        Ok(()) => {
            eprintln!("case no longer reproduces: run is clean");
            std::process::exit(0);
        }
        Err(failure) => {
            for line in &failure {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    }
}

fn main() {
    let args = parse_args();
    if let Some(path) = &args.replay {
        replay(path);
    }

    // A checked run that trips an invariant may panic deep in the stack
    // (e.g. an index derived from corrupt state); the default hook would
    // spray a backtrace per seed, so silence it — `run_case` reports the
    // payload itself.
    let default_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));

    let mut failures = 0u64;
    for seed in args.start_seed..args.start_seed + args.seeds {
        let (config, bench, trace_seed) = derive_case(seed);
        debug_assert!(config.validate().is_ok(), "seed {seed} derived an invalid config");
        match run_case(seed, &config, &bench, trace_seed, args.cycles) {
            Ok(()) => {
                if (seed + 1 - args.start_seed).is_multiple_of(25) {
                    eprintln!("  {}/{} seeds clean", seed + 1 - args.start_seed, args.seeds);
                }
            }
            Err(_) => {
                failures += 1;
                let cycles = shrink(seed, &config, &bench, trace_seed, args.cycles);
                let failure = run_case(seed, &config, &bench, trace_seed, cycles)
                    .expect_err("shrunk case fails");
                eprintln!(
                    "seed {seed} FAILED ({bench} on {:?}, shrunk to {cycles} cycles):",
                    config.floorplan
                );
                for line in &failure {
                    eprintln!("  {line}");
                }
                let case = FailingCase {
                    schema: "powerbalance-fuzz-case/v1".to_string(),
                    seed,
                    bench,
                    trace_seed,
                    cycles,
                    config,
                    failure,
                };
                let path = args.artifact_dir.join(format!("fuzz-seed-{seed}.json"));
                let _ = std::fs::create_dir_all(&args.artifact_dir);
                match std::fs::write(&path, json::to_string_pretty(&case)) {
                    Ok(()) => eprintln!("  wrote {}", path.display()),
                    Err(e) => eprintln!("  error writing {}: {e}", path.display()),
                }
            }
        }
    }
    panic::set_hook(default_hook);

    if failures > 0 {
        eprintln!("{failures}/{} seeds failed", args.seeds);
        std::process::exit(1);
    }
    eprintln!("all {} seeds clean", args.seeds);
}

//! Figure 7: IPC of the ALU-constrained CPU under round-robin (ideal),
//! fine-grain turnoff, and base scheduling, for all 22 benchmarks.
//!
//! Paper reference points: fine-grain turnoff lands within ~1% of the
//! round-robin upper bound and averages +40% over base (+74% over the
//! ALU-constrained subset).

use powerbalance::experiments::{self, AluPolicy};
use powerbalance_bench::{constrained_subset, mean_speedup_pct, row, sweep, DEFAULT_CYCLES};

fn main() {
    let configs = vec![
        experiments::alu(AluPolicy::Base),
        experiments::alu(AluPolicy::FineGrainTurnoff),
        experiments::alu(AluPolicy::RoundRobin),
    ];
    let rows = sweep(&configs, DEFAULT_CYCLES);

    println!("Figure 7: ALU-constrained IPC (base / fine-grain turnoff / round-robin)");
    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>9} {:>9}",
        "bench", "base", "fg", "rr", "fg-spd%", "turnoffs"
    );
    let mut pairs = Vec::new();
    let mut constrained_pairs = Vec::new();
    let constrained = constrained_subset(&rows, 0);
    for (name, results) in &rows {
        let (base, fg, rr) = (&results[0], &results[1], &results[2]);
        let speedup = (fg.ipc / base.ipc - 1.0) * 100.0;
        println!(
            "{} {:>9}",
            row(name, &[base.ipc, fg.ipc, rr.ipc, speedup], 8, 2),
            fg.alu_turnoffs
        );
        pairs.push((base.ipc, fg.ipc));
        if constrained.contains(&name.as_str()) {
            constrained_pairs.push((base.ipc, fg.ipc));
        }
    }
    println!();
    println!(
        "fine-grain turnoff speedup, all:         {:+.1}%  (paper: +40%)",
        mean_speedup_pct(&pairs)
    );
    println!(
        "fine-grain turnoff speedup, constrained: {:+.1}%  (paper: +74%; subset: {:?})",
        mean_speedup_pct(&constrained_pairs),
        constrained
    );
    let rr_gap: Vec<(f64, f64)> = rows.iter().map(|(_, r)| (r[2].ipc, r[1].ipc)).collect();
    println!(
        "fine-grain vs. round-robin gap:          {:+.1}%  (paper: within ~1%)",
        mean_speedup_pct(&rr_gap)
    );
}

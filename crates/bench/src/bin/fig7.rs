//! Figure 7: IPC of the ALU-constrained CPU under round-robin (ideal),
//! fine-grain turnoff, and base scheduling, for all 22 benchmarks.
//!
//! Paper reference points: fine-grain turnoff lands within ~1% of the
//! round-robin upper bound and averages +40% over base (+74% over the
//! ALU-constrained subset).

use powerbalance::experiments::{self, AluPolicy};
use powerbalance_bench::{row, BenchArgs};
use powerbalance_harness::speedup::{format_pct, mean_speedup_pct, speedup_pct};

fn main() {
    let args = BenchArgs::parse_or_exit(
        "fig7 — ALU-constrained IPC: base, fine-grain turnoff, round-robin (Figure 7)",
    );
    let spec = args
        .spec("fig7")
        .config("base", experiments::alu(AluPolicy::Base))
        .config("fine-grain", experiments::alu(AluPolicy::FineGrainTurnoff))
        .config("round-robin", experiments::alu(AluPolicy::RoundRobin))
        .all_benchmarks();
    let result = args.run(&spec);

    println!("Figure 7: ALU-constrained IPC (base / fine-grain turnoff / round-robin)");
    println!(
        "{:<10} {:>7} {:>8} {:>8} {:>9} {:>9}",
        "bench", "base", "fg", "rr", "fg-spd%", "turnoffs"
    );
    let mut pairs = Vec::new();
    let mut constrained_pairs = Vec::new();
    let mut rr_gap = Vec::new();
    let constrained: Vec<&str> =
        result.constrained_subset(0).into_iter().map(|(name, _)| name).collect();
    for (name, results) in result.rows() {
        let (base, fg, rr) = (results[0], results[1], results[2]);
        println!(
            "{} {} {:>9}",
            row(name, &[base.ipc, fg.ipc, rr.ipc], 8, 2),
            format_pct(speedup_pct(base.ipc, fg.ipc), 9, 2),
            fg.alu_turnoffs
        );
        pairs.push((base.ipc, fg.ipc));
        rr_gap.push((rr.ipc, fg.ipc));
        if constrained.contains(&name) {
            constrained_pairs.push((base.ipc, fg.ipc));
        }
    }
    println!();
    println!(
        "fine-grain turnoff speedup, all:         {:+.1}%  (paper: +40%)",
        mean_speedup_pct(&pairs)
    );
    println!(
        "fine-grain turnoff speedup, constrained: {:+.1}%  (paper: +74%; subset: {constrained:?})",
        mean_speedup_pct(&constrained_pairs),
    );
    println!(
        "fine-grain vs. round-robin gap:          {:+.1}%  (paper: within ~1%)",
        mean_speedup_pct(&rr_gap)
    );
    args.finish(&[&result]);
}

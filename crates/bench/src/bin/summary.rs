//! Headline summary: the paper's §6 claims, regenerated.
//!
//! Runs all three constrained designs over all 22 benchmarks and prints the
//! average speedups of each technique over its baseline, next to the
//! paper's numbers.

use powerbalance::experiments::{self, AluPolicy};
use powerbalance::MappingPolicy;
use powerbalance_bench::BenchArgs;
use powerbalance_harness::speedup::mean_speedup_pct;
use powerbalance_harness::CampaignResult;

/// Mean speedups of config 1 over config 0, over all rows and over the
/// constrained subset (rows whose baseline hit temporal stalls).
fn means(result: &CampaignResult) -> (f64, f64) {
    let all: Vec<(f64, f64)> = result.rows().iter().map(|(_, r)| (r[0].ipc, r[1].ipc)).collect();
    let cons: Vec<(f64, f64)> =
        result.constrained_subset(0).iter().map(|(_, r)| (r[0].ipc, r[1].ipc)).collect();
    (mean_speedup_pct(&all), mean_speedup_pct(&cons))
}

fn main() {
    let args =
        BenchArgs::parse_or_exit("summary — the paper's section-6 headline claims, regenerated");
    println!("Regenerating the paper's headline claims (all 22 benchmarks)...");
    println!();

    let iq = args.run(
        &args
            .spec("summary-iq")
            .config("base", experiments::issue_queue(false))
            .config("toggling", experiments::issue_queue(true))
            .all_benchmarks(),
    );
    let (all, cons) = means(&iq);
    println!(
        "issue queue / activity toggling:   {all:+5.1}% all, {cons:+5.1}% constrained (paper: +9% / +14%)"
    );

    let alu = args.run(
        &args
            .spec("summary-alu")
            .config("base", experiments::alu(AluPolicy::Base))
            .config("fine-grain", experiments::alu(AluPolicy::FineGrainTurnoff))
            .all_benchmarks(),
    );
    let (all, cons) = means(&alu);
    println!(
        "ALUs / fine-grain turnoff:         {all:+5.1}% all, {cons:+5.1}% constrained (paper: +40% / +74%)"
    );

    let rf = args.run(
        &args
            .spec("summary-rf")
            .config("priority", experiments::regfile(MappingPolicy::Priority, false))
            .config("fg+priority", experiments::regfile(MappingPolicy::Priority, true))
            .all_benchmarks(),
    );
    let (all, cons) = means(&rf);
    println!(
        "register file / fg + priority map: {all:+5.1}% all, {cons:+5.1}% constrained (paper: +17% / +30%)"
    );

    args.finish(&[&iq, &alu, &rf]);
}

//! Headline summary: the paper's §6 claims, regenerated.
//!
//! Runs all three constrained designs over all 22 benchmarks and prints the
//! average speedups of each technique over its baseline, next to the
//! paper's numbers.

use powerbalance::experiments::{self, AluPolicy};
use powerbalance::MappingPolicy;
use powerbalance_bench::{constrained_subset, mean_speedup_pct, sweep, DEFAULT_CYCLES};

fn main() {
    println!("Regenerating the paper's headline claims (all 22 benchmarks)...");
    println!();

    // Issue queue: activity toggling vs. base.
    let rows = sweep(
        &[experiments::issue_queue(false), experiments::issue_queue(true)],
        DEFAULT_CYCLES,
    );
    let constrained = constrained_subset(&rows, 0);
    let all: Vec<(f64, f64)> = rows.iter().map(|(_, r)| (r[0].ipc, r[1].ipc)).collect();
    let cons: Vec<(f64, f64)> = rows
        .iter()
        .filter(|(n, _)| constrained.contains(&n.as_str()))
        .map(|(_, r)| (r[0].ipc, r[1].ipc))
        .collect();
    println!(
        "issue queue / activity toggling:   {:+5.1}% all, {:+5.1}% constrained (paper: +9% / +14%)",
        mean_speedup_pct(&all),
        mean_speedup_pct(&cons)
    );

    // ALUs: fine-grain turnoff vs. base.
    let rows = sweep(
        &[
            experiments::alu(AluPolicy::Base),
            experiments::alu(AluPolicy::FineGrainTurnoff),
        ],
        DEFAULT_CYCLES,
    );
    let constrained = constrained_subset(&rows, 0);
    let all: Vec<(f64, f64)> = rows.iter().map(|(_, r)| (r[0].ipc, r[1].ipc)).collect();
    let cons: Vec<(f64, f64)> = rows
        .iter()
        .filter(|(n, _)| constrained.contains(&n.as_str()))
        .map(|(_, r)| (r[0].ipc, r[1].ipc))
        .collect();
    println!(
        "ALUs / fine-grain turnoff:         {:+5.1}% all, {:+5.1}% constrained (paper: +40% / +74%)",
        mean_speedup_pct(&all),
        mean_speedup_pct(&cons)
    );

    // Register file: fg+priority vs. priority-only.
    let rows = sweep(
        &[
            experiments::regfile(MappingPolicy::Priority, false),
            experiments::regfile(MappingPolicy::Priority, true),
        ],
        DEFAULT_CYCLES,
    );
    let constrained = constrained_subset(&rows, 0);
    let all: Vec<(f64, f64)> = rows.iter().map(|(_, r)| (r[0].ipc, r[1].ipc)).collect();
    let cons: Vec<(f64, f64)> = rows
        .iter()
        .filter(|(n, _)| constrained.contains(&n.as_str()))
        .map(|(_, r)| (r[0].ipc, r[1].ipc))
        .collect();
    println!(
        "register file / fg + priority map: {:+5.1}% all, {:+5.1}% constrained (paper: +17% / +30%)",
        mean_speedup_pct(&all),
        mean_speedup_pct(&cons)
    );
}

//! Closed-loop load generator for the `powerbalance serve` daemon.
//!
//! Opens `--connections` keep-alive HTTP connections; each drives a
//! closed loop — submit one tiny campaign, poll its status until
//! terminal, fetch the result — for `--campaigns-per-conn` iterations.
//! A `429` (queue full) counts as a completed loop iteration after the
//! advertised `Retry-After` backoff, so the generator exercises the
//! server's backpressure path rather than hammering through it.
//!
//! Records wall-clock throughput plus p50/p95/p99 latency for individual
//! HTTP requests and for whole campaigns (submit → result available),
//! and writes the summary as JSON (`--json BENCH_server.json` in CI).

use powerbalance_server::client::Client;
use serde::Serialize;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const USAGE: &str = "\
loadgen — closed-loop load generator for `powerbalance serve`

USAGE: loadgen --addr <host:port> [OPTIONS]

OPTIONS:
  --addr <host:port>        server to load (required)
  --connections <n>         concurrent keep-alive connections   [8]
  --campaigns-per-conn <n>  campaigns each connection submits   [4]
  --cycles <n>              simulated cycles per campaign       [50000]
  --json <path>             write the summary as JSON
  --long-poll               fetch results via GET .../result?wait=<s>
                            long-polls instead of status polling, and
                            report time-to-result percentiles
  --shutdown                POST /v1/shutdown when done
  --help                    show this help";

#[derive(Debug)]
struct Args {
    addr: SocketAddr,
    connections: usize,
    campaigns_per_conn: usize,
    cycles: u64,
    json: Option<std::path::PathBuf>,
    long_poll: bool,
    shutdown: bool,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut addr = None;
    let mut connections = 8usize;
    let mut campaigns_per_conn = 4usize;
    let mut cycles = 50_000u64;
    let mut json = None;
    let mut long_poll = false;
    let mut shutdown = false;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => {
                let raw = value("--addr")?;
                addr = Some(raw.parse().map_err(|e| format!("--addr '{raw}': {e}"))?);
            }
            "--connections" => {
                connections =
                    value("--connections")?.parse().map_err(|e| format!("--connections: {e}"))?
            }
            "--campaigns-per-conn" => {
                campaigns_per_conn = value("--campaigns-per-conn")?
                    .parse()
                    .map_err(|e| format!("--campaigns-per-conn: {e}"))?
            }
            "--cycles" => {
                cycles = value("--cycles")?.parse().map_err(|e| format!("--cycles: {e}"))?
            }
            "--json" => json = Some(std::path::PathBuf::from(value("--json")?)),
            "--long-poll" => long_poll = true,
            "--shutdown" => shutdown = true,
            "--help" | "-h" => return Err("help".to_string()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let addr = addr.ok_or_else(|| "--addr is required".to_string())?;
    if connections == 0 || campaigns_per_conn == 0 {
        return Err("--connections and --campaigns-per-conn must be at least 1".to_string());
    }
    Ok(Args { addr, connections, campaigns_per_conn, cycles, json, long_poll, shutdown })
}

/// Latency percentiles in microseconds, from a sorted sample set.
#[derive(Debug, Serialize)]
struct Percentiles {
    count: usize,
    p50_micros: u64,
    p95_micros: u64,
    p99_micros: u64,
    max_micros: u64,
}

fn percentiles(samples: &mut [u64]) -> Percentiles {
    samples.sort_unstable();
    let at = |p: f64| {
        if samples.is_empty() {
            0
        } else {
            let idx = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len()) - 1;
            samples[idx]
        }
    };
    Percentiles {
        count: samples.len(),
        p50_micros: at(0.50),
        p95_micros: at(0.95),
        p99_micros: at(0.99),
        max_micros: samples.last().copied().unwrap_or(0),
    }
}

#[derive(Debug, Serialize)]
struct Summary {
    connections: usize,
    campaigns_per_conn: usize,
    cycles_per_campaign: u64,
    wall_secs: f64,
    campaigns_completed: u64,
    campaigns_rejected_429: u64,
    http_errors: u64,
    requests_total: u64,
    requests_per_sec: f64,
    request_latency: Percentiles,
    campaign_latency: Percentiles,
    long_poll: bool,
    time_to_result: Percentiles,
}

#[derive(Default)]
struct Tally {
    completed: AtomicU64,
    rejected: AtomicU64,
    errors: AtomicU64,
    requests: AtomicU64,
    request_micros: Mutex<Vec<u64>>,
    campaign_micros: Mutex<Vec<u64>>,
    time_to_result_micros: Mutex<Vec<u64>>,
}

/// The request body: a one-benchmark, one-config campaign. Built as a
/// JSON string through the same serde types the server parses with.
fn campaign_body(name: &str, cycles: u64) -> String {
    use powerbalance::experiments;
    use powerbalance_harness::CampaignSpec;
    let spec = CampaignSpec::new(name)
        .config("base", experiments::issue_queue(false))
        .config("toggling", experiments::issue_queue(true))
        .benchmark("gzip")
        .cycles(cycles)
        .seed(7);
    serde::json::to_string(&spec)
}

fn timed_request(
    client: &mut Client,
    tally: &Tally,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Option<powerbalance_server::client::ClientResponse> {
    let start = Instant::now();
    let response = client.request(method, path, body);
    let micros = start.elapsed().as_micros() as u64;
    tally.requests.fetch_add(1, Ordering::Relaxed);
    match response {
        Ok(response) => {
            tally.request_micros.lock().expect("no holder panics").push(micros);
            Some(response)
        }
        Err(_) => {
            tally.errors.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

fn drive_connection(args: &Args, tally: &Tally, conn: usize) {
    let mut client = Client::new(args.addr, Duration::from_secs(30));
    for iteration in 0..args.campaigns_per_conn {
        let body = campaign_body(&format!("loadgen-c{conn}-i{iteration}"), args.cycles);
        let campaign_start = Instant::now();
        let Some(response) =
            timed_request(&mut client, tally, "POST", "/v1/campaigns", Some(&body))
        else {
            continue;
        };
        match response.status {
            202 => {}
            429 => {
                tally.rejected.fetch_add(1, Ordering::Relaxed);
                let backoff: u64 =
                    response.header("retry-after").and_then(|v| v.parse().ok()).unwrap_or(1);
                std::thread::sleep(Duration::from_millis(backoff * 100));
                continue;
            }
            _ => {
                tally.errors.fetch_add(1, Ordering::Relaxed);
                continue;
            }
        }
        // `{"id":N,...}` — cheap extraction without a struct.
        let text = response.text();
        let id: u64 = text
            .split(|c: char| !c.is_ascii_digit())
            .find(|s| !s.is_empty())
            .and_then(|s| s.parse().ok())
            .unwrap_or(0);

        if args.long_poll {
            // One long-poll request usually suffices: the server parks the
            // handler until the campaign turns terminal (or the 5 s window
            // lapses, in which case we simply re-arm).
            let result_path = format!("/v1/campaigns/{id}/result?wait=5");
            while let Some(result) = timed_request(&mut client, tally, "GET", &result_path, None) {
                match result.status {
                    200 => {
                        let micros = campaign_start.elapsed().as_micros() as u64;
                        tally.completed.fetch_add(1, Ordering::Relaxed);
                        tally.campaign_micros.lock().expect("no holder panics").push(micros);
                        tally.time_to_result_micros.lock().expect("no holder panics").push(micros);
                        break;
                    }
                    409 => continue, // window lapsed while still running; re-arm
                    _ => {
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                }
            }
            continue;
        }

        let status_path = format!("/v1/campaigns/{id}");
        while let Some(response) = timed_request(&mut client, tally, "GET", &status_path, None) {
            let body = response.text();
            if body.contains("\"Completed\"")
                || body.contains("\"Failed\"")
                || body.contains("\"Cancelled\"")
            {
                let result_path = format!("/v1/campaigns/{id}/result");
                if let Some(result) = timed_request(&mut client, tally, "GET", &result_path, None) {
                    if result.status == 200 {
                        tally.completed.fetch_add(1, Ordering::Relaxed);
                        tally
                            .campaign_micros
                            .lock()
                            .expect("no holder panics")
                            .push(campaign_start.elapsed().as_micros() as u64);
                    } else {
                        tally.errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(args) => args,
        Err(msg) => {
            let help = msg == "help";
            if !help {
                eprintln!("error: {msg}");
                eprintln!();
            }
            eprintln!("{USAGE}");
            std::process::exit(i32::from(!help) * 2);
        }
    };

    let tally = Tally::default();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for conn in 0..args.connections {
            let tally = &tally;
            let args = &args;
            scope.spawn(move || drive_connection(args, tally, conn));
        }
    });
    let wall_secs = start.elapsed().as_secs_f64();

    let requests_total = tally.requests.load(Ordering::Relaxed);
    let mut request_micros =
        std::mem::take(&mut *tally.request_micros.lock().expect("no holder panics"));
    let mut campaign_micros =
        std::mem::take(&mut *tally.campaign_micros.lock().expect("no holder panics"));
    let mut time_to_result_micros =
        std::mem::take(&mut *tally.time_to_result_micros.lock().expect("no holder panics"));
    let summary = Summary {
        connections: args.connections,
        campaigns_per_conn: args.campaigns_per_conn,
        cycles_per_campaign: args.cycles,
        wall_secs,
        campaigns_completed: tally.completed.load(Ordering::Relaxed),
        campaigns_rejected_429: tally.rejected.load(Ordering::Relaxed),
        http_errors: tally.errors.load(Ordering::Relaxed),
        requests_total,
        requests_per_sec: if wall_secs > 0.0 { requests_total as f64 / wall_secs } else { 0.0 },
        request_latency: percentiles(&mut request_micros),
        campaign_latency: percentiles(&mut campaign_micros),
        long_poll: args.long_poll,
        time_to_result: percentiles(&mut time_to_result_micros),
    };

    println!(
        "{} connections x {} campaigns ({} cycles each): {} completed, {} rejected (429), \
         {} errors in {:.2}s",
        summary.connections,
        summary.campaigns_per_conn,
        summary.cycles_per_campaign,
        summary.campaigns_completed,
        summary.campaigns_rejected_429,
        summary.http_errors,
        summary.wall_secs,
    );
    println!(
        "{} requests ({:.0} req/s); request p50/p95/p99: {}/{}/{} us; campaign p50/p95/p99: \
         {}/{}/{} us",
        summary.requests_total,
        summary.requests_per_sec,
        summary.request_latency.p50_micros,
        summary.request_latency.p95_micros,
        summary.request_latency.p99_micros,
        summary.campaign_latency.p50_micros,
        summary.campaign_latency.p95_micros,
        summary.campaign_latency.p99_micros,
    );
    if summary.long_poll {
        println!(
            "long-poll time-to-result p50/p95/p99: {}/{}/{} us",
            summary.time_to_result.p50_micros,
            summary.time_to_result.p95_micros,
            summary.time_to_result.p99_micros,
        );
    }

    let mut exit = 0;
    if summary.campaigns_completed == 0 {
        eprintln!("error: no campaign completed");
        exit = 1;
    }

    if let Some(path) = &args.json {
        let text = serde::json::to_string_pretty(&summary);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: writing {}: {e}", path.display());
            exit = 1;
        } else {
            eprintln!("wrote {}", path.display());
        }
    }

    if args.shutdown {
        let mut client = Client::new(args.addr, Duration::from_secs(10));
        match client.request("POST", "/v1/shutdown", None) {
            Ok(response) if response.status == 202 => eprintln!("server shutdown requested"),
            Ok(response) => eprintln!("shutdown request got status {}", response.status),
            Err(e) => eprintln!("shutdown request failed: {e}"),
        }
    }

    std::process::exit(exit);
}

//! fidelity — interval-engine speedup and accuracy, measured head-to-head.
//!
//! Runs the summary campaign's mitigation-active configs (one per
//! constrained floorplan) twice — once at `Fidelity::Exact`, once at
//! `Fidelity::Fast` with the default macro window and warmup prefix —
//! and records both the wall-clock speedup and the worst-case temperature
//! and IPC deviations in a JSON artifact (`BENCH_fidelity.json`).
//!
//! The cycle budget defaults to 8M, well past the paper-budget 1M: the
//! detailed warmup prefix is a fixed cost, so the speedup asymptote
//! `budget / (prefix + (budget − prefix)/stretch)` only clears 10× once
//! the budget dwarfs the prefix. The error columns complement the pinned
//! accuracy-contract suite (`tests/fidelity_contract.rs`): the contract
//! gates merges at the 1M design point; this artifact documents how the
//! trade-off looks at production budgets.

use powerbalance::experiments::{self, AluPolicy};
use powerbalance::{Fidelity, MappingPolicy, SimConfig};
use powerbalance_bench::{DEFAULT_SEED, OPTIONS_HELP};
use powerbalance_harness::{run_campaign, CampaignResult, CampaignSpec, RunnerOptions};
use serde::{json, Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// One benchmark per behaviour class, as in the throughput baseline:
/// integer (gzip), floating-point (mesa), and branchy/mixed (crafty).
const DEFAULT_BENCHMARKS: [&str; 3] = ["gzip", "mesa", "crafty"];

/// Past this budget the default 200k-cycle warmup prefix amortizes to a
/// >10x detailed-cycle reduction at the default stretch of 20.
const DEFAULT_FIDELITY_CYCLES: u64 = 8_000_000;

const ABOUT: &str = "\
fidelity — interval-engine speedup and accuracy vs the exact engine

Runs the same mitigation-active campaign at both fidelities and writes
speedup + worst-case error columns to a JSON artifact.

OPTIONS:
  --cycles <n>      simulated cycles per job                [8000000]
  --seed <n>        workload seed                           [42]
  --threads <n>     worker-pool size                        [all cores]
  --out <path>      write the JSON artifact here            [BENCH_fidelity.json]
  --benchmarks <a,b,c>
                    comma-separated benchmark list          [gzip,mesa,crafty]
  --quiet           suppress per-job progress lines
  --help            show this help";

/// Worst-case absolute deviations between the Exact and Fast runs of one
/// (benchmark x config) job.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct JobError {
    benchmark: String,
    config: String,
    /// Max over blocks of |exact − fast| execution-averaged temperature.
    avg_temp_error_k: f64,
    /// Max over blocks of |exact − fast| peak temperature.
    peak_temp_error_k: f64,
    /// Max over blocks of |exact − fast| final temperature.
    final_temp_error_k: f64,
    /// |exact − fast| instructions per cycle.
    ipc_error: f64,
}

/// The on-disk artifact: one head-to-head measurement.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FidelityArtifact {
    schema: String,
    cycles: u64,
    seed: u64,
    benchmarks: Vec<String>,
    configs: Vec<String>,
    threads: usize,
    exact_wall_seconds: f64,
    fast_wall_seconds: f64,
    /// Exact wall time over Fast wall time for the identical campaign.
    speedup: f64,
    /// Worst case over all jobs and blocks.
    max_avg_temp_error_k: f64,
    max_peak_temp_error_k: f64,
    max_final_temp_error_k: f64,
    max_ipc_error: f64,
    jobs: Vec<JobError>,
}

struct Args {
    cycles: u64,
    seed: u64,
    threads: Option<usize>,
    out: PathBuf,
    benchmarks: Vec<String>,
    quiet: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        cycles: DEFAULT_FIDELITY_CYCLES,
        seed: DEFAULT_SEED,
        threads: None,
        out: PathBuf::from("BENCH_fidelity.json"),
        benchmarks: DEFAULT_BENCHMARKS.iter().map(|s| s.to_string()).collect(),
        quiet: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n\n{ABOUT}");
        std::process::exit(2);
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--cycles" => {
                args.cycles =
                    value("--cycles").parse().unwrap_or_else(|e| fail(&format!("--cycles: {e}")));
            }
            "--seed" => {
                args.seed =
                    value("--seed").parse().unwrap_or_else(|e| fail(&format!("--seed: {e}")));
            }
            "--threads" => {
                args.threads = Some(
                    value("--threads").parse().unwrap_or_else(|e| fail(&format!("--threads: {e}"))),
                );
            }
            "--out" => args.out = PathBuf::from(value("--out")),
            "--benchmarks" => {
                args.benchmarks =
                    value("--benchmarks").split(',').map(|s| s.trim().to_string()).collect();
            }
            "--quiet" => args.quiet = true,
            "--help" | "-h" => {
                println!("{ABOUT}\n\n(shared campaign flags: see below)\n{OPTIONS_HELP}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if args.cycles == 0 {
        fail("--cycles must be positive");
    }
    for name in &args.benchmarks {
        if powerbalance_workloads::spec2000::by_name(name).is_none() {
            fail(&format!("unknown benchmark '{name}'"));
        }
    }
    args
}

/// The summary campaign's mitigation-active configs: one technique per
/// constrained floorplan, so the comparison crosses every actuator family
/// the interval engine has to keep honest.
fn configs() -> Vec<(&'static str, SimConfig)> {
    vec![
        ("iq-toggling", experiments::issue_queue(true)),
        ("alu-fine-grain", experiments::alu(AluPolicy::FineGrainTurnoff)),
        ("rf-fg-priority", experiments::regfile(MappingPolicy::Priority, true)),
    ]
}

fn build_spec(args: &Args, name: &str, fidelity: Fidelity) -> CampaignSpec {
    let mut spec = CampaignSpec::new(name).cycles(args.cycles).seed(args.seed);
    for (cfg_name, cfg) in configs() {
        spec = spec.config(cfg_name, SimConfig { fidelity, ..cfg });
    }
    for bench in &args.benchmarks {
        spec = spec.benchmark(bench);
    }
    spec
}

fn run_timed(spec: &CampaignSpec, args: &Args) -> (CampaignResult, f64) {
    let options = RunnerOptions {
        threads: args.threads,
        progress: !args.quiet,
        warm_cache: false,
        checkpoint_dir: None,
        resume: false,
        ..RunnerOptions::default()
    };
    let start = Instant::now();
    let result = run_campaign(spec, &options).expect("fidelity campaign specs are valid");
    (result, start.elapsed().as_secs_f64())
}

fn main() {
    let args = parse_args();
    eprintln!(
        "running {} configs x {} benchmarks x {} cycles at both fidelities...",
        configs().len(),
        args.benchmarks.len(),
        args.cycles
    );

    let (exact, exact_wall) =
        run_timed(&build_spec(&args, "fidelity-exact", Fidelity::Exact), &args);
    eprintln!("  exact: {exact_wall:.2}s");
    let (fast, fast_wall) = run_timed(&build_spec(&args, "fidelity-fast", Fidelity::Fast), &args);
    eprintln!("  fast:  {fast_wall:.2}s");

    let mut jobs = Vec::new();
    for (e, f) in exact.jobs.iter().zip(&fast.jobs) {
        assert_eq!((&e.bench, &e.config), (&f.bench, &f.config), "campaigns ran in lockstep");
        let worst = |pick: fn(&powerbalance::BlockTemperature) -> f64| {
            e.result
                .temperatures
                .iter()
                .zip(&f.result.temperatures)
                .map(|(et, ft)| (pick(et) - pick(ft)).abs())
                .fold(0.0f64, f64::max)
        };
        jobs.push(JobError {
            benchmark: e.bench.clone(),
            config: e.config.clone(),
            avg_temp_error_k: worst(|t| t.avg),
            peak_temp_error_k: worst(|t| t.max),
            final_temp_error_k: worst(|t| t.last),
            ipc_error: (e.result.ipc - f.result.ipc).abs(),
        });
    }

    let max_of = |pick: fn(&JobError) -> f64| jobs.iter().map(pick).fold(0.0f64, f64::max);
    let artifact = FidelityArtifact {
        schema: "powerbalance-fidelity/v1".to_string(),
        cycles: args.cycles,
        seed: args.seed,
        benchmarks: args.benchmarks.clone(),
        configs: configs().iter().map(|(name, _)| name.to_string()).collect(),
        threads: exact.threads,
        exact_wall_seconds: exact_wall,
        fast_wall_seconds: fast_wall,
        speedup: exact_wall / fast_wall,
        max_avg_temp_error_k: max_of(|j| j.avg_temp_error_k),
        max_peak_temp_error_k: max_of(|j| j.peak_temp_error_k),
        max_final_temp_error_k: max_of(|j| j.final_temp_error_k),
        max_ipc_error: max_of(|j| j.ipc_error),
        jobs,
    };

    eprintln!(
        "speedup {:.2}x | max errors: avg {:.2} K, peak {:.2} K, final {:.2} K, ipc {:.4}",
        artifact.speedup,
        artifact.max_avg_temp_error_k,
        artifact.max_peak_temp_error_k,
        artifact.max_final_temp_error_k,
        artifact.max_ipc_error
    );
    if let Err(e) = std::fs::write(&args.out, json::to_string_pretty(&artifact)) {
        eprintln!("error: writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out.display());
}

//! Host-throughput baseline: simulated-cycles-per-second for the two hot
//! loops every experiment pays for.
//!
//! Measures wall-clock throughput of (a) the bare core loop
//! (`Core::cycle` only — `core_only`) and (b) the full
//! simulate-sense-react stack (`Simulator::run`: core + power + thermal +
//! mitigation — `full_stack`) across a few representative benchmarks, and
//! writes the results to a JSON artifact (`BENCH_throughput.json` by
//! default).
//!
//! With `--batch` it additionally measures batched lockstep campaign
//! execution: K mitigation variants of the same benchmark stepped by one
//! [`BatchSimulator`] sharing one trace and one SoA thermal solve, at each
//! width in `--widths`. Every `batch_k{K}` point is labelled with its
//! `batch_width` and carries `speedup_vs_scalar` — the wall time of K
//! sequential scalar runs of the same configs over the batch's wall time.
//!
//! The artifact accumulates labelled runs: re-running with a different
//! `--label` *merges* into the existing file instead of overwriting it, so
//! a before/after pair lives in one reviewable document and the `speedup`
//! block tracks last-vs-first automatically. Simulated results are
//! deterministic; only the wall-clock fields vary between hosts.

use powerbalance::experiments::{self, PolicyKind};
use powerbalance::{BatchSimulator, FloorplanKind, SimConfig, Simulator, TraceCursor};
use powerbalance_bench::{DEFAULT_CYCLES, DEFAULT_SEED};
use powerbalance_uarch::{Core, CoreConfig};
use powerbalance_workloads::spec2000;
use serde::{json, Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;

/// Benchmarks measured by default: an integer benchmark (gzip), an FP
/// benchmark (mesa), and a memory-bound one (mcf) — one per major
/// behaviour class, keeping the run short while exercising the integer
/// issue path, the FP issue path, and the cache hierarchy.
const DEFAULT_BENCHMARKS: [&str; 3] = ["gzip", "mesa", "mcf"];

const ABOUT: &str = "\
throughput — simulated-cycles/second baseline for the hot loops

OPTIONS:
  --cycles <n>      simulated cycles per measurement        [1000000]
  --seed <n>        workload seed                           [42]
  --label <name>    label for this run in the artifact      [current]
  --out <path>      merge results into this JSON artifact   [BENCH_throughput.json]
  --benchmarks <a,b,c>
                    comma-separated benchmark list          [gzip,mesa,mcf]
  --repeat <n>      timed repetitions per point (best kept) [3]
  --batch           also measure batched lockstep campaign execution
  --widths <a,b,c>  batch widths to measure with --batch     [1,2,4,6]
  --help            show this help";

/// One measured (benchmark, mode) point.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct WorkloadThroughput {
    benchmark: String,
    /// `core_only` (bare `Core::cycle` loop) or `full_stack`
    /// (`Simulator::run`: power + thermal + mitigation sampling too).
    mode: String,
    /// Simulated cycles executed.
    cycles: u64,
    /// Committed micro-ops.
    committed_uops: u64,
    /// Best wall time over the repetitions, seconds.
    wall_seconds: f64,
    /// Simulated cycles per wall-clock second.
    sim_cycles_per_sec: f64,
    /// Committed micro-ops per wall-clock second.
    committed_uops_per_sec: f64,
    /// Lockstep siblings sharing this measurement (1 for the scalar
    /// modes and the `batch_k1` baseline).
    batch_width: u64,
    /// Wall-time ratio of `batch_width` sequential scalar runs of the
    /// same configs over this measurement (1.0 where batching is not in
    /// play).
    speedup_vs_scalar: f64,
}

/// All points measured under one label (one binary invocation).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LabelledRun {
    label: String,
    workloads: Vec<WorkloadThroughput>,
    /// Geometric-mean simulated-cycles/sec of the `core_only` points.
    geomean_core_only_cps: f64,
    /// Geometric-mean simulated-cycles/sec of the `full_stack` points.
    geomean_full_stack_cps: f64,
    /// Geometric mean across benchmarks of `speedup_vs_scalar` at the
    /// widest measured batch (0.0 when `--batch` was not requested).
    geomean_batch_speedup: f64,
}

/// Last-run-over-first-run throughput ratios.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Speedup {
    baseline_label: String,
    current_label: String,
    core_only: f64,
    full_stack: f64,
}

/// The on-disk artifact: an append-merge log of labelled runs.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThroughputArtifact {
    schema: String,
    cycles_per_run: u64,
    seed: u64,
    runs: Vec<LabelledRun>,
    speedup: Option<Speedup>,
}

struct Args {
    cycles: u64,
    seed: u64,
    label: String,
    out: PathBuf,
    benchmarks: Vec<String>,
    repeat: u32,
    batch: bool,
    widths: Vec<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cycles: DEFAULT_CYCLES,
        seed: DEFAULT_SEED,
        label: "current".to_string(),
        out: PathBuf::from("BENCH_throughput.json"),
        benchmarks: DEFAULT_BENCHMARKS.iter().map(|s| s.to_string()).collect(),
        repeat: 3,
        batch: false,
        widths: vec![1, 2, 4, 6],
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    let fail = |msg: &str| -> ! {
        eprintln!("error: {msg}\n\n{ABOUT}");
        std::process::exit(2);
    };
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().unwrap_or_else(|| fail(&format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--cycles" => {
                args.cycles =
                    value("--cycles").parse().unwrap_or_else(|e| fail(&format!("--cycles: {e}")));
            }
            "--seed" => {
                args.seed =
                    value("--seed").parse().unwrap_or_else(|e| fail(&format!("--seed: {e}")));
            }
            "--label" => args.label = value("--label"),
            "--out" => args.out = PathBuf::from(value("--out")),
            "--benchmarks" => {
                args.benchmarks =
                    value("--benchmarks").split(',').map(|s| s.trim().to_string()).collect();
            }
            "--repeat" => {
                args.repeat =
                    value("--repeat").parse().unwrap_or_else(|e| fail(&format!("--repeat: {e}")));
            }
            "--batch" => args.batch = true,
            "--widths" => {
                args.widths = value("--widths")
                    .split(',')
                    .map(|w| w.trim().parse().unwrap_or_else(|e| fail(&format!("--widths: {e}"))))
                    .collect();
            }
            "--help" | "-h" => {
                println!("{ABOUT}");
                std::process::exit(0);
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
    }
    if args.repeat == 0 {
        fail("--repeat must be at least 1");
    }
    if args.widths.is_empty() || args.widths.iter().any(|&w| w == 0 || w > PolicyKind::ALL.len()) {
        fail(&format!("--widths must be in 1..={}", PolicyKind::ALL.len()));
    }
    for name in &args.benchmarks {
        if spec2000::by_name(name).is_none() {
            fail(&format!("unknown benchmark '{name}'"));
        }
    }
    args
}

/// Runs the bare core loop for `cycles`; returns (cycles, committed, wall).
fn measure_core_only(benchmark: &str, seed: u64, cycles: u64) -> (u64, u64, f64) {
    let profile = spec2000::by_name(benchmark).expect("validated benchmark name");
    let mut core = Core::new(CoreConfig::default()).expect("default config is valid");
    let mut trace = profile.trace(seed);
    let start = Instant::now();
    let ran = core.run(&mut trace, cycles);
    let wall = start.elapsed().as_secs_f64();
    (ran, core.stats().committed, wall)
}

/// Runs the full stack for `cycles`; returns (cycles, committed, wall).
fn measure_full_stack(benchmark: &str, seed: u64, cycles: u64) -> (u64, u64, f64) {
    let profile = spec2000::by_name(benchmark).expect("validated benchmark name");
    let mut sim = Simulator::new(SimConfig::default()).expect("default config is valid");
    let mut trace = profile.trace(seed);
    let start = Instant::now();
    let result = sim.run(&mut trace, cycles);
    let wall = start.elapsed().as_secs_f64();
    (result.cycles, result.committed, wall)
}

/// Best-of-`repeat` measurement of one (benchmark, mode) point.
fn measure(
    benchmark: &str,
    mode: &str,
    args: &Args,
    run: fn(&str, u64, u64) -> (u64, u64, f64),
) -> WorkloadThroughput {
    let mut best: Option<(u64, u64, f64)> = None;
    for _ in 0..args.repeat {
        let (cycles, committed, wall) = run(benchmark, args.seed, args.cycles);
        if best.is_none_or(|(_, _, w)| wall < w) {
            best = Some((cycles, committed, wall));
        }
    }
    let (cycles, committed, wall) = best.expect("repeat >= 1");
    WorkloadThroughput {
        benchmark: benchmark.to_string(),
        mode: mode.to_string(),
        cycles,
        committed_uops: committed,
        wall_seconds: wall,
        sim_cycles_per_sec: cycles as f64 / wall,
        committed_uops_per_sec: committed as f64 / wall,
        batch_width: 1,
        speedup_vs_scalar: 1.0,
    }
}

/// The sibling configs a batched campaign steps in lockstep: every
/// mitigation family on the issue-constrained floorplan. Same benchmark,
/// seed, and floorplan — they differ only in mitigation, which is exactly
/// the batch-eligibility rule `plan_units` applies in the harness.
fn batch_configs() -> Vec<SimConfig> {
    PolicyKind::ALL
        .iter()
        .map(|kind| experiments::policy(*kind, FloorplanKind::IssueConstrained))
        .collect()
}

/// One scalar `Simulator::run` of `config`; returns (cycles, committed, wall).
fn scalar_run(benchmark: &str, seed: u64, cycles: u64, config: &SimConfig) -> (u64, u64, f64) {
    let profile = spec2000::by_name(benchmark).expect("validated benchmark name");
    let mut sim = Simulator::new(config.clone()).expect("policy configs are valid");
    let mut trace = profile.trace(seed);
    let start = Instant::now();
    let result = sim.run(&mut trace, cycles);
    let wall = start.elapsed().as_secs_f64();
    (result.cycles, result.committed, wall)
}

/// One lockstep `BatchSimulator` run over `configs`; returns the summed
/// (cycles, committed) across siblings and the wall time of the batch.
fn batch_run(benchmark: &str, seed: u64, cycles: u64, configs: &[SimConfig]) -> (u64, u64, f64) {
    let profile = spec2000::by_name(benchmark).expect("validated benchmark name");
    let trace = TraceCursor::new(profile.trace(seed));
    let mut batch =
        BatchSimulator::new(configs.to_vec(), trace).expect("policy configs are batch-compatible");
    let start = Instant::now();
    let results = batch.run(cycles);
    let wall = start.elapsed().as_secs_f64();
    let total_cycles: u64 = results.iter().map(|r| r.cycles).sum();
    let total_committed: u64 = results.iter().map(|r| r.committed).sum();
    (total_cycles, total_committed, wall)
}

/// Measures batched lockstep execution on one benchmark at every requested
/// width. The scalar reference for width K is the summed best-of-repeat
/// wall time of the first K sibling configs run sequentially — i.e. what a
/// campaign without batching pays for the same jobs.
fn measure_batch(benchmark: &str, args: &Args) -> Vec<WorkloadThroughput> {
    let configs = batch_configs();
    let max_width = args.widths.iter().copied().max().expect("widths validated non-empty");

    // Per-config scalar walls (and totals), best of `repeat` each.
    let mut scalar: Vec<(u64, u64, f64)> = Vec::new();
    for config in &configs[..max_width] {
        let mut best: Option<(u64, u64, f64)> = None;
        for _ in 0..args.repeat {
            let point = scalar_run(benchmark, args.seed, args.cycles, config);
            if best.is_none_or(|(_, _, w)| point.2 < w) {
                best = Some(point);
            }
        }
        scalar.push(best.expect("repeat >= 1"));
    }

    let mut points = Vec::new();
    for &width in &args.widths {
        let scalar_wall: f64 = scalar[..width].iter().map(|s| s.2).sum();
        let (cycles, committed, wall) = if width == 1 {
            // Width 1 is the scalar baseline itself: the harness routes
            // singleton units through the scalar path verbatim.
            scalar[0]
        } else {
            let mut best: Option<(u64, u64, f64)> = None;
            for _ in 0..args.repeat {
                let point = batch_run(benchmark, args.seed, args.cycles, &configs[..width]);
                if best.is_none_or(|(_, _, w)| point.2 < w) {
                    best = Some(point);
                }
            }
            best.expect("repeat >= 1")
        };
        let point = WorkloadThroughput {
            benchmark: benchmark.to_string(),
            mode: format!("batch_k{width}"),
            cycles,
            committed_uops: committed,
            wall_seconds: wall,
            sim_cycles_per_sec: cycles as f64 / wall,
            committed_uops_per_sec: committed as f64 / wall,
            batch_width: width as u64,
            speedup_vs_scalar: scalar_wall / wall,
        };
        eprintln!(
            "  {benchmark:>9} batch_k{width}:   {:>7.2} Mcycles/s ({:.3}s, {:.2}x vs scalar)",
            point.sim_cycles_per_sec / 1e6,
            point.wall_seconds,
            point.speedup_vs_scalar
        );
        points.push(point);
    }
    points
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

fn geomean_for(workloads: &[WorkloadThroughput], mode: &str) -> f64 {
    geomean(workloads.iter().filter(|w| w.mode == mode).map(|w| w.sim_cycles_per_sec))
}

fn main() {
    let args = parse_args();
    eprintln!(
        "measuring {} cycles x {} benchmarks x 2 modes (best of {})...",
        args.cycles,
        args.benchmarks.len(),
        args.repeat
    );

    let mut workloads = Vec::new();
    for benchmark in &args.benchmarks {
        let core = measure(benchmark, "core_only", &args, measure_core_only);
        eprintln!(
            "  {benchmark:>9} core_only:  {:>7.2} Mcycles/s ({:.3}s)",
            core.sim_cycles_per_sec / 1e6,
            core.wall_seconds
        );
        workloads.push(core);
        let full = measure(benchmark, "full_stack", &args, measure_full_stack);
        eprintln!(
            "  {benchmark:>9} full_stack: {:>7.2} Mcycles/s ({:.3}s)",
            full.sim_cycles_per_sec / 1e6,
            full.wall_seconds
        );
        workloads.push(full);
        if args.batch {
            workloads.extend(measure_batch(benchmark, &args));
        }
    }

    let widest = format!("batch_k{}", args.widths.iter().copied().max().unwrap_or(1));
    let geomean_batch_speedup = if args.batch {
        geomean(workloads.iter().filter(|w| w.mode == widest).map(|w| w.speedup_vs_scalar))
    } else {
        0.0
    };
    let run = LabelledRun {
        label: args.label.clone(),
        geomean_core_only_cps: geomean_for(&workloads, "core_only"),
        geomean_full_stack_cps: geomean_for(&workloads, "full_stack"),
        geomean_batch_speedup,
        workloads,
    };
    eprintln!(
        "geomean: core_only {:.2} Mcycles/s, full_stack {:.2} Mcycles/s",
        run.geomean_core_only_cps / 1e6,
        run.geomean_full_stack_cps / 1e6
    );
    if args.batch {
        eprintln!("geomean batch speedup at {widest}: {:.2}x vs scalar", run.geomean_batch_speedup);
    }

    // Merge into the existing artifact, replacing any run with this label.
    let mut artifact = std::fs::read_to_string(&args.out)
        .ok()
        .and_then(|text| json::from_str::<ThroughputArtifact>(&text).ok())
        .unwrap_or_else(|| ThroughputArtifact {
            schema: "powerbalance-throughput/v1".to_string(),
            cycles_per_run: args.cycles,
            seed: args.seed,
            runs: Vec::new(),
            speedup: None,
        });
    artifact.runs.retain(|r| r.label != run.label);
    artifact.runs.push(run);
    artifact.speedup = match (artifact.runs.first(), artifact.runs.last()) {
        (Some(first), Some(last)) if artifact.runs.len() >= 2 => Some(Speedup {
            baseline_label: first.label.clone(),
            current_label: last.label.clone(),
            core_only: last.geomean_core_only_cps / first.geomean_core_only_cps,
            full_stack: last.geomean_full_stack_cps / first.geomean_full_stack_cps,
        }),
        _ => None,
    };
    if let Some(s) = &artifact.speedup {
        eprintln!(
            "speedup {} -> {}: core_only {:.2}x, full_stack {:.2}x",
            s.baseline_label, s.current_label, s.core_only, s.full_stack
        );
    }

    if let Err(e) = std::fs::write(&args.out, json::to_string_pretty(&artifact)) {
        eprintln!("error: writing {}: {e}", args.out.display());
        std::process::exit(1);
    }
    eprintln!("wrote {}", args.out.display());
}

//! Table 4: average temperature of the issue-queue halves (tail and head)
//! for `art`, `facerec`, and `mesa` with activity toggling vs. base.
//!
//! Paper reference points: toggling equalizes the two halves for all three
//! benchmarks; in the base configuration the tail half runs 0.8–1.4 K
//! hotter; `art` never overheats, `facerec` overheats regardless of
//! balance, and `mesa` benefits.
//!
//! In the base (normal) head/tail configuration the head is the bottom half
//! (`IntQ0`/`FPQ0`) and the tail is the top half (`IntQ1`/`FPQ1`); the
//! rows below follow the paper's Tail/Head orientation. The integer-queue
//! columns match the paper's table; the FP-queue columns are supplementary
//! (for FP benchmarks the FP queue is the hot one in this reproduction).

use powerbalance::experiments;
use powerbalance_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse_or_exit(
        "table4 — average temperature of the issue-queue halves (Table 4)",
    );
    // The paper's three rows plus eon/perlbmk, the benchmarks whose integer
    // queue carries the clearest tail/head asymmetry in this reproduction.
    let spec = args
        .spec("table4")
        .config("activity-toggling", experiments::issue_queue(true))
        .config("base", experiments::issue_queue(false))
        .benchmarks(["art", "facerec", "mesa", "eon", "perlbmk"]);
    let result = args.run(&spec);

    println!("Table 4: average temp. of issue-queue halves (K)");
    println!(
        "{:<10} {:<18} {:>9} {:>9} {:>9} {:>9} {:>7}",
        "bench", "technique", "IntTail", "IntHead", "FPTail", "FPHead", "IPC"
    );
    for (bench, results) in result.rows() {
        for (named, r) in result.spec.configs.iter().zip(results) {
            println!(
                "{:<10} {:<18} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>7.2}",
                bench,
                named.name,
                r.avg_temp("IntQ1").expect("block exists"),
                r.avg_temp("IntQ0").expect("block exists"),
                r.avg_temp("FPQ1").expect("block exists"),
                r.avg_temp("FPQ0").expect("block exists"),
                r.ipc,
            );
        }
    }
    args.finish(&[&result]);
}

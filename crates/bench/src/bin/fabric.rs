//! Distributed-fabric benchmark: 1-vs-2-worker wall clock on the policy
//! sweep, plus a bit-identity check against a plain local run.
//!
//! Starts an in-process coordinator (`powerbalance serve` internals on an
//! ephemeral port), then runs the ablation-5-style policy sweep — `eon`
//! under every [`PolicyKind`] — three ways: locally with the ordinary
//! campaign runner, distributed over 1 worker node, and distributed over
//! 2 worker nodes. Asserts every distributed result merges bit-identically
//! (`same_outcome`) to the local reference, and reports wall-clock per
//! mode. CI uploads the JSON (`--json BENCH_fabric_ci.json`) as a
//! non-gating artifact; the EXPERIMENTS.md scaling table comes from the
//! same binary.

use powerbalance::experiments::{self, PolicyKind};
use powerbalance::FloorplanKind;
use powerbalance_harness::{run_campaign, CampaignResult, CampaignSpec, RunnerOptions};
use powerbalance_server::client::Client;
use powerbalance_server::service::ServiceConfig;
use powerbalance_server::worker::{WorkerHandle, WorkerNode, WorkerOptions};
use powerbalance_server::{Server, ServerConfig};
use serde::Serialize;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const USAGE: &str = "\
fabric — 1-vs-2-worker scaling benchmark for the campaign fabric

USAGE: fabric [OPTIONS]

OPTIONS:
  --cycles <n>   simulated cycles per job            [40000]
  --json <path>  write the summary as JSON
  --help         show this help";

#[derive(Debug, Serialize)]
struct ModeReport {
    workers: usize,
    wall_secs: f64,
    bit_identical_to_local: bool,
}

#[derive(Debug, Serialize)]
struct Summary {
    benchmarks: usize,
    configs: usize,
    cycles_per_job: u64,
    local_wall_secs: f64,
    modes: Vec<ModeReport>,
    speedup_2_over_1: f64,
}

/// Benchmarks the sweep fans out over. One benchmark's six policy
/// configs form a single batch group — and therefore a single shard,
/// because the planner never splits a batch-eligible group — so the
/// distributable unit count equals the benchmark count.
const BENCHMARKS: [&str; 4] = ["eon", "gzip", "mesa", "perlbmk"];

/// The ablation-5 policy sweep fanned out over [`BENCHMARKS`]: one
/// config per mitigation policy, six sibling jobs per benchmark sharing
/// a lockstep batch and a warmup. Four shards total.
fn sweep_spec(cycles: u64) -> CampaignSpec {
    let mut spec = CampaignSpec::new("fabric-policy-sweep").cycles(cycles).seed(7);
    for kind in PolicyKind::ALL {
        spec = spec.config(kind.name(), experiments::policy(kind, FloorplanKind::Baseline));
    }
    for bench in BENCHMARKS {
        spec = spec.benchmark(bench);
    }
    spec
}

fn start_workers(addr: SocketAddr, count: usize) -> Vec<WorkerHandle> {
    (0..count)
        .map(|i| {
            let mut options = WorkerOptions::new(addr);
            options.name = format!("bench-worker-{i}");
            options.poll_wait = Duration::from_secs(2);
            options.heartbeat_interval = Duration::from_millis(250);
            WorkerNode::start(options)
        })
        .collect()
}

/// Submits the sweep and long-polls the result; returns it with the
/// submit-to-result wall clock.
fn run_distributed(client: &mut Client, spec: &CampaignSpec) -> (CampaignResult, f64) {
    let body = serde::json::to_string(spec);
    let start = Instant::now();
    let response = client
        .request("POST", "/v1/campaigns", Some(&body))
        .expect("coordinator accepts the submission");
    assert_eq!(response.status, 202, "submit failed: {}", response.text());
    let text = response.text();
    let id: u64 = text
        .split("\"id\":")
        .nth(1)
        .and_then(|rest| rest.split(|c: char| !c.is_ascii_digit()).next())
        .and_then(|digits| digits.parse().ok())
        .expect("submit response carries an id");

    let path = format!("/v1/campaigns/{id}/result?wait=10");
    loop {
        let response = client.request("GET", &path, None).expect("result poll succeeds");
        match response.status {
            200 => {
                let wall = start.elapsed().as_secs_f64();
                let result: CampaignResult = serde::json::from_str(&response.text())
                    .expect("result body is a CampaignResult");
                return (result, wall);
            }
            409 => continue, // long-poll window lapsed; re-arm
            other => panic!("result poll got status {other}: {}", response.text()),
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut cycles = 40_000u64;
    let mut json: Option<std::path::PathBuf> = None;
    let mut it = raw.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cycles" => {
                cycles = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--cycles requires an integer"))
            }
            "--json" => {
                json = Some(std::path::PathBuf::from(
                    it.next().unwrap_or_else(|| panic!("--json requires a path")),
                ))
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown flag '{other}'\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    let spec = sweep_spec(cycles);

    // Local reference: the ordinary in-process campaign runner.
    let options = RunnerOptions { progress: false, ..RunnerOptions::default() };
    let local_start = Instant::now();
    let local = run_campaign(&spec, &options).expect("local reference run succeeds");
    let local_wall = local_start.elapsed().as_secs_f64();
    eprintln!("local reference: {} jobs in {local_wall:.2}s", local.jobs.len());

    let handle = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        service: ServiceConfig { workers: 1, ..ServiceConfig::default() },
        ..ServerConfig::default()
    })
    .expect("coordinator binds an ephemeral port");
    let addr = handle.addr();
    let mut client = Client::new(addr, Duration::from_secs(30));

    let mut modes = Vec::new();
    for count in [1usize, 2] {
        let workers = start_workers(addr, count);
        // Submitting before registration completes would fall back to a
        // local run; wait until every worker has a fresh heartbeat.
        let armed = Instant::now();
        while handle.service().coordinator().stats().workers_alive < count as u64 {
            assert!(armed.elapsed() < Duration::from_secs(30), "workers never registered");
            std::thread::sleep(Duration::from_millis(10));
        }
        let (result, wall) = run_distributed(&mut client, &spec);
        for worker in workers {
            worker.stop();
        }
        let identical = result.same_outcome(&local);
        eprintln!("{count} worker(s): {wall:.2}s, bit-identical to local: {identical}",);
        assert!(identical, "distributed result diverged from the local reference");
        modes.push(ModeReport {
            workers: count,
            wall_secs: wall,
            bit_identical_to_local: identical,
        });
    }
    handle.shutdown();

    let speedup = modes[0].wall_secs / modes[1].wall_secs.max(f64::EPSILON);
    let summary = Summary {
        benchmarks: BENCHMARKS.len(),
        configs: spec.configs.len(),
        cycles_per_job: cycles,
        local_wall_secs: local_wall,
        modes,
        speedup_2_over_1: speedup,
    };
    println!(
        "policy sweep ({} benchmarks x {} configs x {} cycles): local {:.2}s, 1 worker {:.2}s, \
         2 workers {:.2}s (speedup {:.2}x)",
        summary.benchmarks,
        summary.configs,
        cycles,
        summary.local_wall_secs,
        summary.modes[0].wall_secs,
        summary.modes[1].wall_secs,
        summary.speedup_2_over_1,
    );

    if let Some(path) = json {
        let text = serde::json::to_string_pretty(&summary);
        std::fs::write(&path, text).expect("summary is writable");
        eprintln!("wrote {}", path.display());
    }
}

//! Figure 8: IPC of the register-file-constrained CPU for the four
//! mapping × turnoff combinations, for all 22 benchmarks.
//!
//! Paper reference points: without fine-grain turnoff, balanced mapping
//! beats priority mapping (+9% all / +14% constrained); with fine-grain
//! turnoff, priority mapping is best overall (+17%/+30% over priority-only,
//! +7%/+14% over balanced-only, +1.8%/+3.1% over turnoff+balanced).

use powerbalance::{experiments, MappingPolicy};
use powerbalance_bench::{row, BenchArgs};
use powerbalance_harness::speedup::mean_speedup_pct;

fn main() {
    let args = BenchArgs::parse_or_exit(
        "fig8 — register-file-constrained IPC for mapping x turnoff combinations (Figure 8)",
    );
    let spec = args
        .spec("fig8")
        .config("priority", experiments::regfile(MappingPolicy::Priority, false))
        .config("balanced", experiments::regfile(MappingPolicy::Balanced, false))
        .config("fg+priority", experiments::regfile(MappingPolicy::Priority, true))
        .config("fg+balanced", experiments::regfile(MappingPolicy::Balanced, true))
        .all_benchmarks();
    let result = args.run(&spec);

    println!("Figure 8: register-file-constrained IPC");
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "bench", "prio", "bal", "fg+prio", "fg+bal", "turnoffs"
    );
    let mut over_prio = Vec::new();
    let mut over_bal = Vec::new();
    let mut over_fgbal = Vec::new();
    let mut bal_over_prio = Vec::new();
    let mut constrained_fg = Vec::new();
    let constrained: Vec<&str> =
        result.constrained_subset(0).into_iter().map(|(name, _)| name).collect();
    for (name, results) in result.rows() {
        let (p, b, fp, fb) = (results[0], results[1], results[2], results[3]);
        println!("{} {:>9}", row(name, &[p.ipc, b.ipc, fp.ipc, fb.ipc], 8, 2), fp.rf_turnoffs);
        over_prio.push((p.ipc, fp.ipc));
        over_bal.push((b.ipc, fp.ipc));
        over_fgbal.push((fb.ipc, fp.ipc));
        bal_over_prio.push((p.ipc, b.ipc));
        if constrained.contains(&name) {
            constrained_fg.push((p.ipc, fp.ipc));
        }
    }
    println!();
    println!(
        "balanced-only over priority-only:      {:+.1}%  (paper: +9% all / +14% constrained)",
        mean_speedup_pct(&bal_over_prio)
    );
    println!(
        "fg+priority over priority-only (all):  {:+.1}%  (paper: +17%)",
        mean_speedup_pct(&over_prio)
    );
    println!(
        "fg+priority over priority-only (cons): {:+.1}%  (paper: +30%; subset: {constrained:?})",
        mean_speedup_pct(&constrained_fg),
    );
    println!(
        "fg+priority over balanced-only:        {:+.1}%  (paper: +7%)",
        mean_speedup_pct(&over_bal)
    );
    println!(
        "fg+priority over fg+balanced:          {:+.1}%  (paper: +1.8%)",
        mean_speedup_pct(&over_fgbal)
    );
    args.finish(&[&result]);
}

//! Table 5: average per-ALU temperatures and IPC for `parser` (not
//! ALU-constrained) and `perlbmk` (ALU-constrained), under round-robin,
//! fine-grain turnoff, and base scheduling.
//!
//! Paper reference points: `parser` shows identical IPC in all three
//! configurations but a 4 K+ spread between the hottest and coldest ALU
//! under static priority; `perlbmk` with fine-grain turnoff runs ALU0/ALU1
//! near the thermal limit while ALU4/ALU5 stay cool, and matches
//! round-robin's IPC while the base stalls.

use powerbalance::experiments::{self, AluPolicy};
use powerbalance_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse_or_exit(
        "table5 — average integer-ALU temperatures on the ALU-constrained CPU (Table 5)",
    );
    let spec = args
        .spec("table5")
        .config("round-robin (ideal)", experiments::alu(AluPolicy::RoundRobin))
        .config("fine-grain turnoff", experiments::alu(AluPolicy::FineGrainTurnoff))
        .config("base", experiments::alu(AluPolicy::Base))
        .benchmarks(["parser", "perlbmk"]);
    let result = args.run(&spec);

    println!("Table 5: average integer-ALU temperatures (K) on the ALU-constrained CPU");
    println!(
        "{:<10} {:<20} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "technique", "IPC", "ALU0", "ALU1", "ALU2", "ALU3", "ALU4", "ALU5"
    );
    for (bench, results) in result.rows() {
        for (named, r) in result.spec.configs.iter().zip(results) {
            let temps: Vec<f64> =
                (0..6).map(|i| r.avg_temp(&format!("IntExec{i}")).expect("block exists")).collect();
            println!(
                "{:<10} {:<20} {:>5.2} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
                bench,
                named.name,
                r.ipc,
                temps[0],
                temps[1],
                temps[2],
                temps[3],
                temps[4],
                temps[5]
            );
        }
    }
    args.finish(&[&result]);
}

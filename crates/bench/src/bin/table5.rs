//! Table 5: average per-ALU temperatures and IPC for `parser` (not
//! ALU-constrained) and `perlbmk` (ALU-constrained), under round-robin,
//! fine-grain turnoff, and base scheduling.
//!
//! Paper reference points: `parser` shows identical IPC in all three
//! configurations but a 4 K+ spread between the hottest and coldest ALU
//! under static priority; `perlbmk` with fine-grain turnoff runs ALU0/ALU1
//! near the thermal limit while ALU4/ALU5 stay cool, and matches
//! round-robin's IPC while the base stalls.

use powerbalance::experiments::{self, AluPolicy};
use powerbalance_bench::{run, DEFAULT_CYCLES};

fn main() {
    println!("Table 5: average integer-ALU temperatures (K) on the ALU-constrained CPU");
    println!(
        "{:<10} {:<20} {:>5} {:>7} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "technique", "IPC", "ALU0", "ALU1", "ALU2", "ALU3", "ALU4", "ALU5"
    );
    for bench in ["parser", "perlbmk"] {
        for (label, policy) in [
            ("round-robin (ideal)", AluPolicy::RoundRobin),
            ("fine-grain turnoff", AluPolicy::FineGrainTurnoff),
            ("base", AluPolicy::Base),
        ] {
            let r = run(experiments::alu(policy), bench, DEFAULT_CYCLES);
            let temps: Vec<f64> = (0..6)
                .map(|i| r.avg_temp(&format!("IntExec{i}")).expect("block exists"))
                .collect();
            println!(
                "{:<10} {:<20} {:>5.2} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}",
                bench, label, r.ipc, temps[0], temps[1], temps[2], temps[3], temps[4], temps[5]
            );
        }
    }
}

//! Ablations for the design choices called out in `DESIGN.md` §5/§6:
//!
//! 1. **Toggle proximity** — activity toggling only pays off near the
//!    thermal limit (the wrap-wire cost is pure overhead far from it).
//! 2. **Thermal time compression** — compressing the RC time constants must
//!    not move steady-state temperatures, only the transient time base.
//! 3. **Register-file staleness solutions** — the paper's solution 1
//!    (write-through with a guard band) vs. solution 2 (write gating plus a
//!    restore burst).
//! 4. **Completely-balanced mapping** — the reference wiring the paper
//!    rejects for its long wires; with fine-grain turnoff it degenerates to
//!    a whole-core stall because every ALU needs every copy.
//! 5. **Thermal-policy sweep** (paper §5 / DESIGN.md §12) — every policy
//!    family ({none, spatial, dvfs, fetch-gate, clock-throttle, combined})
//!    on each constrained floorplan, compared at one thermal budget.
//! 6. **Multi-core sweep** (DESIGN.md §15) — {1, 2, 4} cores × every
//!    scheduler × the paper's three balancing techniques at the 358 K
//!    design point, exposing hot-neighbor interference (die peak rises and
//!    per-core throughput falls as cores tile closer) and the scheduler
//!    deltas (coolest-first spreads heat; threshold defers admission).
//!
//! `--smoke` runs only the policy sweep, on a single floorplan with a
//! short cycle budget — the CI configuration.

use powerbalance::experiments::{self, AluPolicy, PolicyKind};
use powerbalance::{
    FloorplanKind, MappingPolicy, MultiCoreSimulator, SchedulerKind, SimConfig, Task, TaskSet,
};
use powerbalance_bench::BenchArgs;
use powerbalance_harness::CampaignResult;
use powerbalance_workloads::spec2000;

/// Thermal budget for the *smoke* policy sweep: the smoke run is too short
/// to approach the ~363 K free-running steady state, so the limit is pulled
/// below the transient peak to make every policy react within the window.
/// The full-length sweep keeps the default design point (358 K), where the
/// comparison is meaningful: the transient has died out and each policy
/// trades throughput against the same limit.
const SMOKE_MAX_TEMP: f64 = 340.0;

/// The CI smoke budget: enough cycles for several ladder periods and at
/// least one freeze/cooling cycle, small enough for a PR gate.
const SMOKE_CYCLES: u64 = 150_000;

fn main() {
    // `--smoke` is specific to this binary; strip it before the shared
    // front-end parses the rest.
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let mut args = match BenchArgs::parse_from(&argv) {
        Ok(parsed) => parsed,
        Err(msg) => {
            let help = msg == "help";
            if !help {
                eprintln!("error: {msg}\n");
            }
            eprintln!("ablation — design-choice ablations from DESIGN.md sections 5, 6, and 12");
            eprintln!(
                "\n  --smoke         policy sweep only: one floorplan, {SMOKE_CYCLES} cycles\n"
            );
            eprintln!("{}", powerbalance_bench::OPTIONS_HELP);
            std::process::exit(i32::from(!help) * 2);
        }
    };
    if smoke {
        args.cycles = args.cycles.min(SMOKE_CYCLES);
        let campaigns =
            policy_sweep(&args, &[FloorplanKind::IssueConstrained], Some(SMOKE_MAX_TEMP));
        args.finish(&campaigns.iter().collect::<Vec<_>>());
        return;
    }
    let mut campaigns = vec![
        toggle_proximity(&args),
        time_compression(&args),
        staleness_solutions(&args),
        completely_balanced(&args),
    ];
    campaigns.extend(policy_sweep(
        &args,
        &[
            FloorplanKind::IssueConstrained,
            FloorplanKind::AluConstrained,
            FloorplanKind::RegfileConstrained,
        ],
        None,
    ));
    multicore_sweep(&args);
    args.finish(&campaigns.iter().collect::<Vec<_>>());
}

/// Ablation 6: {1, 2, 4} cores × every scheduler × the paper's three
/// balancing techniques, each on that technique's constrained floorplan at
/// the default 358 K limit. The engine is driven directly (not through the
/// campaign harness) so the workload can be *segmented*: each job is split
/// into three bounded segments and the segments of all jobs interleave in
/// the queue, which is what gives the schedulers real decisions to make —
/// re-dispatch onto a hot vs. cool core, admission deferral, and job
/// migration with its fetch-stall penalty. Every cell runs with the
/// runtime checkers armed (per-core energy balance, cross-core energy
/// conservation, coupling antisymmetry); a violation fails the ablation.
fn multicore_sweep(args: &BenchArgs) {
    /// Micro-ops per segment: three segments per job keep each core busy
    /// for roughly half the 1 M-cycle budget at single-core IPC, leaving
    /// idle-cooling windows in which admission decisions differ.
    const SEGMENT_OPS: u64 = 150_000;
    const SEGMENTS_PER_JOB: u64 = 3;

    let profile = spec2000::by_name("eon").expect("eon is a known benchmark");
    let techniques: [(&str, SimConfig); 3] = [
        ("iq-toggling", experiments::issue_queue(true)),
        ("alu-turnoff", experiments::alu(AluPolicy::FineGrainTurnoff)),
        ("rf-turnoff", experiments::regfile(MappingPolicy::Priority, true)),
    ];

    for (slug, base) in techniques {
        println!("Ablation 6: multi-core sweep ({slug}, eon segments, limit 358 K)");
        println!(
            "{:<22} {:>9} {:>8} {:>6} {:>8} {:>9} {:>5} {:>5}",
            "die", "committed", "IPC/core", "done", "peak K", "stallcyc", "migr", "check"
        );
        for cores in [1usize, 2, 4] {
            for scheduler in SchedulerKind::ALL {
                let cfg = SimConfig { cores, scheduler, ..base.clone() };
                let mut sim = MultiCoreSimulator::new(cfg).expect("sweep configs are valid");
                sim.enable_checking().expect("checker arms on a fresh engine");
                // `cores` jobs, each split into bounded segments; queue
                // order interleaves jobs so a job's later segments arrive
                // while other cores are busy or hot. Each segment draws its
                // own trace stream.
                let mut tasks = TaskSet::new(
                    (0..SEGMENTS_PER_JOB).flat_map(|s| (0..cores as u64).map(move |j| (s, j))).map(
                        |(s, j)| {
                            let stream = args.seed.wrapping_add(j * 16 + s);
                            Task::ops(j, SEGMENT_OPS, profile.trace(stream))
                        },
                    ),
                );
                let result = sim.run(&mut tasks, args.cycles);
                let violations = sim.finish_checking();

                let merged = result.merged();
                println!(
                    "{:<22} {:>9} {:>8.2} {:>3}/{:<2} {:>8.2} {:>9} {:>5} {:>5}",
                    format!("{cores}core+{}", scheduler.name()),
                    merged.committed,
                    merged.ipc / cores as f64,
                    result.tasks_completed,
                    cores as u64 * SEGMENTS_PER_JOB,
                    result.die_peak(),
                    merged.frozen_cycles + merged.throttled_cycles,
                    result.migrations,
                    if violations.is_empty() { "clean" } else { "FAIL" },
                );
                assert!(
                    violations.is_empty(),
                    "invariant violations on {cores}-core {}: {violations:?}",
                    scheduler.name()
                );
            }
        }
        println!();
    }
    println!("(per-core throughput falls and die peak rises with core count — the");
    println!(" lateral-coupling interference a single-core model cannot express;");
    println!(" threshold defers admission onto hot cores, trading committed work");
    println!(" for peak temperature, and placement differences show as migrations)");
}

/// Ablation 5: one campaign per floorplan, sweeping every policy family.
/// Every policy in a campaign shares the same thermal limit (`max_temp`, or
/// the default design point when `None`), so throughput is compared at
/// equal peak temperature.
fn policy_sweep(
    args: &BenchArgs,
    floorplans: &[FloorplanKind],
    max_temp: Option<f64>,
) -> Vec<CampaignResult> {
    let slug = |plan: FloorplanKind| match plan {
        FloorplanKind::Baseline => "baseline",
        FloorplanKind::IssueConstrained => "issue",
        FloorplanKind::AluConstrained => "alu",
        FloorplanKind::RegfileConstrained => "regfile",
    };
    let mut results = Vec::new();
    for &plan in floorplans {
        let mut spec = args.spec(&format!("ablation-policy-{}", slug(plan))).benchmark("eon");
        let mut limit = 0.0;
        for kind in PolicyKind::ALL {
            let mut cfg = experiments::policy(kind, plan);
            if let Some(t) = max_temp {
                cfg.mitigation = cfg.mitigation.with_max_temp(t);
            }
            limit = cfg.mitigation.thresholds.max_temp;
            spec = spec.config(kind.name(), cfg);
        }
        let result = args.run(&spec);

        println!(
            "Ablation 5: thermal-policy sweep (eon, {}-constrained, limit {limit} K)",
            slug(plan)
        );
        println!(
            "{:<15} {:>6} {:>8} {:>8} {:>9} {:>9} {:>8}",
            "policy", "IPC", "peak K", "stalls", "stallcyc", "gatedcyc", "shifts"
        );
        for job in &result.jobs {
            let r = &job.result;
            println!(
                "{:<15} {:>6.2} {:>8.2} {:>8} {:>9} {:>9} {:>8}",
                job.config,
                r.ipc,
                r.peak_temp(),
                r.freezes,
                r.frozen_cycles + r.throttled_cycles,
                r.fetch_gated_cycles,
                r.opp_transitions + r.duty_shifts,
            );
        }
        println!();
        results.push(result);
    }
    results
}

fn toggle_proximity(args: &BenchArgs) -> CampaignResult {
    let mut spec = args.spec("ablation-toggle-proximity").benchmark("eon");
    for proximity in [1.0, 2.0, 4.0, 8.0, 20.0] {
        let mut cfg = experiments::issue_queue(true);
        cfg.mitigation.thresholds.toggle_proximity = proximity;
        spec = spec.config(format!("{proximity} K"), cfg);
    }
    let result = args.run(&spec);

    println!("Ablation 1: toggle proximity window (eon, IQ-constrained)");
    println!("{:<12} {:>6} {:>9} {:>9}", "proximity K", "IPC", "toggles", "stalls");
    for job in &result.jobs {
        let r = &job.result;
        println!("{:<12} {:>6.2} {:>9} {:>9}", job.config, r.ipc, r.toggles, r.freezes);
    }
    println!();
    result
}

fn time_compression(args: &BenchArgs) -> CampaignResult {
    let mut spec = args.spec("ablation-time-compression").benchmark("eon");
    for k in [100.0, 400.0, 1600.0] {
        let mut cfg = experiments::issue_queue(false);
        cfg.package.time_compression = k;
        cfg.mitigation.thresholds.max_temp = 10_000.0; // observe steady state
                                                       // Scale run length inversely with compression so every run covers
                                                       // the same number of thermal time constants.
        let cycles = (800_000.0 * 400.0 / k) as u64;
        spec = spec.config_with_cycles(format!("{k}x"), cfg, cycles);
    }
    let result = args.run(&spec);

    println!("Ablation 2: thermal time compression (eon, base, no stalls)");
    println!("{:<12} {:>10} {:>10}", "compression", "IntQ1 (K)", "hottest");
    for job in &result.jobs {
        let r = &job.result;
        let hottest = r
            .temperatures
            .iter()
            .max_by(|a, b| a.last.partial_cmp(&b.last).expect("temps are finite"))
            .expect("runs record temperatures");
        println!(
            "{:<12} {:>10.2} {:>10}",
            job.config,
            r.last_temp("IntQ1").expect("block exists"),
            hottest.name
        );
    }
    println!("(steady-state temperature must be independent of compression)");
    println!();
    result
}

fn staleness_solutions(args: &BenchArgs) -> CampaignResult {
    let mut spec = args.spec("ablation-rf-staleness").benchmark("eon");
    for (label, stale) in
        [("1: guard band, writes continue", false), ("2: gate writes, restore burst", true)]
    {
        let mut cfg = experiments::regfile(MappingPolicy::Priority, true);
        cfg.mitigation.rf_stale_copy = stale;
        spec = spec.config(label, cfg);
    }
    let result = args.run(&spec);

    println!("Ablation 3: register-file staleness solutions (eon, RF-constrained)");
    println!("{:<34} {:>6} {:>9} {:>8}", "solution", "IPC", "turnoffs", "stalls");
    for job in &result.jobs {
        let r = &job.result;
        println!("{:<34} {:>6.2} {:>9} {:>8}", job.config, r.ipc, r.rf_turnoffs, r.freezes);
    }
    println!();
    result
}

fn completely_balanced(args: &BenchArgs) -> CampaignResult {
    let spec = args
        .spec("ablation-completely-balanced")
        .config(
            "priority + fine-grain turnoff",
            experiments::regfile(MappingPolicy::Priority, true),
        )
        .config(
            "completely balanced (no turnoff)",
            experiments::regfile(MappingPolicy::CompletelyBalanced, false),
        )
        .config(
            "completely balanced + turnoff",
            experiments::regfile(MappingPolicy::CompletelyBalanced, true),
        )
        .benchmark("eon");
    let result = args.run(&spec);

    println!("Ablation 4: completely-balanced mapping (eon, RF-constrained)");
    println!("{:<34} {:>6} {:>9} {:>8}", "wiring", "IPC", "turnoffs", "stalls");
    for job in &result.jobs {
        let r = &job.result;
        println!("{:<34} {:>6.2} {:>9} {:>8}", job.config, r.ipc, r.rf_turnoffs, r.freezes);
    }
    println!("(with completely-balanced wiring, turning off either copy idles every ALU;");
    println!(" the paper rejects this wiring for its cross-datapath wire delay, which a");
    println!(" cycle-level model does not penalize — hence its flattering IPC here)");
    result
}

//! Ablations for the design choices called out in `DESIGN.md` §5/§6:
//!
//! 1. **Toggle proximity** — activity toggling only pays off near the
//!    thermal limit (the wrap-wire cost is pure overhead far from it).
//! 2. **Thermal time compression** — compressing the RC time constants must
//!    not move steady-state temperatures, only the transient time base.
//! 3. **Register-file staleness solutions** — the paper's solution 1
//!    (write-through with a guard band) vs. solution 2 (write gating plus a
//!    restore burst).
//! 4. **Completely-balanced mapping** — the reference wiring the paper
//!    rejects for its long wires; with fine-grain turnoff it degenerates to
//!    a whole-core stall because every ALU needs every copy.

use powerbalance::{experiments, MappingPolicy, SimConfig, Simulator};
use powerbalance_bench::{run, DEFAULT_CYCLES};
use powerbalance_workloads::spec2000;

fn main() {
    toggle_proximity();
    time_compression();
    staleness_solutions();
    completely_balanced();
}

fn toggle_proximity() {
    println!("Ablation 1: toggle proximity window (eon, IQ-constrained)");
    println!("{:<12} {:>6} {:>9} {:>9}", "proximity K", "IPC", "toggles", "stalls");
    for proximity in [1.0, 2.0, 4.0, 8.0, 20.0] {
        let mut cfg = experiments::issue_queue(true);
        cfg.mitigation.thresholds.toggle_proximity = proximity;
        let r = run(cfg, "eon", DEFAULT_CYCLES);
        println!("{:<12} {:>6.2} {:>9} {:>9}", proximity, r.ipc, r.toggles, r.freezes);
    }
    println!();
}

fn time_compression() {
    println!("Ablation 2: thermal time compression (eon, base, no stalls)");
    println!(
        "{:<12} {:>10} {:>10}",
        "compression", "IntQ1 (K)", "hottest"
    );
    for k in [100.0, 400.0, 1600.0] {
        let mut cfg = experiments::issue_queue(false);
        cfg.package.time_compression = k;
        cfg.mitigation.thresholds.max_temp = 10_000.0; // observe steady state
        let mut sim = Simulator::new(cfg).expect("valid config");
        let mut trace = spec2000::by_name("eon").expect("profile").trace(42);
        // Scale run length inversely with compression so every run covers
        // the same number of thermal time constants.
        let cycles = (800_000.0 * 400.0 / k) as u64;
        let _ = sim.run(&mut trace, cycles);
        let plan = sim.floorplan();
        let q1 = sim.thermal().temperature(plan.index_of("IntQ1").expect("block"));
        let hottest = plan.blocks()[sim.thermal().hottest_block()].name.clone();
        println!("{:<12} {:>10.2} {:>10}", k, q1, hottest);
    }
    println!("(steady-state temperature must be independent of compression)");
    println!();
}

fn staleness_solutions() {
    println!("Ablation 3: register-file staleness solutions (eon, RF-constrained)");
    println!("{:<34} {:>6} {:>9} {:>8}", "solution", "IPC", "turnoffs", "stalls");
    for (label, stale) in [
        ("1: guard band, writes continue", false),
        ("2: gate writes, restore burst", true),
    ] {
        let mut cfg = experiments::regfile(MappingPolicy::Priority, true);
        cfg.mitigation.rf_stale_copy = stale;
        let r = run(cfg, "eon", DEFAULT_CYCLES);
        println!("{:<34} {:>6.2} {:>9} {:>8}", label, r.ipc, r.rf_turnoffs, r.freezes);
    }
    println!();
}

fn completely_balanced() {
    println!("Ablation 4: completely-balanced mapping (eon, RF-constrained)");
    println!("{:<34} {:>6} {:>9} {:>8}", "wiring", "IPC", "turnoffs", "stalls");
    let rows: [(&str, SimConfig); 3] = [
        (
            "priority + fine-grain turnoff",
            experiments::regfile(MappingPolicy::Priority, true),
        ),
        (
            "completely balanced (no turnoff)",
            experiments::regfile(MappingPolicy::CompletelyBalanced, false),
        ),
        (
            "completely balanced + turnoff",
            experiments::regfile(MappingPolicy::CompletelyBalanced, true),
        ),
    ];
    for (label, cfg) in rows {
        let r = run(cfg, "eon", DEFAULT_CYCLES);
        println!("{:<34} {:>6.2} {:>9} {:>8}", label, r.ipc, r.rf_turnoffs, r.freezes);
    }
    println!("(with completely-balanced wiring, turning off either copy idles every ALU;");
    println!(" the paper rejects this wiring for its cross-datapath wire delay, which a");
    println!(" cycle-level model does not penalize — hence its flattering IPC here)");
}

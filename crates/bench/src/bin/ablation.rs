//! Ablations for the design choices called out in `DESIGN.md` §5/§6:
//!
//! 1. **Toggle proximity** — activity toggling only pays off near the
//!    thermal limit (the wrap-wire cost is pure overhead far from it).
//! 2. **Thermal time compression** — compressing the RC time constants must
//!    not move steady-state temperatures, only the transient time base.
//! 3. **Register-file staleness solutions** — the paper's solution 1
//!    (write-through with a guard band) vs. solution 2 (write gating plus a
//!    restore burst).
//! 4. **Completely-balanced mapping** — the reference wiring the paper
//!    rejects for its long wires; with fine-grain turnoff it degenerates to
//!    a whole-core stall because every ALU needs every copy.

use powerbalance::{experiments, MappingPolicy};
use powerbalance_bench::BenchArgs;
use powerbalance_harness::CampaignResult;

fn main() {
    let args = BenchArgs::parse_or_exit(
        "ablation — design-choice ablations from DESIGN.md sections 5 and 6",
    );
    let campaigns = [
        toggle_proximity(&args),
        time_compression(&args),
        staleness_solutions(&args),
        completely_balanced(&args),
    ];
    args.finish(&campaigns.iter().collect::<Vec<_>>());
}

fn toggle_proximity(args: &BenchArgs) -> CampaignResult {
    let mut spec = args.spec("ablation-toggle-proximity").benchmark("eon");
    for proximity in [1.0, 2.0, 4.0, 8.0, 20.0] {
        let mut cfg = experiments::issue_queue(true);
        cfg.mitigation.thresholds.toggle_proximity = proximity;
        spec = spec.config(format!("{proximity} K"), cfg);
    }
    let result = args.run(&spec);

    println!("Ablation 1: toggle proximity window (eon, IQ-constrained)");
    println!("{:<12} {:>6} {:>9} {:>9}", "proximity K", "IPC", "toggles", "stalls");
    for job in &result.jobs {
        let r = &job.result;
        println!("{:<12} {:>6.2} {:>9} {:>9}", job.config, r.ipc, r.toggles, r.freezes);
    }
    println!();
    result
}

fn time_compression(args: &BenchArgs) -> CampaignResult {
    let mut spec = args.spec("ablation-time-compression").benchmark("eon");
    for k in [100.0, 400.0, 1600.0] {
        let mut cfg = experiments::issue_queue(false);
        cfg.package.time_compression = k;
        cfg.mitigation.thresholds.max_temp = 10_000.0; // observe steady state
                                                       // Scale run length inversely with compression so every run covers
                                                       // the same number of thermal time constants.
        let cycles = (800_000.0 * 400.0 / k) as u64;
        spec = spec.config_with_cycles(format!("{k}x"), cfg, cycles);
    }
    let result = args.run(&spec);

    println!("Ablation 2: thermal time compression (eon, base, no stalls)");
    println!("{:<12} {:>10} {:>10}", "compression", "IntQ1 (K)", "hottest");
    for job in &result.jobs {
        let r = &job.result;
        let hottest = r
            .temperatures
            .iter()
            .max_by(|a, b| a.last.partial_cmp(&b.last).expect("temps are finite"))
            .expect("runs record temperatures");
        println!(
            "{:<12} {:>10.2} {:>10}",
            job.config,
            r.last_temp("IntQ1").expect("block exists"),
            hottest.name
        );
    }
    println!("(steady-state temperature must be independent of compression)");
    println!();
    result
}

fn staleness_solutions(args: &BenchArgs) -> CampaignResult {
    let mut spec = args.spec("ablation-rf-staleness").benchmark("eon");
    for (label, stale) in
        [("1: guard band, writes continue", false), ("2: gate writes, restore burst", true)]
    {
        let mut cfg = experiments::regfile(MappingPolicy::Priority, true);
        cfg.mitigation.rf_stale_copy = stale;
        spec = spec.config(label, cfg);
    }
    let result = args.run(&spec);

    println!("Ablation 3: register-file staleness solutions (eon, RF-constrained)");
    println!("{:<34} {:>6} {:>9} {:>8}", "solution", "IPC", "turnoffs", "stalls");
    for job in &result.jobs {
        let r = &job.result;
        println!("{:<34} {:>6.2} {:>9} {:>8}", job.config, r.ipc, r.rf_turnoffs, r.freezes);
    }
    println!();
    result
}

fn completely_balanced(args: &BenchArgs) -> CampaignResult {
    let spec = args
        .spec("ablation-completely-balanced")
        .config(
            "priority + fine-grain turnoff",
            experiments::regfile(MappingPolicy::Priority, true),
        )
        .config(
            "completely balanced (no turnoff)",
            experiments::regfile(MappingPolicy::CompletelyBalanced, false),
        )
        .config(
            "completely balanced + turnoff",
            experiments::regfile(MappingPolicy::CompletelyBalanced, true),
        )
        .benchmark("eon");
    let result = args.run(&spec);

    println!("Ablation 4: completely-balanced mapping (eon, RF-constrained)");
    println!("{:<34} {:>6} {:>9} {:>8}", "wiring", "IPC", "turnoffs", "stalls");
    for job in &result.jobs {
        let r = &job.result;
        println!("{:<34} {:>6.2} {:>9} {:>8}", job.config, r.ipc, r.rf_turnoffs, r.freezes);
    }
    println!("(with completely-balanced wiring, turning off either copy idles every ALU;");
    println!(" the paper rejects this wiring for its cross-datapath wire delay, which a");
    println!(" cycle-level model does not penalize — hence its flattering IPC here)");
    result
}

//! Table 6: average register-file copy temperatures and IPC for `eon` under
//! the four mapping × turnoff combinations.
//!
//! Paper reference points: balanced mapping equalizes the copies with or
//! without turnoff; priority mapping concentrates heat in copy 0; priority
//! mapping + fine-grain turnoff has the highest IPC despite ~3x more
//! turnoff events than balanced + turnoff.

use powerbalance::{experiments, MappingPolicy};
use powerbalance_bench::BenchArgs;

fn main() {
    let args = BenchArgs::parse_or_exit(
        "table6 — average register-file copy temperatures for eon (Table 6)",
    );
    let spec = args
        .spec("table6")
        .config(
            "priority-mapping + fine-grain turnoff",
            experiments::regfile(MappingPolicy::Priority, true),
        )
        .config(
            "balanced-mapping + fine-grain turnoff",
            experiments::regfile(MappingPolicy::Balanced, true),
        )
        .config("balanced-mapping only", experiments::regfile(MappingPolicy::Balanced, false))
        .config("priority-mapping only", experiments::regfile(MappingPolicy::Priority, false))
        .benchmark("eon");
    let result = args.run(&spec);

    println!("Table 6: average register-file copy temperature for eon (K)");
    println!(
        "{:<37} {:>5} {:>9} {:>9} {:>9} {:>8}",
        "technique", "IPC", "Copy0", "Copy1", "turnoffs", "freezes"
    );
    let (_, results) = result.rows().remove(0);
    for (named, r) in result.spec.configs.iter().zip(results) {
        println!(
            "{:<37} {:>5.2} {:>9.1} {:>9.1} {:>9} {:>8}",
            named.name,
            r.ipc,
            r.avg_temp("IntReg0").expect("block exists"),
            r.avg_temp("IntReg1").expect("block exists"),
            r.rf_turnoffs,
            r.freezes,
        );
    }
    args.finish(&[&result]);
}

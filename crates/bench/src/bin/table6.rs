//! Table 6: average register-file copy temperatures and IPC for `eon` under
//! the four mapping × turnoff combinations.
//!
//! Paper reference points: balanced mapping equalizes the copies with or
//! without turnoff; priority mapping concentrates heat in copy 0; priority
//! mapping + fine-grain turnoff has the highest IPC despite ~3x more
//! turnoff events than balanced + turnoff.

use powerbalance::{experiments, MappingPolicy};
use powerbalance_bench::{run, DEFAULT_CYCLES};

fn main() {
    println!("Table 6: average register-file copy temperature for eon (K)");
    println!(
        "{:<36} {:>5} {:>9} {:>9} {:>9} {:>8}",
        "technique", "IPC", "Copy0", "Copy1", "turnoffs", "freezes"
    );
    for (label, mapping, turnoff) in [
        ("priority-mapping + fine-grain turnoff", MappingPolicy::Priority, true),
        ("balanced-mapping + fine-grain turnoff", MappingPolicy::Balanced, true),
        ("balanced-mapping only", MappingPolicy::Balanced, false),
        ("priority-mapping only", MappingPolicy::Priority, false),
    ] {
        let r = run(experiments::regfile(mapping, turnoff), "eon", DEFAULT_CYCLES);
        println!(
            "{:<36} {:>5.2} {:>9.1} {:>9.1} {:>9} {:>8}",
            label,
            r.ipc,
            r.avg_temp("IntReg0").expect("block exists"),
            r.avg_temp("IntReg1").expect("block exists"),
            r.rf_turnoffs,
            r.freezes,
        );
    }
}

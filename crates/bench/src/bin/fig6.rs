//! Figure 6: IPC of the issue-queue-constrained CPU with and without
//! activity toggling, for all 22 benchmarks.
//!
//! Paper reference points: 13 of 22 benchmarks speed up; average speedup
//! 9% over all benchmarks and 14% over the issue-queue-constrained subset;
//! `eon` peaks at 25%; toggle counts range from 8 (`applu`) to 44 (`bzip`).

use powerbalance::experiments;
use powerbalance_bench::{row, BenchArgs};
use powerbalance_harness::speedup::{format_pct, mean_speedup_pct, speedup_pct};

fn main() {
    let args = BenchArgs::parse_or_exit(
        "fig6 — issue-queue-constrained IPC, base vs. activity toggling (Figure 6)",
    );
    let spec = args
        .spec("fig6")
        .config("base", experiments::issue_queue(false))
        .config("toggling", experiments::issue_queue(true))
        .all_benchmarks();
    let result = args.run(&spec);

    println!("Figure 6: issue-queue-constrained IPC (base vs. activity toggling)");
    println!(
        "{:<10} {:>7} {:>9} {:>9} {:>8} {:>8}",
        "bench", "base", "toggling", "speedup%", "toggles", "freezes"
    );
    let mut pairs = Vec::new();
    let mut constrained_pairs = Vec::new();
    let constrained: Vec<&str> =
        result.constrained_subset(0).into_iter().map(|(name, _)| name).collect();
    for (name, results) in result.rows() {
        let (base, tog) = (results[0], results[1]);
        println!(
            "{} {} {:>8} {:>8}",
            row(name, &[base.ipc, tog.ipc], 8, 2),
            format_pct(speedup_pct(base.ipc, tog.ipc), 8, 2),
            tog.toggles,
            base.freezes
        );
        pairs.push((base.ipc, tog.ipc));
        if constrained.contains(&name) {
            constrained_pairs.push((base.ipc, tog.ipc));
        }
    }
    println!();
    println!(
        "average speedup, all benchmarks:        {:+.1}%  (paper: +9%)",
        mean_speedup_pct(&pairs)
    );
    println!(
        "average speedup, IQ-constrained subset: {:+.1}%  (paper: +14%; subset: {constrained:?})",
        mean_speedup_pct(&constrained_pairs),
    );
    args.finish(&[&result]);
}

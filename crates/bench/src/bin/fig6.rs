//! Figure 6: IPC of the issue-queue-constrained CPU with and without
//! activity toggling, for all 22 benchmarks.
//!
//! Paper reference points: 13 of 22 benchmarks speed up; average speedup
//! 9% over all benchmarks and 14% over the issue-queue-constrained subset;
//! `eon` peaks at 25%; toggle counts range from 8 (`applu`) to 44 (`bzip`).

use powerbalance::experiments;
use powerbalance_bench::{constrained_subset, mean_speedup_pct, row, sweep, DEFAULT_CYCLES};

fn main() {
    let configs = vec![experiments::issue_queue(false), experiments::issue_queue(true)];
    let rows = sweep(&configs, DEFAULT_CYCLES);

    println!("Figure 6: issue-queue-constrained IPC (base vs. activity toggling)");
    println!("{:<10} {:>7} {:>9} {:>9} {:>8} {:>8}", "bench", "base", "toggling", "speedup%", "toggles", "freezes");
    let mut pairs = Vec::new();
    let mut constrained_pairs = Vec::new();
    let constrained = constrained_subset(&rows, 0);
    for (name, results) in &rows {
        let (base, tog) = (&results[0], &results[1]);
        let speedup = (tog.ipc / base.ipc - 1.0) * 100.0;
        println!(
            "{} {:>8} {:>8}",
            row(name, &[base.ipc, tog.ipc, speedup], 8, 2),
            tog.toggles,
            base.freezes
        );
        pairs.push((base.ipc, tog.ipc));
        if constrained.contains(&name.as_str()) {
            constrained_pairs.push((base.ipc, tog.ipc));
        }
    }
    println!();
    println!(
        "average speedup, all benchmarks:        {:+.1}%  (paper: +9%)",
        mean_speedup_pct(&pairs)
    );
    println!(
        "average speedup, IQ-constrained subset: {:+.1}%  (paper: +14%; subset: {:?})",
        mean_speedup_pct(&constrained_pairs),
        constrained
    );
}
